#!/usr/bin/env python3
"""Plot the CSV series emitted by the bench binaries.

Usage:
    # from the build directory, after running the benches:
    python3 ../scripts/plot_results.py [--out plots/]

Consumes (when present in the current directory):
    fig5_response_time.csv   -> fig5.png  (grouped bars, reduction vs baseline)
    fig6_tail_latency.csv    -> fig6.png  (P95/P99 normalised to baseline)
    fig7_utilization.csv     -> fig7.png  (little vs 3-in-1 utilisation)
    fig8_dswitch_trace.csv   -> fig8.png  (D_switch traces with thresholds)

Only needs matplotlib; degrades gracefully when a CSV is missing.
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    if not os.path.exists(path):
        print(f"  (skip: {path} not found)")
        return None
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def fig5(plt, outdir):
    rows = read_csv("fig5_response_time.csv")
    if not rows:
        return
    congestions = []
    systems = []
    for r in rows:
        if r["congestion"] not in congestions:
            congestions.append(r["congestion"])
        if r["system"] not in systems:
            systems.append(r["system"])
    fig, ax = plt.subplots(figsize=(9, 4.5))
    width = 0.8 / len(systems)
    for si, system in enumerate(systems):
        xs, ys = [], []
        for ci, congestion in enumerate(congestions):
            for r in rows:
                if r["system"] == system and r["congestion"] == congestion:
                    xs.append(ci + si * width)
                    ys.append(float(r["reduction_vs_baseline"]))
        ax.bar(xs, ys, width=width, label=system)
    ax.set_xticks([i + 0.4 for i in range(len(congestions))])
    ax.set_xticklabels(congestions)
    ax.set_ylabel("response-time reduction vs baseline (x)")
    ax.set_title("Fig 5: relative response time reduction")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig5.png"), dpi=150)
    print(f"  wrote {outdir}/fig5.png")


def fig6(plt, outdir):
    rows = read_csv("fig6_tail_latency.csv")
    if not rows:
        return
    congestions = sorted({r["congestion"] for r in rows})
    fig, axes = plt.subplots(1, 2, figsize=(10, 4))
    for ax, metric, title in zip(axes, ["p95_vs_baseline", "p99_vs_baseline"],
                                 ["P95 / baseline", "P99 / baseline"]):
        systems = []
        for r in rows:
            if r["system"] not in systems:
                systems.append(r["system"])
        width = 0.8 / len(systems)
        for si, system in enumerate(systems):
            xs, ys = [], []
            for ci, congestion in enumerate(congestions):
                for r in rows:
                    if r["system"] == system and r["congestion"] == congestion:
                        xs.append(ci + si * width)
                        ys.append(float(r[metric]))
            ax.bar(xs, ys, width=width, label=system)
        ax.set_xticks([i + 0.4 for i in range(len(congestions))])
        ax.set_xticklabels(congestions, fontsize=8)
        ax.set_title(title)
    axes[0].legend(fontsize=7)
    fig.suptitle("Fig 6: tail latency normalised to baseline")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig6.png"), dpi=150)
    print(f"  wrote {outdir}/fig6.png")


def fig7(plt, outdir):
    rows = read_csv("fig7_utilization.csv")
    if not rows:
        return
    apps = [r["app"] for r in rows]
    little = [float(r["lut_little"]) for r in rows]
    big = [float(r["lut_big"]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4))
    xs = range(len(apps))
    ax.bar([x - 0.2 for x in xs], little, width=0.4, label="Little slots")
    ax.bar([x + 0.2 for x in xs], big, width=0.4, label="3-in-1 Big slot")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(apps)
    ax.set_ylabel("LUT utilisation")
    ax.set_title("Fig 7: utilisation improvement by 3-in-1 tasks")
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig7.png"), dpi=150)
    print(f"  wrote {outdir}/fig7.png")


def fig8(plt, outdir):
    rows = read_csv("fig8_dswitch_trace.csv")
    if not rows:
        return
    fig, ax = plt.subplots(figsize=(8, 4))
    workloads = sorted({r["workload"] for r in rows})
    for w in workloads:
        xs = [float(r["t_s"]) for r in rows if r["workload"] == w]
        ys = [float(r["dswitch"]) for r in rows if r["workload"] == w]
        ax.plot(xs, ys, marker=".", label=f"workload {int(w) + 1}")
    ax.axhline(0.030, color="red", linestyle="--", label="T1")
    ax.axhline(0.008, color="green", linestyle="--", label="T2")
    ax.set_xlabel("time (s)")
    ax.set_ylabel("D_switch")
    ax.set_title("Fig 8: D_switch with Schmitt thresholds")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig8.png"), dpi=150)
    print(f"  wrote {outdir}/fig8.png")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="plots")
    args = parser.parse_args()
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; install it to plot", file=sys.stderr)
        return 1
    os.makedirs(args.out, exist_ok=True)
    print("plotting into", args.out)
    fig5(plt, args.out)
    fig6(plt, args.out)
    fig7(plt, args.out)
    fig8(plt, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
