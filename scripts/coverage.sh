#!/usr/bin/env bash
# Line-coverage gate for the cluster, fault, runtime, simulation-kernel
# and serving-plane layers. Builds the VS_COVERAGE preset, runs the full
# test suite, then measures line coverage of src/cluster/, src/faults/,
# src/runtime/, src/sim/ and src/serve/ and fails below the threshold —
# src/serve/ is additionally gated on its own, so strong coverage in the
# older layers cannot mask a weakly tested serving plane.
#
#   scripts/coverage.sh                 # build, test, report, gate (>= 85%)
#   VS_COV_MIN=80 scripts/coverage.sh   # custom threshold
#   JOBS=4 scripts/coverage.sh          # build parallelism
#
# Uses gcovr when available; otherwise falls back to plain gcov and
# aggregates its per-file "Lines executed" report.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MIN="${VS_COV_MIN:-85}"
BUILD=build-cov

cmake -B "$BUILD" -S . -DVS_COVERAGE=ON
cmake --build "$BUILD" -j "$JOBS" --target versaslot_tests
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

if command -v gcovr >/dev/null 2>&1; then
  echo "== gcovr: src/cluster + src/faults + src/runtime + src/sim + src/serve =="
  gcovr --root . --filter 'src/cluster/' --filter 'src/faults/' \
    --filter 'src/runtime/' --filter 'src/sim/' --filter 'src/serve/' \
    --fail-under-line "$MIN" "$BUILD"
  echo "== gcovr: src/serve standalone gate =="
  gcovr --root . --filter 'src/serve/' --fail-under-line "$MIN" "$BUILD"
else
  echo "== gcov fallback: src/cluster + src/faults + src/runtime + src/sim + src/serve =="
  total_lines=0
  covered_lines=0
  serve_total=0
  serve_covered=0
  for src in src/cluster/*.cpp src/faults/*.cpp src/runtime/*.cpp \
             src/sim/*.cpp src/serve/*.cpp; do
    obj_dir=$(dirname "$BUILD/src/CMakeFiles/versaslot_core.dir/${src#src/}")
    gcno=$(find "$BUILD/src" -name "$(basename "$src").gcno" | head -n 1)
    if [[ -z "$gcno" ]]; then
      echo "no coverage data for $src" >&2
      exit 1
    fi
    # gcov prints "Lines executed:NN.NN% of M" per source file; run it in a
    # scratch dir so .gcov artifacts don't litter the tree.
    out=$(cd "$(dirname "$gcno")" && gcov -n "$(basename "$gcno")" 2>/dev/null |
          grep -A 1 "File '.*$(basename "$src")'" |
          grep -o 'Lines executed:[0-9.]*% of [0-9]*' | head -n 1)
    if [[ -z "$out" ]]; then
      echo "no gcov report for $src" >&2
      exit 1
    fi
    pct=$(echo "$out" | sed -E 's/Lines executed:([0-9.]*)% of [0-9]*/\1/')
    n=$(echo "$out" | sed -E 's/.* of ([0-9]*)/\1/')
    hit=$(awk -v p="$pct" -v n="$n" 'BEGIN { printf "%d", p * n / 100 + 0.5 }')
    printf '  %-40s %6s%% of %s lines\n' "$src" "$pct" "$n"
    total_lines=$((total_lines + n))
    covered_lines=$((covered_lines + hit))
    if [[ "$src" == src/serve/* ]]; then
      serve_total=$((serve_total + n))
      serve_covered=$((serve_covered + hit))
    fi
  done
  pct=$(awk -v c="$covered_lines" -v t="$total_lines" \
        'BEGIN { printf "%.2f", 100 * c / t }')
  echo "== line coverage: $pct% ($covered_lines/$total_lines) =="
  awk -v p="$pct" -v m="$MIN" 'BEGIN { exit !(p >= m) }' || {
    echo "coverage $pct% is below the $MIN% gate" >&2
    exit 1
  }
  serve_pct=$(awk -v c="$serve_covered" -v t="$serve_total" \
        'BEGIN { printf "%.2f", 100 * c / t }')
  echo "== src/serve line coverage: $serve_pct% ($serve_covered/$serve_total) =="
  awk -v p="$serve_pct" -v m="$MIN" 'BEGIN { exit !(p >= m) }' || {
    echo "src/serve coverage $serve_pct% is below the $MIN% gate" >&2
    exit 1
  }
fi
echo "== coverage gate passed =="
