#!/usr/bin/env bash
# Line-coverage gate for the cluster, fault, runtime and simulation-kernel
# layers. Builds the VS_COVERAGE preset, runs the full test suite, then
# measures line coverage of src/cluster/, src/faults/, src/runtime/ and
# src/sim/ and fails below the threshold.
#
#   scripts/coverage.sh                 # build, test, report, gate (>= 85%)
#   VS_COV_MIN=80 scripts/coverage.sh   # custom threshold
#   JOBS=4 scripts/coverage.sh          # build parallelism
#
# Uses gcovr when available; otherwise falls back to plain gcov and
# aggregates its per-file "Lines executed" report.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MIN="${VS_COV_MIN:-85}"
BUILD=build-cov

cmake -B "$BUILD" -S . -DVS_COVERAGE=ON
cmake --build "$BUILD" -j "$JOBS" --target versaslot_tests
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

if command -v gcovr >/dev/null 2>&1; then
  echo "== gcovr: src/cluster + src/faults + src/runtime + src/sim =="
  gcovr --root . --filter 'src/cluster/' --filter 'src/faults/' \
    --filter 'src/runtime/' --filter 'src/sim/' \
    --fail-under-line "$MIN" "$BUILD"
else
  echo "== gcov fallback: src/cluster + src/faults + src/runtime + src/sim =="
  total_lines=0
  covered_lines=0
  for src in src/cluster/*.cpp src/faults/*.cpp src/runtime/*.cpp \
             src/sim/*.cpp; do
    obj_dir=$(dirname "$BUILD/src/CMakeFiles/versaslot_core.dir/${src#src/}")
    gcno=$(find "$BUILD/src" -name "$(basename "$src").gcno" | head -n 1)
    if [[ -z "$gcno" ]]; then
      echo "no coverage data for $src" >&2
      exit 1
    fi
    # gcov prints "Lines executed:NN.NN% of M" per source file; run it in a
    # scratch dir so .gcov artifacts don't litter the tree.
    out=$(cd "$(dirname "$gcno")" && gcov -n "$(basename "$gcno")" 2>/dev/null |
          grep -A 1 "File '.*$(basename "$src")'" |
          grep -o 'Lines executed:[0-9.]*% of [0-9]*' | head -n 1)
    if [[ -z "$out" ]]; then
      echo "no gcov report for $src" >&2
      exit 1
    fi
    pct=$(echo "$out" | sed -E 's/Lines executed:([0-9.]*)% of [0-9]*/\1/')
    n=$(echo "$out" | sed -E 's/.* of ([0-9]*)/\1/')
    hit=$(awk -v p="$pct" -v n="$n" 'BEGIN { printf "%d", p * n / 100 + 0.5 }')
    printf '  %-40s %6s%% of %s lines\n' "$src" "$pct" "$n"
    total_lines=$((total_lines + n))
    covered_lines=$((covered_lines + hit))
  done
  pct=$(awk -v c="$covered_lines" -v t="$total_lines" \
        'BEGIN { printf "%.2f", 100 * c / t }')
  echo "== line coverage: $pct% ($covered_lines/$total_lines) =="
  awk -v p="$pct" -v m="$MIN" 'BEGIN { exit !(p >= m) }' || {
    echo "coverage $pct% is below the $MIN% gate" >&2
    exit 1
  }
fi
echo "== coverage gate passed =="
