#!/usr/bin/env bash
# Repository check gate: the tier-1 build + full test suite, then a
# ThreadSanitizer pass over the parallel sweep runner (the only
# multi-threaded code in the repo) to prove the replica sharding is
# race-free. Run from the repository root:
#
#   scripts/check.sh            # tier-1 + TSan sweep tests
#   SKIP_TSAN=1 scripts/check.sh  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== ThreadSanitizer: sweep runner =="
  cmake -B build-tsan -S . -DVS_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target versaslot_tests
  # halt_on_error so any reported race fails the gate loudly.
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/versaslot_tests \
    --gtest_filter='ThreadPool.*:SweepDeterminism.*:SweepEdgeCases.*'
fi

echo "== all checks passed =="
