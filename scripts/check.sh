#!/usr/bin/env bash
# Repository check gate: the tier-1 build + full test suite, a smoke run of
# the substrate micro-benchmarks (which carry the event kernel's
# zero-allocation probe, including the telemetry-handle overhead bench) and
# of the telemetry demo + its three exporters, then sanitizer passes:
# ThreadSanitizer over the parallel sweep runner (the only multi-threaded
# code in the repo) and AddressSanitizer over the event-kernel and
# telemetry tests (the slab queue and InlineEvent do placement-new lifetime
# management by hand; the registry hands out long-lived cell pointers).
# Run from the repository root:
#
#   scripts/check.sh              # everything
#   SKIP_TSAN=1 scripts/check.sh  # skip the TSan pass
#   SKIP_ASAN=1 scripts/check.sh  # skip the ASan pass
#   SKIP_COV=1 scripts/check.sh   # skip the coverage gate
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== substrate micro-bench smoke (zero-alloc probe) =="
cmake --build build -j "$JOBS" --target micro_substrate
./build/bench/micro_substrate \
  --benchmark_filter='BM_EventQueueScheduleAndPop|BM_SimulatorEventRate|BM_MetricsOverhead|BM_PhaseAccountingOverhead' \
  --benchmark_min_time=0.01

echo "== telemetry demo smoke (dashboard + exporters) =="
./build/examples/telemetry_demo --metrics-out build/telemetry_demo_smoke \
  >/dev/null
test -s build/telemetry_demo_smoke.prom
test -s build/telemetry_demo_smoke.jsonl
test -s build/telemetry_demo_smoke.report.json

echo "== fault-injection smoke (recovery metrics in exports) =="
cmake --build build -j "$JOBS" --target ext_fault_resilience
./build/bench/ext_fault_resilience --apps 12 --seqs 1 \
  --metrics-out build/fault_smoke >/dev/null
grep -q 'vs_recovery_mttr_ms' build/fault_smoke.prom
grep -q 'vs_faults_injected_total' build/fault_smoke.prom
grep -q 'vs_board_available' build/fault_smoke.prom

echo "== checkpoint smoke (snapshot metrics in exports) =="
./build/bench/ext_fault_resilience --apps 12 --seqs 1 --recovery checkpoint \
  --metrics-out build/ckpt_smoke >/dev/null
grep -q 'vs_ckpt_snapshots_total' build/ckpt_smoke.prom
grep -q 'vs_ckpt_bytes_total' build/ckpt_smoke.prom
grep -q 'vs_recovery_checkpoint_restored_apps_total' build/ckpt_smoke.prom

echo "== delta checkpoint + pre-copy smoke (dirty/round metrics in exports) =="
# The telemetry replay runs the full PR 7 configuration (dirty-delta
# checkpoints + iterative pre-copy), so its export must carry the
# delta-only and migration instruments.
grep -q 'vs_ckpt_deltas_total' build/ckpt_smoke.prom
grep -q 'vs_ckpt_dirty_bytes_total' build/ckpt_smoke.prom
grep -q 'reason="clean"' build/ckpt_smoke.prom
grep -q 'reason="empty"' build/ckpt_smoke.prom
grep -q 'vs_migration_rounds_total' build/ckpt_smoke.prom
grep -q 'vs_migration_downtime_ms' build/ckpt_smoke.prom

echo "== causal trace + journal smoke (flow events, phases, journal) =="
# A faulted traced replay must emit cross-board flow events (crash ->
# evacuation -> readmission arrows), the phase histograms, and a
# structured journal with the crash recorded.
./build/bench/ext_fault_resilience --apps 12 --seqs 1 \
  --metrics-out build/trace_smoke --trace-out build/trace_smoke.json \
  --journal-out build/trace_smoke.jsonl >/dev/null
grep -q '"ph":"s"' build/trace_smoke.json
grep -q '"ph":"f"' build/trace_smoke.json
grep -q 'vs_app_phase_ms' build/trace_smoke.prom
grep -q '"phases": \[' build/trace_smoke.report.json
grep -q '"event":"crash"' build/trace_smoke.jsonl
grep -q '"event":"readmit"' build/trace_smoke.jsonl

echo "== sharded kernel equivalence smoke (serial vs 4 workers) =="
cmake --build build -j "$JOBS" --target ext_cluster_scale
./build/bench/ext_cluster_scale --apps 20 --seqs 1 --jobs 1 \
  --kernel-jobs 0 > build/kernel_serial.out
./build/bench/ext_cluster_scale --apps 20 --seqs 1 --jobs 1 \
  --kernel-jobs 4 > build/kernel_sharded.out
diff build/kernel_serial.out build/kernel_sharded.out

echo "== multi-tenant serving smoke (vs_tenant_* metrics, kernel CSV diff) =="
cmake --build build -j "$JOBS" --target ext_multitenant
# Run from build/ so the CSV a smoke writes cannot clobber the committed
# ext_multitenant.csv at the repo root.
(cd build && ./bench/ext_multitenant --boards 8 --rate 1.0 --horizon 10 \
  --jobs 1 --kernel-jobs 0 --metrics-out mt_smoke > mt_serial.out &&
  mv ext_multitenant.csv mt_serial.csv)
(cd build && ./bench/ext_multitenant --boards 8 --rate 1.0 --horizon 10 \
  --jobs 1 --kernel-jobs 4 > mt_sharded.out &&
  mv ext_multitenant.csv mt_sharded.csv)
grep -q 'vs_tenant_admitted_total' build/mt_smoke.prom
grep -q 'vs_tenant_slo_miss_total' build/mt_smoke.prom
grep -q 'vs_tenant_response_ms' build/mt_smoke.prom
# The serving plane runs entirely in coordinator events: the sharded
# kernel must reproduce the serial CSV byte for byte.
diff build/mt_serial.csv build/mt_sharded.csv

echo "== rack chaos smoke (correlated failures, serial vs sharded) =="
# The rack sweep writes its CSV into the working directory; run from
# build/ so it cannot clobber a committed file. The sharded kernel must
# reproduce the serial rack sweep byte for byte, and the export must
# carry the rack-event counter (registered only when domains are set).
(cd build && ./bench/ext_fault_resilience --racks 2 --apps 12 --seqs 1 \
  --metrics-out rack_smoke > rack_serial.out &&
  mv ext_fault_resilience_rack.csv rack_serial.csv)
(cd build && VS_KERNEL_JOBS=4 ./bench/ext_fault_resilience --racks 2 \
  --apps 12 --seqs 1 > rack_sharded.out &&
  mv ext_fault_resilience_rack.csv rack_sharded.csv)
grep -q 'vs_rack_events_total' build/rack_smoke.prom
grep -q 'vs_recovery_spare_exhausted_total' build/rack_smoke.prom
diff build/rack_serial.csv build/rack_sharded.csv

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== ThreadSanitizer: sweep runner + sharded kernel =="
  cmake -B build-tsan -S . -DVS_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target versaslot_tests
  # halt_on_error so any reported race fails the gate loudly. The sharded
  # suites run the cluster differential at up to 8 window workers, so every
  # cross-shard access pattern (mailboxes, metrics cells, barrier phases)
  # goes under the race detector.
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/versaslot_tests \
    --gtest_filter='ThreadPool.*:SweepDeterminism.*:SweepEdgeCases.*:ShardedKernel.*:*ShardedDifferential*:ShardedGolden.*:*ShardedBoundaryFuzz*:*ShardedKernelMatchesSerial*:*SerialShardedAndInstrumentedBitIdentical*:*SerialAndShardedKernelsEmitIdenticalTraceAndJournal*:ServePlane.SerialAndShardedKernelsBitIdentical:*ChaosCampaign*:RackGolden.*'
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== AddressSanitizer: event kernel + telemetry =="
  cmake -B build-asan -S . -DVS_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target versaslot_tests
  ./build-asan/tests/versaslot_tests \
    --gtest_filter='InlineEvent.*:EventQueue*:Simulator.*:Core.*:MetricsRegistry.*:MetricsHandles.*:Histogram.*:PrometheusExport.*:JsonlExport.*:RunReportExport.*:Sampler.*:Telemetry*:ChromeTraceExport.*:TraceRecorder.*:TraceRecorderCapacity.*:TraceHub.*:RunJournal.*:PrometheusEscaping.*:PhaseAccounting.*:FaultScenario.*:FaultPlane.*:FaultPlaneValidation.*:AuroraFlap.*:SlotSeu.*:BoardCrash.*:FaultRecovery.*:FaultDeterminism.*:RackEvents.*:RackGolden.*:*ChaosCampaign*:SparePoolExhausted.*:Checkpoint*:SingleBoardFaults.*:DirtyMapUnit.*:Precopy*:ArrivalProcess.*:ServeAdmission.*:ServePlane.*'
fi

if [[ "${SKIP_COV:-0}" != "1" ]]; then
  echo "== coverage gate: src/cluster + src/faults + src/runtime + src/sim + src/serve =="
  scripts/coverage.sh
fi

echo "== all checks passed =="
