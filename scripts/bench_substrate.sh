#!/usr/bin/env bash
# Substrate perf trajectory: builds and runs the event-kernel
# micro-benchmarks and records the results in BENCH_substrate.json
# (google-benchmark JSON format; the `allocs_per_event` counter must be 0 —
# the kernel's zero-allocation contract).
#
#   scripts/bench_substrate.sh          # 3 repetitions, aggregates only
#   REPS=1 scripts/bench_substrate.sh   # quick single pass
#
# Reference numbers on the original std::function + binary-heap kernel
# (container baseline, PR 2): BM_EventQueueScheduleAndPop/1000 12.8M
# events/s, /10000 6.9M events/s, BM_SimulatorEventRate 26.7M events/s,
# allocations >= 1 per event. The slab + InlineEvent kernel must hold
# >= 1.5x those rates at 0 allocations per steady-state event.
#
# BM_MetricsOverhead pins the telemetry handles' hot-path cost:
# BM_MetricsOverhead/0 (registry disabled — null handles, the shipping
# default) must stay within 3% of the BM_SimulatorEventRate event rate,
# and both /0 and /1 (registry bound) must keep allocs_per_event at 0.
# BM_PhaseAccountingOverhead pins the phase-accounting + hub-channel
# guards the same way: /0 (accounting off, no hub — the shipping default)
# must hold the BM_SimulatorEventRate rate within 3%, and both /0 and /1
# must keep allocs_per_event at 0.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
REPS="${REPS:-3}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target micro_substrate >/dev/null

./build/bench/micro_substrate \
  --benchmark_filter='BM_EventQueueScheduleAndPop|BM_SimulatorEventRate|BM_ShardedKernelEventRate|BM_MetricsOverhead|BM_PhaseAccountingOverhead|BM_PcapQueueing' \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_substrate.json \
  --benchmark_out_format=json

echo
echo "Recorded to BENCH_substrate.json"
