
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/contracts_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/contracts_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/contracts_test.cpp.o.d"
  "/root/repo/tests/dswitch_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/dswitch_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/dswitch_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fpga_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/fpga_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/fpga_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/offline_flow_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/offline_flow_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/offline_flow_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sensitivity_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/sensitivity_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/streaming_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/versaslot_test.cpp" "tests/CMakeFiles/versaslot_tests.dir/versaslot_test.cpp.o" "gcc" "tests/CMakeFiles/versaslot_tests.dir/versaslot_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/versaslot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
