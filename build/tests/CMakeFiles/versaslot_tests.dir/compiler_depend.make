# Empty compiler generated dependencies file for versaslot_tests.
# This may be replaced when dependencies are built.
