# Empty compiler generated dependencies file for fig8_switching.
# This may be replaced when dependencies are built.
