file(REMOVE_RECURSE
  "../bench/fig8_switching"
  "../bench/fig8_switching.pdb"
  "CMakeFiles/fig8_switching.dir/fig8_switching.cpp.o"
  "CMakeFiles/fig8_switching.dir/fig8_switching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
