# Empty dependencies file for ext_cluster_scale.
# This may be replaced when dependencies are built.
