file(REMOVE_RECURSE
  "../bench/ext_cluster_scale"
  "../bench/ext_cluster_scale.pdb"
  "CMakeFiles/ext_cluster_scale.dir/ext_cluster_scale.cpp.o"
  "CMakeFiles/ext_cluster_scale.dir/ext_cluster_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
