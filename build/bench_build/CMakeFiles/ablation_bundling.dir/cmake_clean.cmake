file(REMOVE_RECURSE
  "../bench/ablation_bundling"
  "../bench/ablation_bundling.pdb"
  "CMakeFiles/ablation_bundling.dir/ablation_bundling.cpp.o"
  "CMakeFiles/ablation_bundling.dir/ablation_bundling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
