file(REMOVE_RECURSE
  "../bench/ext_quality"
  "../bench/ext_quality.pdb"
  "CMakeFiles/ext_quality.dir/ext_quality.cpp.o"
  "CMakeFiles/ext_quality.dir/ext_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
