# Empty dependencies file for ext_quality.
# This may be replaced when dependencies are built.
