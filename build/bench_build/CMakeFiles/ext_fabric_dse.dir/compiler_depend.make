# Empty compiler generated dependencies file for ext_fabric_dse.
# This may be replaced when dependencies are built.
