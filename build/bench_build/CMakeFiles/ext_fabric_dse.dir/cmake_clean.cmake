file(REMOVE_RECURSE
  "../bench/ext_fabric_dse"
  "../bench/ext_fabric_dse.pdb"
  "CMakeFiles/ext_fabric_dse.dir/ext_fabric_dse.cpp.o"
  "CMakeFiles/ext_fabric_dse.dir/ext_fabric_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fabric_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
