# Empty dependencies file for ext_dml_comparison.
# This may be replaced when dependencies are built.
