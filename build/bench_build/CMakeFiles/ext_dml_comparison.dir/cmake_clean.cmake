file(REMOVE_RECURSE
  "../bench/ext_dml_comparison"
  "../bench/ext_dml_comparison.pdb"
  "CMakeFiles/ext_dml_comparison.dir/ext_dml_comparison.cpp.o"
  "CMakeFiles/ext_dml_comparison.dir/ext_dml_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dml_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
