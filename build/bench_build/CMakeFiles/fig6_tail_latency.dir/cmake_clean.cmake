file(REMOVE_RECURSE
  "../bench/fig6_tail_latency"
  "../bench/fig6_tail_latency.pdb"
  "CMakeFiles/fig6_tail_latency.dir/fig6_tail_latency.cpp.o"
  "CMakeFiles/fig6_tail_latency.dir/fig6_tail_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
