file(REMOVE_RECURSE
  "../bench/fig5_response_time"
  "../bench/fig5_response_time.pdb"
  "CMakeFiles/fig5_response_time.dir/fig5_response_time.cpp.o"
  "CMakeFiles/fig5_response_time.dir/fig5_response_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
