file(REMOVE_RECURSE
  "CMakeFiles/offline_flow.dir/offline_flow.cpp.o"
  "CMakeFiles/offline_flow.dir/offline_flow.cpp.o.d"
  "offline_flow"
  "offline_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
