# Empty dependencies file for offline_flow.
# This may be replaced when dependencies are built.
