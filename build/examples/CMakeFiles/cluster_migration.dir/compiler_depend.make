# Empty compiler generated dependencies file for cluster_migration.
# This may be replaced when dependencies are built.
