file(REMOVE_RECURSE
  "CMakeFiles/cluster_migration.dir/cluster_migration.cpp.o"
  "CMakeFiles/cluster_migration.dir/cluster_migration.cpp.o.d"
  "cluster_migration"
  "cluster_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
