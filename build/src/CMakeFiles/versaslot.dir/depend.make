# Empty dependencies file for versaslot.
# This may be replaced when dependencies are built.
