
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/benchmarks.cpp" "src/CMakeFiles/versaslot.dir/apps/benchmarks.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/apps/benchmarks.cpp.o.d"
  "/root/repo/src/apps/bundling.cpp" "src/CMakeFiles/versaslot.dir/apps/bundling.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/apps/bundling.cpp.o.d"
  "/root/repo/src/apps/offline_flow.cpp" "src/CMakeFiles/versaslot.dir/apps/offline_flow.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/apps/offline_flow.cpp.o.d"
  "/root/repo/src/apps/synthesis.cpp" "src/CMakeFiles/versaslot.dir/apps/synthesis.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/apps/synthesis.cpp.o.d"
  "/root/repo/src/baselines/baseline_exclusive.cpp" "src/CMakeFiles/versaslot.dir/baselines/baseline_exclusive.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/baseline_exclusive.cpp.o.d"
  "/root/repo/src/baselines/dml.cpp" "src/CMakeFiles/versaslot.dir/baselines/dml.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/dml.cpp.o.d"
  "/root/repo/src/baselines/fcfs.cpp" "src/CMakeFiles/versaslot.dir/baselines/fcfs.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/fcfs.cpp.o.d"
  "/root/repo/src/baselines/nimblock.cpp" "src/CMakeFiles/versaslot.dir/baselines/nimblock.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/nimblock.cpp.o.d"
  "/root/repo/src/baselines/policy_common.cpp" "src/CMakeFiles/versaslot.dir/baselines/policy_common.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/policy_common.cpp.o.d"
  "/root/repo/src/baselines/round_robin.cpp" "src/CMakeFiles/versaslot.dir/baselines/round_robin.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/baselines/round_robin.cpp.o.d"
  "/root/repo/src/cluster/aurora.cpp" "src/CMakeFiles/versaslot.dir/cluster/aurora.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/cluster/aurora.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/versaslot.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/core/versaslot_policy.cpp" "src/CMakeFiles/versaslot.dir/core/versaslot_policy.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/core/versaslot_policy.cpp.o.d"
  "/root/repo/src/fpga/fabric.cpp" "src/CMakeFiles/versaslot.dir/fpga/fabric.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/fpga/fabric.cpp.o.d"
  "/root/repo/src/fpga/pcap.cpp" "src/CMakeFiles/versaslot.dir/fpga/pcap.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/fpga/pcap.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/versaslot.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/quality.cpp" "src/CMakeFiles/versaslot.dir/metrics/quality.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/metrics/quality.cpp.o.d"
  "/root/repo/src/runtime/board_runtime.cpp" "src/CMakeFiles/versaslot.dir/runtime/board_runtime.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/runtime/board_runtime.cpp.o.d"
  "/root/repo/src/runtime/invariants.cpp" "src/CMakeFiles/versaslot.dir/runtime/invariants.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/runtime/invariants.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/CMakeFiles/versaslot.dir/sim/core.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/sim/core.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/versaslot.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/versaslot.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/versaslot.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/versaslot.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/sim/trace_export.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/versaslot.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/versaslot.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/versaslot.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/versaslot.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/versaslot.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/versaslot.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/versaslot.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/versaslot.dir/workload/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
