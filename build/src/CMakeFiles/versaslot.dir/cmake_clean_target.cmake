file(REMOVE_RECURSE
  "libversaslot.a"
)
