#include "core/versaslot_policy.h"

#include <algorithm>
#include <vector>

#include "runtime/board_runtime.h"

namespace vs::core {

namespace {

int next_pending_unit(const runtime::AppRun& app) {
  for (const runtime::UnitRun& u : app.units) {
    if (u.state == runtime::UnitState::kPending) {
      return static_cast<int>(&u - app.units.data());
    }
  }
  return -1;
}

}  // namespace

void VersaSlotPolicy::on_app_submitted(runtime::BoardRuntime& rt,
                                       int app_id) {
  AppState s;
  s.wait_since = rt.sim().now();
  const runtime::AppRun& app = rt.app(app_id);
  int total_little = rt.board().count_slots(fpga::SlotKind::kLittle);
  s.optimal_little = apps::optimal_little_slots(
      *app.spec, app.batch, rt.board().params(), std::max(total_little, 1));
  s.optimal_big = apps::optimal_big_slots(*app.spec, options_.bundle_size);
  state_[app_id] = s;
}

bool VersaSlotPolicy::can_bundle_cached(runtime::BoardRuntime& rt,
                                        int app_id) {
  AppState& s = state_[app_id];
  if (!s.bundle_checked) {
    s.bundle_checked = true;
    s.bundleable =
        apps::can_bundle(*rt.app(app_id).spec, rt.board().params(),
                         options_.synthesis, options_.bundle_size);
  }
  return s.bundleable;
}

void VersaSlotPolicy::on_pass(runtime::BoardRuntime& rt) {
  allocate(rt);
  schedule(rt);
  preempt_little(rt);
}

void VersaSlotPolicy::bind_metrics(obs::MetricsRegistry& registry,
                                   const std::string& board) {
  // The board label keeps same-policy epochs on different boards in
  // distinct cells — a hard requirement under the sharded kernel, where
  // each board's worker updates its own counters during a window.
  obs::Labels labels{{"policy", name()}, {"board", board}};
  m_big_bindings_ = obs::CounterHandle{
      &registry.counter("vs_policy_big_bindings_total", labels)};
  m_little_bindings_ = obs::CounterHandle{
      &registry.counter("vs_policy_little_bindings_total", labels)};
  m_bundles_ = obs::CounterHandle{
      &registry.counter("vs_policy_bundle_hits_total", labels)};
  m_rebindings_ = obs::CounterHandle{
      &registry.counter("vs_policy_rebindings_total", labels)};
  m_redistributed_ = obs::CounterHandle{
      &registry.counter("vs_policy_redistributed_slots_total", labels)};
  m_preemptions_ = obs::CounterHandle{
      &registry.counter("vs_policy_preemptions_total", labels)};
}

// --------------------------------------------------------------- Algorithm 1
void VersaSlotPolicy::allocate(runtime::BoardRuntime& rt) {
  const bool big_little = options_.mode == VersaSlotOptions::Mode::kBigLittle;
  const int big_total = rt.board().count_slots(fpga::SlotKind::kBig);
  const int little_total = rt.board().count_slots(fpga::SlotKind::kLittle);

  // Reserved Big slots: every Big-bound app keeps min(alloc, remaining
  // bundles) reserved until it finishes (line 1 of Algorithm 1).
  int big_reserved = 0;
  int little_reserved = 0;
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done()) continue;
    auto it = state_.find(a.id);
    if (it == state_.end()) continue;
    const AppState& s = it->second;
    if (s.binding == Binding::kBig) {
      big_reserved += std::min(s.alloc_big, a.units_unfinished());
    } else if (s.binding == Binding::kLittle) {
      little_reserved += std::min(s.alloc_little, a.units_unfinished());
    }
  }
  int big_avail = big_total - big_reserved;
  int little_left = little_total - little_reserved;

  if (big_avail <= 0 && little_left <= 0) return;  // line 2: nothing to do

  // Rebinding (lines 4-6): Little-bound apps that have not started return
  // to the waiting list when Big slots could take them.
  if (big_little && options_.enable_rebinding && big_avail > 0) {
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec == nullptr || a.done() || a.started) continue;
      AppState& s = state_[a.id];
      if (s.binding == Binding::kLittle) {
        little_left += std::min(s.alloc_little, a.units_unfinished());
        s.binding = Binding::kWaiting;
        s.alloc_little = 0;
        m_rebindings_.add();
      }
    }
  }

  // Primary allocation (lines 7-13), waiting apps in arrival order.
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done()) continue;
    AppState& s = state_[a.id];
    if (s.binding != Binding::kWaiting) continue;

    // Binding: prioritise Big slots for bundleable apps (lines 8-10). On a
    // fabric without Little slots, non-bundleable apps also bind Big when
    // their units fit (bitstreams are generated "adaptive to each slot").
    // Apps that already carry execution progress (live-migration arrivals)
    // are pinned to their per-task decomposition and cannot be re-bundled.
    bool big_eligible = !a.started && can_bundle_cached(rt, a.id);
    if (!big_eligible && little_total == 0) {
      auto units = apps::make_big_units(*a.spec, a.batch, rt.board().params(),
                                        options_.synthesis,
                                        options_.bundle_size);
      big_eligible = true;
      for (const apps::UnitSpec& u : units) {
        big_eligible &= rt.board().params().big_slot.fits(u.impl_usage);
      }
    }
    if (big_little && big_avail > 0 && big_eligible) {
      int grant = std::min(s.optimal_big, big_avail);
      s.binding = Binding::kBig;
      s.alloc_big = grant;
      big_avail -= grant;
      m_big_bindings_.add();
      if (s.bundleable) m_bundles_.add();
      // Online 3-in-1 bundling: re-unitise for Big-slot execution now that
      // the binding is decided (Algorithm 2 lines 4-7).
      rt.set_units(a.id, apps::make_big_units(*a.spec, a.batch,
                                              rt.board().params(),
                                              options_.synthesis,
                                              options_.bundle_size,
                                              options_.forced_bundle_mode));
      continue;
    }
    // Binding with Little slots (lines 11-13).
    if (little_left > 0) {
      int grant = std::min(s.optimal_little, little_left);
      s.binding = Binding::kLittle;
      s.alloc_little = grant;
      little_left -= grant;
      m_little_bindings_.add();
    }
  }

  // Redistribution of leftover Little slots (lines 14-18): runnable-queue
  // front first, up to each app's remaining-unit demand.
  if (options_.enable_redistribution && little_left > 0) {
    for (const runtime::AppRun& a : rt.apps()) {
      if (little_left <= 0) break;
      if (a.spec == nullptr || a.done()) continue;
      AppState& s = state_[a.id];
      if (s.binding != Binding::kLittle) continue;
      int delta = a.units_unfinished() - s.alloc_little;
      if (delta <= 0) continue;
      int extra = std::min(delta, little_left);
      s.alloc_little += extra;
      little_left -= extra;
      m_redistributed_.add(extra);
    }
  }
}

// --------------------------------------------------------------- Algorithm 2
void VersaSlotPolicy::schedule(runtime::BoardRuntime& rt) {
  // Schedule pending units to idle slots within each app's allocation
  // (lines 13-19). PR requests are asynchronous: in dual-core mode they are
  // queued on the PR-server core and this pass continues immediately.
  std::vector<int> idle_big = rt.idle_slots(fpga::SlotKind::kBig);
  std::vector<int> idle_little = rt.idle_slots(fpga::SlotKind::kLittle);

  auto take = [&rt](int app_id, int unit, std::vector<int>& idle) {
    int slot = rt.choose_slot(app_id, unit, idle);
    idle.erase(std::find(idle.begin(), idle.end(), slot));
    return slot;
  };

  bool placed = true;
  while (placed) {
    placed = false;
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec == nullptr || a.done()) continue;
      auto it = state_.find(a.id);
      if (it == state_.end()) continue;
      AppState& s = it->second;
      int unit = next_pending_unit(a);
      if (unit < 0) continue;
      if (s.binding == Binding::kBig && !idle_big.empty() &&
          a.units_placed() < s.alloc_big) {
        rt.request_pr(a.id, unit, take(a.id, unit, idle_big));
        placed = true;
      } else if (s.binding == Binding::kLittle && !idle_little.empty() &&
                 a.units_placed() < s.alloc_little) {
        rt.request_pr(a.id, unit, take(a.id, unit, idle_little));
        placed = true;
        s.wait_since = rt.sim().now();
      }
    }
  }

  // Refresh starvation clocks for apps that hold slots or have no work.
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done()) continue;
    auto it = state_.find(a.id);
    if (it == state_.end()) continue;
    if (a.units_placed() > 0 || next_pending_unit(a) < 0) {
      it->second.wait_since = rt.sim().now();
    }
  }
}

void VersaSlotPolicy::preempt_little(runtime::BoardRuntime& rt) {
  // Preemption applies only in Little slots (§III-C2): find the longest
  // slot-less waiter past the threshold — either a Little-bound app whose
  // slots were all taken, or an app still waiting for any binding because
  // redistribution handed every Little slot to earlier apps.
  int starving = -1;
  sim::SimTime oldest = rt.sim().now();
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done()) continue;
    auto it = state_.find(a.id);
    if (it == state_.end()) continue;
    const AppState& s = it->second;
    if (s.binding == Binding::kBig || a.units_placed() > 0) continue;
    if (next_pending_unit(a) < 0) continue;
    if (rt.sim().now() - s.wait_since < options_.starvation_threshold) {
      continue;
    }
    if (s.wait_since <= oldest) {
      oldest = s.wait_since;
      starving = a.id;
    }
  }
  if (starving < 0) return;

  // ... and take one slot from the Little-bound app holding the most.
  int victim = -1;
  int victim_held = 1;  // must hold more than one slot to be preempted
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done() || a.id == starving) continue;
    auto it = state_.find(a.id);
    if (it == state_.end() || it->second.binding != Binding::kLittle) continue;
    if (rt.sim().now() - it->second.last_preempted <
            options_.preempt_cooldown &&
        it->second.last_preempted >= 0) {
      continue;
    }
    int held = a.units_placed();
    if (held > victim_held) {
      victim_held = held;
      victim = a.id;
    }
  }
  if (victim < 0) return;

  runtime::AppRun& v = rt.app(victim);
  for (const runtime::UnitRun& u : v.units) {
    if (u.state == runtime::UnitState::kRunning && !u.item_in_flight) {
      int unit_index = static_cast<int>(&u - v.units.data());
      rt.preempt_unit(victim, unit_index);
      m_preemptions_.add();
      AppState& vs_state = state_[victim];
      vs_state.last_preempted = rt.sim().now();
      if (vs_state.alloc_little > 1) --vs_state.alloc_little;
      AppState& st = state_[starving];
      st.binding = Binding::kLittle;  // waiting apps enter the Little pool
      st.alloc_little = std::max(st.alloc_little, 1);
      std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
      int pending = next_pending_unit(rt.app(starving));
      if (!idle.empty() && pending >= 0) {
        rt.request_pr(starving, pending,
                      rt.choose_slot(starving, pending, idle));
        st.wait_since = rt.sim().now();
      }
      return;
    }
  }
}

}  // namespace vs::core
