// VersaSlot — public umbrella header.
//
// Pulls in the full public API: the simulated FPGA substrate, the
// application/benchmark model, the workload generators, the six scheduling
// systems, the cluster with live migration, and the experiment harness.
//
// Quick start:
//
//   #include "core/versaslot.h"
//   using namespace vs;
//
//   fpga::BoardParams params;
//   auto suite = apps::make_suite(params);
//   workload::WorkloadConfig wl;                       // Standard arrivals
//   auto seqs = workload::generate_sequences(wl, 1, /*seed=*/42);
//   auto result = metrics::run_single_board(
//       metrics::SystemKind::kVersaBigLittle, suite, seqs[0]);
//   std::cout << result.response.mean << " ms mean response\n";
#pragma once

#include "apps/benchmarks.h"      // IWYU pragma: export
#include "apps/bundling.h"        // IWYU pragma: export
#include "apps/offline_flow.h"    // IWYU pragma: export
#include "apps/synthesis.h"       // IWYU pragma: export
#include "apps/task.h"            // IWYU pragma: export
#include "baselines/baseline_exclusive.h"  // IWYU pragma: export
#include "baselines/dml.h"        // IWYU pragma: export
#include "baselines/fcfs.h"       // IWYU pragma: export
#include "baselines/nimblock.h"   // IWYU pragma: export
#include "baselines/round_robin.h"  // IWYU pragma: export
#include "cluster/aurora.h"       // IWYU pragma: export
#include "cluster/cluster.h"      // IWYU pragma: export
#include "core/dswitch.h"         // IWYU pragma: export
#include "core/versaslot_policy.h"  // IWYU pragma: export
#include "fpga/board.h"           // IWYU pragma: export
#include "fpga/fabric.h"          // IWYU pragma: export
#include "fpga/params.h"          // IWYU pragma: export
#include "metrics/experiment.h"   // IWYU pragma: export
#include "runtime/board_runtime.h"  // IWYU pragma: export
#include "runtime/invariants.h"   // IWYU pragma: export
#include "sim/simulator.h"        // IWYU pragma: export
#include "sim/trace.h"            // IWYU pragma: export
#include "sim/trace_export.h"     // IWYU pragma: export
#include "util/stats.h"           // IWYU pragma: export
#include "util/table.h"           // IWYU pragma: export
#include "workload/generator.h"   // IWYU pragma: export
