// The performance-degradation metric D_switch (Eq. 1) and the
// Schmitt-trigger switch loop (§III-D, Fig 4).
//
//   D_switch = (N_blocked_tasks / N_PR) · (N_apps / N_batch),  0 < D < 1
//
// The first ratio measures the PR-contention degree observed in the current
// sampling window (tasks blocked behind PCAP loads or core suspensions,
// over PR operations issued); the second estimates *future* contention from
// the candidate queue: many apps with small batches means near-worst-case
// PR conflict (N_batch == N_apps is the paper's maximum-D scenario).
//
// The metric is recomputed every `period` updates of the application
// candidate queue (arrivals and completions). The switch loop compares it
// against two user-configurable thresholds T1 > T2 with the buffer zone in
// between providing hysteresis (Schmitt trigger): crossing T1 upward
// switches Only.Little -> Big.Little; falling to T2 switches back; inside
// the buffer zone the anticipated target configuration is pre-warmed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace vs::core {

struct DSwitchSample {
  sim::SimTime time = 0;
  double value = 0.0;
  std::int64_t blocked = 0;   ///< N_blocked_tasks in the window
  std::int64_t prs = 0;       ///< N_PR in the window
  int apps = 0;               ///< N_apps in the candidate queue
  std::int64_t batch = 0;     ///< N_batch of the candidate queue
};

/// Computes one D_switch value; all clamping per Eq. (1)'s (0,1) range.
[[nodiscard]] inline double dswitch_value(std::int64_t blocked,
                                          std::int64_t prs, int apps,
                                          std::int64_t batch) noexcept {
  if (prs <= 0 || batch <= 0 || apps <= 0) return 0.0;
  double contention =
      static_cast<double>(blocked) / static_cast<double>(prs);
  double future = static_cast<double>(apps) / static_cast<double>(batch);
  return std::clamp(contention * future, 0.0, 1.0);
}

/// Windowed sampler: counts candidate-queue updates and says when to
/// recompute. Owns the sample history for Fig 8's trace.
class DSwitchMonitor {
 public:
  explicit DSwitchMonitor(int period = 4) : period_(period) {}

  /// Registers one candidate-queue update (arrival or completion).
  /// Returns true when a recomputation is due.
  bool on_queue_update() {
    ++updates_;
    if (updates_ >= period_) {
      updates_ = 0;
      return true;
    }
    return false;
  }

  void record(DSwitchSample sample) { trace_.push_back(sample); }

  [[nodiscard]] const std::vector<DSwitchSample>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] double last() const noexcept {
    return trace_.empty() ? 0.0 : trace_.back().value;
  }
  [[nodiscard]] int period() const noexcept { return period_; }

 private:
  int period_;
  int updates_ = 0;
  std::vector<DSwitchSample> trace_;
};

/// Schmitt-trigger state machine over the D_switch signal.
class SwitchLoop {
 public:
  enum class Config { kOnlyLittle, kBigLittle };
  enum class Action { kNone, kPrewarmBigLittle, kPrewarmOnlyLittle,
                      kSwitchToBigLittle, kSwitchToOnlyLittle };

  SwitchLoop(double t1, double t2,
             Config initial = Config::kOnlyLittle) noexcept
      : t1_(t1), t2_(t2), config_(initial) {}

  /// Feeds one D_switch sample; returns the action the cluster must take.
  [[nodiscard]] Action feed(double d) noexcept {
    if (config_ == Config::kOnlyLittle) {
      if (d >= t1_) {
        config_ = Config::kBigLittle;
        return Action::kSwitchToBigLittle;
      }
      if (d > t2_) return Action::kPrewarmBigLittle;  // buffer zone, rising
    } else {
      if (d <= t2_) {
        config_ = Config::kOnlyLittle;
        return Action::kSwitchToOnlyLittle;
      }
      if (d < t1_) return Action::kPrewarmOnlyLittle;  // buffer zone, falling
    }
    return Action::kNone;
  }

  [[nodiscard]] Config config() const noexcept { return config_; }
  [[nodiscard]] double t1() const noexcept { return t1_; }
  [[nodiscard]] double t2() const noexcept { return t2_; }

 private:
  double t1_;
  double t2_;
  Config config_;
};

}  // namespace vs::core
