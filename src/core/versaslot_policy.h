// The VersaSlot scheduling policy — the paper's core contribution.
//
// Implements Algorithm 1 (slot allocation: primary allocation with
// Big-slot-first binding, redistribution of leftover Little slots, and
// rebinding of not-yet-started Little apps when Big slots free up) and
// Algorithm 2 (scheduling: online 3-in-1 bundling for Big-bound apps,
// batch-execution launching decoupled from PR, asynchronous PR dispatch to
// the dedicated PR-server core, per-app slot caps, and preemption only in
// Little slots).
//
// Runs in two modes mirroring the paper's two fabric configurations:
//  - kBigLittle: heterogeneous slots, bundling, rebinding, redistribution.
//  - kOnlyLittle: uniform slots with dual-core scheduling, same-app task
//    pre-loading and Nimblock-style preemption (the paper's Only.Little
//    VersaSlot variant).
//
// Every design knob is an option so the ablation benches can switch the
// paper's individual mechanisms off.
#pragma once

#include <unordered_map>

#include "apps/bundling.h"
#include "apps/synthesis.h"
#include "obs/metrics.h"
#include "runtime/policy.h"
#include "sim/time.h"

namespace vs::core {

struct VersaSlotOptions {
  enum class Mode { kBigLittle, kOnlyLittle };
  Mode mode = Mode::kBigLittle;

  bool dual_core = true;            ///< PR server on the second core
  bool enable_redistribution = true;
  bool enable_rebinding = true;
  int bundle_size = 3;              ///< tasks per Big-slot bundle
  /// Ablation: override the runtime serial/parallel bundle selection.
  std::optional<apps::BundleMode> forced_bundle_mode;

  /// Little-slot preemption (Big-bound apps are never preempted).
  sim::SimDuration starvation_threshold = sim::ms(200.0);
  sim::SimDuration preempt_cooldown = sim::ms(100.0);

  apps::SynthesisModel synthesis;   ///< for bundle fit checks
};

class VersaSlotPolicy : public runtime::SchedulerPolicy {
 public:
  explicit VersaSlotPolicy(VersaSlotOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const override {
    return options_.mode == VersaSlotOptions::Mode::kBigLittle
               ? "VersaSlot-BL"
               : "VersaSlot-OL";
  }

  [[nodiscard]] bool dual_core() const override { return options_.dual_core; }

  void on_app_submitted(runtime::BoardRuntime& rt, int app_id) override;
  void on_pass(runtime::BoardRuntime& rt) override;
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& board) override;

  /// Binding state, exposed for tests and the ablation benches.
  enum class Binding { kWaiting, kBig, kLittle };
  [[nodiscard]] Binding binding(int app_id) const {
    auto it = state_.find(app_id);
    return it != state_.end() ? it->second.binding : Binding::kWaiting;
  }
  [[nodiscard]] const VersaSlotOptions& options() const noexcept {
    return options_;
  }

 private:
  struct AppState {
    Binding binding = Binding::kWaiting;
    int alloc_big = 0;
    int alloc_little = 0;
    int optimal_big = 0;
    int optimal_little = 0;
    bool bundle_checked = false;
    bool bundleable = false;
    sim::SimTime wait_since = 0;
    sim::SimTime last_preempted = -1;
  };

  void allocate(runtime::BoardRuntime& rt);   ///< Algorithm 1
  void schedule(runtime::BoardRuntime& rt);   ///< Algorithm 2
  void preempt_little(runtime::BoardRuntime& rt);

  [[nodiscard]] bool can_bundle_cached(runtime::BoardRuntime& rt, int app_id);

  VersaSlotOptions options_;
  std::unordered_map<int, AppState> state_;

  // Telemetry: Algorithm 1/2 decision outcomes (no-ops until bound).
  obs::CounterHandle m_big_bindings_;     ///< vs_policy_big_bindings_total
  obs::CounterHandle m_little_bindings_;  ///< vs_policy_little_bindings_total
  obs::CounterHandle m_bundles_;          ///< vs_policy_bundle_hits_total
  obs::CounterHandle m_rebindings_;       ///< vs_policy_rebindings_total
  obs::CounterHandle m_redistributed_;    ///< vs_policy_redistributed_slots_total
  obs::CounterHandle m_preemptions_;      ///< vs_policy_preemptions_total
};

}  // namespace vs::core
