#include "baselines/round_robin.h"

#include <algorithm>

namespace vs::baselines {

void RoundRobinPolicy::on_pass(runtime::BoardRuntime& rt) {
  // Coyote-style round-robin: like FCFS each application runs its tasks
  // sequentially through one Little slot, but free slots are offered to
  // applications in cyclic order, so late arrivals are not starved by a
  // long head-of-line application.
  std::vector<int> order = live_apps(rt);
  if (order.empty()) return;
  std::size_t start = cursor_ % order.size();
  std::rotate(order.begin(),
              order.begin() + static_cast<std::ptrdiff_t>(start),
              order.end());

  std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
  int granted = 0;
  for (int id : order) {
    if (idle.empty()) break;
    runtime::AppRun& app = rt.app(id);
    if (app.units_placed() >= 1) continue;
    int unit = next_pending_unit(app);
    if (unit < 0) continue;
    rt.request_pr(id, unit, take_slot(rt, id, unit, idle));
    ++granted;
  }
  cursor_ += static_cast<std::size_t>(granted) + 1;
}

}  // namespace vs::baselines
