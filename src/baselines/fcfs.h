// First-come-first-served spatio-temporal sharing: uniform Little slots,
// per-app ILP-optimal slot counts, free slots always offered to the
// earliest-arrived app first, no preemption, single-core scheduling (PR
// loads suspend the scheduler core).
#pragma once

#include "baselines/policy_common.h"
#include "runtime/policy.h"

namespace vs::baselines {

class FcfsPolicy final : public runtime::SchedulerPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "FCFS"; }

  void on_app_submitted(runtime::BoardRuntime&, int) override {}

  void on_pass(runtime::BoardRuntime& rt) override;

 private:
  LittleAllocCache alloc_;
};

}  // namespace vs::baselines
