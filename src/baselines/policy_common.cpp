#include "baselines/policy_common.h"

#include <algorithm>

#include "apps/bundling.h"

namespace vs::baselines {

int LittleAllocCache::get(runtime::BoardRuntime& rt,
                          const runtime::AppRun& app) {
  auto it = cache_.find(app.id);
  if (it != cache_.end()) return it->second;
  int total_little =
      rt.board().count_slots(fpga::SlotKind::kLittle);
  int alloc = apps::optimal_little_slots(*app.spec, app.batch,
                                         rt.board().params(), total_little);
  cache_.emplace(app.id, alloc);
  return alloc;
}

int next_pending_unit(const runtime::AppRun& app) {
  for (const runtime::UnitRun& u : app.units) {
    if (u.state == runtime::UnitState::kPending) {
      return static_cast<int>(&u - app.units.data());
    }
  }
  return -1;
}

bool has_pending_units(const runtime::AppRun& app) {
  return next_pending_unit(app) >= 0;
}

std::vector<int> live_apps(const runtime::BoardRuntime& rt) {
  std::vector<int> out;
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec != nullptr && !a.done()) out.push_back(a.id);
  }
  return out;
}

int take_slot(runtime::BoardRuntime& rt, int app_id, int unit,
              std::vector<int>& idle) {
  int slot = rt.choose_slot(app_id, unit, idle);
  idle.erase(std::find(idle.begin(), idle.end(), slot));
  return slot;
}

void grant_little_slots(runtime::BoardRuntime& rt,
                        const std::vector<int>& app_order,
                        const std::unordered_map<int, int>& caps,
                        bool one_per_app) {
  std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
  bool placed_any = true;
  while (placed_any && !idle.empty()) {
    placed_any = false;
    for (int app_id : app_order) {
      if (idle.empty()) break;
      runtime::AppRun& app = rt.app(app_id);
      if (app.spec == nullptr || app.done()) continue;
      auto cap_it = caps.find(app_id);
      int cap = cap_it != caps.end() ? cap_it->second : 1;
      if (app.units_placed() >= cap) continue;
      int unit = next_pending_unit(app);
      if (unit < 0) continue;
      rt.request_pr(app_id, unit, take_slot(rt, app_id, unit, idle));
      placed_any = true;
    }
    if (one_per_app) break;  // a single round only
  }
}

}  // namespace vs::baselines
