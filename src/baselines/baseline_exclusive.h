// Traditional exclusive temporal multiplexing (the paper's "Baseline",
// refs [7], [16]: AWS F1 / Catapult style): the whole FPGA is allocated to
// one application at a time; switching applications requires a full fabric
// reconfiguration (large monolithic bitstream plus system re-init). The
// application's entire pipeline is spatially mapped, so it runs PR-free once
// loaded; everything else queues.
#pragma once

#include "runtime/policy.h"

namespace vs::baselines {

class BaselineExclusivePolicy final : public runtime::SchedulerPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "Baseline"; }

  void on_app_submitted(runtime::BoardRuntime&, int) override {}

  void on_pass(runtime::BoardRuntime& rt) override;
};

}  // namespace vs::baselines
