// Round-robin spatio-temporal sharing (Coyote-style, ref [22]): free slots
// are offered to live applications in cyclic order, one placement per app
// per round, so no application monopolises the fabric even without
// preemption. Single-core scheduling.
#pragma once

#include "baselines/policy_common.h"
#include "runtime/policy.h"

namespace vs::baselines {

class RoundRobinPolicy final : public runtime::SchedulerPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "RR"; }

  void on_app_submitted(runtime::BoardRuntime&, int) override {}

  void on_pass(runtime::BoardRuntime& rt) override;

 private:
  LittleAllocCache alloc_;
  std::size_t cursor_ = 0;
};

}  // namespace vs::baselines
