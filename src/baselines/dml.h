// DML-style scheduling (IEEE TC 2022, ref [14] of the paper): dynamic
// partial reconfiguration with scalable task scheduling.
//
// DML introduced the ILP-based optimal slot-count allocation that Nimblock
// and VersaSlot both reuse. Compared to our Nimblock model it runs strict
// FIFO admission with *backfilling* (an app that cannot get its optimal
// allocation is skipped rather than blocking the queue), no preemption and
// no priority reordering — and, like all pre-VersaSlot systems, single-core
// scheduling where PCAP loads suspend the scheduler.
//
// Not part of the paper's Fig 5/6 comparison set; provided as an extension
// system (bench/ext_dml_comparison) because the paper builds directly on
// its allocation scheme.
#pragma once

#include "baselines/policy_common.h"
#include "runtime/policy.h"

namespace vs::baselines {

class DmlPolicy final : public runtime::SchedulerPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "DML"; }

  void on_app_submitted(runtime::BoardRuntime&, int) override {}

  void on_pass(runtime::BoardRuntime& rt) override;

 private:
  LittleAllocCache alloc_;
};

}  // namespace vs::baselines
