// Nimblock-style scheduling (ISCA'23, ref [15]) — the paper's
// state-of-the-art comparison point.
//
// Uniform Little slots, ILP-optimal per-app slot counts, priority scheduling
// by shortest estimated remaining work, and preemption at batch-item
// boundaries so long-running applications cannot monopolise the fabric.
// Crucially, Nimblock runs everything on a single CPU core: every PCAP load
// suspends the scheduler, so batch launches and further PRs queue behind
// in-flight reconfigurations — the contention/blocking behaviour Fig 2 of
// the VersaSlot paper illustrates.
#pragma once

#include <unordered_map>

#include "baselines/policy_common.h"
#include "runtime/policy.h"
#include "sim/time.h"

namespace vs::baselines {

struct NimblockOptions {
  /// A starving app (no slots held) triggers preemption after waiting this
  /// long, mirroring Nimblock's slice-based yielding.
  sim::SimDuration starvation_threshold = sim::ms(2000.0);
  /// Cooldown between preemptions of the same victim app.
  sim::SimDuration preempt_cooldown = sim::ms(1000.0);
};

class NimblockPolicy : public runtime::SchedulerPolicy {
 public:
  explicit NimblockPolicy(NimblockOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const override { return "Nimblock"; }

  void on_app_submitted(runtime::BoardRuntime& rt, int app_id) override;
  void on_pass(runtime::BoardRuntime& rt) override;

 protected:
  /// Priority key: estimated remaining work, smaller = runs first.
  [[nodiscard]] sim::SimDuration remaining_estimate(
      runtime::BoardRuntime& rt, const runtime::AppRun& app);

  void maybe_preempt(runtime::BoardRuntime& rt,
                     const std::vector<int>& priority_order);

  NimblockOptions options_;
  LittleAllocCache alloc_;
  std::unordered_map<int, sim::SimTime> wait_since_;
  std::unordered_map<int, sim::SimTime> last_preempted_;
};

}  // namespace vs::baselines
