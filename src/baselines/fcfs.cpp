#include "baselines/fcfs.h"

namespace vs::baselines {

void FcfsPolicy::on_pass(runtime::BoardRuntime& rt) {
  // Naive first-come-first-served spatio-temporal sharing: each application
  // occupies a single Little slot and its tasks are swapped through it
  // sequentially (one PR per task). Multi-slot pipeline execution is the
  // later contribution of Nimblock/VersaSlot — this policy predates it.
  // Free slots go to the earliest-arrived waiting application.
  std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
  for (int id : live_apps(rt)) {
    if (idle.empty()) break;
    runtime::AppRun& app = rt.app(id);
    if (app.units_placed() >= 1) continue;
    int unit = next_pending_unit(app);
    if (unit < 0) continue;
    rt.request_pr(id, unit, take_slot(rt, id, unit, idle));
  }
}

}  // namespace vs::baselines
