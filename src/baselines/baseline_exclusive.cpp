#include "baselines/baseline_exclusive.h"

#include "runtime/board_runtime.h"

namespace vs::baselines {

void BaselineExclusivePolicy::on_pass(runtime::BoardRuntime& rt) {
  // Fabric is busy while any started app is unfinished.
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec != nullptr && a.started && !a.done()) return;
  }
  // Admit the earliest waiting app (FCFS over the exclusive device).
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec != nullptr && !a.started && !a.done()) {
      rt.request_full_reconfig(a.id);
      return;
    }
  }
}

}  // namespace vs::baselines
