#include "baselines/nimblock.h"

#include <algorithm>

#include "apps/bundling.h"

namespace vs::baselines {

void NimblockPolicy::on_app_submitted(runtime::BoardRuntime& rt, int app_id) {
  wait_since_[app_id] = rt.sim().now();
}

sim::SimDuration NimblockPolicy::remaining_estimate(
    runtime::BoardRuntime& rt, const runtime::AppRun& app) {
  int k = alloc_.get(rt, const_cast<runtime::AppRun&>(app));
  sim::SimDuration full = apps::estimate_little_makespan(
      *app.spec, app.batch, k, rt.board().params());
  // Scale by the fraction of batch-items still outstanding.
  std::int64_t total_items =
      static_cast<std::int64_t>(app.units.size()) * app.batch;
  std::int64_t done_items = 0;
  for (const runtime::UnitRun& u : app.units) done_items += u.items_done;
  if (total_items == 0) return full;
  return full * (total_items - done_items) / total_items;
}

void NimblockPolicy::on_pass(runtime::BoardRuntime& rt) {
  std::vector<int> order = live_apps(rt);
  if (order.empty()) return;

  // Priority: shortest estimated remaining work first; FIFO tie-break is
  // implicit via stable_sort over submission order.
  std::vector<std::pair<sim::SimDuration, int>> keyed;
  keyed.reserve(order.size());
  for (int id : order) {
    keyed.emplace_back(remaining_estimate(rt, rt.app(id)), id);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> priority_order;
  priority_order.reserve(keyed.size());
  for (const auto& [est, id] : keyed) priority_order.push_back(id);

  // Dynamic slot allocation: under contention the per-app slot count is
  // shrunk toward the fair share, trading pipeline depth for throughput
  // (Nimblock's adaptive virtual-block sizing).
  int total_little = rt.board().count_slots(fpga::SlotKind::kLittle);
  int contenders = 0;
  for (int id : order) {
    if (has_pending_units(rt.app(id))) ++contenders;
  }
  int fair_share =
      contenders > 0 ? std::max(1, total_little / contenders) : total_little;
  std::unordered_map<int, int> caps;
  for (int id : priority_order) {
    caps[id] = std::min(alloc_.get(rt, rt.app(id)), fair_share);
  }
  grant_little_slots(rt, priority_order, caps);

  // Track how long apps with pending work have been slot-less.
  for (int id : priority_order) {
    const runtime::AppRun& a = rt.app(id);
    if (a.units_placed() > 0 || !has_pending_units(a)) {
      wait_since_[id] = rt.sim().now();
    }
  }
  maybe_preempt(rt, priority_order);
}

void NimblockPolicy::maybe_preempt(runtime::BoardRuntime& rt,
                                   const std::vector<int>& priority_order) {
  // Find the highest-priority starving app.
  int starving = -1;
  for (int id : priority_order) {
    const runtime::AppRun& a = rt.app(id);
    if (a.units_placed() == 0 && has_pending_units(a) &&
        rt.sim().now() - wait_since_[id] >= options_.starvation_threshold) {
      starving = id;
      break;
    }
  }
  if (starving < 0) return;

  // Victim: the lowest-priority app holding more than one slot, not
  // recently preempted, with a unit at an item boundary.
  for (auto it = priority_order.rbegin(); it != priority_order.rend(); ++it) {
    int victim = *it;
    if (victim == starving) continue;
    runtime::AppRun& v = rt.app(victim);
    if (v.units_placed() <= 1) continue;
    auto lp = last_preempted_.find(victim);
    if (lp != last_preempted_.end() &&
        rt.sim().now() - lp->second < options_.preempt_cooldown) {
      continue;
    }
    for (const runtime::UnitRun& u : v.units) {
      if (u.state == runtime::UnitState::kRunning && !u.item_in_flight) {
        int unit_index = static_cast<int>(&u - v.units.data());
        rt.preempt_unit(victim, unit_index);
        last_preempted_[victim] = rt.sim().now();
        // The freed slot goes to the starving app immediately.
        std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
        int pending = next_pending_unit(rt.app(starving));
        if (!idle.empty() && pending >= 0) {
          rt.request_pr(starving, pending,
                        rt.choose_slot(starving, pending, idle));
          wait_since_[starving] = rt.sim().now();
        }
        return;  // at most one preemption per pass
      }
    }
  }
}

}  // namespace vs::baselines
