#include "baselines/dml.h"

namespace vs::baselines {

void DmlPolicy::on_pass(runtime::BoardRuntime& rt) {
  // FIFO with backfilling: walk apps in arrival order; running apps top up
  // within their optimal allocation; a waiting app starts only if its full
  // optimal allocation is available *right now*, otherwise it is skipped
  // and later apps may backfill the remaining slots.
  std::vector<int> idle = rt.idle_slots(fpga::SlotKind::kLittle);
  for (int id : live_apps(rt)) {
    if (idle.empty()) break;
    runtime::AppRun& app = rt.app(id);
    int cap = alloc_.get(rt, app);
    if (app.started) {
      while (app.units_placed() < cap && !idle.empty()) {
        int unit = next_pending_unit(app);
        if (unit < 0) break;
        rt.request_pr(id, unit, take_slot(rt, id, unit, idle));
      }
      continue;
    }
    if (!has_pending_units(app)) continue;
    int want = std::min(cap, app.units_unfinished());
    if (static_cast<int>(idle.size()) < want) continue;  // backfill
    for (int i = 0; i < want; ++i) {
      int unit = next_pending_unit(app);
      if (unit < 0) break;
      rt.request_pr(id, unit, take_slot(rt, id, unit, idle));
    }
  }
}

}  // namespace vs::baselines
