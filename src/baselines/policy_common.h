// Shared machinery for the slot-sharing comparison policies (FCFS,
// Round-Robin, Nimblock, VersaSlot Only.Little): per-app optimal Little-slot
// allocations and in-order placement of pending pipeline units into free
// slots.
#pragma once

#include <unordered_map>
#include <vector>

#include "runtime/board_runtime.h"

namespace vs::baselines {

/// Cached per-app ILP-optimal Little-slot count (the O^L of the papers).
class LittleAllocCache {
 public:
  int get(runtime::BoardRuntime& rt, const runtime::AppRun& app);
  void forget(int app_id) { cache_.erase(app_id); }

 private:
  std::unordered_map<int, int> cache_;
};

/// Index of the lowest pending unit of `app` (pipeline order), or -1.
[[nodiscard]] int next_pending_unit(const runtime::AppRun& app);

/// True if the app still has work that needs a slot.
[[nodiscard]] bool has_pending_units(const runtime::AppRun& app);

/// Grants idle Little slots to apps in the given order: each app may place
/// pending units (in pipeline order) until it reaches its `cap` placed
/// units or slots run out. `one_per_app` makes a single placement per app
/// per call (round-robin fairness).
void grant_little_slots(runtime::BoardRuntime& rt,
                        const std::vector<int>& app_order,
                        const std::unordered_map<int, int>& caps,
                        bool one_per_app = false);

/// Apps that are live on the board (admitted, not finished, not migrated).
[[nodiscard]] std::vector<int> live_apps(const runtime::BoardRuntime& rt);

/// Picks the best slot for (app, unit) out of `idle` — preferring one whose
/// bitstream is already staged — and removes it from the list.
int take_slot(runtime::BoardRuntime& rt, int app_id, int unit,
              std::vector<int>& idle);

}  // namespace vs::baselines
