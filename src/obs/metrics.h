// Simulation-wide telemetry instruments.
//
// A MetricsRegistry owns typed Counter / Gauge / Histogram cells identified
// by a stable name plus label pairs (Prometheus conventions: counters end in
// `_total`, names are snake_case, labels carry dimensions such as the board
// or core). Registration may allocate; *updates never do* — an update is an
// integer add, a double store, or a bucket increment on a pre-resolved cell.
//
// Instrumented components hold null-by-default handles (CounterHandle,
// GaugeHandle, HistogramHandle) rather than cells: with no registry bound a
// hot-path update is a single predictable-not-taken branch, which keeps the
// event kernel's zero-allocation contract and its event rate intact
// (BM_MetricsOverhead in bench/micro_substrate.cpp pins both). Binding a
// registry (`bind_metrics` on each component) resolves the handles once.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vs::obs {

/// Label dimensions attached to an instrument, e.g. {{"board", "fpga0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer (events, bytes, nanoseconds).
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Point-in-time value (queue depth, D_switch level). The Sampler records
/// gauge time series at simulated-time intervals.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: ascending upper bounds chosen at registration
/// plus an implicit +Inf overflow bucket. observe() is O(log buckets) with
/// no allocation. Quantiles are estimated Prometheus-style by linear
/// interpolation inside the containing bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Upper bounds, ascending; the overflow bucket is not listed.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  /// Estimated q-quantile (q in [0,1]); 0 for an empty histogram. Values in
  /// the overflow bucket resolve to the observed maximum.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Latency buckets in milliseconds spanning 10 us .. 30 s, roughly
/// logarithmic — wide enough for PCAP waits and whole-app response times.
[[nodiscard]] std::vector<double> default_ms_bounds();

/// Latency buckets in milliseconds spanning 1 us .. 1 s, roughly
/// logarithmic — for sub-millisecond events such as pre-copy stop-and-copy
/// downtime, which default_ms_bounds() lumps into its bottom bucket.
[[nodiscard]] std::vector<double> default_sub_ms_bounds();

/// Count buckets spanning 1 .. 1000, roughly logarithmic — for discrete
/// volumes such as items restored from a checkpoint or queue depths.
[[nodiscard]] std::vector<double> default_count_bounds();

// ---------------------------------------------------------------- handles
// Null-by-default views instrumented components store. Updates through a
// default-constructed handle are no-ops costing one branch; no allocation
// either way.

class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* cell) : cell_(cell) {}
  void add(std::int64_t n = 1) const noexcept {
    if (cell_) cell_->add(n);
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return cell_ != nullptr;
  }

 private:
  Counter* cell_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* cell) : cell_(cell) {}
  void set(double v) const noexcept {
    if (cell_) cell_->set(v);
  }
  void add(double d) const noexcept {
    if (cell_) cell_->add(d);
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return cell_ != nullptr;
  }

 private:
  Gauge* cell_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* cell) : cell_(cell) {}
  void observe(double v) const noexcept {
    if (cell_) cell_->observe(v);
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return cell_ != nullptr;
  }

 private:
  Histogram* cell_ = nullptr;
};

// --------------------------------------------------------------- registry

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the cell for (name, labels), creating it on first request —
  /// re-binding the same instrument (cluster epochs reusing a board) gets
  /// the same cell, so counts accumulate across bindings. Cell addresses
  /// are stable for the registry's lifetime.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// `bounds` apply on first registration only.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {});

  template <typename Cell>
  struct Row {
    std::string name;
    Labels labels;
    Cell cell;
    Row(std::string n, Labels l, Cell c)
        : name(std::move(n)), labels(std::move(l)), cell(std::move(c)) {}
  };

  /// Rows in registration order (exporters and the Sampler iterate these).
  [[nodiscard]] const std::deque<Row<Counter>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::deque<Row<Gauge>>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::deque<Row<Histogram>>& histograms()
      const noexcept {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Lookup without creation; nullptr when the instrument does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;

  /// Canonical identity, e.g. `vs_pcap_loads_total{board="fpga0"}`; bare
  /// name when there are no labels. Used as the series key everywhere
  /// (index, JSONL, dashboard).
  [[nodiscard]] static std::string full_name(const std::string& name,
                                             const Labels& labels);

 private:
  std::deque<Row<Counter>> counters_;
  std::deque<Row<Gauge>> gauges_;
  std::deque<Row<Histogram>> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
};

}  // namespace vs::obs
