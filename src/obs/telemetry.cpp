#include "obs/telemetry.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/cli.h"

namespace vs::obs {
namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open metrics output file " + path);
  }
  return out;
}

}  // namespace

Telemetry::Telemetry(sim::SimDuration sample_interval)
    : sampler_(registry_, sample_interval) {}

void Telemetry::write_outputs(const std::string& prefix) const {
  {
    auto out = open_or_throw(prefix + ".prom");
    write_prometheus(registry_, out);
  }
  {
    auto out = open_or_throw(prefix + ".jsonl");
    write_timeseries_jsonl(sampler_, registry_, out);
  }
  {
    auto out = open_or_throw(prefix + ".report.json");
    write_run_report(registry_, info_, &sampler_, out);
  }
}

namespace {

std::string resolve_out(const util::CliArgs* args, const char* flag,
                        const char* env_var) {
  if (args != nullptr && args->has(flag)) return args->get(flag);
  if (const char* env = std::getenv(env_var);
      env != nullptr && *env != '\0') {
    return env;
  }
  return {};
}

}  // namespace

std::string resolve_metrics_out(const util::CliArgs* args) {
  return resolve_out(args, "metrics-out", "VS_METRICS");
}

std::string resolve_trace_out(const util::CliArgs* args) {
  return resolve_out(args, "trace-out", "VS_TRACE");
}

std::string resolve_journal_out(const util::CliArgs* args) {
  return resolve_out(args, "journal-out", "VS_JOURNAL");
}

}  // namespace vs::obs
