// Cluster-wide causal observability: one canonical timeline across boards.
//
// A ClusterTraceHub owns one TraceChannel per event source (each board plus
// the cluster coordinator). Channels collect two kinds of records:
//
//  - flow points — "s"/"t"/"f" Chrome-trace flow events stitching causal
//    chains that cross boards (pre-copy round N → stop-and-copy → resume on
//    the destination; crash → detection → evacuation → readmission;
//    checkpoint base → delta chain → restore),
//  - journal records — structured app-lifecycle events (admit, bind,
//    preempt, checkpoint, migrate, crash, restore, shed, complete) written
//    as JSONL for postmortem replay of any fig5–8 / fault-resilience run.
//
// The hub also aggregates every board's sim::TraceRecorder span log and
// renders the whole cluster as a single Chrome trace: one process per board
// (pid = attach order), one thread per lane, plus the flow events above.
//
// Thread-safety contract (mirrors the sharded kernel's): each channel is
// written only by its owning board's shard; channels are created only during
// coordinator serial phases; storage is a deque so creation never moves
// existing channels. Merging for export happens after the run, serially, and
// uses a canonical (time, channel index, append order) sort so serial and
// sharded kernels emit byte-identical files.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"
#include "sim/trace.h"

namespace vs::obs {

/// App-lifecycle events recorded in the run journal.
enum class JournalEvent {
  kAdmit,       ///< app accepted by a board runtime
  kBind,        ///< unit bound to a slot (PR issued)
  kPreempt,     ///< running unit preempted from its slot
  kCheckpoint,  ///< checkpoint base or delta captured to DDR
  kComplete,    ///< all batch items finished; response time closed
  kMigrate,     ///< app extracted for a migration transfer
  kCrash,       ///< board crash (journalled once per crash, app = -1)
  kRestore,     ///< app re-admitted from migrated / checkpointed state
  kShed,        ///< app dropped because no capacity survived recovery
  kReadmit,     ///< deferred app re-entered admission after a reboot
};

[[nodiscard]] const char* to_string(JournalEvent e) noexcept;
/// Inverse of to_string; returns false when `name` is not a journal event.
[[nodiscard]] bool journal_event_from_string(const std::string& name,
                                             JournalEvent& out) noexcept;

/// Position of a point within a causal flow arrow chain.
enum class FlowPhase {
  kStart,  ///< Chrome "s" — origin of the flow
  kStep,   ///< Chrome "t" — intermediate hop
  kEnd,    ///< Chrome "f" — terminus (binds to the enclosing slice end)
};

/// One hop of a causal flow, pinned to a (board, lane) at a sim time.
struct FlowPoint {
  std::uint64_t id = 0;  ///< flow identity; all hops of a chain share it
  FlowPhase phase = FlowPhase::kStep;
  sim::SimTime time = 0;
  std::string board;  ///< process the point renders under
  std::string lane;   ///< thread the point renders under
  std::string name;   ///< e.g. "migration", "crash-evac", "ckpt app3"
};

/// One structured lifecycle record. Fields with their listed defaults are
/// omitted from the JSONL encoding.
struct JournalRecord {
  sim::SimTime time = 0;
  JournalEvent event = JournalEvent::kAdmit;
  std::string board;
  int app = -1;           ///< app id; -1 for board-scope events
  std::string spec;       ///< app spec name
  std::uint64_t flow = 0; ///< causal flow id tying the record to the trace
  std::string detail;     ///< free-form context ("slot L2 unit 1", ...)
};

class ClusterTraceHub;

/// Per-source append log. Obtained from ClusterTraceHub::channel(); written
/// only by the owning source's execution context.
class TraceChannel {
 public:
  [[nodiscard]] bool trace_on() const noexcept;
  [[nodiscard]] bool journal_on() const noexcept;

  /// Fresh cluster-unique flow id (namespaced by channel, so concurrent
  /// shards never collide and ids are deterministic across kernels).
  [[nodiscard]] std::uint64_t new_flow_id() noexcept {
    return (static_cast<std::uint64_t>(index_ + 1) << 32) | ++flow_seq_;
  }

  void flow(std::uint64_t id, FlowPhase phase, sim::SimTime time,
            std::string board, std::string lane, std::string name) {
    flows_.push_back(FlowPoint{id, phase, time, std::move(board),
                               std::move(lane), std::move(name)});
  }

  void journal(sim::SimTime time, JournalEvent event, std::string board,
               int app = -1, std::string spec = {}, std::uint64_t flow = 0,
               std::string detail = {}) {
    journal_.push_back(JournalRecord{time, event, std::move(board), app,
                                     std::move(spec), flow,
                                     std::move(detail)});
  }

  [[nodiscard]] const std::vector<FlowPoint>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] const std::vector<JournalRecord>& journal() const noexcept {
    return journal_;
  }

 private:
  friend class ClusterTraceHub;
  TraceChannel(const ClusterTraceHub* hub, std::size_t index)
      : hub_(hub), index_(index) {}

  const ClusterTraceHub* hub_;
  std::size_t index_;
  std::uint64_t flow_seq_ = 0;
  std::vector<FlowPoint> flows_;
  std::vector<JournalRecord> journal_;
};

/// Aggregation point for one run's cross-board observability. Opt-in: with
/// neither trace nor journal enabled the hub is inert and instrumented
/// components skip all string building.
class ClusterTraceHub {
 public:
  ClusterTraceHub() = default;
  ClusterTraceHub(const ClusterTraceHub&) = delete;
  ClusterTraceHub& operator=(const ClusterTraceHub&) = delete;

  void enable_trace(bool on = true) noexcept { trace_ = on; }
  void enable_journal(bool on = true) noexcept { journal_ = on; }
  [[nodiscard]] bool trace_enabled() const noexcept { return trace_; }
  [[nodiscard]] bool journal_enabled() const noexcept { return journal_; }

  /// Channel for a named source, created on first request. Call only from
  /// coordinator serial phases (channel creation is not thread-safe; use of
  /// an existing channel by its owner is).
  TraceChannel& channel(const std::string& name);

  /// Registers a board's span recorder for the merged Chrome trace. Boards
  /// get process ids in first-attach order; a board re-attached across
  /// epochs (fresh recorder per epoch) keeps its pid, and every attached
  /// recorder's spans merge into that process's timeline.
  void attach_spans(const std::string& board, const sim::TraceRecorder* rec);

  /// Snapshots every attached recorder's spans and dropped count into
  /// hub-owned storage and forgets the recorder pointers. The run harness
  /// calls this before tearing the board runtimes down, so exports remain
  /// valid after the run returns. Recorders attached later append as usual.
  void seal();

  /// Chrome trace-event JSON: span "X" events per board process, metadata
  /// ("process_name", per-lane "thread_name", "vs_dropped_spans" with each
  /// board's capacity-bound losses), and "s"/"t"/"f" flow events.
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace_file(const std::string& path) const;

  /// Run journal as JSONL, one record per line, in canonical merged order.
  void write_journal(std::ostream& out) const;
  void write_journal_file(const std::string& path) const;

  /// All channels' journal records in canonical merged order
  /// (time, then channel creation order, then append order).
  [[nodiscard]] std::vector<JournalRecord> merged_journal() const;
  /// All channels' flow points in the same canonical order.
  [[nodiscard]] std::vector<FlowPoint> merged_flows() const;

 private:
  bool trace_ = false;
  bool journal_ = false;
  std::deque<TraceChannel> channels_;
  std::map<std::string, TraceChannel*> channel_index_;
  std::vector<std::string> board_order_;  ///< pid = index + 1
  std::map<std::string, std::vector<const sim::TraceRecorder*>> recorders_;
  std::map<std::string, std::vector<sim::Span>> sealed_spans_;
  std::map<std::string, std::uint64_t> sealed_dropped_;
};

/// Parses JSONL produced by write_journal back into records (round-trip
/// helper for tests and postmortem tooling). Lines that are not journal
/// records are skipped.
[[nodiscard]] std::vector<JournalRecord> parse_journal(std::istream& in);

}  // namespace vs::obs
