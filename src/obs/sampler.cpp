#include "obs/sampler.h"

#include <cassert>

#include "sim/simulator.h"

namespace vs::obs {

Sampler::Sampler(MetricsRegistry& registry, sim::SimDuration interval)
    : registry_(&registry), interval_(interval) {
  assert(interval > 0 && "sampling interval must be positive");
}

void Sampler::start(sim::Simulator& sim) {
  sim_ = &sim;
  sim.schedule(interval_, [this] { tick(); });
}

void Sampler::sample_now(sim::SimTime now) {
  Snapshot snap;
  snap.time = now;
  snap.gauge_count = registry_->gauges().size();
  snap.values.reserve(snap.gauge_count + registry_->counters().size());
  for (const auto& row : registry_->gauges()) {
    snap.values.push_back(row.cell.value());
  }
  for (const auto& row : registry_->counters()) {
    snap.values.push_back(static_cast<double>(row.cell.value()));
  }
  snapshots_.push_back(std::move(snap));
}

void Sampler::tick() {
  sample_now(sim_->now());
  // Re-arm only while the simulation still has work: the queue is examined
  // after this event was popped, so no pending work here means the run is
  // over. work_pending() (not idle()) so that under the sharded kernel a
  // momentarily-drained coordinator queue keeps sampling while shard queues
  // still hold events — serial and sharded runs then emit identical tick
  // sequences.
  if (sim_->work_pending()) {
    sim_->schedule(interval_, [this] { tick(); });
  }
}

}  // namespace vs::obs
