#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace vs::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound admits v; the end() position is the
  // overflow bucket.
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (rank >= count_) rank = count_ - 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (rank < cumulative) {
      if (i >= bounds_.size()) return max_;  // overflow bucket
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = bounds_[i];
      // Position of the rank inside this bucket, interpolated linearly.
      std::uint64_t into = rank - (cumulative - counts_[i]);
      double frac = counts_[i] > 1 ? static_cast<double>(into) /
                                         static_cast<double>(counts_[i] - 1)
                                   : 1.0;
      return lo + (hi - lo) * frac;
    }
  }
  return max_;
}

std::vector<double> default_ms_bounds() {
  return {0.01, 0.03, 0.1, 0.3, 1.0,    3.0,    10.0,
          30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0};
}

std::vector<double> default_sub_ms_bounds() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
          0.2,   0.5,   1.0,   2.0,  5.0,  10.0, 100.0, 1000.0};
}

std::vector<double> default_count_bounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

std::string MetricsRegistry::full_name(const std::string& name,
                                       const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  std::string key = full_name(name, labels);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back(name, std::move(labels), Counter{});
  Counter* cell = &counters_.back().cell;
  counter_index_.emplace(std::move(key), cell);
  return *cell;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  std::string key = full_name(name, labels);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back(name, std::move(labels), Gauge{});
  Gauge* cell = &gauges_.back().cell;
  gauge_index_.emplace(std::move(key), cell);
  return *cell;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  std::string key = full_name(name, labels);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(name, std::move(labels),
                           Histogram{std::move(bounds)});
  Histogram* cell = &histograms_.back().cell;
  histogram_index_.emplace(std::move(key), cell);
  return *cell;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  auto it = counter_index_.find(full_name(name, labels));
  return it != counter_index_.end() ? it->second : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  auto it = gauge_index_.find(full_name(name, labels));
  return it != gauge_index_.end() ? it->second : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  auto it = histogram_index_.find(full_name(name, labels));
  return it != histogram_index_.end() ? it->second : nullptr;
}

}  // namespace vs::obs
