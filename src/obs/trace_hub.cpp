#include "obs/trace_hub.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/export.h"

namespace vs::obs {

namespace {

const char* span_category(sim::SpanKind kind) {
  switch (kind) {
    case sim::SpanKind::kReconfig: return "reconfig";
    case sim::SpanKind::kExec: return "exec";
    case sim::SpanKind::kCoreOp: return "core";
    case sim::SpanKind::kBlocked: return "blocked";
    case sim::SpanKind::kTransfer: return "transfer";
    case sim::SpanKind::kMarker: return "marker";
  }
  return "other";
}

// Shortest round-trip decimal for microsecond timestamps; matches the
// fmt_double convention in export.cpp rather than ostream's 6-digit default.
std::string fmt_num(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

const char* flow_ph(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::kStart: return "s";
    case FlowPhase::kStep: return "t";
    case FlowPhase::kEnd: return "f";
  }
  return "t";
}

struct JournalName {
  JournalEvent event;
  const char* name;
};

constexpr JournalName kJournalNames[] = {
    {JournalEvent::kAdmit, "admit"},
    {JournalEvent::kBind, "bind"},
    {JournalEvent::kPreempt, "preempt"},
    {JournalEvent::kCheckpoint, "checkpoint"},
    {JournalEvent::kComplete, "complete"},
    {JournalEvent::kMigrate, "migrate"},
    {JournalEvent::kCrash, "crash"},
    {JournalEvent::kRestore, "restore"},
    {JournalEvent::kShed, "shed"},
    {JournalEvent::kReadmit, "readmit"},
};

}  // namespace

const char* to_string(JournalEvent e) noexcept {
  for (const auto& entry : kJournalNames) {
    if (entry.event == e) return entry.name;
  }
  return "unknown";
}

bool journal_event_from_string(const std::string& name,
                               JournalEvent& out) noexcept {
  for (const auto& entry : kJournalNames) {
    if (name == entry.name) {
      out = entry.event;
      return true;
    }
  }
  return false;
}

bool TraceChannel::trace_on() const noexcept { return hub_->trace_enabled(); }
bool TraceChannel::journal_on() const noexcept {
  return hub_->journal_enabled();
}

TraceChannel& ClusterTraceHub::channel(const std::string& name) {
  auto it = channel_index_.find(name);
  if (it != channel_index_.end()) return *it->second;
  channels_.emplace_back(TraceChannel{this, channels_.size()});
  TraceChannel* ch = &channels_.back();
  channel_index_.emplace(name, ch);
  return *ch;
}

void ClusterTraceHub::attach_spans(const std::string& board,
                                   const sim::TraceRecorder* rec) {
  auto it = recorders_.find(board);
  if (it == recorders_.end()) {
    board_order_.push_back(board);
    it = recorders_.emplace(board, std::vector<const sim::TraceRecorder*>{})
             .first;
  }
  it->second.push_back(rec);
}

void ClusterTraceHub::seal() {
  for (auto& [board, recs] : recorders_) {
    std::vector<sim::Span>& dst = sealed_spans_[board];
    std::uint64_t& dropped = sealed_dropped_[board];
    for (const sim::TraceRecorder* rec : recs) {
      std::vector<sim::Span> spans = rec->ordered_spans();
      dst.insert(dst.end(), std::make_move_iterator(spans.begin()),
                 std::make_move_iterator(spans.end()));
      dropped += rec->dropped();
    }
    recs.clear();
  }
}

std::vector<JournalRecord> ClusterTraceHub::merged_journal() const {
  std::vector<JournalRecord> out;
  for (const TraceChannel& ch : channels_) {
    out.insert(out.end(), ch.journal().begin(), ch.journal().end());
  }
  // Stable: equal timestamps keep channel-creation then append order, so
  // serial and sharded kernels merge identically.
  std::stable_sort(out.begin(), out.end(),
                   [](const JournalRecord& a, const JournalRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::vector<FlowPoint> ClusterTraceHub::merged_flows() const {
  std::vector<FlowPoint> out;
  for (const TraceChannel& ch : channels_) {
    out.insert(out.end(), ch.flows().begin(), ch.flows().end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlowPoint& a, const FlowPoint& b) {
                     return a.time < b.time;
                   });
  return out;
}

void ClusterTraceHub::write_chrome_trace(std::ostream& out) const {
  const std::vector<FlowPoint> flows = merged_flows();

  // Processes: attached boards in attach order, then any board that only
  // appears as a flow endpoint (e.g. the cluster coordinator).
  std::vector<std::string> boards = board_order_;
  std::map<std::string, int> pid;
  for (const std::string& b : boards) {
    pid.emplace(b, static_cast<int>(pid.size()) + 1);
  }
  for (const FlowPoint& f : flows) {
    if (pid.emplace(f.board, static_cast<int>(pid.size()) + 1).second) {
      boards.push_back(f.board);
    }
  }

  // Threads: per board, lanes in first-appearance order — span lanes first
  // (recorder attach order), then flow lanes.
  std::map<std::string, std::map<std::string, int>> lane_tid;
  std::map<std::string, std::vector<std::string>> lane_order;
  auto intern_lane = [&](const std::string& board, const std::string& lane) {
    auto& tids = lane_tid[board];
    auto [it, fresh] = tids.emplace(lane, static_cast<int>(tids.size()) + 1);
    if (fresh) lane_order[board].push_back(lane);
    return it->second;
  };

  struct PlacedSpan {
    const sim::Span* span;
    int pid;
    int tid;
  };
  std::vector<sim::Span> storage;  // ring-unrolled copies stay alive
  std::vector<PlacedSpan> placed;
  std::vector<std::pair<std::size_t, std::size_t>> board_ranges;
  for (const std::string& b : board_order_) {
    std::size_t begin = storage.size();
    if (auto sit = sealed_spans_.find(b); sit != sealed_spans_.end()) {
      storage.insert(storage.end(), sit->second.begin(), sit->second.end());
    }
    for (const sim::TraceRecorder* rec : recorders_.at(b)) {
      std::vector<sim::Span> spans = rec->ordered_spans();
      storage.insert(storage.end(), spans.begin(), spans.end());
    }
    board_ranges.emplace_back(begin, storage.size());
  }
  for (std::size_t bi = 0; bi < board_order_.size(); ++bi) {
    const std::string& b = board_order_[bi];
    for (std::size_t i = board_ranges[bi].first; i < board_ranges[bi].second;
         ++i) {
      const sim::Span& s = storage[i];
      placed.push_back(PlacedSpan{&s, pid[b], intern_lane(b, s.lane)});
    }
  }
  for (const FlowPoint& f : flows) intern_lane(f.board, f.lane);
  std::stable_sort(placed.begin(), placed.end(),
                   [](const PlacedSpan& a, const PlacedSpan& b) {
                     if (a.span->start != b.span->start) {
                       return a.span->start < b.span->start;
                     }
                     return a.pid < b.pid;
                   });

  out << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const std::string& b : boards) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid[b]
        << ",\"args\":{\"name\":\"" << json_escape(b) << "\"}}";
    auto rit = recorders_.find(b);
    if (rit != recorders_.end()) {
      std::uint64_t dropped = 0;
      if (auto dit = sealed_dropped_.find(b); dit != sealed_dropped_.end()) {
        dropped += dit->second;
      }
      for (const sim::TraceRecorder* rec : rit->second) {
        dropped += rec->dropped();
      }
      sep();
      out << "{\"name\":\"vs_dropped_spans\",\"ph\":\"M\",\"pid\":" << pid[b]
          << ",\"args\":{\"dropped\":" << dropped << "}}";
    }
    for (const std::string& lane : lane_order[b]) {
      sep();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid[b]
          << ",\"tid\":" << lane_tid[b][lane] << ",\"args\":{\"name\":\""
          << json_escape(lane) << "\"}}";
    }
  }

  for (const PlacedSpan& p : placed) {
    sep();
    out << "{\"name\":\"" << json_escape(p.span->label) << "\",\"cat\":\""
        << span_category(p.span->kind) << "\",\"ph\":\"X\",\"pid\":" << p.pid
        << ",\"tid\":" << p.tid << ",\"ts\":"
        << fmt_num(static_cast<double>(p.span->start) / 1e3) << ",\"dur\":"
        << fmt_num(static_cast<double>(p.span->end - p.span->start) / 1e3)
        << "}";
  }

  for (const FlowPoint& f : flows) {
    sep();
    out << "{\"name\":\"" << json_escape(f.name)
        << "\",\"cat\":\"flow\",\"ph\":\"" << flow_ph(f.phase)
        << "\",\"id\":" << f.id << ",\"pid\":" << pid[f.board]
        << ",\"tid\":" << lane_tid[f.board][f.lane] << ",\"ts\":"
        << fmt_num(static_cast<double>(f.time) / 1e3);
    if (f.phase == FlowPhase::kEnd) out << ",\"bp\":\"e\"";
    out << "}";
  }

  out << "\n]\n";
}

void ClusterTraceHub::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file " + path);
  write_chrome_trace(out);
}

void ClusterTraceHub::write_journal(std::ostream& out) const {
  for (const JournalRecord& r : merged_journal()) {
    out << "{\"t_ns\":" << r.time
        << ",\"t_ms\":" << fmt_num(sim::to_ms(r.time)) << ",\"event\":\""
        << to_string(r.event) << "\",\"board\":\"" << json_escape(r.board)
        << "\"";
    if (r.app >= 0) out << ",\"app\":" << r.app;
    if (!r.spec.empty()) out << ",\"spec\":\"" << json_escape(r.spec) << "\"";
    if (r.flow != 0) out << ",\"flow\":" << r.flow;
    if (!r.detail.empty()) {
      out << ",\"detail\":\"" << json_escape(r.detail) << "\"";
    }
    out << "}\n";
  }
}

void ClusterTraceHub::write_journal_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open journal file " + path);
  write_journal(out);
}

namespace {

// Minimal extraction for the journal's own flat JSONL encoding; not a
// general JSON parser.
bool extract_raw(const std::string& line, const std::string& key,
                 std::string& out) {
  std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos < line.size() && line[pos] == '"') {
    ++pos;
    std::string value;
    while (pos < line.size()) {
      char c = line[pos];
      if (c == '"') break;
      if (c == '\\' && pos + 1 < line.size()) {
        char esc = line[pos + 1];
        pos += 2;
        switch (esc) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case 'u': {
            if (pos + 4 <= line.size()) {
              unsigned code = 0;
              std::from_chars(line.data() + pos, line.data() + pos + 4, code,
                              16);
              value += static_cast<char>(code);
              pos += 4;
            }
            break;
          }
          default: value += esc;
        }
        continue;
      }
      value += c;
      ++pos;
    }
    out = std::move(value);
    return true;
  }
  auto end = line.find_first_of(",}", pos);
  if (end == std::string::npos) return false;
  out = line.substr(pos, end - pos);
  return true;
}

}  // namespace

std::vector<JournalRecord> parse_journal(std::istream& in) {
  std::vector<JournalRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    std::string raw;
    JournalRecord r;
    if (!extract_raw(line, "event", raw)) continue;
    if (!journal_event_from_string(raw, r.event)) continue;
    if (!extract_raw(line, "t_ns", raw)) continue;
    std::from_chars(raw.data(), raw.data() + raw.size(), r.time);
    if (extract_raw(line, "board", raw)) r.board = raw;
    if (extract_raw(line, "app", raw)) {
      std::from_chars(raw.data(), raw.data() + raw.size(), r.app);
    }
    if (extract_raw(line, "spec", raw)) r.spec = raw;
    if (extract_raw(line, "flow", raw)) {
      std::from_chars(raw.data(), raw.data() + raw.size(), r.flow);
    }
    if (extract_raw(line, "detail", raw)) r.detail = raw;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace vs::obs
