#include "obs/export.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

#include "sim/time.h"

namespace vs::obs {
namespace {

/// Shortest round-trip decimal representation of a double (to_chars), so
/// exports parse back to the exact value and carry no trailing noise.
std::string fmt_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

/// Prometheus label-value escaping per the text exposition format: inside
/// a quoted label value, backslash, double quote and newline must be
/// escaped (and nothing else).
std::string label_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Prometheus label block: `{k="v",...}` with `le` appended when present;
/// empty string when there are no dimensions at all.
std::string label_block(const Labels& labels, const std::string* le) {
  if (labels.empty() && le == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + label_escape(v) + "\"";
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"" + *le + "\"";
  }
  out += '}';
  return out;
}

/// Emits `# TYPE` once per metric name, in first-appearance order.
void emit_type(std::ostream& out, std::set<std::string>& seen,
               const std::string& name, const char* type) {
  if (seen.insert(name).second) {
    out << "# TYPE " << name << ' ' << type << '\n';
  }
}

/// Quantile over merged histogram buckets, same estimator as
/// Histogram::quantile (linear interpolation inside the containing bucket,
/// overflow resolves to the observed maximum).
double merged_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t count, double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (rank < cumulative) {
      if (i >= bounds.size()) return max;  // overflow bucket
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      std::uint64_t into = rank - (cumulative - counts[i]);
      double frac = counts[i] > 1 ? static_cast<double>(into) /
                                        static_cast<double>(counts[i] - 1)
                                  : 1.0;
      return lo + (hi - lo) * frac;
    }
  }
  return max;
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(k) + "\":\"" + json_escape(v) + '"';
  }
  out += '}';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  std::set<std::string> seen;
  for (const auto& row : registry.counters()) {
    emit_type(out, seen, row.name, "counter");
    out << row.name << label_block(row.labels, nullptr) << ' '
        << row.cell.value() << '\n';
  }
  for (const auto& row : registry.gauges()) {
    emit_type(out, seen, row.name, "gauge");
    out << row.name << label_block(row.labels, nullptr) << ' '
        << fmt_double(row.cell.value()) << '\n';
  }
  for (const auto& row : registry.histograms()) {
    emit_type(out, seen, row.name, "histogram");
    const auto& bounds = row.cell.bounds();
    const auto& counts = row.cell.bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      std::string le = fmt_double(bounds[i]);
      out << row.name << "_bucket" << label_block(row.labels, &le) << ' '
          << cumulative << '\n';
    }
    std::string inf = "+Inf";
    out << row.name << "_bucket" << label_block(row.labels, &inf) << ' '
        << row.cell.count() << '\n';
    out << row.name << "_sum" << label_block(row.labels, nullptr) << ' '
        << fmt_double(row.cell.sum()) << '\n';
    out << row.name << "_count" << label_block(row.labels, nullptr) << ' '
        << row.cell.count() << '\n';
  }
}

void write_timeseries_jsonl(const Sampler& sampler,
                            const MetricsRegistry& registry,
                            std::ostream& out) {
  for (const auto& snap : sampler.snapshots()) {
    std::string line = "{\"t_ms\":" + fmt_double(sim::to_ms(snap.time));
    std::size_t col = 0;
    // Gauges first, then counters — the order sample_now() recorded them.
    // A snapshot taken before later registrations is narrower; only emit
    // the columns it actually has.
    for (const auto& row : registry.gauges()) {
      if (col >= snap.gauge_count) break;
      line += ",\"" +
              json_escape(MetricsRegistry::full_name(row.name, row.labels)) +
              "\":" + fmt_double(snap.values[col]);
      ++col;
    }
    std::size_t counter_cols = snap.values.size() - snap.gauge_count;
    std::size_t counter_idx = 0;
    for (const auto& row : registry.counters()) {
      if (counter_idx >= counter_cols) break;
      line += ",\"" +
              json_escape(MetricsRegistry::full_name(row.name, row.labels)) +
              "\":" + fmt_double(snap.values[snap.gauge_count + counter_idx]);
      ++counter_idx;
    }
    line += "}";
    out << line << '\n';
  }
}

void write_run_report(const MetricsRegistry& registry, const RunInfo& info,
                      const Sampler* sampler, std::ostream& out) {
  out << "{\n  \"experiment\": \"" << json_escape(info.experiment) << "\",\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : info.config) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(k) << "\": \"" << json_escape(v) << '"';
  }
  out << "},\n";

  out << "  \"counters\": [\n";
  first = true;
  for (const auto& row : registry.counters()) {
    if (!first) out << ",\n";
    first = false;
    std::string labels;
    append_json_labels(labels, row.labels);
    out << "    {\"name\": \"" << json_escape(row.name)
        << "\", \"labels\": " << labels << ", \"value\": " << row.cell.value()
        << "}";
  }
  out << "\n  ],\n";

  out << "  \"gauges\": [\n";
  first = true;
  for (const auto& row : registry.gauges()) {
    if (!first) out << ",\n";
    first = false;
    std::string labels;
    append_json_labels(labels, row.labels);
    out << "    {\"name\": \"" << json_escape(row.name)
        << "\", \"labels\": " << labels
        << ", \"value\": " << fmt_double(row.cell.value()) << "}";
  }
  out << "\n  ],\n";

  out << "  \"histograms\": [\n";
  first = true;
  for (const auto& row : registry.histograms()) {
    if (!first) out << ",\n";
    first = false;
    std::string labels;
    append_json_labels(labels, row.labels);
    const Histogram& h = row.cell;
    out << "    {\"name\": \"" << json_escape(row.name)
        << "\", \"labels\": " << labels << ", \"count\": " << h.count()
        << ", \"sum\": " << fmt_double(h.sum())
        << ", \"mean\": " << fmt_double(h.mean())
        << ", \"p50\": " << fmt_double(h.quantile(0.50))
        << ", \"p95\": " << fmt_double(h.quantile(0.95))
        << ", \"p99\": " << fmt_double(h.quantile(0.99))
        << ", \"max\": " << fmt_double(h.max()) << "}";
  }
  out << "\n  ],\n";

  // Per-phase response-time breakdown (PR 8): vs_app_phase_ms rows merged
  // across boards, one table row per phase label in first-appearance order.
  // Emitted only when phase accounting registered its histograms, so every
  // phase-free report stays byte-identical.
  struct PhaseAgg {
    std::string phase;
    const std::vector<double>* bounds = nullptr;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  std::vector<PhaseAgg> phases;
  for (const auto& row : registry.histograms()) {
    if (row.name != "vs_app_phase_ms") continue;
    std::string phase;
    for (const auto& [k, v] : row.labels) {
      if (k == "phase") phase = v;
    }
    PhaseAgg* agg = nullptr;
    for (PhaseAgg& p : phases) {
      if (p.phase == phase) agg = &p;
    }
    if (agg == nullptr) {
      phases.push_back(PhaseAgg{phase,
                                &row.cell.bounds(),
                                std::vector<std::uint64_t>(
                                    row.cell.bucket_counts().size(), 0),
                                0, 0.0, 0.0});
      agg = &phases.back();
    }
    const Histogram& h = row.cell;
    // Boards register vs_app_phase_ms with identical bounds; merging is a
    // per-bucket sum.
    for (std::size_t i = 0;
         i < h.bucket_counts().size() && i < agg->counts.size(); ++i) {
      agg->counts[i] += h.bucket_counts()[i];
    }
    agg->count += h.count();
    agg->sum += h.sum();
    agg->max = std::max(agg->max, h.max());
  }
  if (!phases.empty()) {
    out << "  \"phases\": [\n";
    first = true;
    for (const PhaseAgg& p : phases) {
      if (!first) out << ",\n";
      first = false;
      double mean = p.count ? p.sum / static_cast<double>(p.count) : 0.0;
      out << "    {\"phase\": \"" << json_escape(p.phase)
          << "\", \"count\": " << p.count
          << ", \"sum\": " << fmt_double(p.sum)
          << ", \"mean\": " << fmt_double(mean) << ", \"p50\": "
          << fmt_double(
                 merged_quantile(*p.bounds, p.counts, p.count, p.max, 0.50))
          << ", \"p95\": "
          << fmt_double(
                 merged_quantile(*p.bounds, p.counts, p.count, p.max, 0.95))
          << ", \"p99\": "
          << fmt_double(
                 merged_quantile(*p.bounds, p.counts, p.count, p.max, 0.99))
          << ", \"max\": " << fmt_double(p.max) << "}";
    }
    out << "\n  ],\n";
  }

  out << "  \"snapshots\": "
      << (sampler != nullptr ? sampler->snapshots().size() : 0) << "\n}\n";
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_prometheus(registry, out);
  return out.str();
}

std::string timeseries_jsonl(const Sampler& sampler,
                             const MetricsRegistry& registry) {
  std::ostringstream out;
  write_timeseries_jsonl(sampler, registry, out);
  return out.str();
}

std::string run_report_json(const MetricsRegistry& registry,
                            const RunInfo& info, const Sampler* sampler) {
  std::ostringstream out;
  write_run_report(registry, info, sampler, out);
  return out.str();
}

std::string format_dashboard(const MetricsRegistry& registry,
                             const std::string& title) {
  std::ostringstream out;
  std::string rule(64, '=');
  out << rule << '\n' << "  " << title << '\n' << rule << '\n';

  auto name_width = [&registry] {
    std::size_t w = 0;
    for (const auto& row : registry.counters()) {
      w = std::max(w,
                   MetricsRegistry::full_name(row.name, row.labels).size());
    }
    for (const auto& row : registry.gauges()) {
      w = std::max(w,
                   MetricsRegistry::full_name(row.name, row.labels).size());
    }
    for (const auto& row : registry.histograms()) {
      w = std::max(w,
                   MetricsRegistry::full_name(row.name, row.labels).size());
    }
    return std::min<std::size_t>(w, 56);
  }();

  auto pad = [name_width](const std::string& s) {
    std::string out = s;
    if (out.size() < name_width) out.append(name_width - out.size(), ' ');
    return out;
  };

  if (!registry.counters().empty()) {
    out << "\n-- counters " << std::string(50, '-') << '\n';
    for (const auto& row : registry.counters()) {
      out << "  "
          << pad(MetricsRegistry::full_name(row.name, row.labels)) << "  "
          << row.cell.value() << '\n';
    }
  }
  if (!registry.gauges().empty()) {
    out << "\n-- gauges " << std::string(52, '-') << '\n';
    for (const auto& row : registry.gauges()) {
      out << "  "
          << pad(MetricsRegistry::full_name(row.name, row.labels)) << "  "
          << fmt_double(row.cell.value()) << '\n';
    }
  }
  if (!registry.histograms().empty()) {
    out << "\n-- histograms " << std::string(48, '-') << '\n';
    for (const auto& row : registry.histograms()) {
      const Histogram& h = row.cell;
      out << "  " << pad(MetricsRegistry::full_name(row.name, row.labels))
          << "  n=" << h.count();
      if (h.count() > 0) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "  mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
                      h.mean(), h.quantile(0.5), h.quantile(0.95),
                      h.quantile(0.99), h.max());
        out << line << "\n  " << pad("") << "  [";
        // Occupancy bar: one glyph per bucket scaled against the fullest.
        const auto& counts = h.bucket_counts();
        std::uint64_t peak = *std::max_element(counts.begin(), counts.end());
        for (std::uint64_t c : counts) {
          static const char* glyphs = " .:-=+*#%@";
          std::size_t level =
              peak == 0 ? 0
                        : static_cast<std::size_t>(
                              (static_cast<double>(c) / peak) * 9.0);
          out << glyphs[level];
        }
        out << "]";
      }
      out << '\n';
    }
  }
  out << rule << '\n';
  return out.str();
}

}  // namespace vs::obs
