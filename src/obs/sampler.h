// Periodic in-simulation snapshotting of registry instruments.
//
// The Sampler schedules itself as an ordinary event at fixed simulated-time
// intervals and records the value of every registered gauge and counter at
// each tick. Snapshot events only *read* instrument cells — they mutate no
// simulation state and draw no randomness — and they are inserted through
// the same schedule() path as everything else, so adding a sampler shifts
// event sequence numbers uniformly without reordering any two simulation
// events relative to each other: results stay bit-identical with sampling
// on or off (pinned by tests/obs_test.cpp).
//
// The tick only re-arms itself while other events remain pending, so a
// sampler never keeps sim.run() from draining: the final snapshot is taken
// at the first tick that finds the queue otherwise idle.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace vs::sim {
class Simulator;
}  // namespace vs::sim

namespace vs::obs {

/// One sampling instant: instrument values in registry registration order,
/// gauges first, then counters (as doubles). Instruments registered after a
/// snapshot was taken simply make later snapshots wider; exporters align
/// columns by the per-snapshot counts.
struct Snapshot {
  sim::SimTime time = 0;
  std::size_t gauge_count = 0;
  std::vector<double> values;  ///< size = gauge_count + counter count
};

class Sampler {
 public:
  /// Snapshots `registry` every `interval` of simulated time once started.
  Sampler(MetricsRegistry& registry, sim::SimDuration interval);

  /// Schedules the first tick one interval from sim.now(). Call once, before
  /// sim.run(); the sampler must outlive the simulation.
  void start(sim::Simulator& sim);

  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] sim::SimDuration interval() const noexcept {
    return interval_;
  }

  /// Takes one snapshot at `now` without scheduling anything. Used by the
  /// tick, and directly by Telemetry for a final end-of-run sample.
  void sample_now(sim::SimTime now);

 private:
  void tick();

  MetricsRegistry* registry_;
  sim::Simulator* sim_ = nullptr;
  sim::SimDuration interval_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace vs::obs
