// Telemetry: the bundle a run carries when metrics are enabled.
//
// One object owning the MetricsRegistry, the periodic Sampler, and the
// RunInfo config echo, with a one-call exporter that writes the three
// machine formats next to each other:
//   <prefix>.prom         Prometheus text exposition (final values)
//   <prefix>.jsonl        gauge/counter time series, one snapshot per line
//   <prefix>.report.json  RunReport (config echo + finals + percentiles)
//
// Experiments take a `Telemetry*` (null = telemetry off, the default): the
// harness binds every component to the registry and starts the sampler
// before sim.run(). Telemetry is for single runs — parallel sweep jobs
// leave it null, since one registry must not be shared across replica
// threads.
#pragma once

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "sim/time.h"

namespace vs::sim {
class Simulator;
}  // namespace vs::sim

namespace vs::util {
class CliArgs;
}  // namespace vs::util

namespace vs::obs {

class Telemetry {
 public:
  /// `sample_interval` is simulated time between sampler snapshots.
  explicit Telemetry(sim::SimDuration sample_interval = sim::ms(50));

  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] Sampler& sampler() noexcept { return sampler_; }
  [[nodiscard]] const Sampler& sampler() const noexcept { return sampler_; }
  [[nodiscard]] RunInfo& info() noexcept { return info_; }
  [[nodiscard]] const RunInfo& info() const noexcept { return info_; }

  /// Arms the sampler on `sim`. Call after binding instruments, before run.
  void start_sampling(sim::Simulator& sim) { sampler_.start(sim); }

  /// Writes <prefix>.prom, <prefix>.jsonl and <prefix>.report.json.
  /// Throws std::runtime_error if a file cannot be opened.
  void write_outputs(const std::string& prefix) const;

  [[nodiscard]] std::string dashboard(const std::string& title) const {
    return format_dashboard(registry_, title);
  }

 private:
  MetricsRegistry registry_;
  Sampler sampler_;
  RunInfo info_;
};

/// Output prefix resolution for the bench/example CLIs: `--metrics-out`
/// flag first, then the VS_METRICS environment variable; empty string means
/// telemetry stays off. Pass null args to consult the environment only.
[[nodiscard]] std::string resolve_metrics_out(const util::CliArgs* args);

/// Chrome-trace output path: `--trace-out` flag, then VS_TRACE. Empty means
/// cluster tracing stays off.
[[nodiscard]] std::string resolve_trace_out(const util::CliArgs* args);

/// Run-journal output path: `--journal-out` flag, then VS_JOURNAL. Empty
/// means the journal stays off.
[[nodiscard]] std::string resolve_journal_out(const util::CliArgs* args);

}  // namespace vs::obs
