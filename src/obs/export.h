// Exporters for MetricsRegistry / Sampler contents.
//
// Three machine formats plus one human one:
//  - Prometheus text exposition (`# TYPE` headers, `name{labels} value`
//    lines, histogram `_bucket`/`_sum`/`_count` series with a +Inf bucket),
//  - JSONL time series (one flat JSON object per sampler snapshot keyed by
//    instrument full name, with `t_ms` for the simulated timestamp),
//  - a RunReport JSON document (config echo, final instrument values,
//    histogram percentile summaries),
//  - a dashboard-style ASCII summary (examples/telemetry_demo.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"

namespace vs::obs {

/// Free-form run description echoed into the RunReport: an experiment name
/// plus ordered key/value config pairs (seed, system, workload, ...).
struct RunInfo {
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> config;
};

void write_prometheus(const MetricsRegistry& registry, std::ostream& out);
void write_timeseries_jsonl(const Sampler& sampler,
                            const MetricsRegistry& registry,
                            std::ostream& out);
void write_run_report(const MetricsRegistry& registry, const RunInfo& info,
                      const Sampler* sampler, std::ostream& out);

[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);
[[nodiscard]] std::string timeseries_jsonl(const Sampler& sampler,
                                           const MetricsRegistry& registry);
[[nodiscard]] std::string run_report_json(const MetricsRegistry& registry,
                                          const RunInfo& info,
                                          const Sampler* sampler);

/// Terminal-width ASCII summary: counters/gauges as aligned rows, histogram
/// rows with count/mean/p50/p95/p99/max and a log-bucket occupancy bar.
[[nodiscard]] std::string format_dashboard(const MetricsRegistry& registry,
                                           const std::string& title);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace vs::obs
