// Chrome trace-event export: renders a TraceRecorder span log as the JSON
// array format consumed by chrome://tracing, Perfetto and speedscope.
// Lanes become thread rows; span kinds map to category colours, so a full
// scheduling run can be inspected interactively.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace vs::sim {

/// Writes the spans as Chrome trace-event JSON ("X" complete events, one
/// per span, microsecond timestamps). Lane order follows first appearance.
void write_chrome_trace(const std::vector<Span>& spans, std::ostream& os);

/// Convenience: writes to a file. Throws std::runtime_error when the file
/// cannot be opened.
void write_chrome_trace_file(const std::vector<Span>& spans,
                             const std::string& path);

}  // namespace vs::sim
