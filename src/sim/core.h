// Serially-busy CPU core model.
//
// The VersaSlot hypervisor runs bare-metal on ARM cores; the paper's central
// single-core vs dual-core distinction is about which core a PCAP load
// suspends. We model a core as a FIFO work queue: submitted operations run
// one at a time for their stated duration, and the completion callback fires
// when the operation finishes. A PR that "suspends the CPU" is simply a long
// operation submitted to that core — everything queued behind it waits,
// which is exactly the task-execution-blocking effect of Fig 2.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace vs::sim {

class Core {
 public:
  Core(Simulator& sim, std::string name);

  /// Enqueues an operation taking `duration` core time; `on_done` fires when
  /// it completes. Returns immediately. Operations run in submission order.
  void submit(SimDuration duration, EventFn on_done,
              std::string label = {});

  /// True if an operation is executing right now.
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Number of operations waiting (not counting the one executing).
  [[nodiscard]] std::size_t backlog() const noexcept { return queue_.size(); }

  /// Earliest time a newly submitted op could start (now if idle).
  [[nodiscard]] SimTime available_at() const noexcept;

  /// Total time this core has spent executing operations.
  [[nodiscard]] SimDuration busy_time() const noexcept { return busy_time_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Label of the currently executing operation (empty when idle).
  [[nodiscard]] const std::string& current_label() const noexcept {
    return current_label_;
  }

  /// Registers this core's instruments (labelled by core name) and resolves
  /// the telemetry handles. Without this call every update is a no-op.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Crash path: cancels the in-flight operation (its completion never
  /// fires) and drops the queue. busy_time() is corrected for the
  /// unexecuted remainder of the aborted operation.
  void reset();

 private:
  struct Op {
    SimDuration duration;
    EventFn on_done;
    std::string label;
  };

  void start_next();
  void finish_current();

  Simulator& sim_;
  std::string name_;
  std::deque<Op> queue_;
  bool busy_ = false;
  SimTime current_end_ = 0;
  std::string current_label_;
  // The in-flight op's completion callback. The core is serially busy, so
  // parking it here lets the scheduled completion event capture only `this`
  // and stay within the event queue's inline closure buffer.
  EventFn current_done_;
  EventId finish_event_ = 0;  ///< valid only while busy_ (reset() cancels it)
  SimDuration busy_time_ = 0;
  obs::CounterHandle ops_total_;      ///< vs_core_ops_total
  obs::CounterHandle busy_ns_total_;  ///< vs_core_busy_ns_total
  obs::GaugeHandle queue_depth_;      ///< vs_core_queue_depth (incl. running)
};

}  // namespace vs::sim
