#include "sim/trace_export.h"

#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace vs::sim {

namespace {

const char* category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kReconfig: return "reconfig";
    case SpanKind::kExec: return "exec";
    case SpanKind::kCoreOp: return "core";
    case SpanKind::kBlocked: return "blocked";
    case SpanKind::kTransfer: return "transfer";
    case SpanKind::kMarker: return "marker";
  }
  return "other";
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(const std::vector<Span>& spans, std::ostream& os) {
  // Assign a stable tid per lane in order of first appearance.
  std::map<std::string, int> lane_tid;
  int next_tid = 1;
  for (const Span& s : spans) {
    if (!lane_tid.count(s.lane)) lane_tid[s.lane] = next_tid++;
  }

  os << "[";
  bool first = true;
  // Thread-name metadata so the viewer labels rows with lane names.
  for (const auto& [lane, tid] : lane_tid) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    json_escape(os, lane);
    os << "\"}}";
  }
  for (const Span& s : spans) {
    if (!first) os << ",";
    first = false;
    double ts_us = static_cast<double>(s.start) / 1e3;
    double dur_us = static_cast<double>(s.end - s.start) / 1e3;
    os << "\n{\"name\":\"";
    json_escape(os, s.label);
    os << "\",\"cat\":\"" << category(s.kind)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << lane_tid[s.lane]
       << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us << "}";
  }
  os << "\n]\n";
}

void write_chrome_trace_file(const std::vector<Span>& spans,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file " + path);
  write_chrome_trace(spans, out);
}

}  // namespace vs::sim
