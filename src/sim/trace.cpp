#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/table.h"

namespace vs::sim {

namespace {
char glyph(SpanKind kind) {
  switch (kind) {
    case SpanKind::kReconfig: return '#';
    case SpanKind::kExec: return '=';
    case SpanKind::kCoreOp: return '+';
    case SpanKind::kBlocked: return '.';
    case SpanKind::kTransfer: return '>';
    case SpanKind::kMarker: return '|';
  }
  return '?';
}
}  // namespace

std::string render_gantt(const std::vector<Span>& spans, int width) {
  if (spans.empty()) return "(empty trace)\n";
  SimTime t0 = spans.front().start;
  SimTime t1 = spans.front().end;
  for (const Span& s : spans) {
    t0 = std::min(t0, s.start);
    t1 = std::max(t1, s.end);
  }
  if (t1 <= t0) t1 = t0 + 1;
  double scale = static_cast<double>(width) / static_cast<double>(t1 - t0);

  // Stable lane order: first appearance in the span list.
  std::vector<std::string> lane_order;
  std::map<std::string, std::string> rows;
  std::size_t lane_width = 0;
  for (const Span& s : spans) {
    if (!rows.count(s.lane)) {
      lane_order.push_back(s.lane);
      rows[s.lane] = std::string(static_cast<std::size_t>(width), ' ');
      lane_width = std::max(lane_width, s.lane.size());
    }
    auto& row = rows[s.lane];
    auto c0 = static_cast<int>(static_cast<double>(s.start - t0) * scale);
    auto c1 = static_cast<int>(static_cast<double>(s.end - t0) * scale);
    c0 = std::clamp(c0, 0, width - 1);
    c1 = std::clamp(c1, c0, width - 1);
    for (int c = c0; c <= c1; ++c) {
      row[static_cast<std::size_t>(c)] = glyph(s.kind);
    }
    // Overlay a short label at the start of the span when room permits.
    std::string tag = s.label.substr(0, static_cast<std::size_t>(
                                            std::max(0, c1 - c0 - 1)));
    for (std::size_t i = 0; i < tag.size(); ++i) {
      row[static_cast<std::size_t>(c0) + 1 + i] = tag[i];
    }
  }

  std::ostringstream out;
  out << "time: " << util::fmt_duration_ns(t0) << " .. "
      << util::fmt_duration_ns(t1)
      << "   (#=reconfig  ==exec  +=core op  .=blocked  >=transfer)\n";
  for (const auto& lane : lane_order) {
    out << "  ";
    out << lane << std::string(lane_width - lane.size(), ' ') << " |"
        << rows[lane] << "|\n";
  }
  return out.str();
}

}  // namespace vs::sim
