// Execution trace recording for timeline rendering (Fig 2 reproduction) and
// debugging. Components append spans (start, end, lane, label); the ASCII
// Gantt renderer in examples/pipeline_timeline.cpp consumes them.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace vs::sim {

enum class SpanKind {
  kReconfig,   ///< partial reconfiguration of a slot
  kExec,       ///< batch-item execution in a slot
  kCoreOp,     ///< scheduler/PR-server operation on a CPU core
  kBlocked,    ///< time a ready action spent blocked (PR queue / core busy)
  kTransfer,   ///< DMA / Aurora data movement
  kMarker,     ///< instantaneous annotation
};

struct Span {
  SimTime start = 0;
  SimTime end = 0;
  std::string lane;   ///< e.g. "slot L2", "core PS0", "aurora"
  std::string label;  ///< e.g. "App1.T2 PR", "App2.T1 B3"
  SpanKind kind = SpanKind::kMarker;
};

/// Append-only span log. Disabled by default (no allocation cost in
/// benchmark runs); enable for examples and debugging.
class TraceRecorder {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void add(Span span) {
    if (enabled_) spans_.push_back(std::move(span));
  }
  void add(SimTime start, SimTime end, std::string lane, std::string label,
           SpanKind kind) {
    if (enabled_) {
      spans_.push_back(
          Span{start, end, std::move(lane), std::move(label), kind});
    }
  }

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  /// Drops all spans AND releases their capacity (swap idiom): long sweep
  /// runs that toggle tracing must not retain peak span memory.
  void clear() noexcept { std::vector<Span>().swap(spans_); }

 private:
  bool enabled_ = false;
  std::vector<Span> spans_;
};

/// Renders spans grouped by lane as an ASCII Gantt chart. `width` is the
/// number of character cells for the full time range.
[[nodiscard]] std::string render_gantt(const std::vector<Span>& spans,
                                       int width = 100);

}  // namespace vs::sim
