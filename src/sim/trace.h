// Execution trace recording for timeline rendering (Fig 2 reproduction) and
// debugging. Components append spans (start, end, lane, label); the ASCII
// Gantt renderer in examples/pipeline_timeline.cpp consumes them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace vs::sim {

enum class SpanKind {
  kReconfig,   ///< partial reconfiguration of a slot
  kExec,       ///< batch-item execution in a slot
  kCoreOp,     ///< scheduler/PR-server operation on a CPU core
  kBlocked,    ///< time a ready action spent blocked (PR queue / core busy)
  kTransfer,   ///< DMA / Aurora data movement
  kMarker,     ///< instantaneous annotation
};

struct Span {
  SimTime start = 0;
  SimTime end = 0;
  std::string lane;   ///< e.g. "slot L2", "core PS0", "aurora"
  std::string label;  ///< e.g. "App1.T2 PR", "App2.T1 B3"
  SpanKind kind = SpanKind::kMarker;
};

/// Memory-bounding behaviour once a TraceRecorder reaches its capacity.
enum class TraceCapacityMode {
  kUnbounded,  ///< grow without limit (the default)
  kDrop,       ///< keep the oldest spans, drop new ones
  kRing,       ///< keep the newest spans, overwrite the oldest
};

/// Append-only span log. Disabled by default (no allocation cost in
/// benchmark runs); enable for examples and debugging. Long traced cluster
/// runs bound its memory with set_capacity(); every span lost to the bound
/// is counted in dropped() and surfaced in the trace export header.
class TraceRecorder {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Bounds the log to `max_spans` (0 restores unbounded growth). In kDrop
  /// mode spans past the bound are discarded; in kRing mode they overwrite
  /// the oldest recorded span. Either way dropped() counts the losses.
  void set_capacity(std::size_t max_spans,
                    TraceCapacityMode mode = TraceCapacityMode::kRing) {
    capacity_ = max_spans;
    mode_ = max_spans == 0 ? TraceCapacityMode::kUnbounded : mode;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] TraceCapacityMode capacity_mode() const noexcept {
    return mode_;
  }
  /// Spans lost to the capacity bound (discarded or overwritten).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void add(Span span) {
    if (!enabled_) return;
    if (mode_ != TraceCapacityMode::kUnbounded && spans_.size() >= capacity_) {
      ++dropped_;
      if (mode_ == TraceCapacityMode::kRing) {
        spans_[ring_head_] = std::move(span);
        ring_head_ = (ring_head_ + 1) % capacity_;
      }
      return;
    }
    spans_.push_back(std::move(span));
  }
  void add(SimTime start, SimTime end, std::string lane, std::string label,
           SpanKind kind) {
    if (enabled_) {
      add(Span{start, end, std::move(lane), std::move(label), kind});
    }
  }

  /// Raw storage order: append order until the bound is hit; in kRing mode
  /// the slot at the ring head holds the oldest surviving span.
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  /// Spans in recording order, unrolling the ring when it wrapped. Equal to
  /// spans() for unbounded and kDrop recorders.
  [[nodiscard]] std::vector<Span> ordered_spans() const {
    std::vector<Span> out;
    out.reserve(spans_.size());
    out.insert(out.end(), spans_.begin() + static_cast<std::ptrdiff_t>(
                                               ring_head_),
               spans_.end());
    out.insert(out.end(), spans_.begin(),
               spans_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
    return out;
  }
  /// Drops all spans AND releases their capacity (swap idiom): long sweep
  /// runs that toggle tracing must not retain peak span memory. The
  /// capacity bound and the dropped counter survive a clear.
  void clear() noexcept {
    std::vector<Span>().swap(spans_);
    ring_head_ = 0;
  }

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  TraceCapacityMode mode_ = TraceCapacityMode::kUnbounded;
  std::size_t ring_head_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
};

/// Renders spans grouped by lane as an ASCII Gantt chart. `width` is the
/// number of character cells for the full time range.
[[nodiscard]] std::string render_gantt(const std::vector<Span>& spans,
                                       int width = 100);

}  // namespace vs::sim
