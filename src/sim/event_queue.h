// Pending-event set for the discrete-event kernel.
//
// A binary heap keyed on (time, sequence). The monotonically increasing
// sequence number guarantees FIFO order among events scheduled for the same
// instant, which makes simulations fully deterministic regardless of heap
// internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace vs::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Returns an id usable with
  /// cancel(). Events at equal times fire in scheduling order.
  EventId schedule(SimTime when, EventFn fn);

  /// Lazily cancels a pending event: the entry stays in the heap but is
  /// skipped when popped. O(1).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  struct Popped {
    SimTime time;
    EventFn fn;
  };

  /// Removes and returns the earliest live event. Precondition: !empty().
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<bool> cancelled_;  // indexed by EventId
  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace vs::sim
