// Pending-event set for the discrete-event kernel.
//
// Two cooperating structures (see docs/architecture.md, "Event kernel
// memory model"):
//
//  - a hand-rolled 4-ary min-heap of 16-byte (SimTime, EventId) PODs, so
//    sift operations move small trivially-copyable nodes and never touch a
//    closure;
//  - a free-list slab of closure slots indexed by the low 32 bits of the
//    EventId, with a generation tag in the high 32 bits that makes cancel()
//    safe against id reuse (a stale cancel is a no-op, never a misfire).
//
// Equal-time ordering is the canonical (SimTime, shard tag, per-tag seq)
// key (docs/architecture.md, "Sharded event kernel"): every slot carries
// the shard tag it was scheduled under plus a per-tag monotone sequence
// number, and ties break by tag first, then FIFO within the tag. A queue
// whose events all carry tag 0 — every single-board simulation, and every
// pre-existing caller — degenerates to the old global (time, seq) FIFO
// order exactly. The per-tag counters are what lets the sharded kernel
// (sim/sharded.h) split one simulation across per-board queues and still
// assign identical keys: each shard only ever schedules under its own tag,
// so its private counter advances exactly like the corresponding counter
// of a single serial queue.
//
// Steady-state schedule/pop performs zero heap allocations: closures live
// in recycled slab slots (inline up to InlineEvent::kInlineSize bytes) and
// the heap vector only grows to the high-water mark of pending events.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_event.h"
#include "sim/time.h"

namespace vs::sim {

/// Packs (generation << 32 | slab slot). Treat as opaque: ids are unique
/// across a queue's lifetime until a slot's 32-bit generation wraps (2^32
/// reuses of one slot ≈ 10^13 events — beyond any simulation here).
using EventId = std::uint64_t;
using EventFn = InlineEvent;

/// Event source for the canonical tie-break. Tag 0 is the untagged default
/// (and the sharded kernel's coordinator); shard k's events carry k + 1.
using ShardTag = std::uint32_t;

class EventQueue {
 public:
  /// The canonical total order over events: (time, tag, seq), with seq
  /// counted per tag. Exposed so the sharded kernel can merge the heads of
  /// several queues into one global order.
  struct Key {
    SimTime time = 0;
    ShardTag tag = 0;
    std::uint64_t seq = 0;

    [[nodiscard]] constexpr bool operator<(const Key& o) const noexcept {
      if (time != o.time) return time < o.time;
      if (tag != o.tag) return tag < o.tag;
      return seq < o.seq;
    }
  };

  /// Schedules `fn` at absolute time `when` under `tag`. Returns an id
  /// usable with cancel(). Events at equal times fire in (tag, per-tag
  /// scheduling order). `sync` marks a synchronisation event: it still
  /// pops in canonical order, but is additionally tracked so
  /// next_sync_time() can bound a conservative window (sharded kernel).
  EventId schedule(SimTime when, EventFn fn, ShardTag tag = 0,
                   bool sync = false);

  /// Lazily cancels a pending event: the closure is destroyed immediately
  /// (releasing its captures) but the 16-byte heap node stays behind as a
  /// tombstone, skipped when it surfaces. Cancelling an id that already
  /// fired or was already cancelled is a no-op. O(1).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Canonical key of the earliest live event. Precondition: !empty().
  [[nodiscard]] Key head_key() const;
  /// True when the earliest live event is a sync event. Precondition:
  /// !empty().
  [[nodiscard]] bool next_is_sync() const;

  /// Earliest time of any pending sync event, or kNoSyncTime when none is
  /// pending. Cancelled sync events are dropped lazily, so a cancel can
  /// only make this conservative (too early), never too late.
  static constexpr SimTime kNoSyncTime = INT64_MAX;
  [[nodiscard]] SimTime next_sync_time() const;

  struct Popped {
    SimTime time;
    EventFn fn;
    ShardTag tag = 0;
    bool sync = false;
  };

  /// Removes and returns the earliest live event. Precondition: !empty().
  Popped pop();

 private:
  /// What sifts through the heap: one cache line holds four of these.
  struct Node {
    SimTime time;
    EventId id;
  };

  /// Closure storage, stable in the slab while its node is in the heap.
  struct Slot {
    EventFn fn;               ///< empty = cancelled tombstone or vacant
    std::uint64_t seq = 0;    ///< per-tag scheduling order: FIFO tie-break
    std::uint32_t gen = 0;    ///< bumped on free; stale ids mismatch
    std::uint32_t next_free = kNoSlot;
    ShardTag tag = 0;         ///< canonical-order source tag
    bool sync = false;        ///< tracked in sync_heap_ for windowing
  };

  /// Sync-event index entry, ordered like the main heap. Carries the id so
  /// stale entries (fired or cancelled sync events) are detected lazily.
  struct SyncNode {
    Key key;
    EventId id;
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr unsigned kArity = 4;

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Strict weak order: the canonical (time, tag, per-tag seq) key. Slab
  /// slots are pinned while their node is in the heap, so the tie-break
  /// key never moves.
  [[nodiscard]] bool earlier(const Node& a, const Node& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    const Slot& sa = slab_[slot_of(a.id)];
    const Slot& sb = slab_[slot_of(b.id)];
    if (sa.tag != sb.tag) return sa.tag < sb.tag;
    return sa.seq < sb.seq;
  }

  /// True when `n` still refers to a live, pending sync event.
  [[nodiscard]] bool sync_node_live(const SyncNode& n) const noexcept;

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_node() noexcept;  ///< removes heap_[0], restores heap order
  void drop_tombstones();    ///< discards cancelled nodes at the root
  void drop_stale_sync() const;  ///< discards dead sync_heap_ heads

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t index) noexcept;

  std::vector<Node> heap_;
  std::vector<Slot> slab_;
  /// Min-heap (via std::push_heap with inverted comparator) over pending
  /// sync events; entries go stale when their event fires or is cancelled
  /// and are discarded lazily at the head.
  mutable std::vector<SyncNode> sync_heap_;
  std::uint32_t free_head_ = kNoSlot;
  /// Per-tag sequence counters; index = tag, grown on first use of a tag.
  std::vector<std::uint64_t> next_seq_{0};
  std::size_t live_ = 0;  ///< scheduled, not yet fired or cancelled
};

}  // namespace vs::sim
