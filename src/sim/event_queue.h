// Pending-event set for the discrete-event kernel.
//
// Two cooperating structures (see docs/architecture.md, "Event kernel
// memory model"):
//
//  - a hand-rolled 4-ary min-heap of 16-byte (SimTime, EventId) PODs, so
//    sift operations move small trivially-copyable nodes and never touch a
//    closure;
//  - a free-list slab of closure slots indexed by the low 32 bits of the
//    EventId, with a generation tag in the high 32 bits that makes cancel()
//    safe against id reuse (a stale cancel is a no-op, never a misfire).
//
// Each slot also carries a monotonically increasing sequence number used as
// the equal-time tie-break, which guarantees FIFO order among events
// scheduled for the same instant — simulations stay fully deterministic
// regardless of heap internals, and the pop order is identical to the old
// binary-heap/std::function implementation.
//
// Steady-state schedule/pop performs zero heap allocations: closures live
// in recycled slab slots (inline up to InlineEvent::kInlineSize bytes) and
// the heap vector only grows to the high-water mark of pending events.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_event.h"
#include "sim/time.h"

namespace vs::sim {

/// Packs (generation << 32 | slab slot). Treat as opaque: ids are unique
/// across a queue's lifetime until a slot's 32-bit generation wraps (2^32
/// reuses of one slot ≈ 10^13 events — beyond any simulation here).
using EventId = std::uint64_t;
using EventFn = InlineEvent;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Returns an id usable with
  /// cancel(). Events at equal times fire in scheduling order.
  EventId schedule(SimTime when, EventFn fn);

  /// Lazily cancels a pending event: the closure is destroyed immediately
  /// (releasing its captures) but the 16-byte heap node stays behind as a
  /// tombstone, skipped when it surfaces. Cancelling an id that already
  /// fired or was already cancelled is a no-op. O(1).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  struct Popped {
    SimTime time;
    EventFn fn;
  };

  /// Removes and returns the earliest live event. Precondition: !empty().
  Popped pop();

 private:
  /// What sifts through the heap: one cache line holds four of these.
  struct Node {
    SimTime time;
    EventId id;
  };

  /// Closure storage, stable in the slab while its node is in the heap.
  struct Slot {
    EventFn fn;               ///< empty = cancelled tombstone or vacant
    std::uint64_t seq = 0;    ///< global scheduling order: FIFO tie-break
    std::uint32_t gen = 0;    ///< bumped on free; stale ids mismatch
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr unsigned kArity = 4;

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Strict weak order: (time, schedule sequence). Slab slots are pinned
  /// while their node is in the heap, so the tie-break key never moves.
  [[nodiscard]] bool earlier(const Node& a, const Node& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    return slab_[slot_of(a.id)].seq < slab_[slot_of(b.id)].seq;
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_node() noexcept;  ///< removes heap_[0], restores heap order
  void drop_tombstones();    ///< discards cancelled nodes at the root

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t index) noexcept;

  std::vector<Node> heap_;
  std::vector<Slot> slab_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  ///< scheduled, not yet fired or cancelled
};

}  // namespace vs::sim
