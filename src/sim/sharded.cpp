#include "sim/sharded.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace vs::sim {

namespace {

/// T + d without signed overflow near the open upper bound.
[[nodiscard]] SimTime saturating_add(SimTime t, SimDuration d) noexcept {
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  return t > kMax - d ? kMax : t + d;
}

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedOptions options)
    : workers_(options.workers < 1 ? 1 : options.workers),
      lookahead_(options.lookahead) {
  if (options.shards < 1) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  if (lookahead_ <= 0) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  global_.kernel_ = this;
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    auto sim = std::make_unique<Simulator>();
    sim->set_default_tag(static_cast<ShardTag>(i) + 1);
    sim->kernel_ = this;
    shards_.push_back(std::move(sim));
  }
  outboxes_.resize(shards_.size() + 1);
  post_seq_.resize(shards_.size() + 1, 0);
  if (workers_ > 1) pool_ = std::make_unique<util::ThreadPool>(workers_);
}

ShardedSimulator::~ShardedSimulator() = default;

std::uint64_t ShardedSimulator::events_executed() const noexcept {
  std::uint64_t n = global_.events_executed();
  for (const auto& s : shards_) n += s->events_executed();
  return n;
}

bool ShardedSimulator::any_work_pending() const noexcept {
  if (global_.has_pending()) return true;
  for (const auto& s : shards_) {
    if (s->has_pending()) return true;
  }
  return false;
}

SimTime ShardedSimulator::min_next_time() const {
  SimTime t = global_.has_pending() ? global_.next_time() : kNoEvent;
  for (const auto& s : shards_) {
    if (s->has_pending()) t = std::min(t, s->next_time());
  }
  return t;
}

SimTime ShardedSimulator::min_interaction_time() const {
  // Any coordinator event is an interaction (the cluster manager, link,
  // fault plane and sampler all read cross-shard state); on a shard only
  // sync events are.
  SimTime t = global_.has_pending() ? global_.next_time() : kNoEvent;
  for (const auto& s : shards_) t = std::min(t, s->next_sync_time());
  return t;
}

void ShardedSimulator::sync_clocks(SimTime t) {
  if (t > global_.now()) global_.set_now(t);
  for (auto& s : shards_) {
    if (t > s->now()) s->set_now(t);
  }
}

void ShardedSimulator::post(Simulator& from, int to_shard, SimDuration delay,
                            EventFn fn) {
  assert(delay >= 0 && "mailbox posts cannot travel into the past");
  if (to_shard < 0 || to_shard >= shard_count()) {
    throw std::out_of_range("ShardedSimulator::post: no such shard");
  }
  const ShardTag sender = from.default_tag();
  assert(sender < outboxes_.size() && "post() from a foreign simulator");
  Post p{from.now() + delay, sender, post_seq_[sender]++, to_shard,
         std::move(fn)};
  if (from.in_window_) {
    if (delay < lookahead_) {
      throw std::logic_error(
          "sharded kernel lookahead violation: cross-shard post below the "
          "lookahead inside a window");
    }
    // Thread-confined: only the worker executing this sender's window
    // touches its outbox; the coordinator drains after the pool barrier.
    outboxes_[sender].push_back(std::move(p));
  } else {
    deliver(std::move(p));
  }
}

void ShardedSimulator::deliver(Post&& p) {
  Simulator& target = shard(p.to_shard);
  assert(p.deliver >= target.now() && "mailbox delivery in the target past");
  // Outside event execution the target's current tag is its own default,
  // so the delivered event joins the target's canonical stream.
  target.schedule_at(p.deliver, std::move(p.fn));
}

void ShardedSimulator::flush_outboxes() {
  std::vector<Post> merged;
  for (auto& box : outboxes_) {
    merged.insert(merged.end(), std::make_move_iterator(box.begin()),
                  std::make_move_iterator(box.end()));
    box.clear();
  }
  if (merged.empty()) return;
  // (deliver time, sender tag, per-sender send seq) is a total order over
  // posts, so the target queues see one worker-count-independent sequence.
  std::sort(merged.begin(), merged.end(), [](const Post& a, const Post& b) {
    if (a.deliver != b.deliver) return a.deliver < b.deliver;
    if (a.from_tag != b.from_tag) return a.from_tag < b.from_tag;
    return a.seq < b.seq;
  });
  for (auto& p : merged) deliver(std::move(p));
}

std::uint64_t ShardedSimulator::serial_phase(SimTime t) {
  sync_clocks(t);
  std::uint64_t n = 0;
  // Execute every event at time t — from any queue — in canonical key
  // order, exactly as a single serial queue would pop them. Events an
  // execution schedules *at* t (zero-delay chains) join the scan with
  // larger per-tag seqs, so they fire later in the same phase.
  for (;;) {
    Simulator* best = nullptr;
    EventQueue::Key best_key{};
    auto consider = [&](Simulator& s) {
      if (!s.has_pending()) return;
      EventQueue::Key k = s.head_key();
      if (k.time != t) return;
      if (best == nullptr || k < best_key) {
        best = &s;
        best_key = k;
      }
    };
    consider(global_);
    for (auto& s : shards_) consider(*s);
    if (best == nullptr) break;
    best->step();
    ++n;
  }
  ++barriers_;
  return n;
}

std::uint64_t ShardedSimulator::run(SimTime until) {
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  const SimTime bound = until == kMax ? kMax : until + 1;  // open horizon cap
  std::uint64_t executed = 0;
  std::vector<std::uint64_t> counts(shards_.size(), 0);
  for (;;) {
    const SimTime t = min_next_time();
    if (t == kNoEvent || t > until) break;
    const SimTime s = min_interaction_time();
    assert(s >= t && "interaction points are a subset of pending events");
    const SimTime h =
        std::min({s, saturating_add(t, lookahead_), bound});
    if (t < h) {
      // Parallel window [t, h): every shard drains its local (non-sync)
      // events below the horizon; no coordinator event and no sync event
      // can fall in the window (h <= s), so shards touch disjoint state.
      std::fill(counts.begin(), counts.end(), 0);
      bool any = false;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Simulator* sh = shards_[i].get();
        if (!sh->has_pending() || sh->next_time() >= h) continue;
        any = true;
        if (pool_) {
          pool_->submit([sh, h, &counts, i] {
            counts[i] = sh->run_local_until(h);
          });
        } else {
          counts[i] = sh->run_local_until(h);
        }
      }
      if (pool_) pool_->wait();  // barrier; rethrows lookahead violations
      assert(any && "window chosen with no runnable shard");
      (void)any;
      for (std::uint64_t c : counts) executed += c;
      flush_outboxes();
      ++parallel_windows_;
    } else {
      // t == s: the earliest pending event is an interaction. Sync all
      // clocks and run the barrier timestep serially in canonical order.
      executed += serial_phase(t);
    }
  }
  // Like Simulator::run, a bounded run advances every clock to the bound:
  // "simulate up to this instant".
  if (until != kMax) sync_clocks(until);
  return executed;
}

}  // namespace vs::sim
