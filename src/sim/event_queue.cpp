#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace vs::sim {

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  EventId id = next_id_++;
  cancelled_.push_back(false);
  heap_.push(Entry{when, id, std::move(fn)});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id < cancelled_.size() && !cancelled_[id]) {
    cancelled_[id] = true;
    if (live_ > 0) --live_;
  }
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    // const_cast is confined here: popping dead entries does not change the
    // observable state of the queue.
    const_cast<EventQueue*>(this)->heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  skip_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; we need to move the closure out.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.fn)};
  heap_.pop();
  --live_;
  return out;
}

}  // namespace vs::sim
