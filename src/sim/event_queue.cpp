#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vs::sim {

namespace {

/// std::push_heap/pop_heap build a max-heap; invert the key order to get
/// the min-heap the sync index needs.
struct SyncLater {
  bool operator()(const EventQueue::Key& a,
                  const EventQueue::Key& b) const noexcept {
    return b < a;
  }
};

}  // namespace

EventId EventQueue::schedule(SimTime when, EventFn fn, ShardTag tag,
                             bool sync) {
  assert(fn && "scheduling an empty event");
  std::uint32_t index = alloc_slot();
  Slot& s = slab_[index];
  s.fn = std::move(fn);
  if (static_cast<std::size_t>(tag) >= next_seq_.size()) {
    next_seq_.resize(static_cast<std::size_t>(tag) + 1, 0);
  }
  s.seq = next_seq_[tag]++;
  s.tag = tag;
  s.sync = sync;
  EventId id = (static_cast<EventId>(s.gen) << 32) | index;
  heap_.push_back(Node{when, id});
  sift_up(heap_.size() - 1);
  ++live_;
  if (sync) {
    sync_heap_.push_back(SyncNode{Key{when, tag, s.seq}, id});
    std::push_heap(sync_heap_.begin(), sync_heap_.end(),
                   [](const SyncNode& a, const SyncNode& b) {
                     return SyncLater{}(a.key, b.key);
                   });
  }
  return id;
}

void EventQueue::cancel(EventId id) {
  std::uint32_t index = slot_of(id);
  if (index >= slab_.size()) return;
  Slot& s = slab_[index];
  // Generation mismatch: the event already fired (slot freed, possibly
  // reused). Empty fn with matching generation: already cancelled. Either
  // way the cancel is stale and must not touch live_.
  if (s.gen != gen_of(id) || !s.fn) return;
  s.fn.reset();  // release captures now; the heap node becomes a tombstone
  // A cancelled sync event leaves its sync_heap_ entry behind; it is
  // detected by generation/emptiness and dropped lazily. Until then
  // next_sync_time() can only under-report — a smaller window is always
  // safe for the conservative kernel.
  --live_;
}

SimTime EventQueue::next_time() const {
  // Tombstone removal does not change the observable state of the queue;
  // confine the const_cast here as the previous implementation did.
  const_cast<EventQueue*>(this)->drop_tombstones();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Key EventQueue::head_key() const {
  const_cast<EventQueue*>(this)->drop_tombstones();
  assert(!heap_.empty());
  const Node& root = heap_.front();
  const Slot& s = slab_[slot_of(root.id)];
  return Key{root.time, s.tag, s.seq};
}

bool EventQueue::next_is_sync() const {
  const_cast<EventQueue*>(this)->drop_tombstones();
  assert(!heap_.empty());
  return slab_[slot_of(heap_.front().id)].sync;
}

bool EventQueue::sync_node_live(const SyncNode& n) const noexcept {
  std::uint32_t index = slot_of(n.id);
  if (index >= slab_.size()) return false;
  const Slot& s = slab_[index];
  return s.gen == gen_of(n.id) && s.fn && s.sync;
}

void EventQueue::drop_stale_sync() const {
  while (!sync_heap_.empty() && !sync_node_live(sync_heap_.front())) {
    std::pop_heap(sync_heap_.begin(), sync_heap_.end(),
                  [](const SyncNode& a, const SyncNode& b) {
                    return SyncLater{}(a.key, b.key);
                  });
    sync_heap_.pop_back();
  }
}

SimTime EventQueue::next_sync_time() const {
  drop_stale_sync();
  return sync_heap_.empty() ? kNoSyncTime : sync_heap_.front().key.time;
}

EventQueue::Popped EventQueue::pop() {
  drop_tombstones();
  assert(!heap_.empty());
  const Node root = heap_.front();
  std::uint32_t index = slot_of(root.id);
  Popped out{root.time, std::move(slab_[index].fn), slab_[index].tag,
             slab_[index].sync};
  free_slot(index);
  pop_node();
  --live_;
  return out;
}

void EventQueue::drop_tombstones() {
  while (!heap_.empty()) {
    std::uint32_t index = slot_of(heap_.front().id);
    if (slab_[index].fn) break;
    free_slot(index);
    pop_node();
  }
}

void EventQueue::pop_node() noexcept {
  assert(!heap_.empty());
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) noexcept {
  Node node = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / kArity;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  Node node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    std::uint32_t index = free_head_;
    free_head_ = slab_[index].next_free;
    return index;
  }
  assert(slab_.size() < kNoSlot && "slab exhausted");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t index) noexcept {
  Slot& s = slab_[index];
  s.fn.reset();
  s.sync = false;
  ++s.gen;  // invalidates every outstanding id for this slot
  s.next_free = free_head_;
  free_head_ = index;
}

}  // namespace vs::sim
