#include "sim/core.h"

#include <cassert>
#include <utility>

namespace vs::sim {

Core::Core(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void Core::submit(SimDuration duration, EventFn on_done, std::string label) {
  assert(duration >= 0);
  queue_.push_back(Op{duration, std::move(on_done), std::move(label)});
  ops_total_.add();
  queue_depth_.add(1.0);
  if (!busy_) start_next();
}

void Core::bind_metrics(obs::MetricsRegistry& registry) {
  obs::Labels labels{{"core", name_}};
  ops_total_ =
      obs::CounterHandle{&registry.counter("vs_core_ops_total", labels)};
  busy_ns_total_ =
      obs::CounterHandle{&registry.counter("vs_core_busy_ns_total", labels)};
  queue_depth_ =
      obs::GaugeHandle{&registry.gauge("vs_core_queue_depth", labels)};
}

SimTime Core::available_at() const noexcept {
  if (!busy_) return sim_.now();
  SimTime t = current_end_;
  for (const Op& op : queue_) t += op.duration;
  return t;
}

void Core::start_next() {
  assert(!busy_ && !queue_.empty());
  Op op = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  current_label_ = std::move(op.label);
  current_end_ = sim_.now() + op.duration;
  busy_time_ += op.duration;
  busy_ns_total_.add(op.duration);
  current_done_ = std::move(op.on_done);
  finish_event_ = sim_.schedule(op.duration, [this] { finish_current(); });
}

void Core::reset() {
  if (busy_) {
    sim_.cancel(finish_event_);
    // start_next() charged the full duration up front; give back the part
    // that will never execute.
    if (current_end_ > sim_.now()) {
      sim::SimDuration remaining = current_end_ - sim_.now();
      busy_time_ -= remaining;
      busy_ns_total_.add(-remaining);
    }
    busy_ = false;
    current_label_.clear();
    current_done_ = EventFn{};
  }
  queue_.clear();
  queue_depth_.set(0.0);
}

void Core::finish_current() {
  busy_ = false;
  current_label_.clear();
  queue_depth_.add(-1.0);
  // Move out first: the callback may submit more work and restart the core,
  // which would overwrite current_done_.
  EventFn done = std::move(current_done_);
  if (done) done();
  // The completion callback may have submitted more work and restarted the
  // core already; only pull the next op if still idle.
  if (!busy_ && !queue_.empty()) start_next();
}

}  // namespace vs::sim
