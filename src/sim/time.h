// Simulation time: signed 64-bit nanoseconds since simulation start.
//
// Signed so that durations and differences never hit unsigned wraparound
// (Core Guidelines ES.102); int64 ns covers ~292 years of simulated time.
#pragma once

#include <cstdint>

namespace vs::sim {

using SimTime = std::int64_t;      ///< absolute time, ns since start
using SimDuration = std::int64_t;  ///< duration, ns

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration us(double v) noexcept {
  return static_cast<SimDuration>(v * static_cast<double>(kMicrosecond));
}
constexpr SimDuration ms(double v) noexcept {
  return static_cast<SimDuration>(v * static_cast<double>(kMillisecond));
}
constexpr SimDuration seconds(double v) noexcept {
  return static_cast<SimDuration>(v * static_cast<double>(kSecond));
}

constexpr double to_ms(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double to_us(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace vs::sim
