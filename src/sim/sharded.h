// Sharded event kernel: conservative time-window parallel simulation.
//
// A ShardedSimulator splits one logical simulation into a *coordinator*
// Simulator (tag 0: arrivals, the Aurora link, fault-plane hazards,
// telemetry sampler ticks, recovery timers — everything that reads or
// writes cross-shard state) plus N *shard* Simulators (tags 1..N: one per
// board, holding only that board's local events — core ops, DMA, PCAP,
// item execution, checkpoint ticks). The run loop alternates two phases:
//
//  - Parallel window. With T the earliest pending event anywhere and S the
//    earliest *interaction* point (the coordinator's next event, or any
//    shard's next sync event), every shard executes its local events in
//    [T, H) on a util::ThreadPool worker, where
//        H = min(S, T + lookahead).
//    The lookahead is the minimum delay with which a local event can
//    create a new interaction (for a cluster run: the minimum item latency
//    of the suite, floored by the Aurora setup latency); a sync event
//    scheduled below the horizon anyway throws (lookahead violation).
//    Shards share no mutable state — per-board runtimes, per-board metric
//    cells, per-board RNG streams — so the phase is race-free by
//    construction (pinned by the TSan gate in scripts/check.sh).
//
//  - Serial barrier. When the next pending event *is* an interaction
//    (T == S), all clocks sync to T and every event at time T — from any
//    queue, coordinator or shard — executes on the calling thread in the
//    canonical (time, tag, seq) order of event_queue.h. Cross-shard
//    mailbox posts buffered during the window are merged here, ordered by
//    (deliver time, sender tag, send seq).
//
// Because each shard's queue assigns the same per-tag sequence numbers as
// the corresponding tag of a single serial queue, and every cross-shard
// interaction happens at a barrier in canonical order, the observable
// execution — event order at every interaction point, therefore every
// CSV row, metric export and RNG stream — is a pure function of the seed,
// independent of the worker count. The serial kernel remains the default
// and the reference oracle; tests/sharded_kernel_test.cpp holds the two
// bit-identical. See docs/architecture.md, "Sharded event kernel".
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace vs::util {
class ThreadPool;
}  // namespace vs::util

namespace vs::sim {

struct ShardedOptions {
  /// Number of shard queues (one per board for a cluster run).
  int shards = 1;
  /// Worker threads for the parallel phase; <= 1 runs windows inline on
  /// the calling thread (same schedule, no pool).
  int workers = 1;
  /// Conservative window depth: the minimum delay with which a shard-local
  /// event can schedule a new sync event. Must be > 0.
  SimDuration lookahead = ms(1.0);
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedOptions options);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Coordinator simulator (tag 0). Cross-shard components — cluster
  /// manager, Aurora link, fault plane, telemetry sampler — live here.
  [[nodiscard]] Simulator& global() noexcept { return global_; }
  /// Shard `i`'s simulator (tag i + 1). Board i's devices live here.
  [[nodiscard]] Simulator& shard(int i) {
    return *shards_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] SimDuration lookahead() const noexcept { return lookahead_; }

  [[nodiscard]] SimTime now() const noexcept { return global_.now(); }
  /// Events executed across the coordinator and all shards.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;
  /// True while any queue (coordinator or shard) holds a pending event.
  [[nodiscard]] bool any_work_pending() const noexcept;

  /// Cross-shard mailbox: delivers `fn` into shard `to_shard`'s queue at
  /// `from.now() + delay`. From a shard (i.e. inside a parallel window)
  /// the delay must be >= lookahead and delivery is buffered until the
  /// next barrier; from the coordinator (serial context) delivery is
  /// immediate. Deliveries merge in (deliver time, sender tag, send seq)
  /// order, so the target's event order is independent of worker count.
  void post(Simulator& from, int to_shard, SimDuration delay, EventFn fn);

  /// Runs the window loop until every queue drains or `until` is passed
  /// (events strictly after `until` stay pending; all clocks advance to
  /// the bound, like Simulator::run). Returns events executed this call.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Window-loop introspection (tests and benches).
  [[nodiscard]] std::uint64_t parallel_windows() const noexcept {
    return parallel_windows_;
  }
  [[nodiscard]] std::uint64_t barriers() const noexcept { return barriers_; }

 private:
  struct Post {
    SimTime deliver = 0;
    ShardTag from_tag = 0;
    std::uint64_t seq = 0;  ///< per-sender send order
    int to_shard = 0;
    EventFn fn;
  };

  /// Earliest pending event time anywhere (kNoEvent when all drained).
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
  [[nodiscard]] SimTime min_next_time() const;
  /// Earliest interaction point: coordinator's next event or any shard's
  /// next sync event.
  [[nodiscard]] SimTime min_interaction_time() const;
  void sync_clocks(SimTime t);
  void flush_outboxes();
  void deliver(Post&& p);
  std::uint64_t serial_phase(SimTime t);

  Simulator global_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  int workers_ = 1;
  SimDuration lookahead_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when workers_ <= 1
  /// One outbox per sender (index 0 = coordinator, i + 1 = shard i): only
  /// ever written by the thread executing that sender's events, drained at
  /// barriers by the coordinator thread after the pool barrier.
  std::vector<std::vector<Post>> outboxes_;
  std::vector<std::uint64_t> post_seq_;  ///< per-sender send counters
  std::uint64_t parallel_windows_ = 0;
  std::uint64_t barriers_ = 0;
};

}  // namespace vs::sim
