// Small-buffer-optimized event closure: the allocation-free EventFn.
//
// The DES hot path schedules millions of short-lived closures per simulated
// second. std::function heap-allocates once its (implementation-defined,
// typically 16-byte) inline buffer overflows, which every capture of
// [this, app_id, unit_index, ...] does. InlineEvent gives event callbacks 64
// bytes of inline storage — enough for every steady-state closure in this
// repository — and falls back to the heap only for oversized captures, so
// the event kernel executes with zero allocations per event (see
// bench/micro_substrate.cpp's allocation-counting hook).
//
// Move-only by design: closures are scheduled once and invoked once, and
// copyability is what forces std::function to heap-allocate move-only
// captures behind shared wrappers. Dispatch is a three-entry static vtable
// (invoke / relocate / destroy) rather than virtual inheritance, keeping the
// object trivially relocatable storage plus one pointer.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace vs::sim {

class InlineEvent {
 public:
  /// Bytes of inline closure storage. Sized for the largest steady-state
  /// capture in the runtime (BoardRuntime's PR-completion callback: a this
  /// pointer, two ints, a SimTime and a std::string ≈ 56 bytes) with a
  /// little headroom; larger captures still work via a heap fallback.
  static constexpr std::size_t kInlineSize = 64;

  InlineEvent() noexcept = default;
  InlineEvent(std::nullptr_t) noexcept {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineEvent> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineEvent(F&& f) {  // NOLINT: implicit, mirrors std::function
    emplace(std::forward<F>(f));
  }

  InlineEvent(InlineEvent&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() {
    assert(vt_ != nullptr && "invoking an empty InlineEvent");
    vt_->invoke(buf_);
  }

  /// Destroys the held closure (no-op when empty).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True when a callable of F's size and alignment lives in the inline
  /// buffer rather than behind a heap pointer (exposed for tests).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    using D = std::remove_cvref_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-constructs the closure from `from` into `to`, destroying the
    /// source: the primitive a move of the whole InlineEvent needs.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* self) noexcept {
        std::launder(reinterpret_cast<D*>(self))->~D();
      },
  };

  // Heap fallback: the buffer holds just a D*, so relocation moves the
  // pointer and never re-moves the (possibly expensive) closure itself.
  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      [](void* from, void* to) noexcept {
        D** src = std::launder(reinterpret_cast<D**>(from));
        ::new (to) D*(*src);
      },
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<D**>(self));
      },
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];
};

}  // namespace vs::sim
