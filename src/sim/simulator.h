// The discrete-event simulator: a clock plus the pending-event set.
//
// All FPGA-board, scheduler and cluster behaviour in this repository is
// expressed as events against one Simulator instance. A Simulator is
// single-threaded by design: determinism is a core requirement (identical
// seed => identical result), and the workloads simulate in milliseconds of
// wall time.
//
// Shard tags. Every event carries the ShardTag it was scheduled under and
// equal-time events fire in canonical (time, tag, per-tag seq) order (see
// event_queue.h). The tag is *inherited*: while an event executes, any
// events it schedules carry the executing event's tag, so one TagScope at
// a cross-shard entry point (e.g. the cluster manager calling into a
// board) tags the whole causal chain after it. Untagged simulations run
// entirely under tag 0 and behave exactly as before.
//
// Sync events. schedule_sync() marks an event that may touch state outside
// its own shard (for a board: the item-finish event that can complete an
// app and invoke the cluster's completion hook). The sharded kernel
// (sim/sharded.h) bounds its conservative windows by next_sync_time() and
// executes sync events only at barriers; a serial simulation treats them
// exactly like ordinary events.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace vs::sim {

class ShardedSimulator;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` ns from now (delay >= 0) under the
  /// current shard tag.
  EventId schedule(SimDuration delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId schedule_at(SimTime when, EventFn fn);

  /// Schedules a synchronisation event (see file comment). Inside a
  /// sharded parallel window the delay must be at least the kernel's
  /// lookahead; a shorter delay throws std::logic_error (a lookahead
  /// violation would break the conservative window invariant).
  EventId schedule_sync(SimDuration delay, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or `until` is passed (events strictly
  /// after `until` stay pending). Returns the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Executes exactly one event if present. Returns false when drained.
  bool step();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  /// True while this simulation still has work anywhere: its own queue,
  /// or — when this Simulator belongs to a sharded kernel — any sibling
  /// shard's queue. Self-re-arming chains (the telemetry Sampler) must use
  /// this rather than idle() so they behave identically under both
  /// kernels.
  [[nodiscard]] bool work_pending() const;
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  // ------------------------------------------------------------ shard tags
  /// Tag under which schedule() calls currently register events: the
  /// executing event's tag while one runs, the default tag otherwise.
  [[nodiscard]] ShardTag current_tag() const noexcept { return tag_; }
  /// Permanent default tag for this simulator (a sharded kernel pins each
  /// shard's simulator to its own tag; serial simulations leave it 0).
  void set_default_tag(ShardTag tag) noexcept {
    default_tag_ = tag;
    tag_ = tag;
  }
  [[nodiscard]] ShardTag default_tag() const noexcept { return default_tag_; }

  // ----------------------------------------------- sharded-kernel surface
  // The calls below are the contract between one shard's queue and the
  // window loop in sim/sharded.cpp; ordinary simulation code never needs
  // them.

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  /// Earliest pending event time. Precondition: has_pending().
  [[nodiscard]] SimTime next_time() const { return queue_.next_time(); }
  /// Canonical key of the earliest pending event. Precondition:
  /// has_pending().
  [[nodiscard]] EventQueue::Key head_key() const { return queue_.head_key(); }
  /// Earliest pending sync-event time (EventQueue::kNoSyncTime when none).
  [[nodiscard]] SimTime next_sync_time() const {
    return queue_.next_sync_time();
  }

  /// Parallel-window body: executes local events strictly before `horizon`
  /// in canonical order. Sync events never run here — the window horizon
  /// is chosen at or below the earliest sync time, and a sync scheduled
  /// *during* the window below the horizon throws (lookahead violation).
  /// The clock is left at the last executed event; the kernel re-syncs all
  /// clocks at the next barrier. Returns the number of events executed.
  std::uint64_t run_local_until(SimTime horizon);

  /// Barrier clock sync (kernel-internal): jumps the clock forward without
  /// executing anything.
  void set_now(SimTime t) noexcept;

 private:
  friend class ShardedSimulator;
  friend class TagScope;

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  ShardTag tag_ = 0;          ///< tag applied to schedule() calls right now
  ShardTag default_tag_ = 0;  ///< tag outside any event execution
  ShardedSimulator* kernel_ = nullptr;  ///< set when owned by a sharded run
  /// Lookahead guard, active only inside run_local_until: a sync event
  /// scheduled before this floor is a conservative-window violation.
  SimTime sync_floor_ = 0;
  bool in_window_ = false;
};

/// RAII shard-tag override for cross-shard entry points: everything
/// scheduled while the scope is alive (including the whole causal chain of
/// those events, via tag inheritance) carries `tag`. Board entry points
/// (submit, kick, fault injection) wrap themselves in one so cluster-level
/// callers stamp board-bound work with the board's tag under both kernels.
class TagScope {
 public:
  TagScope(Simulator& sim, ShardTag tag) noexcept
      : sim_(sim), saved_(sim.tag_) {
    sim_.tag_ = tag;
  }
  ~TagScope() { sim_.tag_ = saved_; }
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;

 private:
  Simulator& sim_;
  ShardTag saved_;
};

}  // namespace vs::sim
