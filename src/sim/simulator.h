// The discrete-event simulator: a clock plus the pending-event set.
//
// All FPGA-board, scheduler and cluster behaviour in this repository is
// expressed as events against one Simulator instance. Single-threaded by
// design: determinism is a core requirement (identical seed => identical
// result), and the workloads simulate in milliseconds of wall time.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace vs::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` ns from now (delay >= 0).
  EventId schedule(SimDuration delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId schedule_at(SimTime when, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the event set drains or `until` is passed (events strictly
  /// after `until` stay pending). Returns the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Executes exactly one event if present. Returns false when drained.
  bool step();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace vs::sim
