#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace vs::sim {

EventId Simulator::schedule(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "events cannot be scheduled in the past");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "events cannot be scheduled in the past");
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    fn();
    ++n;
    ++executed_;
  }
  // The clock advances to the bound (later events stay pending): a bounded
  // run means "simulate up to this instant".
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) {
    now_ = until;
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, fn] = queue_.pop();
  now_ = time;
  fn();
  ++executed_;
  return true;
}

}  // namespace vs::sim
