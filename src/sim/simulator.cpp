#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/sharded.h"

namespace vs::sim {

EventId Simulator::schedule(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "events cannot be scheduled in the past");
  return queue_.schedule(now_ + delay, std::move(fn), tag_);
}

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "events cannot be scheduled in the past");
  return queue_.schedule(when, std::move(fn), tag_);
}

EventId Simulator::schedule_sync(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "events cannot be scheduled in the past");
  SimTime when = now_ + delay;
  if (in_window_ && when < sync_floor_) {
    // The conservative window assumed no sync event could materialise
    // before the horizon; this schedule would break bit-identity with the
    // serial kernel. The lookahead (minimum item latency for a cluster
    // run) was chosen too large — a configuration bug, not a race.
    throw std::logic_error(
        "sharded kernel lookahead violation: sync event scheduled inside "
        "the current window");
  }
  return queue_.schedule(when, std::move(fn), tag_, /*sync=*/true);
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto popped = queue_.pop();
    now_ = popped.time;
    tag_ = popped.tag;  // tag inheritance: nested schedules keep the tag
    popped.fn();
    ++n;
    ++executed_;
  }
  tag_ = default_tag_;
  // The clock advances to the bound (later events stay pending): a bounded
  // run means "simulate up to this instant".
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) {
    now_ = until;
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto popped = queue_.pop();
  now_ = popped.time;
  tag_ = popped.tag;
  popped.fn();
  tag_ = default_tag_;
  ++executed_;
  return true;
}

bool Simulator::work_pending() const {
  if (!queue_.empty()) return true;
  return kernel_ != nullptr && kernel_->any_work_pending();
}

std::uint64_t Simulator::run_local_until(SimTime horizon) {
  std::uint64_t n = 0;
  in_window_ = true;
  sync_floor_ = horizon;
  try {
    while (!queue_.empty() && queue_.next_time() < horizon &&
           !queue_.next_is_sync()) {
      auto popped = queue_.pop();
      now_ = popped.time;
      tag_ = popped.tag;
      popped.fn();
      ++n;
      ++executed_;
    }
  } catch (...) {
    tag_ = default_tag_;
    in_window_ = false;
    sync_floor_ = 0;
    throw;
  }
  tag_ = default_tag_;
  in_window_ = false;
  sync_floor_ = 0;
  return n;
}

void Simulator::set_now(SimTime t) noexcept {
  assert(t >= now_ && "the clock only moves forward");
  now_ = t;
}

}  // namespace vs::sim
