#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vs::util {

namespace {
// Atomic so parallel sweep replicas (util/thread_pool) can consult the
// level concurrently without a data race; writes remain rare main-thread
// configuration.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::function<std::int64_t()> g_time_source;
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
// VS_LOG is applied exactly once, at static-init time, mirroring how
// VS_JOBS resolves the sweep worker count.
struct EnvInit {
  EnvInit() { Log::init_from_env(); }
};
const EnvInit g_env_init;

}  // namespace

LogLevel parse_log_level(const std::string& s, LogLevel fallback) noexcept {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return fallback;
}

void Log::init_from_env() {
  if (const char* env = std::getenv("VS_LOG"); env != nullptr && *env != '\0') {
    set_level(parse_log_level(env, level()));
  }
}

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void Log::set_time_source(std::function<std::int64_t()> source) {
  std::lock_guard lock(g_mutex);
  g_time_source = std::move(source);
}

void Log::write(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_mutex);
  if (g_time_source) {
    double ms = static_cast<double>(g_time_source()) / 1e6;
    std::fprintf(stderr, "[%s] [t=%.3fms] %s\n", level_name(level), ms,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace vs::util
