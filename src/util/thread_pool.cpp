#include "util/thread_pool.h"

#include <cstdlib>

#include "util/cli.h"

namespace vs::util {

namespace {

int clamp_workers(long n) {
  if (n < 1) return 0;  // caller treats 0 as "not specified"
  return static_cast<int>(n > 1024 ? 1024 : n);
}

}  // namespace

int resolve_jobs(const CliArgs* cli) {
  if (cli != nullptr && cli->has("jobs")) {
    int n = clamp_workers(cli->get_int("jobs", 0));
    if (n > 0) return n;
  }
  if (const char* env = std::getenv("VS_JOBS")) {
    int n = clamp_workers(std::strtol(env, nullptr, 10));
    if (n > 0) return n;
  }
  int hw = clamp_workers(static_cast<long>(std::thread::hardware_concurrency()));
  return hw > 0 ? hw : 1;
}

int resolve_kernel_jobs(const CliArgs* cli) {
  if (cli != nullptr && cli->has("kernel-jobs")) {
    return clamp_workers(cli->get_int("kernel-jobs", 0));
  }
  if (const char* env = std::getenv("VS_KERNEL_JOBS")) {
    return clamp_workers(std::strtol(env, nullptr, 10));
  }
  return 0;
}

ThreadPool::ThreadPool(int workers) {
  int n = workers < 1 ? 1 : workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(int workers, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      static_cast<std::size_t>(workers) < n ? static_cast<std::size_t>(workers)
                                            : n));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace vs::util
