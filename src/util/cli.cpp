#include "util/cli.h"

#include <cstdlib>

namespace vs::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      flags_[name.substr(0, eq)] = name.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[name] = argv[++i];
    } else {
      flags_[name] = "true";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = flags_.find(name);
  return it != flags_.end() ? it->second : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::int64_t resolve_int(const CliArgs* cli, const std::string& flag,
                         const char* env, std::int64_t fallback) {
  if (cli != nullptr && cli->has(flag)) return cli->get_int(flag, fallback);
  if (const char* value = std::getenv(env)) {
    return std::strtoll(value, nullptr, 10);
  }
  return fallback;
}

double resolve_double(const CliArgs* cli, const std::string& flag,
                      const char* env, double fallback) {
  if (cli != nullptr && cli->has(flag)) return cli->get_double(flag, fallback);
  if (const char* value = std::getenv(env)) {
    return std::strtod(value, nullptr);
  }
  return fallback;
}

}  // namespace vs::util
