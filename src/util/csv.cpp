#include "util/csv.h"

#include <stdexcept>

#include "util/table.h"

namespace vs::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& cells) {
  begin_row();
  for (const auto& c : cells) field(c);
  end_row();
}

void CsvWriter::begin_row() { first_in_row_ = true; }

void CsvWriter::field(const std::string& value) { write_cell(value); }

void CsvWriter::field(double value) { write_cell(fmt(value, 6)); }


void CsvWriter::end_row() { out_ << '\n'; }

void CsvWriter::write_cell(const std::string& value) {
  if (!first_in_row_) out_ << ',';
  first_in_row_ = false;
  if (value.find_first_of(",\"\n") != std::string::npos) {
    out_ << '"';
    for (char c : value) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << value;
  }
}

}  // namespace vs::util
