// Minimal CSV writer for exporting benchmark series (D_switch traces,
// response-time distributions) for external plotting.
#pragma once

#include <concepts>
#include <fstream>
#include <string>
#include <vector>

namespace vs::util {

/// Writes rows of string/number cells to a CSV file. Quotes cells that
/// contain separators. Throws std::runtime_error if the file cannot be
/// opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& cells);

  /// Convenience: mixed string/number row.
  void begin_row();
  void field(const std::string& value);
  void field(double value);
  template <std::integral T>
  void field(T value) {
    field(std::to_string(value));
  }
  void end_row();

 private:
  void write_cell(const std::string& value);

  std::ofstream out_;
  bool first_in_row_ = true;
};

}  // namespace vs::util
