#include "util/table.h"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace vs::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != 'x' && c != '%') {
      return false;
    }
  }
  return digit;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

std::size_t Table::add_row() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

void Table::cell(std::string value) {
  if (rows_.empty()) add_row();
  rows_.back().push_back(std::move(value));
}

void Table::cell(double value, int precision) { cell(fmt(value, precision)); }

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string value = i < cells.size() ? cells[i] : "";
      std::size_t pad = widths[i] - value.size();
      if (align_numeric && looks_numeric(value)) {
        out << "  " << std::string(pad, ' ') << value;
      } else {
        out << "  " << value << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  emit(header_, false);
  out << "  ";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out << std::string(widths[i], '-');
    if (i + 1 < widths.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) emit(row, true);
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_duration_ns(long long ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", ns);
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f us", v / 1e3);
  } else if (ns < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / 1e9);
  }
  return buf;
}

}  // namespace vs::util
