// Deterministic random number generation for reproducible simulations.
//
// Results produced by the simulator must be bit-identical across platforms
// and standard-library implementations, so we avoid std::uniform_*
// distributions (whose algorithms are unspecified) and implement PCG32
// streams seeded through SplitMix64. Every stochastic component of the
// system draws from its own named stream derived from a single master seed.
#pragma once

#include <cstdint>
#include <string_view>

namespace vs::util {

/// SplitMix64 step: used for seed derivation only.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit FNV-1a hash of a label, for deriving named sub-streams.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// PCG32 (XSH-RR variant): small, fast, statistically solid, and fully
/// specified so sequences are reproducible everywhere.
class Rng {
 public:
  Rng() noexcept : Rng(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  /// Seeds the generator; `stream` selects one of 2^63 independent sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 1) noexcept {
    inc_ = (stream << 1u) | 1u;
    state_ = 0;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Derives an independent child stream identified by a label. Children of
  /// the same parent with distinct labels never share a sequence.
  [[nodiscard]] Rng fork(std::string_view label) const noexcept {
    std::uint64_t s = state_ ^ fnv1a(label);
    return Rng{splitmix64(s), fnv1a(label) | 1u};
  }

  std::uint32_t next_u32() noexcept {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform integer in [lo, hi] inclusive. Uses Lemire rejection to avoid
  /// modulo bias. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace vs::util
