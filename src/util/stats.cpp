#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace vs::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  auto total = static_cast<double>(n_ + other.n_);
  double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

/// The R-7 rank for quantile `q` over `n` samples: the two bracketing
/// order statistics and the interpolation fraction between them.
struct Rank {
  std::size_t lo;
  std::size_t hi;
  double frac;
};

Rank rank_of(std::size_t n, double q) {
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(n - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, n - 1);
  return Rank{lo, hi, rank - static_cast<double>(lo)};
}

}  // namespace

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  Rank r = rank_of(values.size(), q);
  auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(r.lo);
  std::nth_element(values.begin(), lo_it, values.end());
  double lo_v = *lo_it;
  if (r.hi == r.lo) return lo_v;
  // The hi-th order statistic is the minimum of the partition above lo.
  double hi_v = *std::min_element(lo_it + 1, values.end());
  return lo_v + r.frac * (hi_v - lo_v);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  Rank r = rank_of(sorted.size(), q);
  return sorted[r.lo] + r.frac * (sorted[r.hi] - sorted[r.lo]);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  s.p999 = percentile_sorted(sorted, 0.999);
  return s;
}

}  // namespace vs::util
