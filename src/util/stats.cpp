#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace vs::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  auto total = static_cast<double>(n_ + other.n_);
  double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double rank = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  auto pct = [&](double q) {
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  return s;
}

}  // namespace vs::util
