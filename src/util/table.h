// Console table formatter used by benches and examples to print the
// paper-shaped result rows (Fig 5/6/7/8 reproductions).
#pragma once

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace vs::util {

/// Column-aligned plain-text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendered with a header rule and right
/// alignment for cells that parse as numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; returns its index.
  std::size_t add_row();

  /// Appends a cell to the last row.
  void cell(std::string value);
  void cell(const char* value) { cell(std::string(value)); }
  void cell(double value, int precision = 3);
  template <std::integral T>
  void cell(T value) {
    cell(std::to_string(value));
  }

  /// Appends a full row at once.
  void row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats nanoseconds as a human-readable duration (e.g. "12.4 ms").
[[nodiscard]] std::string fmt_duration_ns(long long ns);

}  // namespace vs::util
