// Minimal command-line flag parser for the example drivers: supports
// --name value and --name=value forms, typed lookups with defaults, and
// a generated usage string. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vs::util {

class CliArgs {
 public:
  /// Parses argv; unknown flags are collected (the caller decides whether
  /// they are errors). Positional arguments are kept in order.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = {}) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Generic knob resolution, same precedence as resolve_jobs/resolve_kernel_
/// jobs (util/thread_pool.h): the `--flag` wins, then the `env` variable,
/// then `fallback`. Benches use these for sweepable knobs so scripted runs
/// can set VS_* once instead of threading flags everywhere.
[[nodiscard]] std::int64_t resolve_int(const CliArgs* cli,
                                       const std::string& flag,
                                       const char* env, std::int64_t fallback);
[[nodiscard]] double resolve_double(const CliArgs* cli,
                                    const std::string& flag, const char* env,
                                    double fallback);

}  // namespace vs::util
