// Fixed-size worker pool for embarrassingly parallel simulation sweeps.
//
// The simulator itself stays single-threaded (determinism is a core
// requirement); parallelism lives one level up, where fully independent
// replicas — one sim::Simulator per job — shard across hardware threads.
// The pool therefore needs no work stealing or futures: jobs are opaque
// closures, callers key results by job index and reduce in that order, so
// aggregate output is bit-identical to a serial run (see metrics/sweep.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vs::util {

class CliArgs;

/// Resolves the worker count for a sweep, in precedence order:
///   1. `--jobs N` on the command line (when `cli` is given),
///   2. the VS_JOBS environment variable,
///   3. std::thread::hardware_concurrency().
/// Values are clamped to >= 1; 0 or garbage falls through to the next rule.
[[nodiscard]] int resolve_jobs(const CliArgs* cli = nullptr);

/// Resolves the sharded event-kernel worker count (`--kernel-jobs N`, then
/// the VS_KERNEL_JOBS environment variable). Unlike resolve_jobs there is
/// no hardware fallback: the default of 0 selects the serial reference
/// kernel, so sharding stays strictly opt-in.
[[nodiscard]] int resolve_kernel_jobs(const CliArgs* cli = nullptr);

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Enqueues a job. Jobs run in submission order but complete in any
  /// order; use wait() for a barrier. An exception escaping a job is
  /// captured (first one wins) and rethrown by the next wait() — the pool
  /// itself keeps draining, so one failed replica never wedges a sweep.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished, then rethrows the
  /// first captured job exception, if any. The pool stays usable after.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing jobs
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) across `workers` threads and returns when all are
/// done. Results belong to the caller (write into a pre-sized vector slot
/// per index); the first exception thrown by any fn is rethrown here after
/// the remaining jobs drain. With workers <= 1 the loop runs inline, so a
/// single-job sweep is exactly the serial code path.
void parallel_for(int workers, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vs::util
