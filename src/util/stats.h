// Streaming and batch summary statistics used by the metrics layer.
#pragma once

#include <cstddef>
#include <vector>

namespace vs::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile with linear interpolation (the "exclusive" R-7 method
/// used by numpy's default). `q` in [0, 1]. Returns 0 for empty input.
/// Selects the two bracketing order statistics with nth_element (O(n)), so
/// a one-off query never pays a full sort.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// R-7 percentile of an already ascending-sorted sample. Use this (after
/// one sort) when querying several quantiles of the same vector —
/// summarize() is the common packaged case.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Convenience summary over a sample: mean, p50, p95, p99, p99.9, min, max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& values);

}  // namespace vs::util
