// Lightweight leveled logger. Simulation components log with a sim-time
// prefix supplied by the active Simulator (set via set_time_source).
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace vs::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive); unrecognised strings return `fallback`.
[[nodiscard]] LogLevel parse_log_level(const std::string& s,
                                       LogLevel fallback) noexcept;

/// Global log configuration. Default level is kWarn so simulations stay
/// quiet in tests and benches; examples raise it to kInfo. The VS_LOG
/// environment variable overrides the default at startup (resolved once,
/// like VS_JOBS); explicit set_level() calls still win afterwards.
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Applies VS_LOG to the global level; unset/invalid values leave it
  /// untouched. Runs automatically at static-init time; exposed for tests.
  static void init_from_env();

  /// Installs a callback returning the current simulation time in ns, used
  /// to prefix messages. Pass nullptr to clear.
  static void set_time_source(std::function<std::int64_t()> source);

  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace vs::util

#define VS_LOG_AT(lvl)                            \
  if (static_cast<int>(lvl) <                     \
      static_cast<int>(::vs::util::Log::level())) \
    ;                                             \
  else                                            \
    ::vs::util::detail::LogLine(lvl)

#define VS_TRACE VS_LOG_AT(::vs::util::LogLevel::kTrace)
#define VS_DEBUG VS_LOG_AT(::vs::util::LogLevel::kDebug)
#define VS_INFO VS_LOG_AT(::vs::util::LogLevel::kInfo)
#define VS_WARN VS_LOG_AT(::vs::util::LogLevel::kWarn)
#define VS_ERROR VS_LOG_AT(::vs::util::LogLevel::kError)
