#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace vs::cluster {

namespace {

const char* config_name(core::SwitchLoop::Config config) {
  return config == core::SwitchLoop::Config::kBigLittle ? "Big.Little"
                                                        : "Only.Little";
}

}  // namespace

Cluster::Cluster(sim::Simulator& sim, const std::vector<apps::AppSpec>& suite,
                 ClusterOptions options)
    : sim_(sim),
      suite_(suite),
      options_(options),
      link_(sim, options.link_params),
      monitor_(options.dswitch_period),
      loop_(options.t1, options.t2, options.initial) {
  assert(options_.boards_per_config >= 1);
  options_.bl_policy.mode = core::VersaSlotOptions::Mode::kBigLittle;
  options_.ol_policy.mode = core::VersaSlotOptions::Mode::kOnlyLittle;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    link_.bind_metrics(reg);
    m_dswitch_evals_ =
        obs::CounterHandle{&reg.counter("vs_dswitch_evaluations_total")};
    m_switches_ =
        obs::CounterHandle{&reg.counter("vs_dswitch_switches_total")};
    m_migrated_apps_ =
        obs::CounterHandle{&reg.counter("vs_cluster_migrated_apps_total")};
    m_dswitch_value_ = obs::GaugeHandle{&reg.gauge("vs_dswitch_value")};
    m_active_apps_ = obs::GaugeHandle{&reg.gauge("vs_cluster_active_apps")};
  }
  for (int i = 0; i < options_.boards_per_config; ++i) {
    boards_ol_.push_back(std::make_unique<fpga::Board>(
        sim, "fpga-OL" + std::to_string(i),
        fpga::FabricConfig::only_little(), options_.board_params));
    boards_bl_.push_back(std::make_unique<fpga::Board>(
        sim, "fpga-BL" + std::to_string(i),
        fpga::FabricConfig::big_little(), options_.board_params));
  }
  activate_pool(options_.initial);
}

std::vector<fpga::Board*> Cluster::boards_for(
    core::SwitchLoop::Config config) {
  std::vector<fpga::Board*> out;
  auto& pool = config == core::SwitchLoop::Config::kBigLittle ? boards_bl_
                                                              : boards_ol_;
  out.reserve(pool.size());
  for (auto& b : pool) out.push_back(b.get());
  return out;
}

int Cluster::new_epoch(core::SwitchLoop::Config config, fpga::Board& board) {
  auto epoch = std::make_unique<Epoch>();
  epoch->board = &board;
  epoch->config = config;
  const core::VersaSlotOptions& popts =
      config == core::SwitchLoop::Config::kBigLittle ? options_.bl_policy
                                                     : options_.ol_policy;
  epoch->policy = std::make_unique<core::VersaSlotPolicy>(popts);
  epoch->runtime =
      std::make_unique<runtime::BoardRuntime>(*epoch->board, *epoch->policy);
  epoch->runtime->set_on_app_complete([this](const runtime::CompletedApp& c) {
    completed_.push_back(c);
    on_queue_update();
  });
  // Idempotent registration: a board reused across epochs resolves the same
  // cells, so its counters accumulate over the whole cluster run.
  if (options_.metrics != nullptr) {
    epoch->runtime->bind_metrics(*options_.metrics);
  }
  epochs_.push_back(std::move(epoch));
  return static_cast<int>(epochs_.size()) - 1;
}

void Cluster::activate_pool(core::SwitchLoop::Config config) {
  active_epochs_.clear();
  for (fpga::Board* board : boards_for(config)) {
    active_epochs_.push_back(new_epoch(config, *board));
  }
}

runtime::BoardRuntime& Cluster::least_loaded_active() {
  runtime::BoardRuntime* best = nullptr;
  int best_load = 0;
  for (int index : active_epochs_) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    int load = rt.active_apps();
    if (best == nullptr || load < best_load) {
      best = &rt;
      best_load = load;
    }
  }
  assert(best != nullptr);
  return *best;
}

void Cluster::submit_sequence(const workload::Sequence& sequence) {
  for (const apps::AppArrival& a : sequence) {
    ++submitted_;
    sim_.schedule_at(a.arrival, [this, a] {
      runtime::BoardRuntime& rt = least_loaded_active();
      rt.submit(suite_.at(static_cast<std::size_t>(a.spec_index)),
                a.spec_index, a.batch, a.arrival, a.item_interval);
      on_queue_update();
    });
  }
}

void Cluster::on_queue_update() {
  if (monitor_.on_queue_update()) sample_and_act();
}

void Cluster::sample_and_act() {
  core::DSwitchSample sample;
  sample.time = sim_.now();
  for (int index : active_epochs_) {
    Epoch& epoch = *epochs_[static_cast<std::size_t>(index)];
    runtime::BoardRuntime& rt = *epoch.runtime;
    sample.blocked += rt.window_blocked();
    rt.reset_window();
    sample.prs += rt.counters().pr_requests - epoch.pr_snapshot;
    epoch.pr_snapshot = rt.counters().pr_requests;
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec == nullptr || a.done()) continue;
      ++sample.apps;
      sample.batch += a.batch;
    }
  }
  if (sample.prs == 0 && sample.apps > 0) {
    // No PR activity this window (slots are mid-batch): the sample carries
    // no new contention information, so hold the previous level instead of
    // reporting a spurious zero.
    sample.value = monitor_.last();
  } else {
    sample.value = core::dswitch_value(sample.blocked, sample.prs,
                                       sample.apps, sample.batch);
  }
  monitor_.record(sample);
  m_dswitch_evals_.add();
  m_dswitch_value_.set(sample.value);
  m_active_apps_.set(sample.apps);

  if (!options_.enable_switching) return;
  if (static_cast<int>(monitor_.trace().size()) <= options_.warmup_samples) {
    return;
  }
  if (loop_.config() == core::SwitchLoop::Config::kOnlyLittle &&
      sample.apps < options_.min_queue_for_switch) {
    return;  // no sustained backlog: an upward switch would thrash
  }
  if (loop_.config() == core::SwitchLoop::Config::kBigLittle &&
      sample.apps > options_.min_queue_for_switch) {
    return;  // backlog persists: keep the contention-friendly fabric
  }

  core::SwitchLoop::Action action = loop_.feed(sample.value);
  switch (action) {
    case core::SwitchLoop::Action::kNone:
      break;
    case core::SwitchLoop::Action::kPrewarmBigLittle:
      if (options_.enable_prewarm) {
        prewarm(core::SwitchLoop::Config::kBigLittle);
      }
      break;
    case core::SwitchLoop::Action::kPrewarmOnlyLittle:
      if (options_.enable_prewarm) {
        prewarm(core::SwitchLoop::Config::kOnlyLittle);
      }
      break;
    case core::SwitchLoop::Action::kSwitchToBigLittle:
      do_switch(core::SwitchLoop::Config::kBigLittle, sample.value);
      break;
    case core::SwitchLoop::Action::kSwitchToOnlyLittle:
      do_switch(core::SwitchLoop::Config::kOnlyLittle, sample.value);
      break;
  }
}

bool Cluster::pool_free(core::SwitchLoop::Config config) const {
  const auto& pool = config == core::SwitchLoop::Config::kBigLittle
                         ? boards_bl_
                         : boards_ol_;
  for (const auto& e : epochs_) {
    for (const auto& board : pool) {
      if (e->board == board.get() && !e->runtime->drained()) return false;
    }
  }
  return true;
}

void Cluster::prewarm(core::SwitchLoop::Config config) {
  // Background-load every suite bitstream variant into the spare boards'
  // SD/DDR stores so PRs after the switch skip the SD fetch.
  for (fpga::Board* board : boards_for(config)) {
    for (std::size_t i = 0; i < suite_.size(); ++i) {
      const apps::AppSpec& spec = suite_[i];
      // Partial bitstreams are placement-specific: warm every slot's
      // variant of every task/bundle.
      for (const fpga::Slot& slot : board->slots()) {
        if (slot.kind() == fpga::SlotKind::kLittle) {
          for (const apps::UnitSpec& u : apps::make_little_units(spec)) {
            board->sdcard().prewarm(runtime::unit_bitstream_key(
                static_cast<int>(i), u, slot.id()));
          }
        } else {
          // Both serial and parallel bundle bitstreams are pre-generated;
          // warm the variants for representative batch extremes.
          for (int batch : {1, 30}) {
            for (const apps::UnitSpec& u : apps::make_big_units(
                     spec, batch, options_.board_params,
                     options_.bl_policy.synthesis,
                     options_.bl_policy.bundle_size)) {
              board->sdcard().prewarm(runtime::unit_bitstream_key(
                  static_cast<int>(i), u, slot.id()));
            }
          }
        }
      }
    }
  }
}

void Cluster::do_switch(core::SwitchLoop::Config target, double d) {
  if (!pool_free(target)) {
    // The spare pool is still draining a previous epoch: cannot switch yet.
    // Revert the loop state so a later sample can retrigger.
    loop_ = core::SwitchLoop(options_.t1, options_.t2,
                             target == core::SwitchLoop::Config::kBigLittle
                                 ? core::SwitchLoop::Config::kOnlyLittle
                                 : core::SwitchLoop::Config::kBigLittle);
    VS_WARN << "switch to " << config_name(target)
            << " deferred: spare pool still draining";
    return;
  }

  // The spare pool was pre-configured; its SD cards hold the full offline
  // bitstream set, and staging into DDR happened in the background while
  // idle (buffer-zone pre-warming made this explicit; a pool that jumped
  // straight past T1 stages now, off the critical path).
  prewarm(target);

  // Drain every active origin board; collect its migratable applications.
  std::vector<runtime::BoardRuntime::MigratedApp> migrated;
  for (int index : active_epochs_) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    rt.stop_admission();
    auto part = rt.extract_migratable();
    migrated.insert(migrated.end(), part.begin(), part.end());
  }

  activate_pool(target);

  SwitchEvent event;
  event.time = sim_.now();
  event.to = target;
  event.dswitch = d;
  event.apps_migrated = static_cast<int>(migrated.size());
  event.bytes = 4096;  // switch-control message
  for (const auto& m : migrated) event.bytes += m.state_bytes;
  std::size_t event_index = switch_events_.size();
  switch_events_.push_back(event);
  m_switches_.add();
  m_migrated_apps_.add(event.apps_migrated);

  VS_INFO << "cross-board switch -> " << config_name(target) << " (D=" << d
          << ", migrating " << migrated.size() << " apps, " << event.bytes
          << " bytes)";

  sim::SimTime t0 = sim_.now();
  link_.transfer(event.bytes, [this, migrated = std::move(migrated), t0,
                               event_index] {
    switch_events_[event_index].overhead = sim_.now() - t0;
    for (const auto& m : migrated) {
      const apps::AppSpec& spec =
          suite_.at(static_cast<std::size_t>(m.spec_index));
      runtime::BoardRuntime& rt = least_loaded_active();
      if (m.progress.empty()) {
        rt.submit(spec, m.spec_index, m.batch, m.arrival, m.item_interval);
      } else {
        rt.submit_with_progress(spec, m.spec_index, m.batch, m.arrival,
                                m.progress, m.item_interval);
      }
    }
  });
}

}  // namespace vs::cluster
