#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <memory>
#include <utility>

#include "obs/trace_hub.h"
#include "sim/sharded.h"
#include "util/log.h"

namespace vs::cluster {

namespace {

const char* config_name(core::SwitchLoop::Config config) {
  return config == core::SwitchLoop::Config::kBigLittle ? "Big.Little"
                                                        : "Only.Little";
}

}  // namespace

sim::SimDuration conservative_lookahead(
    const std::vector<apps::AppSpec>& suite, const fpga::LinkParams& link) {
  sim::SimDuration lookahead = link.setup_latency;
  for (const apps::AppSpec& spec : suite) {
    for (const apps::TaskSpec& task : spec.tasks) {
      lookahead = std::min(lookahead, task.item_latency);
    }
  }
  assert(lookahead > 0 && "a zero-latency task defeats conservative sync");
  return lookahead;
}

Cluster::Cluster(sim::Simulator& sim, const std::vector<apps::AppSpec>& suite,
                 ClusterOptions options)
    : sim_(sim),
      suite_(suite),
      options_(options),
      link_(sim, options.link_params),
      monitor_(options.dswitch_period),
      loop_(options.t1, options.t2, options.initial) {
  assert(options_.boards_per_config >= 1);
  options_.bl_policy.mode = core::VersaSlotOptions::Mode::kBigLittle;
  options_.ol_policy.mode = core::VersaSlotOptions::Mode::kOnlyLittle;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    link_.bind_metrics(reg);
    m_dswitch_evals_ =
        obs::CounterHandle{&reg.counter("vs_dswitch_evaluations_total")};
    m_switches_ =
        obs::CounterHandle{&reg.counter("vs_dswitch_switches_total")};
    m_migrated_apps_ =
        obs::CounterHandle{&reg.counter("vs_cluster_migrated_apps_total")};
    m_dswitch_value_ = obs::GaugeHandle{&reg.gauge("vs_dswitch_value")};
    m_active_apps_ = obs::GaugeHandle{&reg.gauge("vs_cluster_active_apps")};
    if (options_.migration.active()) {
      // Registered only when pre-copy is on, so whole-state exports stay
      // byte-identical.
      m_migration_rounds_ =
          obs::CounterHandle{&reg.counter("vs_migration_rounds_total")};
      m_precopy_bytes_ = obs::CounterHandle{
          &reg.counter("vs_migration_precopy_bytes_total")};
      // Sub-ms buckets: pre-copy stop-and-copy downtime sits well below
      // 1 ms and would be unresolvable in default_ms_bounds().
      m_migration_downtime_ms_ = obs::HistogramHandle{&reg.histogram(
          "vs_migration_downtime_ms", obs::default_sub_ms_bounds())};
    }
  }
  if (options_.hub != nullptr) obs_ = &options_.hub->channel("cluster");
  // Boards are built in a fixed order (OL0, BL0, OL1, BL1, ...) and board
  // k always gets shard tag k + 1 — under the serial kernel too, so both
  // kernels break equal-time event ties identically. Under a sharded
  // kernel each board additionally lives on its own shard simulator.
  if (options_.sharded != nullptr) {
    assert(&sim == &options_.sharded->global() &&
           "a sharded cluster must be driven by the kernel's coordinator");
    assert(options_.sharded->shard_count() >= 2 * options_.boards_per_config &&
           "the sharded kernel needs one shard per board");
  }
  auto board_sim = [&](int k) -> sim::Simulator& {
    return options_.sharded != nullptr ? options_.sharded->shard(k) : sim_;
  };
  int next_board = 0;
  auto make_board = [&](const std::string& name, fpga::FabricConfig config) {
    int k = next_board++;
    auto board = std::make_unique<fpga::Board>(board_sim(k), name, config,
                                               options_.board_params);
    board->set_shard_tag(static_cast<sim::ShardTag>(k) + 1);
    return board;
  };
  for (int i = 0; i < options_.boards_per_config; ++i) {
    boards_ol_.push_back(make_board("fpga-OL" + std::to_string(i),
                                    fpga::FabricConfig::only_little()));
    boards_bl_.push_back(make_board("fpga-BL" + std::to_string(i),
                                    fpga::FabricConfig::big_little()));
  }
  activate_pool(options_.initial);

  // Fault plane: constructed only when the scenario is enabled so the
  // fault-free path stays byte-for-byte identical (no extra registry
  // entries, no extra events, no plane lookups).
  if (options_.faults.enabled()) {
    fault_plane_ = std::make_unique<faults::FaultPlane>(sim_, options_.faults);
    if (options_.metrics != nullptr) {
      obs::MetricsRegistry& reg = *options_.metrics;
      fault_plane_->bind_metrics(reg);
      m_evacuated_ = obs::CounterHandle{
          &reg.counter("vs_recovery_evacuated_apps_total")};
      m_restarted_ = obs::CounterHandle{
          &reg.counter("vs_recovery_restarted_apps_total")};
      m_lost_ =
          obs::CounterHandle{&reg.counter("vs_recovery_lost_apps_total")};
      m_shed_ =
          obs::CounterHandle{&reg.counter("vs_recovery_shed_apps_total")};
      m_readmitted_ =
          obs::CounterHandle{&reg.counter("vs_recovery_readmissions_total")};
      if (!options_.faults.domains.empty()) {
        // Registered only when failure domains exist, so rack-free exports
        // stay byte-identical.
        m_spare_exhausted_ = obs::CounterHandle{
            &reg.counter("vs_recovery_spare_exhausted_total")};
      }
      m_evac_latency_ = obs::HistogramHandle{&reg.histogram(
          "vs_recovery_evac_latency_ms", obs::default_ms_bounds())};
      m_mttr_ = obs::HistogramHandle{
          &reg.histogram("vs_recovery_mttr_ms", obs::default_ms_bounds())};
      if (options_.recovery.throttle != RecoveryOptions::Throttle::kOff) {
        // Registered only when the throttle is on, so throttle-free
        // exports stay byte-identical.
        m_throttle_deferred_ = obs::CounterHandle{
            &reg.counter("vs_throttle_deferred_total")};
        m_throttle_shed_ =
            obs::CounterHandle{&reg.counter("vs_throttle_shed_total")};
      }
      if (options_.checkpoint.active()) {
        // Registered only when checkpointing is on, so recovery-without-
        // checkpoint exports stay byte-identical to PR 4.
        m_ckpt_restored_ = obs::CounterHandle{&reg.counter(
            "vs_recovery_checkpoint_restored_apps_total")};
        m_restored_items_ = obs::HistogramHandle{&reg.histogram(
            "vs_ckpt_restored_items", obs::default_count_bounds())};
        m_rerun_window_ms_ = obs::HistogramHandle{&reg.histogram(
            "vs_ckpt_rerun_window_ms", obs::default_ms_bounds())};
      }
    }
    for (auto& b : boards_ol_) {
      fault_plane_->add_board(*b);
      plane_boards_.push_back(b.get());
      plane_configs_.push_back(core::SwitchLoop::Config::kOnlyLittle);
    }
    for (auto& b : boards_bl_) {
      fault_plane_->add_board(*b);
      plane_boards_.push_back(b.get());
      plane_configs_.push_back(core::SwitchLoop::Config::kBigLittle);
    }
    fault_plane_->set_handler(
        [this](const faults::HealthEvent& e) { on_health_event(e); });
    fault_plane_->start();
  }
}

std::vector<fpga::Board*> Cluster::boards_for(
    core::SwitchLoop::Config config) {
  std::vector<fpga::Board*> out;
  auto& pool = config == core::SwitchLoop::Config::kBigLittle ? boards_bl_
                                                              : boards_ol_;
  out.reserve(pool.size());
  for (auto& b : pool) out.push_back(b.get());
  return out;
}

int Cluster::new_epoch(core::SwitchLoop::Config config, fpga::Board& board) {
  auto epoch = std::make_unique<Epoch>();
  epoch->board = &board;
  epoch->config = config;
  const core::VersaSlotOptions& popts =
      config == core::SwitchLoop::Config::kBigLittle ? options_.bl_policy
                                                     : options_.ol_policy;
  epoch->policy = std::make_unique<core::VersaSlotPolicy>(popts);
  epoch->runtime =
      std::make_unique<runtime::BoardRuntime>(*epoch->board, *epoch->policy);
  epoch->runtime->set_on_app_complete([this](const runtime::CompletedApp& c) {
    // Cluster state is coordinator-owned: pin the chain back to tag 0 even
    // though the completion fires inside a board-tagged item-finish event,
    // so switch/link/recovery events the cluster schedules from here carry
    // the coordinator tag under both kernels.
    sim::TagScope tag_scope(sim_, 0);
    completed_.push_back(c);
    on_queue_update();
    // Serving-plane hook last: admission pumps and rebalance checks run
    // after the D_switch sampling for this completion, still on tag 0.
    if (on_app_complete_) on_app_complete_(c);
  });
  epoch->runtime->enable_checkpoints(options_.checkpoint);
  if (options_.migration.active()) {
    // Pre-copy rounds drain the migration plane of each app's dirty map;
    // the region geometry is shared with delta checkpointing.
    epoch->runtime->enable_dirty_tracking(options_.checkpoint.granularity);
  }
  if (options_.phase_accounting) epoch->runtime->enable_phase_accounting();
  // Idempotent registration: a board reused across epochs resolves the same
  // cells, so its counters accumulate over the whole cluster run.
  if (options_.metrics != nullptr) {
    epoch->runtime->bind_metrics(*options_.metrics);
  }
  if (options_.hub != nullptr) {
    // Every epoch's recorder merges into the board's process timeline; the
    // board writes journal/flow records through its own channel (one writer
    // per channel, created here — a coordinator serial phase).
    options_.hub->attach_spans(board.name(), &epoch->runtime->trace());
    if (options_.hub->trace_enabled()) epoch->runtime->trace().enable();
    epoch->runtime->bind_observability(&options_.hub->channel(board.name()));
  }
  epochs_.push_back(std::move(epoch));
  return static_cast<int>(epochs_.size()) - 1;
}

bool Cluster::board_usable(const fpga::Board* board) const {
  if (fault_plane_ == nullptr) return true;
  for (std::size_t i = 0; i < plane_boards_.size(); ++i) {
    if (plane_boards_[i] == board) {
      return fault_plane_->board_up(static_cast<int>(i));
    }
  }
  return true;
}

void Cluster::activate_pool(core::SwitchLoop::Config config) {
  active_epochs_.clear();
  for (fpga::Board* board : boards_for(config)) {
    if (!board_usable(board)) continue;  // down boards rejoin on reboot
    active_epochs_.push_back(new_epoch(config, *board));
  }
}

runtime::BoardRuntime* Cluster::least_loaded_or_null() {
  runtime::BoardRuntime* best = nullptr;
  int best_load = 0;
  for (int index : active_epochs_) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    int load = rt.active_apps();
    if (best == nullptr || load < best_load) {
      best = &rt;
      best_load = load;
    }
  }
  return best;
}

runtime::BoardRuntime& Cluster::least_loaded_active() {
  runtime::BoardRuntime* best = least_loaded_or_null();
  assert(best != nullptr);
  return *best;
}

void Cluster::submit_sequence(const workload::Sequence& sequence) {
  for (const apps::AppArrival& a : sequence) {
    sim_.schedule_at(a.arrival, [this, a] { dispatch_arrival(a); });
  }
}

void Cluster::dispatch_arrival(const apps::AppArrival& a,
                               runtime::BoardRuntime* preferred) {
  ++submitted_;
  const RecoveryOptions::Throttle throttle = options_.recovery.throttle;
  if (throttle != RecoveryOptions::Throttle::kOff &&
      !readmit_queue_.empty()) {
    // Recovery in progress: displaced apps are still waiting for a board.
    // Admitting fresh arrivals now would queue them in front of that
    // backlog and stretch the recovery-mode tail.
    if (throttle == RecoveryOptions::Throttle::kShed) {
      // Dropped at the door. Still counted as submitted — like apps_lost,
      // the bench-level censored accounting must see the refused work.
      ++recovery_stats_.arrivals_shed;
      m_throttle_shed_.add();
      return;
    }
    ++recovery_stats_.arrivals_deferred;
    m_throttle_deferred_.add();
    MigratedApp m;
    m.spec_index = a.spec_index;
    m.batch = a.batch;
    m.arrival = a.arrival;
    m.item_interval = a.item_interval;
    m.state_bytes = 0;
    m.tenant = a.tenant;
    readmit_queue_.push_back(ReadmitEntry{std::move(m), nullptr});
    return;
  }
  runtime::BoardRuntime* rt =
      preferred != nullptr ? preferred : least_loaded_or_null();
  if (rt == nullptr) {
    // Every board is down (fault plane only — the fault-free cluster
    // always has an active pool). Under kShed the arrival is refused at
    // the door like any recovery-backlog arrival — a full outage is the
    // deepest recovery backlog there is; otherwise hold for re-admission.
    if (throttle == RecoveryOptions::Throttle::kShed) {
      ++recovery_stats_.arrivals_shed;
      m_throttle_shed_.add();
      return;
    }
    MigratedApp m;
    m.spec_index = a.spec_index;
    m.batch = a.batch;
    m.arrival = a.arrival;
    m.item_interval = a.item_interval;
    m.state_bytes = 0;
    m.tenant = a.tenant;
    readmit_queue_.push_back(ReadmitEntry{std::move(m), nullptr});
    return;
  }
  rt->submit(suite_.at(static_cast<std::size_t>(a.spec_index)), a.spec_index,
             a.batch, a.arrival, a.item_interval, a.tenant);
  on_queue_update();
}

std::vector<runtime::BoardRuntime*> Cluster::active_runtimes() {
  std::vector<runtime::BoardRuntime*> out;
  out.reserve(active_epochs_.size());
  for (int index : active_epochs_) {
    out.push_back(epochs_[static_cast<std::size_t>(index)]->runtime.get());
  }
  return out;
}

int Cluster::rebalance_active(int min_spread) {
  assert(min_spread >= 1);
  if (active_epochs_.size() < 2) return 0;
  runtime::BoardRuntime* busiest = nullptr;
  int max_load = 0;
  int min_load = 0;
  for (int index : active_epochs_) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    int load = rt.active_apps();
    if (busiest == nullptr) {
      busiest = &rt;
      max_load = min_load = load;
      continue;
    }
    if (load > max_load) {
      busiest = &rt;
      max_load = load;
    }
    min_load = std::min(min_load, load);
  }
  if (max_load - min_load < min_spread) return 0;
  // Only unstarted apps move — the same "ready list" a D_switch migration
  // ships — so no progress is at risk and the origin keeps its running work.
  std::vector<MigratedApp> moved = busiest->extract_unstarted();
  if (moved.empty()) return 0;
  const int moved_count = static_cast<int>(moved.size());
  std::int64_t bytes = 4096;  // rebalance-control message
  for (const MigratedApp& m : moved) bytes += m.state_bytes;
  m_migrated_apps_.add(moved_count);
  link_.transfer(bytes, [this, moved = std::move(moved)]() mutable {
    for (MigratedApp& m : moved) {
      // The destination is re-picked per app at landing time; a crash
      // while the transfer was in flight queues the app for re-admission.
      runtime::BoardRuntime* rt = least_loaded_or_null();
      if (rt == nullptr) {
        readmit_queue_.push_back(ReadmitEntry{std::move(m), nullptr});
        continue;
      }
      const apps::AppSpec& spec =
          suite_.at(static_cast<std::size_t>(m.spec_index));
      rt->submit_migrated(spec, m, runtime::AppPhase::kMigration);
    }
    on_queue_update();
  });
  return moved_count;
}

void Cluster::on_queue_update() {
  if (monitor_.on_queue_update()) sample_and_act();
}

void Cluster::sample_and_act() {
  core::DSwitchSample sample;
  sample.time = sim_.now();
  for (int index : active_epochs_) {
    Epoch& epoch = *epochs_[static_cast<std::size_t>(index)];
    runtime::BoardRuntime& rt = *epoch.runtime;
    sample.blocked += rt.window_blocked();
    rt.reset_window();
    sample.prs += rt.counters().pr_requests - epoch.pr_snapshot;
    epoch.pr_snapshot = rt.counters().pr_requests;
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec == nullptr || a.done()) continue;
      ++sample.apps;
      sample.batch += a.batch;
    }
  }
  if (sample.prs == 0 && sample.apps > 0) {
    // No PR activity this window (slots are mid-batch): the sample carries
    // no new contention information, so hold the previous level instead of
    // reporting a spurious zero.
    sample.value = monitor_.last();
  } else {
    sample.value = core::dswitch_value(sample.blocked, sample.prs,
                                       sample.apps, sample.batch);
  }
  monitor_.record(sample);
  m_dswitch_evals_.add();
  m_dswitch_value_.set(sample.value);
  m_active_apps_.set(sample.apps);

  if (!options_.enable_switching) return;
  if (static_cast<int>(monitor_.trace().size()) <= options_.warmup_samples) {
    return;
  }
  if (loop_.config() == core::SwitchLoop::Config::kOnlyLittle &&
      sample.apps < options_.min_queue_for_switch) {
    return;  // no sustained backlog: an upward switch would thrash
  }
  if (loop_.config() == core::SwitchLoop::Config::kBigLittle &&
      sample.apps > options_.min_queue_for_switch) {
    return;  // backlog persists: keep the contention-friendly fabric
  }

  core::SwitchLoop::Action action = loop_.feed(sample.value);
  switch (action) {
    case core::SwitchLoop::Action::kNone:
      break;
    case core::SwitchLoop::Action::kPrewarmBigLittle:
      if (options_.enable_prewarm) {
        prewarm(core::SwitchLoop::Config::kBigLittle);
      }
      break;
    case core::SwitchLoop::Action::kPrewarmOnlyLittle:
      if (options_.enable_prewarm) {
        prewarm(core::SwitchLoop::Config::kOnlyLittle);
      }
      break;
    case core::SwitchLoop::Action::kSwitchToBigLittle:
      do_switch(core::SwitchLoop::Config::kBigLittle, sample.value);
      break;
    case core::SwitchLoop::Action::kSwitchToOnlyLittle:
      do_switch(core::SwitchLoop::Config::kOnlyLittle, sample.value);
      break;
  }
}

bool Cluster::pool_free(core::SwitchLoop::Config config) const {
  const auto& pool = config == core::SwitchLoop::Config::kBigLittle
                         ? boards_bl_
                         : boards_ol_;
  for (const auto& e : epochs_) {
    for (const auto& board : pool) {
      if (e->board == board.get() && !e->runtime->drained()) return false;
    }
  }
  return true;
}

void Cluster::prewarm(core::SwitchLoop::Config config) {
  // Background-load every suite bitstream variant into the spare boards'
  // SD/DDR stores so PRs after the switch skip the SD fetch.
  for (fpga::Board* board : boards_for(config)) {
    for (std::size_t i = 0; i < suite_.size(); ++i) {
      const apps::AppSpec& spec = suite_[i];
      // Partial bitstreams are placement-specific: warm every slot's
      // variant of every task/bundle.
      for (const fpga::Slot& slot : board->slots()) {
        if (slot.kind() == fpga::SlotKind::kLittle) {
          for (const apps::UnitSpec& u : apps::make_little_units(spec)) {
            board->sdcard().prewarm(runtime::unit_bitstream_key(
                static_cast<int>(i), u, slot.id()));
          }
        } else {
          // Both serial and parallel bundle bitstreams are pre-generated;
          // warm the variants for representative batch extremes.
          for (int batch : {1, 30}) {
            for (const apps::UnitSpec& u : apps::make_big_units(
                     spec, batch, options_.board_params,
                     options_.bl_policy.synthesis,
                     options_.bl_policy.bundle_size)) {
              board->sdcard().prewarm(runtime::unit_bitstream_key(
                  static_cast<int>(i), u, slot.id()));
            }
          }
        }
      }
    }
  }
}

void Cluster::do_switch(core::SwitchLoop::Config target, double d) {
  if (precopy_active_) {
    // The previous migration is still streaming; its origins cannot start
    // a second extraction. Revert the loop state so a later sample can
    // retrigger (same treatment as a draining spare pool).
    loop_ = core::SwitchLoop(options_.t1, options_.t2,
                             target == core::SwitchLoop::Config::kBigLittle
                                 ? core::SwitchLoop::Config::kOnlyLittle
                                 : core::SwitchLoop::Config::kBigLittle);
    VS_WARN << "switch to " << config_name(target)
            << " deferred: pre-copy migration in flight";
    return;
  }
  if (fault_plane_ != nullptr) {
    for (fpga::Board* board : boards_for(target)) {
      if (board_usable(board)) continue;
      // A target board is down: revert the loop state (same as the
      // pool-draining deferral) so a later sample can retrigger.
      loop_ = core::SwitchLoop(options_.t1, options_.t2,
                               target == core::SwitchLoop::Config::kBigLittle
                                   ? core::SwitchLoop::Config::kOnlyLittle
                                   : core::SwitchLoop::Config::kBigLittle);
      VS_WARN << "switch to " << config_name(target)
              << " deferred: target board down";
      return;
    }
  }
  if (!pool_free(target)) {
    // The spare pool is still draining a previous epoch: cannot switch yet.
    // Revert the loop state so a later sample can retrigger.
    loop_ = core::SwitchLoop(options_.t1, options_.t2,
                             target == core::SwitchLoop::Config::kBigLittle
                                 ? core::SwitchLoop::Config::kOnlyLittle
                                 : core::SwitchLoop::Config::kBigLittle);
    VS_WARN << "switch to " << config_name(target)
            << " deferred: spare pool still draining";
    return;
  }

  // The spare pool was pre-configured; its SD cards hold the full offline
  // bitstream set, and staging into DDR happened in the background while
  // idle (buffer-zone pre-warming made this explicit; a pool that jumped
  // straight past T1 stages now, off the critical path).
  prewarm(target);

  if (options_.migration.active()) {
    begin_precopy(target, d);
    return;
  }

  // Drain every active origin board; collect its migratable applications.
  std::string origin_name =
      epochs_[static_cast<std::size_t>(active_epochs_.front())]
          ->board->name();
  std::vector<runtime::BoardRuntime::MigratedApp> migrated;
  for (int index : active_epochs_) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    rt.stop_admission();
    auto part = rt.extract_migratable();
    migrated.insert(migrated.end(), part.begin(), part.end());
  }
  std::uint64_t flow = 0;
  if (obs_ != nullptr && obs_->trace_on()) {
    flow = obs_->new_flow_id();
    obs_->flow(flow, obs::FlowPhase::kStart, sim_.now(), origin_name,
               "migration", std::string("switch -> ") + config_name(target));
  }

  activate_pool(target);

  SwitchEvent event;
  event.time = sim_.now();
  event.to = target;
  event.dswitch = d;
  event.apps_migrated = static_cast<int>(migrated.size());
  event.bytes = 4096;  // switch-control message
  for (const auto& m : migrated) event.bytes += m.state_bytes;
  // Whole-state: the origins are already paused, so the entire transfer is
  // stop-and-copy downtime.
  event.stopcopy_bytes = event.bytes;
  std::size_t event_index = switch_events_.size();
  switch_events_.push_back(event);
  m_switches_.add();
  m_migrated_apps_.add(event.apps_migrated);
  if (obs_ != nullptr && obs_->journal_on()) {
    obs_->journal(sim_.now(), obs::JournalEvent::kMigrate, origin_name, -1,
                  {}, flow,
                  std::string("whole-state -> ") + config_name(target) + ", " +
                      std::to_string(migrated.size()) + " apps, " +
                      std::to_string(event.bytes) + " B");
  }

  VS_INFO << "cross-board switch -> " << config_name(target) << " (D=" << d
          << ", migrating " << migrated.size() << " apps, " << event.bytes
          << " bytes)";

  sim::SimTime t0 = sim_.now();
  link_.transfer(event.bytes, [this, migrated = std::move(migrated), t0,
                               event_index, flow] {
    switch_events_[event_index].overhead = sim_.now() - t0;
    switch_events_[event_index].downtime = sim_.now() - t0;
    bool flow_open = flow != 0;
    for (const auto& m : migrated) {
      const apps::AppSpec& spec =
          suite_.at(static_cast<std::size_t>(m.spec_index));
      runtime::BoardRuntime& rt = least_loaded_active();
      if (flow_open) {
        // Close the causal arrow at the first resume on the destination.
        obs_->flow(flow, obs::FlowPhase::kEnd, sim_.now(), rt.board().name(),
                   "migration", "resume");
        flow_open = false;
      }
      rt.submit_migrated(spec, m, runtime::AppPhase::kMigration);
    }
  });
}

// --- Pre-copy migration -------------------------------------------------

void Cluster::begin_precopy(core::SwitchLoop::Config target, double d) {
  auto st = std::make_shared<PrecopyState>();
  st->target = target;
  st->origins = active_epochs_;
  st->t0 = sim_.now();
  if (obs_ != nullptr && obs_->trace_on()) {
    st->flow = obs_->new_flow_id();
    obs_->flow(st->flow, obs::FlowPhase::kStart, sim_.now(),
               epochs_[static_cast<std::size_t>(st->origins.front())]
                   ->board->name(),
               "migration",
               std::string("pre-copy -> ") + config_name(target));
  }
  if (obs_ != nullptr && obs_->journal_on()) {
    obs_->journal(sim_.now(), obs::JournalEvent::kMigrate,
                  epochs_[static_cast<std::size_t>(st->origins.front())]
                      ->board->name(),
                  -1, {}, st->flow,
                  std::string("pre-copy -> ") + config_name(target));
  }
  // The origins stop admitting but *keep executing* — that is the point of
  // pre-copy. New arrivals flow to the target pool immediately.
  for (int index : st->origins) {
    epochs_[static_cast<std::size_t>(index)]->runtime->stop_admission();
  }
  activate_pool(target);
  // First round: every app that is pause-visible right now ships its full
  // migratable footprint; running apps join the stream when they pause
  // (their dirt keeps accumulating in the migration plane until then).
  std::int64_t first = 4096;  // switch-control message
  for (int index : st->origins) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    rt.begin_migration_stream();
    first += rt.take_migration_stream_bytes();
  }
  st->first_round_bytes = first;

  SwitchEvent event;
  event.time = sim_.now();
  event.to = target;
  event.dswitch = d;
  st->event_index = switch_events_.size();
  switch_events_.push_back(event);
  m_switches_.add();
  precopy_active_ = true;
  VS_INFO << "pre-copy switch -> " << config_name(target) << " (D=" << d
          << ", first round " << first << " bytes)";
  precopy_round(std::move(st), first);
}

void Cluster::precopy_round(std::shared_ptr<PrecopyState> st,
                            std::int64_t bytes) {
  ++st->rounds;
  st->streamed += bytes;
  m_migration_rounds_.add();
  m_precopy_bytes_.add(bytes);
  if (st->flow != 0) {
    obs_->flow(st->flow, obs::FlowPhase::kStep, sim_.now(), "cluster",
               "precopy",
               "round " + std::to_string(st->rounds) + " (" +
                   std::to_string(bytes) + " B)");
  }
  link_.transfer(bytes, [this, st] {
    // Round landed: the next payload is the footprint of apps that paused
    // since (first-time streams) plus the dirt already-streamed apps wrote
    // while running in between. Crashed origins dropped out (the crash
    // path evacuated their apps); drained ones contribute nothing.
    std::int64_t dirty = 0;
    for (int index : st->origins) {
      runtime::BoardRuntime& rt =
          *epochs_[static_cast<std::size_t>(index)]->runtime;
      if (rt.crashed()) continue;
      dirty += rt.take_migration_stream_bytes();
    }
    const MigrationPolicy& mp = options_.migration;
    auto floor = std::max(
        mp.min_dirty_bytes,
        static_cast<std::int64_t>(mp.convergence *
                                  static_cast<double>(st->first_round_bytes)));
    if (dirty <= floor || st->rounds >= mp.max_rounds) {
      finish_precopy(std::move(st), dirty);
    } else {
      precopy_round(std::move(st), dirty);
    }
  });
}

void Cluster::finish_precopy(std::shared_ptr<PrecopyState> st,
                             std::int64_t final_dirty) {
  // Stop-and-copy: *now* the origins pause and release their migratable
  // apps; only the final dirty residue still has to cross the link — the
  // streamed base and deltas already reconstruct everything else.
  std::vector<MigratedApp> migrated;
  for (int index : st->origins) {
    runtime::BoardRuntime& rt =
        *epochs_[static_cast<std::size_t>(index)]->runtime;
    if (rt.crashed()) continue;
    auto part = rt.extract_migratable();
    migrated.insert(migrated.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }
  SwitchEvent& event = switch_events_[st->event_index];
  event.apps_migrated = static_cast<int>(migrated.size());
  event.precopy_rounds = st->rounds;
  event.precopy_bytes = st->streamed;
  event.stopcopy_bytes = 4096 + final_dirty;  // control message + residue
  event.bytes = st->streamed + event.stopcopy_bytes;
  m_migrated_apps_.add(event.apps_migrated);
  if (st->flow != 0) {
    obs_->flow(st->flow, obs::FlowPhase::kStep, sim_.now(), "cluster",
               "precopy",
               "stop-and-copy (" + std::to_string(event.stopcopy_bytes) +
                   " B)");
  }
  VS_INFO << "pre-copy stop-and-copy after " << st->rounds << " rounds ("
          << event.precopy_bytes << " streamed, " << event.stopcopy_bytes
          << " stop-copy bytes, " << event.apps_migrated << " apps)";

  sim::SimTime t0 = sim_.now();
  link_.transfer(
      event.stopcopy_bytes,
      [this, st = std::move(st), migrated = std::move(migrated), t0]() mutable {
        SwitchEvent& done = switch_events_[st->event_index];
        done.downtime = sim_.now() - t0;
        done.overhead = sim_.now() - st->t0;
        m_migration_downtime_ms_.observe(sim::to_ms(done.downtime));
        precopy_active_ = false;
        bool flow_open = st->flow != 0;
        for (MigratedApp& m : migrated) {
          // Target boards can crash while the residue is in flight (fault
          // plane): queue for re-admission rather than assert, exactly as
          // displaced-app placement does.
          runtime::BoardRuntime* rt = least_loaded_or_null();
          if (rt == nullptr) {
            readmit_queue_.push_back(ReadmitEntry{std::move(m), nullptr});
            continue;
          }
          const apps::AppSpec& spec =
              suite_.at(static_cast<std::size_t>(m.spec_index));
          if (flow_open) {
            obs_->flow(st->flow, obs::FlowPhase::kEnd, sim_.now(),
                       rt->board().name(), "migration", "resume");
            flow_open = false;
          }
          rt->submit_migrated(spec, m, runtime::AppPhase::kMigration);
        }
      });
}

// --- Fault plane and recovery ------------------------------------------

void Cluster::on_health_event(const faults::HealthEvent& e) {
  switch (e.kind) {
    case faults::FaultKind::kBoardCrash: {
      ++recovery_stats_.boards_crashed;
      fpga::Board* board = plane_boards_.at(static_cast<std::size_t>(e.board));
      // Crash every live epoch on this board (the active one, plus a
      // draining origin epoch still finishing ongoing apps after a switch).
      std::vector<MigratedApp> evacuable;
      std::vector<MigratedApp> killed;
      for (auto& ep : epochs_) {
        if (ep->board != board) continue;
        if (ep->runtime->crashed() || ep->runtime->drained()) continue;
        runtime::BoardRuntime::CrashReport report = ep->runtime->crash();
        std::move(report.evacuable.begin(), report.evacuable.end(),
                  std::back_inserter(evacuable));
        // Checkpoint-restored apps ride the same evacuation transfer as
        // live-migrated ones (their snapshot bytes are in state_bytes);
        // the from_checkpoint flag keeps the accounting separate.
        std::move(report.checkpointed.begin(), report.checkpointed.end(),
                  std::back_inserter(evacuable));
        std::move(report.killed.begin(), report.killed.end(),
                  std::back_inserter(killed));
      }
      active_epochs_.erase(
          std::remove_if(active_epochs_.begin(), active_epochs_.end(),
                         [&](int index) {
                           return epochs_[static_cast<std::size_t>(index)]
                                      ->board == board;
                         }),
          active_epochs_.end());
      std::uint64_t flow = 0;
      if (obs_ != nullptr && obs_->trace_on()) {
        flow = obs_->new_flow_id();
        obs_->flow(flow, obs::FlowPhase::kStart, e.time, board->name(),
                   "fault", "crash " + board->name());
      }
      if (obs_ != nullptr && obs_->journal_on()) {
        obs_->journal(e.time, obs::JournalEvent::kCrash, board->name(), -1,
                      {}, flow,
                      std::to_string(evacuable.size() + killed.size()) +
                          " displaced");
      }
      if (!options_.faults.domains.empty()) {
        // Rack mode: crashes landing inside one detection window — a rack
        // event's member losses, jittered or not — coalesce into one
        // batched recovery action measured from the first crash. Gated on
        // failure domains so independent-hazard scenarios keep the
        // per-crash path (and its outputs) bit-for-bit.
        if (batch_open_) {
          std::move(evacuable.begin(), evacuable.end(),
                    std::back_inserter(batch_.evacuable));
          std::move(killed.begin(), killed.end(),
                    std::back_inserter(batch_.killed));
          break;
        }
        batch_open_ = true;
        batch_.evacuable = std::move(evacuable);
        batch_.killed = std::move(killed);
        batch_.crash_time = e.time;
        batch_.flow = flow;
        sim_.schedule(options_.recovery.detection_latency, [this] {
          batch_open_ = false;
          PendingBatch batch = std::move(batch_);
          batch_ = PendingBatch{};
          handle_crash(std::move(batch.evacuable), std::move(batch.killed),
                       batch.crash_time, batch.flow);
        });
        break;
      }
      // Recovery acts after the detection latency (heartbeat + decision).
      sim_.schedule(options_.recovery.detection_latency,
                    [this, evacuable = std::move(evacuable),
                     killed = std::move(killed), crash_time = e.time,
                     flow]() mutable {
                      handle_crash(std::move(evacuable), std::move(killed),
                                   crash_time, flow);
                    });
      break;
    }
    case faults::FaultKind::kRackEvent: {
      // The member crashes arrive as their own kBoardCrash events right
      // after this record; the rack event itself is pure bookkeeping.
      ++recovery_stats_.rack_events;
      if (obs_ != nullptr && obs_->journal_on()) {
        obs_->journal(e.time, obs::JournalEvent::kCrash, "cluster", -1, {},
                      0, "rack event, domain " + std::to_string(e.board));
      }
      break;
    }
    case faults::FaultKind::kBoardReboot: {
      ++recovery_stats_.boards_rebooted;
      fpga::Board* board = plane_boards_.at(static_cast<std::size_t>(e.board));
      // The reboot reloads the full bitstream: fresh slots, empty fabric.
      board->reconfigure_fabric(board->fabric());
      core::SwitchLoop::Config config =
          plane_configs_.at(static_cast<std::size_t>(e.board));
      if (config == loop_.config()) {
        active_epochs_.push_back(new_epoch(config, *board));
      } else if (active_epochs_.empty()) {
        // The whole active pool is down: fail over to the rebooted board.
        loop_ = core::SwitchLoop(options_.t1, options_.t2, config);
        active_epochs_.push_back(new_epoch(config, *board));
      }
      drain_readmit_queue();
      break;
    }
    case faults::FaultKind::kLinkDown:
      ++recovery_stats_.link_flaps;
      link_.set_down();
      break;
    case faults::FaultKind::kLinkUp:
      link_.set_up();
      break;
    case faults::FaultKind::kSlotSeu: {
      ++recovery_stats_.slot_seus;
      fpga::Board* board = plane_boards_.at(static_cast<std::size_t>(e.board));
      for (auto& ep : epochs_) {
        if (ep->board != board) continue;
        if (ep->runtime->crashed() || ep->runtime->drained()) continue;
        ep->runtime->inject_slot_seu(e.slot);
        break;
      }
      break;
    }
  }
}

void Cluster::handle_crash(std::vector<MigratedApp> evacuable,
                           std::vector<MigratedApp> killed,
                           sim::SimTime crash_time, std::uint64_t flow) {
  if (flow != 0) {
    obs_->flow(flow, obs::FlowPhase::kStep, sim_.now(), "cluster",
               "recovery", "detected");
  }
  const RecoveryOptions& ro = options_.recovery;
  const int displaced =
      static_cast<int>(evacuable.size()) + static_cast<int>(killed.size());
  if (displaced == 0) {
    // Empty board: the repair window is detection alone.
    sim::SimDuration mttr = sim_.now() - crash_time;
    recovery_stats_.mttr_total += mttr;
    ++recovery_stats_.mttr_count;
    m_mttr_.observe(sim::to_ms(mttr));
    return;
  }
  if (!ro.enable_recovery) {
    // No recovery: the displaced apps die with the board. They never reach
    // completed_, so fault benches evaluate at a fixed horizon.
    recovery_stats_.apps_lost += displaced;
    m_lost_.add(displaced);
    return;
  }
  if (ro.kill_restart) {
    // Baseline: progress is not checkpointed anywhere — every displaced
    // app restarts from scratch, and only a control message transfers.
    for (MigratedApp& m : evacuable) {
      m.progress.clear();
      m.state_bytes = 0;
    }
  }

  // Graceful degradation: tenants with progress (Big-slot bundles and
  // started Little work) are always kept; zero-progress arrivals are shed
  // smallest-batch-first once the displaced set exceeds the threshold.
  std::vector<MigratedApp> keep;
  std::vector<MigratedApp> fresh;
  keep.reserve(static_cast<std::size_t>(displaced));
  for (MigratedApp& m : evacuable) {
    (m.progress.empty() ? fresh : keep).push_back(std::move(m));
  }
  for (MigratedApp& m : killed) {
    (m.progress.empty() ? fresh : keep).push_back(std::move(m));
  }
  std::stable_sort(fresh.begin(), fresh.end(),
                   [](const MigratedApp& a, const MigratedApp& b) {
                     return a.batch > b.batch;
                   });
  int room = ro.shed_threshold - static_cast<int>(keep.size());
  if (room < 0) room = 0;
  if (static_cast<int>(fresh.size()) > room) {
    int shed = static_cast<int>(fresh.size()) - room;
    recovery_stats_.apps_shed += shed;
    m_shed_.add(shed);
    if (obs_ != nullptr && obs_->journal_on()) {
      obs_->journal(sim_.now(), obs::JournalEvent::kShed, "cluster", -1, {},
                    flow, std::to_string(shed) + " apps");
    }
    fresh.resize(static_cast<std::size_t>(room));
  }
  for (MigratedApp& m : fresh) keep.push_back(std::move(m));
  if (keep.empty()) {
    sim::SimDuration mttr = sim_.now() - crash_time;
    recovery_stats_.mttr_total += mttr;
    ++recovery_stats_.mttr_count;
    m_mttr_.observe(sim::to_ms(mttr));
    return;
  }
  for (const MigratedApp& m : keep) {
    if (m.progress.empty()) {
      ++recovery_stats_.apps_restarted;
      m_restarted_.add();
    } else if (m.from_checkpoint) {
      ++recovery_stats_.apps_checkpoint_restored;
      m_ckpt_restored_.add();
      std::int64_t restored_items = 0;
      for (int d : m.progress) restored_items += d;
      m_restored_items_.observe(static_cast<double>(restored_items));
      // Work since the snapshot re-runs on the target board; the window is
      // bounded by one checkpoint interval.
      m_rerun_window_ms_.observe(sim::to_ms(crash_time - m.ckpt_time));
    } else {
      ++recovery_stats_.apps_evacuated;
      m_evacuated_.add();
    }
  }

  if (least_loaded_or_null() == nullptr) {
    // The whole active pool is down. Failure-triggered switch: bring up
    // the spare pool if it is free and healthy; otherwise the displaced
    // apps queue for re-admission at the next reboot.
    core::SwitchLoop::Config spare =
        loop_.config() == core::SwitchLoop::Config::kBigLittle
            ? core::SwitchLoop::Config::kOnlyLittle
            : core::SwitchLoop::Config::kBigLittle;
    bool healthy = pool_free(spare);
    for (fpga::Board* b : boards_for(spare)) {
      healthy = healthy && board_usable(b);
    }
    if (healthy) {
      loop_ = core::SwitchLoop(options_.t1, options_.t2, spare);
      activate_pool(spare);
      SwitchEvent event;
      event.time = sim_.now();
      event.to = spare;
      event.dswitch = -1.0;  // failover sentinel: not a D_switch decision
      event.apps_migrated = static_cast<int>(keep.size());
      switch_events_.push_back(event);
      m_switches_.add();
      VS_WARN << "failover switch -> " << config_name(spare);
    } else {
      // Spare pool exhausted: origin AND preferred destination died (a
      // rack spanning both pools) or the spare is still draining. Graceful
      // degradation: the displaced apps queue for re-admission at the next
      // reboot below, and RecoveryOptions::throttle defers/sheds fresh
      // arrivals behind that backlog in the meantime.
      ++recovery_stats_.spare_exhausted;
      m_spare_exhausted_.add();
      VS_WARN << "spare pool exhausted: " << keep.size()
              << " displaced apps queue for re-admission";
    }
  }

  // Evacuate over the Aurora link: DDR state of apps with progress plus a
  // control message; the same path as a D_switch live migration.
  std::int64_t bytes = 4096;
  for (const MigratedApp& m : keep) bytes += m.state_bytes;
  auto ticket = std::make_shared<CrashTicket>();
  ticket->crash_time = crash_time;
  ticket->remaining = static_cast<int>(keep.size());
  ticket->flow = flow;
  link_.transfer(bytes, [this, keep = std::move(keep), ticket,
                         bytes]() mutable {
    if (ticket->flow != 0) {
      obs_->flow(ticket->flow, obs::FlowPhase::kStep, sim_.now(), "cluster",
                 "recovery",
                 "evacuation landed (" + std::to_string(bytes) + " B)");
    }
    for (MigratedApp& m : keep) place_displaced(std::move(m), ticket);
  });
}

void Cluster::place_displaced(MigratedApp app,
                              const std::shared_ptr<CrashTicket>& ticket) {
  runtime::BoardRuntime* rt = least_loaded_or_null();
  if (rt == nullptr) {
    readmit_queue_.push_back(ReadmitEntry{std::move(app), ticket});
    return;
  }
  const apps::AppSpec& spec =
      suite_.at(static_cast<std::size_t>(app.spec_index));
  if (ticket != nullptr && ticket->flow != 0 && !ticket->flow_done) {
    obs_->flow(ticket->flow, obs::FlowPhase::kEnd, sim_.now(),
               rt->board().name(), "recovery", "readmit");
    ticket->flow_done = true;
  }
  rt->submit_migrated(spec, app, runtime::AppPhase::kRecovery);
  m_evac_latency_.observe(sim::to_ms(sim_.now() - ticket->crash_time));
  finish_ticket(ticket);
  on_queue_update();
}

void Cluster::finish_ticket(const std::shared_ptr<CrashTicket>& ticket) {
  if (--ticket->remaining == 0) {
    sim::SimDuration mttr = sim_.now() - ticket->crash_time;
    recovery_stats_.mttr_total += mttr;
    ++recovery_stats_.mttr_count;
    m_mttr_.observe(sim::to_ms(mttr));
  }
}

void Cluster::drain_readmit_queue() {
  while (!readmit_queue_.empty()) {
    runtime::BoardRuntime* rt = least_loaded_or_null();
    if (rt == nullptr) return;
    ReadmitEntry entry = std::move(readmit_queue_.front());
    readmit_queue_.pop_front();
    ++recovery_stats_.readmissions;
    m_readmitted_.add();
    const apps::AppSpec& spec =
        suite_.at(static_cast<std::size_t>(entry.app.spec_index));
    if (obs_ != nullptr && obs_->journal_on()) {
      obs_->journal(sim_.now(), obs::JournalEvent::kReadmit,
                    rt->board().name(), -1, spec.name,
                    entry.ticket != nullptr ? entry.ticket->flow : 0);
    }
    if (entry.ticket != nullptr && entry.ticket->flow != 0 &&
        !entry.ticket->flow_done) {
      obs_->flow(entry.ticket->flow, obs::FlowPhase::kEnd, sim_.now(),
                 rt->board().name(), "recovery", "readmit");
      entry.ticket->flow_done = true;
    }
    rt->submit_migrated(spec, entry.app, runtime::AppPhase::kRecovery);
    if (entry.ticket != nullptr) {
      m_evac_latency_.observe(sim::to_ms(sim_.now() - entry.ticket->crash_time));
      finish_ticket(entry.ticket);
    }
    on_queue_update();
  }
}

}  // namespace vs::cluster
