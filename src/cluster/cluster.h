// Cluster manager: cross-board switching and live migration (§III-D).
//
// Owns two pools of boards — Only.Little-configured and Big.Little-
// configured (one board each by default, matching the paper's two-ZCU216
// cluster; `boards_per_config` scales the pools). The pool matching the
// current configuration is *active*: arrivals are dispatched to its least-
// loaded board. The D_switch metric is recomputed over the active pool
// every `dswitch_period` candidate-queue updates and fed into the
// Schmitt-trigger switch loop. On a switch: every origin board stops
// admitting, applications that have not started — plus started apps paused
// between tasks, which carry their per-task progress and intermediate
// buffers — are extracted and transferred over the Aurora link to the
// spare pool (live migration), new arrivals flow to the new active pool,
// and origin boards drain their ongoing applications to completion before
// being freed (so one available FPGA suffices to switch the whole system).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "apps/task.h"
#include "cluster/aurora.h"
#include "cluster/migration.h"
#include "core/dswitch.h"
#include "core/versaslot_policy.h"
#include "faults/fault_plane.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "obs/metrics.h"
#include "runtime/board_runtime.h"
#include "runtime/checkpoint.h"
#include "workload/generator.h"

namespace vs::obs {
class ClusterTraceHub;
class TraceChannel;
}  // namespace vs::obs

namespace vs::cluster {

/// Failure-recovery policy knobs (the RecoveryPolicy layer over the
/// FaultPlane's health events).
struct RecoveryOptions {
  /// Evacuate a crashed board's paused apps over the Aurora link with their
  /// progress (live migration as failure recovery) and restart its killed
  /// apps from scratch on a surviving board.
  bool enable_recovery = true;
  /// Baseline recovery: ignore saved progress — every displaced app
  /// restarts from scratch (kill-restart). Only read when enable_recovery
  /// is true. With both flags false, displaced apps are simply lost.
  bool kill_restart = false;
  /// Health-event to recovery-action latency (heartbeat + decision).
  sim::SimDuration detection_latency = sim::ms(5.0);
  /// Graceful degradation: when a crash displaces more than this many apps,
  /// zero-progress Little-slot work is shed smallest-batch-first; started
  /// tenants (apps with progress, including Big-slot bundle work) are
  /// always preserved. Default: effectively unlimited (no shedding).
  int shed_threshold = 1 << 30;
  /// Load-aware admission throttle during recovery: while the readmission
  /// queue is non-empty (displaced apps are still waiting for a board),
  /// new arrivals are deferred behind them (kDefer) or dropped outright
  /// (kShed) instead of landing in front of the recovery backlog. kOff
  /// (the default) admits arrivals normally and is byte-identical to the
  /// pre-throttle cluster.
  enum class Throttle : std::uint8_t { kOff, kDefer, kShed };
  Throttle throttle = Throttle::kOff;
};

/// Recovery bookkeeping, available without telemetry (mirrored into obs::
/// instruments when a registry is bound).
struct RecoveryStats {
  int boards_crashed = 0;
  int boards_rebooted = 0;
  int link_flaps = 0;
  int slot_seus = 0;
  int apps_evacuated = 0;  ///< live-migrated with progress preserved
  int apps_checkpoint_restored = 0;  ///< restored from a DDR checkpoint
  int apps_restarted = 0;  ///< displaced and restarted from scratch
  int apps_lost = 0;       ///< no recovery: died with the board
  int apps_shed = 0;       ///< degradation: dropped Little-slot work
  int readmissions = 0;    ///< placed from the re-admission queue
  int rack_events = 0;     ///< common-mode rack events (kRackEvent) observed
  /// Crash batches that found the whole active pool down and the spare
  /// pool dead or draining too: no board anywhere to fail over to. The
  /// displaced apps queue for re-admission and the throttle (if on)
  /// defers/sheds fresh arrivals behind them.
  int spare_exhausted = 0;
  /// Admission throttle (RecoveryOptions::throttle; zero when kOff).
  int arrivals_deferred = 0;  ///< held behind the readmission backlog
  int arrivals_shed = 0;      ///< dropped while recovery was in progress
  sim::SimDuration mttr_total = 0;  ///< sum over crashes (see mttr_count)
  int mttr_count = 0;

  [[nodiscard]] double mttr_ms_mean() const noexcept {
    return mttr_count > 0
               ? sim::to_ms(mttr_total) / static_cast<double>(mttr_count)
               : 0.0;
  }
};

struct ClusterOptions {
  // Schmitt thresholds. Note the dynamic range of D_switch: with batch
  // sizes in [5, 30] the future-contention factor N_apps/N_batch is at most
  // ~1/5 and typically ~1/17 per queued app, so useful thresholds sit well
  // below the metric's theoretical (0,1) bound.
  double t1 = 0.030;  ///< upper threshold (Only.Little -> Big.Little)
  double t2 = 0.008;  ///< lower threshold (Big.Little -> Only.Little)
  /// Stabilisation: samples to observe before the loop may act, and the
  /// minimum candidate-queue depth for an upward switch (early samples are
  /// noisy — a couple of blocked PRs against a near-empty queue can spike
  /// the ratio without any sustained contention).
  int warmup_samples = 4;
  int min_queue_for_switch = 4;
  int dswitch_period = 4;           ///< queue updates between recalcs
  bool enable_switching = true;
  bool enable_prewarm = true;
  int boards_per_config = 1;        ///< pool size per fabric configuration
  core::SwitchLoop::Config initial = core::SwitchLoop::Config::kOnlyLittle;
  fpga::BoardParams board_params;
  fpga::LinkParams link_params;
  core::VersaSlotOptions bl_policy;  ///< mode forced to kBigLittle
  core::VersaSlotOptions ol_policy;  ///< mode forced to kOnlyLittle
  /// Telemetry registry; null (the default) disables instrumentation. When
  /// set, every board epoch, policy, the Aurora link, and the D_switch loop
  /// bind their instruments here. The registry must outlive the cluster.
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault injection. When `faults.enabled()` is false (the default) no
  /// FaultPlane is constructed and every code path is identical to a
  /// fault-free build — outputs stay byte-for-byte the same.
  faults::FaultScenario faults;
  RecoveryOptions recovery;
  /// Periodic DDR checkpointing on every board epoch. Inactive (the
  /// default) schedules nothing and keeps all outputs byte-identical;
  /// active, crashed bundled apps restore to their last snapshot instead
  /// of restarting from scratch.
  runtime::CheckpointPolicy checkpoint;
  /// Iterative pre-copy live migration for D_switch switches (see
  /// cluster/migration.h). Inactive (the default) keeps the whole-state
  /// stop-and-copy path byte-identical. Active, every board epoch tracks
  /// DDR dirty regions at `checkpoint.granularity` (the dirty map is
  /// shared with delta checkpointing) and switches stream state while the
  /// origins keep executing.
  MigrationPolicy migration;
  /// Sharded event kernel (sim/sharded.h). Null (the default) runs every
  /// board on the single Simulator passed to the constructor. When set, the
  /// constructor's Simulator must be `sharded->global()` and the kernel
  /// must provide at least 2 * boards_per_config shards: board k (in
  /// construction order OL0, BL0, OL1, BL1, ...) is built on shard k.
  /// Shard tags are assigned in the same order under BOTH kernels, so a
  /// serial run is the sharded run's bit-exact oracle.
  sim::ShardedSimulator* sharded = nullptr;
  /// Convenience knob for metrics::run_cluster: > 0 builds a sharded
  /// kernel with this many parallel-phase workers (1 = sharded queues,
  /// inline windows); 0 (the default) runs the serial reference kernel.
  /// Ignored by the Cluster itself — it follows `sharded`.
  int kernel_workers = 0;
  /// Cluster-wide causal observability (obs/trace_hub.h). Null (the
  /// default) keeps tracing/journalling off and every output byte-identical.
  /// When set, each board epoch's span recorder is attached (and enabled
  /// when the hub's trace stream is), and boards plus the coordinator emit
  /// journal records and cross-board flow events through their channels.
  /// The hub must outlive the cluster.
  obs::ClusterTraceHub* hub = nullptr;
  /// Response-time phase accounting on every board epoch (see
  /// runtime::AppPhase). Off (the default) keeps vs_app_phase_ms
  /// unregistered and exports byte-identical.
  bool phase_accounting = false;
};

/// The sharded kernel's conservative window depth for a cluster run: the
/// minimum delay with which a board-local event can schedule a new sync
/// event. Item-finish events (the only board-to-cluster sync site) fire at
/// least one item latency after their launch, so the suite-wide minimum
/// task item latency is a sound bound; the Aurora setup latency is folded
/// in as an extra safety floor for cross-board traffic.
[[nodiscard]] sim::SimDuration conservative_lookahead(
    const std::vector<apps::AppSpec>& suite, const fpga::LinkParams& link);

struct SwitchEvent {
  sim::SimTime time = 0;
  core::SwitchLoop::Config to = core::SwitchLoop::Config::kBigLittle;
  double dswitch = 0.0;
  int apps_migrated = 0;
  std::int64_t bytes = 0;  ///< total transferred (streamed + stop-and-copy)
  sim::SimDuration overhead = 0;  ///< decision-to-placement span (on done)
  // Pre-copy breakdown (whole-state switches leave rounds/precopy at 0 and
  // report their full transfer as the stop-and-copy downtime).
  int precopy_rounds = 0;          ///< rounds streamed while origins ran
  std::int64_t precopy_bytes = 0;  ///< bytes streamed before the stop
  std::int64_t stopcopy_bytes = 0; ///< final stop-and-copy transfer bytes
  sim::SimDuration downtime = 0;   ///< stop-and-copy transfer time (on done)
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, const std::vector<apps::AppSpec>& suite,
          ClusterOptions options = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Schedules all arrivals of a workload sequence into the simulator.
  /// Each arrival is dispatched to the least-loaded active board.
  void submit_sequence(const workload::Sequence& sequence);

  // --- Serving-plane entry points (serve::ResourceManager) -------------
  /// Dispatches one arrival *now* (call inside an event at its arrival
  /// time). `preferred` routes to that board (it must be an active
  /// runtime); null falls back to the least-loaded active board. A fully
  /// down cluster holds the arrival for re-admission at the next reboot,
  /// and the recovery throttle (RecoveryOptions::throttle) may defer or
  /// shed it while the readmission queue is non-empty.
  void dispatch_arrival(const apps::AppArrival& a,
                        runtime::BoardRuntime* preferred = nullptr);
  /// The active pool's usable board runtimes, in fixed pool order (empty
  /// only when every board is down under a fault plane).
  [[nodiscard]] std::vector<runtime::BoardRuntime*> active_runtimes();
  /// Depth of the readmission queue (non-zero while displaced apps or
  /// held/deferred arrivals are waiting for a board).
  [[nodiscard]] int readmit_pending() const noexcept {
    return static_cast<int>(readmit_queue_.size());
  }
  /// Cluster-level completion hook, invoked after the cluster's own
  /// bookkeeping inside the coordinator-pinned completion path (so
  /// anything the hook schedules is deterministic under both kernels).
  void set_on_app_complete(
      std::function<void(const runtime::CompletedApp&)> fn) {
    on_app_complete_ = std::move(fn);
  }
  /// Load rebalancing over the Aurora link: when the spread between the
  /// most- and least-loaded active boards reaches `min_spread`, the most
  /// loaded board's unstarted apps live-migrate to the least loaded ones
  /// (the same transfer + re-admission path as a D_switch migration).
  /// Returns the number of apps put in flight (0 = balanced or nothing
  /// migratable).
  int rebalance_active(int min_spread);

  /// All apps completed across boards and epochs.
  [[nodiscard]] const std::vector<runtime::CompletedApp>& completed()
      const noexcept {
    return completed_;
  }
  [[nodiscard]] const core::DSwitchMonitor& dswitch() const noexcept {
    return monitor_;
  }
  [[nodiscard]] const std::vector<SwitchEvent>& switches() const noexcept {
    return switch_events_;
  }
  [[nodiscard]] core::SwitchLoop::Config active_config() const noexcept {
    return loop_.config();
  }
  /// First board of the active pool (pools of size 1 have exactly one).
  [[nodiscard]] runtime::BoardRuntime& active_runtime() {
    return *epochs_[static_cast<std::size_t>(active_epochs_.front())]->runtime;
  }
  [[nodiscard]] int active_board_count() const noexcept {
    return static_cast<int>(active_epochs_.size());
  }
  [[nodiscard]] const ClusterOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] int submitted() const noexcept { return submitted_; }

  /// True when every submitted app has completed.
  [[nodiscard]] bool all_done() const noexcept {
    return static_cast<int>(completed_.size()) == submitted_;
  }

  /// Recovery bookkeeping (all zero when no faults were injected).
  [[nodiscard]] const RecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }
  /// Checkpoint pass accounting summed over every board epoch (all zero
  /// without an active CheckpointPolicy).
  [[nodiscard]] runtime::CheckpointStats checkpoint_stats() const {
    runtime::CheckpointStats total;
    for (const auto& e : epochs_) total += e->runtime->checkpoint_stats();
    return total;
  }
  /// Fault plane, or null when `options.faults` is disabled.
  [[nodiscard]] const faults::FaultPlane* fault_plane() const noexcept {
    return fault_plane_.get();
  }

 private:
  struct Epoch {
    fpga::Board* board = nullptr;
    core::SwitchLoop::Config config = core::SwitchLoop::Config::kOnlyLittle;
    std::unique_ptr<core::VersaSlotPolicy> policy;
    std::unique_ptr<runtime::BoardRuntime> runtime;
    std::int64_t pr_snapshot = 0;  ///< counters().pr_requests at last sample
  };

  int new_epoch(core::SwitchLoop::Config config, fpga::Board& board);
  void activate_pool(core::SwitchLoop::Config config);
  void on_queue_update();
  void sample_and_act();
  void prewarm(core::SwitchLoop::Config config);
  void do_switch(core::SwitchLoop::Config target, double d);
  // --- Pre-copy migration (MigrationPolicy) ---------------------------
  /// One in-flight pre-copy migration: origin epochs keep executing while
  /// rounds stream; shared across the round-completion closures.
  struct PrecopyState {
    core::SwitchLoop::Config target = core::SwitchLoop::Config::kBigLittle;
    std::vector<int> origins;          ///< epoch indices streaming out
    std::size_t event_index = 0;       ///< into switch_events_
    sim::SimTime t0 = 0;               ///< switch decision time
    int rounds = 0;                    ///< streamed rounds so far
    std::int64_t first_round_bytes = 0;
    std::int64_t streamed = 0;         ///< bytes streamed so far
    std::uint64_t flow = 0;            ///< causal flow id (0 = tracing off)
  };
  void begin_precopy(core::SwitchLoop::Config target, double d);
  void precopy_round(std::shared_ptr<PrecopyState> st, std::int64_t bytes);
  void finish_precopy(std::shared_ptr<PrecopyState> st,
                      std::int64_t final_dirty);
  [[nodiscard]] runtime::BoardRuntime& least_loaded_active();
  [[nodiscard]] runtime::BoardRuntime* least_loaded_or_null();
  [[nodiscard]] std::vector<fpga::Board*> boards_for(
      core::SwitchLoop::Config config);
  /// The pool for `config` is free when no undrained epoch uses its boards.
  [[nodiscard]] bool pool_free(core::SwitchLoop::Config config) const;

  // --- Fault plane and recovery ---------------------------------------
  /// Progress accounting for one crash: MTTR is measured from the crash to
  /// the placement of its last displaced app (or to detection when the
  /// board was empty). Shared across the per-app placement closures.
  struct CrashTicket {
    sim::SimTime crash_time = 0;
    int remaining = 0;
    std::uint64_t flow = 0;   ///< crash→evac→readmit flow (0 = tracing off)
    bool flow_done = false;   ///< flow terminus already emitted
  };
  using MigratedApp = runtime::BoardRuntime::MigratedApp;
  struct ReadmitEntry {
    MigratedApp app;
    std::shared_ptr<CrashTicket> ticket;  ///< null for deferred arrivals
  };
  /// Rack-mode batched detection: board losses landing inside one
  /// detection window (the signature of a common-mode rack event) coalesce
  /// into one recovery action — one shed decision, one failover, one
  /// evacuation transfer, one MTTR ticket measured from the *first* crash.
  /// Only built when the scenario carries failure domains; independent-
  /// hazard scenarios keep the per-crash path bit-for-bit.
  struct PendingBatch {
    std::vector<MigratedApp> evacuable;
    std::vector<MigratedApp> killed;
    sim::SimTime crash_time = 0;  ///< first crash of the batch
    std::uint64_t flow = 0;       ///< first crash's causal flow
  };
  void on_health_event(const faults::HealthEvent& e);
  void handle_crash(std::vector<MigratedApp> evacuable,
                    std::vector<MigratedApp> killed, sim::SimTime crash_time,
                    std::uint64_t flow);
  void place_displaced(MigratedApp app,
                       const std::shared_ptr<CrashTicket>& ticket);
  void finish_ticket(const std::shared_ptr<CrashTicket>& ticket);
  void drain_readmit_queue();
  [[nodiscard]] bool board_usable(const fpga::Board* board) const;

  sim::Simulator& sim_;
  const std::vector<apps::AppSpec>& suite_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<fpga::Board>> boards_ol_;
  std::vector<std::unique_ptr<fpga::Board>> boards_bl_;
  AuroraLink link_;
  core::DSwitchMonitor monitor_;
  core::SwitchLoop loop_;
  std::vector<std::unique_ptr<Epoch>> epochs_;
  std::vector<int> active_epochs_;  ///< indices into epochs_
  std::vector<runtime::CompletedApp> completed_;
  std::vector<SwitchEvent> switch_events_;
  std::function<void(const runtime::CompletedApp&)> on_app_complete_;
  int submitted_ = 0;
  /// A pre-copy migration is streaming; further switches defer until its
  /// stop-and-copy lands (the origins are still mid-extraction).
  bool precopy_active_ = false;
  /// Coordinator channel of options_.hub (null when no hub is attached).
  obs::TraceChannel* obs_ = nullptr;

  // Fault plane (null when options.faults is disabled) and recovery state.
  std::unique_ptr<faults::FaultPlane> fault_plane_;
  /// Board and its fabric configuration by FaultPlane board index
  /// (registration order: OL pool then BL pool).
  std::vector<fpga::Board*> plane_boards_;
  std::vector<core::SwitchLoop::Config> plane_configs_;
  std::deque<ReadmitEntry> readmit_queue_;
  RecoveryStats recovery_stats_;
  PendingBatch batch_;       ///< rack-mode crash batch being coalesced
  bool batch_open_ = false;  ///< batch_ has a handler scheduled

  // Telemetry: switch-loop instruments (no-ops when options.metrics null).
  obs::CounterHandle m_dswitch_evals_;   ///< vs_dswitch_evaluations_total
  obs::CounterHandle m_switches_;        ///< vs_dswitch_switches_total
  obs::CounterHandle m_migrated_apps_;   ///< vs_cluster_migrated_apps_total
  obs::GaugeHandle m_dswitch_value_;     ///< vs_dswitch_value
  obs::GaugeHandle m_active_apps_;       ///< vs_cluster_active_apps
  // Recovery instruments.
  obs::CounterHandle m_evacuated_;    ///< vs_recovery_evacuated_apps_total
  /// vs_recovery_checkpoint_restored_apps_total (checkpointing only).
  obs::CounterHandle m_ckpt_restored_;
  obs::CounterHandle m_restarted_;    ///< vs_recovery_restarted_apps_total
  obs::CounterHandle m_lost_;         ///< vs_recovery_lost_apps_total
  obs::CounterHandle m_shed_;         ///< vs_recovery_shed_apps_total
  obs::CounterHandle m_readmitted_;   ///< vs_recovery_readmissions_total
  /// vs_recovery_spare_exhausted_total (failure domains only).
  obs::CounterHandle m_spare_exhausted_;
  obs::HistogramHandle m_evac_latency_;  ///< vs_recovery_evac_latency_ms
  obs::HistogramHandle m_mttr_;          ///< vs_recovery_mttr_ms
  // Admission-throttle instruments (registered only when
  // recovery.throttle != kOff, so throttle-free exports stay identical).
  obs::CounterHandle m_throttle_deferred_;  ///< vs_throttle_deferred_total
  obs::CounterHandle m_throttle_shed_;      ///< vs_throttle_shed_total
  // Checkpoint-restore instruments (faults + checkpointing only).
  obs::HistogramHandle m_restored_items_;   ///< vs_ckpt_restored_items
  obs::HistogramHandle m_rerun_window_ms_;  ///< vs_ckpt_rerun_window_ms
  // Pre-copy instruments (registered only when migration.active()).
  obs::CounterHandle m_migration_rounds_;   ///< vs_migration_rounds_total
  obs::CounterHandle m_precopy_bytes_;  ///< vs_migration_precopy_bytes_total
  obs::HistogramHandle m_migration_downtime_ms_;  ///< vs_migration_downtime_ms
};

}  // namespace vs::cluster
