// Cluster manager: cross-board switching and live migration (§III-D).
//
// Owns two pools of boards — Only.Little-configured and Big.Little-
// configured (one board each by default, matching the paper's two-ZCU216
// cluster; `boards_per_config` scales the pools). The pool matching the
// current configuration is *active*: arrivals are dispatched to its least-
// loaded board. The D_switch metric is recomputed over the active pool
// every `dswitch_period` candidate-queue updates and fed into the
// Schmitt-trigger switch loop. On a switch: every origin board stops
// admitting, applications that have not started — plus started apps paused
// between tasks, which carry their per-task progress and intermediate
// buffers — are extracted and transferred over the Aurora link to the
// spare pool (live migration), new arrivals flow to the new active pool,
// and origin boards drain their ongoing applications to completion before
// being freed (so one available FPGA suffices to switch the whole system).
#pragma once

#include <memory>
#include <vector>

#include "apps/task.h"
#include "cluster/aurora.h"
#include "core/dswitch.h"
#include "core/versaslot_policy.h"
#include "fpga/board.h"
#include "obs/metrics.h"
#include "runtime/board_runtime.h"
#include "workload/generator.h"

namespace vs::cluster {

struct ClusterOptions {
  // Schmitt thresholds. Note the dynamic range of D_switch: with batch
  // sizes in [5, 30] the future-contention factor N_apps/N_batch is at most
  // ~1/5 and typically ~1/17 per queued app, so useful thresholds sit well
  // below the metric's theoretical (0,1) bound.
  double t1 = 0.030;  ///< upper threshold (Only.Little -> Big.Little)
  double t2 = 0.008;  ///< lower threshold (Big.Little -> Only.Little)
  /// Stabilisation: samples to observe before the loop may act, and the
  /// minimum candidate-queue depth for an upward switch (early samples are
  /// noisy — a couple of blocked PRs against a near-empty queue can spike
  /// the ratio without any sustained contention).
  int warmup_samples = 4;
  int min_queue_for_switch = 4;
  int dswitch_period = 4;           ///< queue updates between recalcs
  bool enable_switching = true;
  bool enable_prewarm = true;
  int boards_per_config = 1;        ///< pool size per fabric configuration
  core::SwitchLoop::Config initial = core::SwitchLoop::Config::kOnlyLittle;
  fpga::BoardParams board_params;
  fpga::LinkParams link_params;
  core::VersaSlotOptions bl_policy;  ///< mode forced to kBigLittle
  core::VersaSlotOptions ol_policy;  ///< mode forced to kOnlyLittle
  /// Telemetry registry; null (the default) disables instrumentation. When
  /// set, every board epoch, policy, the Aurora link, and the D_switch loop
  /// bind their instruments here. The registry must outlive the cluster.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SwitchEvent {
  sim::SimTime time = 0;
  core::SwitchLoop::Config to = core::SwitchLoop::Config::kBigLittle;
  double dswitch = 0.0;
  int apps_migrated = 0;
  std::int64_t bytes = 0;
  sim::SimDuration overhead = 0;  ///< Aurora transfer time (filled on done)
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, const std::vector<apps::AppSpec>& suite,
          ClusterOptions options = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Schedules all arrivals of a workload sequence into the simulator.
  /// Each arrival is dispatched to the least-loaded active board.
  void submit_sequence(const workload::Sequence& sequence);

  /// All apps completed across boards and epochs.
  [[nodiscard]] const std::vector<runtime::CompletedApp>& completed()
      const noexcept {
    return completed_;
  }
  [[nodiscard]] const core::DSwitchMonitor& dswitch() const noexcept {
    return monitor_;
  }
  [[nodiscard]] const std::vector<SwitchEvent>& switches() const noexcept {
    return switch_events_;
  }
  [[nodiscard]] core::SwitchLoop::Config active_config() const noexcept {
    return loop_.config();
  }
  /// First board of the active pool (pools of size 1 have exactly one).
  [[nodiscard]] runtime::BoardRuntime& active_runtime() {
    return *epochs_[static_cast<std::size_t>(active_epochs_.front())]->runtime;
  }
  [[nodiscard]] int active_board_count() const noexcept {
    return static_cast<int>(active_epochs_.size());
  }
  [[nodiscard]] const ClusterOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] int submitted() const noexcept { return submitted_; }

  /// True when every submitted app has completed.
  [[nodiscard]] bool all_done() const noexcept {
    return static_cast<int>(completed_.size()) == submitted_;
  }

 private:
  struct Epoch {
    fpga::Board* board = nullptr;
    core::SwitchLoop::Config config = core::SwitchLoop::Config::kOnlyLittle;
    std::unique_ptr<core::VersaSlotPolicy> policy;
    std::unique_ptr<runtime::BoardRuntime> runtime;
    std::int64_t pr_snapshot = 0;  ///< counters().pr_requests at last sample
  };

  int new_epoch(core::SwitchLoop::Config config, fpga::Board& board);
  void activate_pool(core::SwitchLoop::Config config);
  void on_queue_update();
  void sample_and_act();
  void prewarm(core::SwitchLoop::Config config);
  void do_switch(core::SwitchLoop::Config target, double d);
  [[nodiscard]] runtime::BoardRuntime& least_loaded_active();
  [[nodiscard]] std::vector<fpga::Board*> boards_for(
      core::SwitchLoop::Config config);
  /// The pool for `config` is free when no undrained epoch uses its boards.
  [[nodiscard]] bool pool_free(core::SwitchLoop::Config config) const;

  sim::Simulator& sim_;
  const std::vector<apps::AppSpec>& suite_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<fpga::Board>> boards_ol_;
  std::vector<std::unique_ptr<fpga::Board>> boards_bl_;
  AuroraLink link_;
  core::DSwitchMonitor monitor_;
  core::SwitchLoop loop_;
  std::vector<std::unique_ptr<Epoch>> epochs_;
  std::vector<int> active_epochs_;  ///< indices into epochs_
  std::vector<runtime::CompletedApp> completed_;
  std::vector<SwitchEvent> switch_events_;
  int submitted_ = 0;

  // Telemetry: switch-loop instruments (no-ops when options.metrics null).
  obs::CounterHandle m_dswitch_evals_;   ///< vs_dswitch_evaluations_total
  obs::CounterHandle m_switches_;        ///< vs_dswitch_switches_total
  obs::CounterHandle m_migrated_apps_;   ///< vs_cluster_migrated_apps_total
  obs::GaugeHandle m_dswitch_value_;     ///< vs_dswitch_value
  obs::GaugeHandle m_active_apps_;       ///< vs_cluster_active_apps
};

}  // namespace vs::cluster
