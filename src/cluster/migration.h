// Iterative pre-copy live migration (VM-style upgrade of §III-D).
//
// The paper's D_switch migration is stop-and-copy: origin boards pause,
// the whole migratable DDR state crosses the Aurora link, then execution
// resumes on the target — downtime scales with total state. Pre-copy
// instead streams state *while the origins keep executing*: the first
// round ships the full migratable image, every following round ships only
// the regions dirtied since the previous round (the migration plane of
// each app's runtime::DirtyMap), and the loop stops when a round's dirty
// residue converges below a threshold or the round cap is hit. Only then
// do the origins pause, and the stop-and-copy transfer carries just the
// final delta — downtime shrinks from full-state to last-delta.
//
// Off by default: with `precopy` false the cluster keeps the PR 4
// whole-state switch path bit-for-bit.
#pragma once

#include <cstdint>

namespace vs::cluster {

struct MigrationPolicy {
  /// Enables the pre-copy loop for D_switch migrations.
  bool precopy = false;
  /// Hard cap on streamed rounds, counting the initial full-state round.
  /// Write-heavy origins that never converge stop here.
  int max_rounds = 4;
  /// Convergence threshold: stop streaming once a round's dirty bytes fall
  /// to this fraction of the first (full) round.
  double convergence = 0.125;
  /// Absolute convergence floor: a residue at or below this many bytes is
  /// always worth stopping for, whatever the ratio says.
  std::int64_t min_dirty_bytes = 64 * 1024;

  [[nodiscard]] bool active() const noexcept {
    return precopy && max_rounds >= 1;
  }
};

}  // namespace vs::cluster
