// Aurora link model: the GT-transceiver (zSFP+) point-to-point connection
// between boards used for cross-board live migration. Transfers are
// serialised on the link and cost setup + bytes/bandwidth.
//
// The link can flap (fault plane): set_down() aborts the in-flight transfer
// — its completion never fires and it returns to the head of the queue —
// and set_up() resumes the queue after an exponential backoff keyed to the
// head transfer's abort count. Transfers requested while the link is down
// simply queue; none are ever lost.
#pragma once

#include <cstdint>
#include <deque>

#include "fpga/params.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace vs::cluster {

class AuroraLink {
 public:
  AuroraLink(sim::Simulator& sim, fpga::LinkParams params = {})
      : sim_(sim), params_(params) {}

  /// Queues a DMA transfer of `bytes`; `on_done` fires at completion.
  void transfer(std::int64_t bytes, sim::EventFn on_done);

  /// Fault plane: link down. Aborts the in-flight transfer (it re-queues at
  /// the front with its attempt count bumped) and stalls the queue.
  void set_down();
  /// Fault plane: link restored. The queue resumes after the head
  /// transfer's retry backoff (immediately if it was never aborted).
  void set_up();
  [[nodiscard]] bool link_up() const noexcept { return up_; }

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::int64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::int64_t bytes_moved() const noexcept { return bytes_; }
  [[nodiscard]] std::int64_t aborts() const noexcept { return aborts_; }
  [[nodiscard]] const fpga::LinkParams& params() const noexcept {
    return params_;
  }

  /// Registers the link's instruments and resolves the telemetry handles.
  /// Without this call every update is a no-op.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct Pending {
    std::int64_t bytes = 0;
    sim::EventFn on_done;
    sim::SimTime enqueued = 0;
    int attempts = 0;     ///< times a flap aborted this transfer
    bool counted = false; ///< transfers_/bytes_/stall accounted (first start)
  };
  void start(Pending p);
  void finish_transfer();
  void start_next_if_idle();
  [[nodiscard]] sim::SimDuration backoff_for(int attempts) const;

  sim::Simulator& sim_;
  fpga::LinkParams params_;
  std::deque<Pending> queue_;
  // In-flight transfer: the link is serial, so the completion event
  // captures only `this` and stays in the event queue's inline buffer.
  Pending current_;
  bool busy_ = false;
  bool up_ = true;
  sim::EventId finish_event_ = 0;  ///< valid only while busy_
  std::int64_t transfers_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t aborts_ = 0;
  obs::CounterHandle transfers_total_;  ///< vs_aurora_transfers_total
  obs::CounterHandle bytes_total_;      ///< vs_aurora_bytes_total
  obs::CounterHandle stall_ns_total_;   ///< vs_aurora_stall_ns_total
  obs::CounterHandle aborts_total_;     ///< vs_aurora_aborts_total
  obs::CounterHandle retries_total_;    ///< vs_aurora_retries_total
  obs::GaugeHandle link_up_gauge_;      ///< vs_aurora_link_up
};

}  // namespace vs::cluster
