// Aurora link model: the GT-transceiver (zSFP+) point-to-point connection
// between boards used for cross-board live migration. Transfers are
// serialised on the link and cost setup + bytes/bandwidth.
#pragma once

#include <cstdint>
#include <deque>

#include "fpga/params.h"
#include "sim/simulator.h"

namespace vs::cluster {

class AuroraLink {
 public:
  AuroraLink(sim::Simulator& sim, fpga::LinkParams params = {})
      : sim_(sim), params_(params) {}

  /// Queues a DMA transfer of `bytes`; `on_done` fires at completion.
  void transfer(std::int64_t bytes, sim::EventFn on_done);

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::int64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::int64_t bytes_moved() const noexcept { return bytes_; }
  [[nodiscard]] const fpga::LinkParams& params() const noexcept {
    return params_;
  }

 private:
  struct Pending {
    std::int64_t bytes = 0;
    sim::EventFn on_done;
  };
  void start(Pending p);
  void finish_transfer();

  sim::Simulator& sim_;
  fpga::LinkParams params_;
  std::deque<Pending> queue_;
  // In-flight transfer: the link is serial, so the completion event
  // captures only `this` and stays in the event queue's inline buffer.
  Pending current_;
  bool busy_ = false;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace vs::cluster
