// Aurora link model: the GT-transceiver (zSFP+) point-to-point connection
// between boards used for cross-board live migration. Transfers are
// serialised on the link and cost setup + bytes/bandwidth.
#pragma once

#include <cstdint>
#include <deque>

#include "fpga/params.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace vs::cluster {

class AuroraLink {
 public:
  AuroraLink(sim::Simulator& sim, fpga::LinkParams params = {})
      : sim_(sim), params_(params) {}

  /// Queues a DMA transfer of `bytes`; `on_done` fires at completion.
  void transfer(std::int64_t bytes, sim::EventFn on_done);

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::int64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::int64_t bytes_moved() const noexcept { return bytes_; }
  [[nodiscard]] const fpga::LinkParams& params() const noexcept {
    return params_;
  }

  /// Registers the link's instruments and resolves the telemetry handles.
  /// Without this call every update is a no-op.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct Pending {
    std::int64_t bytes = 0;
    sim::EventFn on_done;
    sim::SimTime enqueued = 0;
  };
  void start(Pending p);
  void finish_transfer();

  sim::Simulator& sim_;
  fpga::LinkParams params_;
  std::deque<Pending> queue_;
  // In-flight transfer: the link is serial, so the completion event
  // captures only `this` and stays in the event queue's inline buffer.
  Pending current_;
  bool busy_ = false;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_ = 0;
  obs::CounterHandle transfers_total_;  ///< vs_aurora_transfers_total
  obs::CounterHandle bytes_total_;      ///< vs_aurora_bytes_total
  obs::CounterHandle stall_ns_total_;   ///< vs_aurora_stall_ns_total
};

}  // namespace vs::cluster
