#include "cluster/aurora.h"

#include <utility>

namespace vs::cluster {

void AuroraLink::transfer(std::int64_t bytes, sim::EventFn on_done) {
  Pending p{bytes, std::move(on_done)};
  if (busy_) {
    queue_.push_back(std::move(p));
    return;
  }
  start(std::move(p));
}

void AuroraLink::start(Pending p) {
  busy_ = true;
  ++transfers_;
  bytes_ += p.bytes;
  sim::SimDuration t = params_.transfer_time(p.bytes);
  current_ = std::move(p);
  sim_.schedule(t, [this] { finish_transfer(); });
}

void AuroraLink::finish_transfer() {
  // Move out first: on_done may start another transfer re-entrantly.
  Pending done = std::move(current_);
  busy_ = false;
  if (done.on_done) done.on_done();
  if (!busy_ && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

}  // namespace vs::cluster
