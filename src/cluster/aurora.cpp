#include "cluster/aurora.h"

#include <utility>

namespace vs::cluster {

void AuroraLink::transfer(std::int64_t bytes, sim::EventFn on_done) {
  Pending p{bytes, std::move(on_done), sim_.now()};
  if (busy_) {
    queue_.push_back(std::move(p));
    return;
  }
  start(std::move(p));
}

void AuroraLink::bind_metrics(obs::MetricsRegistry& registry) {
  transfers_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_transfers_total")};
  bytes_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_bytes_total")};
  stall_ns_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_stall_ns_total")};
}

void AuroraLink::start(Pending p) {
  busy_ = true;
  ++transfers_;
  bytes_ += p.bytes;
  transfers_total_.add();
  bytes_total_.add(p.bytes);
  // Stall: time the transfer sat behind an earlier one on the serial link.
  stall_ns_total_.add(sim_.now() - p.enqueued);
  sim::SimDuration t = params_.transfer_time(p.bytes);
  current_ = std::move(p);
  sim_.schedule(t, [this] { finish_transfer(); });
}

void AuroraLink::finish_transfer() {
  // Move out first: on_done may start another transfer re-entrantly.
  Pending done = std::move(current_);
  busy_ = false;
  if (done.on_done) done.on_done();
  if (!busy_ && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

}  // namespace vs::cluster
