#include "cluster/aurora.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vs::cluster {

void AuroraLink::transfer(std::int64_t bytes, sim::EventFn on_done) {
  Pending p{bytes, std::move(on_done), sim_.now()};
  if (busy_ || !up_) {
    queue_.push_back(std::move(p));
    return;
  }
  start(std::move(p));
}

void AuroraLink::bind_metrics(obs::MetricsRegistry& registry) {
  transfers_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_transfers_total")};
  bytes_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_bytes_total")};
  stall_ns_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_stall_ns_total")};
  aborts_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_aborts_total")};
  retries_total_ =
      obs::CounterHandle{&registry.counter("vs_aurora_retries_total")};
  link_up_gauge_ = obs::GaugeHandle{&registry.gauge("vs_aurora_link_up")};
  link_up_gauge_.set(up_ ? 1.0 : 0.0);
}

void AuroraLink::start(Pending p) {
  assert(up_);
  busy_ = true;
  if (!p.counted) {
    ++transfers_;
    bytes_ += p.bytes;
    transfers_total_.add();
    bytes_total_.add(p.bytes);
    // Stall: time the transfer sat behind an earlier one on the serial link.
    stall_ns_total_.add(sim_.now() - p.enqueued);
    p.counted = true;
  } else {
    retries_total_.add();
  }
  // An aborted attempt restarts from scratch: Aurora is a streaming
  // point-to-point protocol without mid-transfer resume.
  sim::SimDuration t = params_.transfer_time(p.bytes);
  current_ = std::move(p);
  finish_event_ = sim_.schedule(t, [this] { finish_transfer(); });
}

void AuroraLink::finish_transfer() {
  // Move out first: on_done may start another transfer re-entrantly.
  Pending done = std::move(current_);
  busy_ = false;
  if (done.on_done) done.on_done();
  start_next_if_idle();
}

void AuroraLink::start_next_if_idle() {
  if (!busy_ && up_ && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

sim::SimDuration AuroraLink::backoff_for(int attempts) const {
  if (attempts <= 0) return 0;
  return params_.retry_backoff << std::min(attempts - 1, 6);
}

void AuroraLink::set_down() {
  if (!up_) return;
  up_ = false;
  link_up_gauge_.set(0.0);
  if (busy_) {
    // Abort the in-flight transfer: cancel its completion and park it at
    // the head of the queue so the retry order matches the request order.
    sim_.cancel(finish_event_);
    busy_ = false;
    Pending aborted = std::move(current_);
    ++aborted.attempts;
    ++aborts_;
    aborts_total_.add();
    queue_.push_front(std::move(aborted));
  }
}

void AuroraLink::set_up() {
  if (up_) return;
  up_ = true;
  link_up_gauge_.set(1.0);
  if (queue_.empty()) return;
  sim::SimDuration delay = backoff_for(queue_.front().attempts);
  if (delay <= 0) {
    start_next_if_idle();
    return;
  }
  // Exponential backoff before the retry; the link may flap again in the
  // meantime, so the resume re-checks state when it fires.
  sim_.schedule(delay, [this] { start_next_if_idle(); });
}

}  // namespace vs::cluster
