// FaultPlane: deterministic fault injection through the normal event kernel.
//
// The plane owns the fault schedule of a run. Scripted timeline entries are
// scheduled verbatim; stochastic hazards draw exponential inter-arrival
// times from named PCG32 streams (one per board and hazard class, forked
// off the scenario's master seed) and re-arm themselves like the telemetry
// Sampler — a hazard chain stops when the simulation is otherwise idle or
// its next draw lands past the scenario horizon, so runs always drain.
// Repairs (board reboot, link restore) are scheduled unconditionally at
// injection time, one per outage.
//
// The plane flips its own board-up/link-up registers and surfaces every
// transition as a HealthEvent to a single handler. It never touches
// runtimes or the Aurora link itself, so it depends only on sim/fpga/obs
// and is reusable under any control plane: the cluster manager's recovery
// policy, and the single-board harness's hold-and-readmit loop
// (metrics::run_single_board) both drive recovery off the same events.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "faults/scenario.h"
#include "fpga/board.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace vs::faults {

/// A fault or repair the plane injected, surfaced to the recovery handler.
struct HealthEvent {
  sim::SimTime time = 0;
  FaultKind kind = FaultKind::kBoardCrash;
  int board = -1;  ///< plane board id; -1 for link events
  int slot = -1;   ///< kSlotSeu only
};

class FaultPlane {
 public:
  FaultPlane(sim::Simulator& sim, FaultScenario scenario);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Registers a board with the plane; returns its plane id (registration
  /// order). Applies the scenario's PCAP CRC model to the board (stream
  /// "pcap/<id>"). Call for every board before start().
  int add_board(fpga::Board& board);

  /// The recovery policy: invoked synchronously for every fault and repair.
  void set_handler(std::function<void(const HealthEvent&)> handler) {
    handler_ = std::move(handler);
  }

  /// Schedules the scripted timeline and arms the hazard chains.
  void start();

  [[nodiscard]] int board_count() const noexcept {
    return static_cast<int>(boards_.size());
  }
  [[nodiscard]] bool board_up(int board) const {
    return boards_.at(static_cast<std::size_t>(board)).up;
  }
  [[nodiscard]] bool link_up() const noexcept { return link_up_; }
  [[nodiscard]] const FaultScenario& scenario() const noexcept {
    return scenario_;
  }
  /// Every fault and repair injected so far, in injection order.
  [[nodiscard]] const std::vector<HealthEvent>& injected() const noexcept {
    return injected_;
  }

  /// Fraction of [0, now] this board spent up (1.0 before any fault).
  [[nodiscard]] double board_availability(int board, sim::SimTime now) const;
  /// Mean of board_availability over all registered boards.
  [[nodiscard]] double mean_availability(sim::SimTime now) const;

  /// Resolves vs_faults_injected_total / vs_faults_recovered_total
  /// (labelled by kind) and the per-board vs_board_available gauges.
  /// Call before add_board to label boards registered afterwards too.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct BoardRec {
    fpga::Board* board = nullptr;
    bool up = true;
    sim::SimTime down_since = 0;
    sim::SimDuration down_ns = 0;
    util::Rng crash_rng;  ///< stream "crash/<id>": inter-arrival draws
    util::Rng seu_rng;    ///< stream "seu/<id>": inter-arrival + slot draws
    obs::GaugeHandle available;  ///< vs_board_available{board=...}
  };

  void emit(FaultKind kind, int board, int slot);
  void apply_scripted(const FaultEvent& e);
  void inject_crash(int board);
  void reboot(int board);
  void inject_link_down();
  void restore_link();
  void inject_seu(int board, int slot);
  /// Next exponential inter-arrival for `rate` events per simulated second.
  [[nodiscard]] static sim::SimDuration exp_delay(util::Rng& rng,
                                                  double rate_per_s);
  void arm_crash(int board);
  void arm_seu(int board);
  void arm_flap();
  void fire_crash(int board);
  void fire_seu(int board);
  void fire_flap();

  sim::Simulator& sim_;
  FaultScenario scenario_;
  std::function<void(const HealthEvent&)> handler_;
  std::vector<BoardRec> boards_;
  bool link_up_ = true;
  util::Rng flap_rng_;  ///< stream "link/flap"
  std::vector<HealthEvent> injected_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::CounterHandle m_injected_[3];   ///< crash / link_down / slot_seu
  obs::CounterHandle m_recovered_[2];  ///< reboot / link_up
};

}  // namespace vs::faults
