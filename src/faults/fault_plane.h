// FaultPlane: deterministic fault injection through the normal event kernel.
//
// The plane owns the fault schedule of a run. Scripted timeline entries are
// scheduled verbatim (after an index-validation pass); stochastic hazards
// draw exponential inter-arrival times from named PCG32 streams (one per
// board and hazard class, forked off the scenario's master seed) and
// re-arm themselves like the telemetry Sampler — a hazard chain stops when
// the simulation is otherwise idle or its next draw lands past the
// scenario horizon, so runs always drain. Repairs (board reboot, link
// restore) are scheduled unconditionally at injection time, one per
// outage.
//
// Correlated failure domains (FailureDomain) add a common-mode hazard on
// top of the independent chains: a rack event crashes every member board
// of a domain together (minus per-board survival draws, plus optional
// small jitter), with every stochastic choice taken from the domain's own
// "rack/<name>" stream — so rack schedules, like all others, are a pure
// function of the seed. The member crashes reuse the ordinary crash path
// (one kBoardCrash HealthEvent and one bounded reboot each), so recovery
// layers need no special casing beyond surviving simultaneous loss.
//
// The plane flips its own board-up/link-up registers and surfaces every
// transition as a HealthEvent to a single handler. It never touches
// runtimes or the Aurora link itself, so it depends only on sim/fpga/obs
// and is reusable under any control plane: the cluster manager's recovery
// policy, and the single-board harness's hold-and-readmit loop
// (metrics::run_single_board) both drive recovery off the same events.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "faults/scenario.h"
#include "fpga/board.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace vs::faults {

/// A fault or repair the plane injected, surfaced to the recovery handler.
struct HealthEvent {
  sim::SimTime time = 0;
  FaultKind kind = FaultKind::kBoardCrash;
  int board = -1;  ///< plane board id; -1 for link events
  int slot = -1;   ///< kSlotSeu only
};

class FaultPlane {
 public:
  FaultPlane(sim::Simulator& sim, FaultScenario scenario);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Registers a board with the plane; returns its plane id (registration
  /// order). Applies the scenario's PCAP CRC model to the board (stream
  /// "pcap/<id>"). Call for every board before start().
  int add_board(fpga::Board& board);

  /// The recovery policy: invoked synchronously for every fault and repair.
  void set_handler(std::function<void(const HealthEvent&)> handler) {
    handler_ = std::move(handler);
  }

  /// Schedules the scripted timeline and arms the hazard chains (per-board
  /// crash/SEU, link flap, and one rack chain per failure domain).
  /// Scripted events are validated first: entries whose board / slot /
  /// domain index is out of range for the registered fleet are rejected
  /// with a warning (see rejected_scripted()) instead of flowing through
  /// unchecked into an out-of-range access at injection time.
  void start();

  [[nodiscard]] int board_count() const noexcept {
    return static_cast<int>(boards_.size());
  }
  [[nodiscard]] bool board_up(int board) const {
    return boards_.at(static_cast<std::size_t>(board)).up;
  }
  [[nodiscard]] bool link_up() const noexcept { return link_up_; }
  [[nodiscard]] const FaultScenario& scenario() const noexcept {
    return scenario_;
  }
  /// Every fault and repair injected so far, in injection order. Rack
  /// events appear as one kRackEvent record (board = domain index)
  /// followed by the member kBoardCrash records it caused.
  [[nodiscard]] const std::vector<HealthEvent>& injected() const noexcept {
    return injected_;
  }
  /// Scripted timeline entries dropped by start()'s validation pass.
  [[nodiscard]] int rejected_scripted() const noexcept {
    return rejected_scripted_;
  }
  /// Rack events injected so far (scripted + hazard-drawn).
  [[nodiscard]] int rack_events() const noexcept { return rack_events_; }

  /// Fraction of [0, now] this board spent up (1.0 before any fault).
  [[nodiscard]] double board_availability(int board, sim::SimTime now) const;
  /// Mean of board_availability over all registered boards.
  [[nodiscard]] double mean_availability(sim::SimTime now) const;

  /// Resolves vs_faults_injected_total / vs_faults_recovered_total
  /// (labelled by kind) and the per-board vs_board_available gauges.
  /// vs_rack_events_total registers only when the scenario carries failure
  /// domains, so rack-free exports stay byte-identical.
  /// Call before add_board to label boards registered afterwards too.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct DomainRec {
    util::Rng rng;  ///< stream "rack/<name>": inter-arrival + survival + jitter
  };
  struct BoardRec {
    fpga::Board* board = nullptr;
    bool up = true;
    sim::SimTime down_since = 0;
    sim::SimDuration down_ns = 0;
    util::Rng crash_rng;  ///< stream "crash/<id>": inter-arrival draws
    util::Rng seu_rng;    ///< stream "seu/<id>": inter-arrival + slot draws
    obs::GaugeHandle available;  ///< vs_board_available{board=...}
  };

  void emit(FaultKind kind, int board, int slot);
  void apply_scripted(const FaultEvent& e);
  /// True when the scripted event's indices are in range for the
  /// registered fleet; warns and counts the rejection otherwise.
  [[nodiscard]] bool validate_scripted(const FaultEvent& e);
  void inject_crash(int board);
  void reboot(int board);
  void inject_link_down();
  void restore_link();
  void inject_seu(int board, int slot);
  void inject_rack_event(int domain);
  /// Next exponential inter-arrival for `rate` events per simulated second.
  [[nodiscard]] static sim::SimDuration exp_delay(util::Rng& rng,
                                                  double rate_per_s);
  void arm_crash(int board);
  void arm_seu(int board);
  void arm_flap();
  void arm_rack(int domain);
  void fire_crash(int board);
  void fire_seu(int board);
  void fire_flap();
  void fire_rack(int domain);

  sim::Simulator& sim_;
  FaultScenario scenario_;
  std::function<void(const HealthEvent&)> handler_;
  std::vector<BoardRec> boards_;
  std::vector<DomainRec> domains_;
  bool link_up_ = true;
  util::Rng flap_rng_;  ///< stream "link/flap"
  std::vector<HealthEvent> injected_;
  int rejected_scripted_ = 0;
  int rack_events_ = 0;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::CounterHandle m_injected_[3];   ///< crash / link_down / slot_seu
  obs::CounterHandle m_recovered_[2];  ///< reboot / link_up
  obs::CounterHandle m_rack_events_;   ///< vs_rack_events_total (domains only)
};

}  // namespace vs::faults
