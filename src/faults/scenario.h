// Fault scenarios: the single configuration surface for every fault knob.
//
// A FaultScenario describes what can go wrong in a run — board crashes,
// Aurora link flaps, slot SEU/ECC upsets, PCAP CRC verification failures —
// either stochastically (per-component hazard rates, exponential
// inter-arrival) or as an explicit scripted timeline, or both. All
// randomness derives from one master seed through one rule:
// `scenario.stream(label)` forks a named PCG32 stream, so the same scenario
// produces bit-identical fault schedules on any platform and under any
// sweep parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace vs::faults {

enum class FaultKind : std::uint8_t {
  kBoardCrash,   ///< board lost: slots gone, in-flight apps killed
  kBoardReboot,  ///< board back up (repair of kBoardCrash)
  kLinkDown,     ///< Aurora link flap: in-flight transfer aborts
  kLinkUp,       ///< link restored (repair of kLinkDown)
  kSlotSeu,      ///< SEU/ECC upset in one slot: configured logic dies
  kRackEvent,    ///< common-mode rack loss: every member board crashes
};

[[nodiscard]] constexpr const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kBoardCrash: return "board_crash";
    case FaultKind::kBoardReboot: return "board_reboot";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kSlotSeu: return "slot_seu";
    case FaultKind::kRackEvent: return "rack_event";
  }
  return "?";
}

/// One scripted fault. `board` indexes the FaultPlane's registration order
/// (the cluster registers OL0..OLn-1 then BL0..BLn-1). For kSlotSeu a
/// negative `slot` means "draw the slot uniformly at injection time" from
/// the scenario's seu stream. For kRackEvent `board` indexes
/// FaultScenario::domains instead of a single board.
struct FaultEvent {
  sim::SimTime time = 0;
  FaultKind kind = FaultKind::kBoardCrash;
  int board = -1;  ///< -1 for link events; domain index for kRackEvent
  int slot = -1;   ///< kSlotSeu only
};

/// A correlated failure domain: boards sharing a PSU or cooling loop (a
/// rack). A rack event crashes every member together — the common-mode
/// regime that independent per-board hazards can never produce, and the
/// one that exercises spare-pool failover and multi-board evacuation
/// hardest. Every stochastic choice a rack event makes (inter-arrival,
/// per-board survival, per-board jitter) draws from the single stream
/// "rack/<name>", so rack schedules stay a pure function of the seed.
struct FailureDomain {
  std::string name;         ///< stream label suffix; must be unique
  std::vector<int> boards;  ///< plane board ids (registration order)
  /// Probability that an individual member rides the event out (redundant
  /// PSU feed). 0 (the default) takes the whole rack down.
  double survival_probability = 0.0;
  /// Max per-board crash stagger after the event fires, drawn uniformly
  /// per member. Keep it below the recovery detection latency so the
  /// losses land inside one detection window (the defining property of a
  /// common-mode event). 0 (the default) crashes all members at once.
  sim::SimDuration jitter = 0;
};

/// Stochastic hazard rates, per simulated second (exponential inter-arrival
/// times; 0 disables that hazard). The SEU rate applies per board, the
/// rack rate per failure domain.
struct HazardRates {
  double board_crash_per_s = 0.0;  ///< per board
  double link_flap_per_s = 0.0;    ///< whole link
  double slot_seu_per_s = 0.0;     ///< per board (slot drawn at injection)
  double rack_event_per_s = 0.0;   ///< per failure domain (needs domains)

  [[nodiscard]] bool any() const noexcept {
    return board_crash_per_s > 0 || link_flap_per_s > 0 ||
           slot_seu_per_s > 0 || rack_event_per_s > 0;
  }
};

/// Deterministic repair durations (MTTR inputs, not outputs: the measured
/// MTTR also contains detection, evacuation transfer, and re-placement).
struct RepairTimes {
  sim::SimDuration board_reboot = sim::seconds(2.0);  ///< crash -> back up
  sim::SimDuration link_outage = sim::ms(200.0);      ///< flap -> link up
};

/// The one struct holding every fault knob. Disabled by default: a
/// default-constructed scenario schedules nothing and leaves every code
/// path untouched, so fault-free runs stay byte-identical.
struct FaultScenario {
  std::uint64_t seed = 2025;
  HazardRates hazards;
  RepairTimes repair;
  /// PCAP CRC verification failure probability per load (generalises the
  /// old ad-hoc Pcap::set_fault_model knob; the load retries ahead of the
  /// queue, consuming its full transfer time again).
  double pcap_crc_probability = 0.0;
  /// Explicit scripted faults, injected in addition to the hazards.
  std::vector<FaultEvent> timeline;
  /// Correlated failure domains (racks). Empty (the default) disables the
  /// rack hazard and scripted kRackEvent entries; boards may appear in
  /// several domains (a board on two shared feeds).
  std::vector<FailureDomain> domains;
  /// Hazard draws stop past this simulated time so runs always drain;
  /// scripted events and pending repairs still execute.
  sim::SimTime horizon = sim::seconds(600.0);

  [[nodiscard]] bool enabled() const noexcept {
    return pcap_crc_probability > 0 || hazards.any() || !timeline.empty();
  }

  /// THE seed-derivation rule: every stochastic fault consumer forks its
  /// own named stream off the master seed. Labels in use: "pcap/<board>",
  /// "crash/<board>", "seu/<board>", "link/flap", "rack/<domain>".
  [[nodiscard]] util::Rng stream(std::string_view label) const noexcept {
    return util::Rng(seed).fork(label);
  }
};

}  // namespace vs::faults
