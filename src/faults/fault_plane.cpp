#include "faults/fault_plane.h"

#include <cassert>
#include <cmath>

#include "util/log.h"

namespace vs::faults {

FaultPlane::FaultPlane(sim::Simulator& sim, FaultScenario scenario)
    : sim_(sim),
      scenario_(std::move(scenario)),
      flap_rng_(scenario_.stream("link/flap")) {
  domains_.reserve(scenario_.domains.size());
  for (std::size_t d = 0; d < scenario_.domains.size(); ++d) {
    const FailureDomain& dom = scenario_.domains[d];
    DomainRec rec;
    rec.rng = scenario_.stream(
        "rack/" + (dom.name.empty() ? std::to_string(d) : dom.name));
    domains_.push_back(std::move(rec));
  }
}

int FaultPlane::add_board(fpga::Board& board) {
  int id = static_cast<int>(boards_.size());
  BoardRec rec;
  rec.board = &board;
  rec.crash_rng = scenario_.stream("crash/" + std::to_string(id));
  rec.seu_rng = scenario_.stream("seu/" + std::to_string(id));
  if (registry_ != nullptr) {
    rec.available = obs::GaugeHandle{&registry_->gauge(
        "vs_board_available", {{"board", board.name()}})};
    rec.available.set(1.0);
  }
  if (scenario_.pcap_crc_probability > 0) {
    board.pcap().set_fault_model(scenario_.pcap_crc_probability,
                                 scenario_.stream("pcap/" +
                                                  std::to_string(id)));
  }
  boards_.push_back(std::move(rec));
  return id;
}

void FaultPlane::bind_metrics(obs::MetricsRegistry& registry) {
  registry_ = &registry;
  const FaultKind faults[] = {FaultKind::kBoardCrash, FaultKind::kLinkDown,
                              FaultKind::kSlotSeu};
  for (int i = 0; i < 3; ++i) {
    m_injected_[i] = obs::CounterHandle{&registry.counter(
        "vs_faults_injected_total", {{"kind", to_string(faults[i])}})};
  }
  const FaultKind repairs[] = {FaultKind::kBoardReboot, FaultKind::kLinkUp};
  for (int i = 0; i < 2; ++i) {
    m_recovered_[i] = obs::CounterHandle{&registry.counter(
        "vs_faults_recovered_total", {{"kind", to_string(repairs[i])}})};
  }
  if (!scenario_.domains.empty()) {
    // Registered only when failure domains exist, so every rack-free
    // export stays byte-identical.
    m_rack_events_ =
        obs::CounterHandle{&registry.counter("vs_rack_events_total")};
  }
  for (BoardRec& rec : boards_) {
    rec.available = obs::GaugeHandle{&registry.gauge(
        "vs_board_available", {{"board", rec.board->name()}})};
    rec.available.set(rec.up ? 1.0 : 0.0);
  }
}

void FaultPlane::start() {
  for (const FaultEvent& e : scenario_.timeline) {
    if (!validate_scripted(e)) continue;
    sim_.schedule_at(e.time, [this, e] { apply_scripted(e); });
  }
  for (int b = 0; b < board_count(); ++b) {
    arm_crash(b);
    arm_seu(b);
  }
  arm_flap();
  for (int d = 0; d < static_cast<int>(domains_.size()); ++d) arm_rack(d);
}

bool FaultPlane::validate_scripted(const FaultEvent& e) {
  bool ok = true;
  switch (e.kind) {
    case FaultKind::kBoardCrash:
    case FaultKind::kBoardReboot:
    case FaultKind::kSlotSeu:
      ok = e.board >= 0 && e.board < board_count();
      break;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      break;  // board/slot ignored
    case FaultKind::kRackEvent:
      ok = e.board >= 0 &&
           e.board < static_cast<int>(scenario_.domains.size());
      break;
  }
  // A scripted SEU slot beyond the board's fabric is also rejected here
  // (negative slots mean "draw uniformly" and stay valid).
  if (ok && e.kind == FaultKind::kSlotSeu && e.slot >= 0) {
    const BoardRec& rec = boards_[static_cast<std::size_t>(e.board)];
    ok = e.slot < static_cast<int>(rec.board->slots().size());
  }
  if (!ok) {
    ++rejected_scripted_;
    VS_WARN << "rejecting scripted " << to_string(e.kind) << " at t=" << e.time
            << ": board " << e.board << " / slot " << e.slot
            << " out of range for " << board_count() << " boards, "
            << scenario_.domains.size() << " domains";
  }
  return ok;
}

sim::SimDuration FaultPlane::exp_delay(util::Rng& rng, double rate_per_s) {
  // Inverse-CDF exponential; uniform01() < 1 so the log argument is > 0.
  double dt_s = -std::log(1.0 - rng.uniform01()) / rate_per_s;
  return static_cast<sim::SimDuration>(dt_s * 1e9);
}

// Each hazard chain schedules its own next firing, Sampler-style: the next
// draw is scheduled only if it lands inside the horizon. Chains never
// consult queue occupancy — a guard like "stop when nothing else is
// pending" would make the fault schedule depend on incidental events
// (telemetry samplers, tracing), breaking bit-identity between
// instrumented and plain runs. Faulty runs therefore extend to the
// scenario horizon; that costs a handful of no-op events on a drained
// cluster and buys a schedule that is a pure function of the seed.
void FaultPlane::arm_crash(int board) {
  double rate = scenario_.hazards.board_crash_per_s;
  if (rate <= 0) return;
  BoardRec& rec = boards_[static_cast<std::size_t>(board)];
  sim::SimTime next = sim_.now() + exp_delay(rec.crash_rng, rate);
  if (next > scenario_.horizon) return;
  sim_.schedule_at(next, [this, board] { fire_crash(board); });
}

void FaultPlane::arm_seu(int board) {
  double rate = scenario_.hazards.slot_seu_per_s;
  if (rate <= 0) return;
  BoardRec& rec = boards_[static_cast<std::size_t>(board)];
  sim::SimTime next = sim_.now() + exp_delay(rec.seu_rng, rate);
  if (next > scenario_.horizon) return;
  sim_.schedule_at(next, [this, board] { fire_seu(board); });
}

void FaultPlane::arm_flap() {
  double rate = scenario_.hazards.link_flap_per_s;
  if (rate <= 0) return;
  sim::SimTime next = sim_.now() + exp_delay(flap_rng_, rate);
  if (next > scenario_.horizon) return;
  sim_.schedule_at(next, [this] { fire_flap(); });
}

void FaultPlane::arm_rack(int domain) {
  double rate = scenario_.hazards.rack_event_per_s;
  if (rate <= 0) return;
  DomainRec& rec = domains_[static_cast<std::size_t>(domain)];
  sim::SimTime next = sim_.now() + exp_delay(rec.rng, rate);
  if (next > scenario_.horizon) return;
  sim_.schedule_at(next, [this, domain] { fire_rack(domain); });
}

void FaultPlane::fire_crash(int board) {
  if (boards_[static_cast<std::size_t>(board)].up) inject_crash(board);
  arm_crash(board);
}

void FaultPlane::fire_seu(int board) {
  if (boards_[static_cast<std::size_t>(board)].up) inject_seu(board, -1);
  arm_seu(board);
}

void FaultPlane::fire_flap() {
  if (link_up_) inject_link_down();
  arm_flap();
}

void FaultPlane::fire_rack(int domain) {
  inject_rack_event(domain);
  arm_rack(domain);
}

void FaultPlane::apply_scripted(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kBoardCrash:
      if (board_up(e.board)) inject_crash(e.board);
      break;
    case FaultKind::kBoardReboot:
      if (!board_up(e.board)) reboot(e.board);
      break;
    case FaultKind::kLinkDown:
      if (link_up_) inject_link_down();
      break;
    case FaultKind::kLinkUp:
      if (!link_up_) restore_link();
      break;
    case FaultKind::kSlotSeu:
      if (board_up(e.board)) inject_seu(e.board, e.slot);
      break;
    case FaultKind::kRackEvent:
      inject_rack_event(e.board);
      break;
  }
}

void FaultPlane::emit(FaultKind kind, int board, int slot) {
  switch (kind) {
    case FaultKind::kBoardCrash: m_injected_[0].add(); break;
    case FaultKind::kLinkDown: m_injected_[1].add(); break;
    case FaultKind::kSlotSeu: m_injected_[2].add(); break;
    case FaultKind::kBoardReboot: m_recovered_[0].add(); break;
    case FaultKind::kLinkUp: m_recovered_[1].add(); break;
    case FaultKind::kRackEvent: m_rack_events_.add(); break;
  }
  HealthEvent event{sim_.now(), kind, board, slot};
  injected_.push_back(event);
  if (handler_) handler_(event);
}

void FaultPlane::inject_crash(int board) {
  BoardRec& rec = boards_[static_cast<std::size_t>(board)];
  assert(rec.up);
  rec.up = false;
  rec.down_since = sim_.now();
  rec.available.set(0.0);
  VS_WARN << rec.board->name() << ": board crash injected";
  emit(FaultKind::kBoardCrash, board, -1);
  // The repair is unconditional and bounded: exactly one reboot per outage.
  sim_.schedule(scenario_.repair.board_reboot, [this, board] {
    reboot(board);
  });
}

void FaultPlane::reboot(int board) {
  BoardRec& rec = boards_[static_cast<std::size_t>(board)];
  if (rec.up) return;  // a scripted reboot already brought it back
  rec.up = true;
  rec.down_ns += sim_.now() - rec.down_since;
  rec.available.set(1.0);
  VS_INFO << rec.board->name() << ": rebooted";
  emit(FaultKind::kBoardReboot, board, -1);
}

void FaultPlane::inject_link_down() {
  assert(link_up_);
  link_up_ = false;
  VS_WARN << "aurora link flap injected";
  emit(FaultKind::kLinkDown, -1, -1);
  sim_.schedule(scenario_.repair.link_outage, [this] {
    if (!link_up_) restore_link();
  });
}

void FaultPlane::restore_link() {
  assert(!link_up_);
  link_up_ = true;
  emit(FaultKind::kLinkUp, -1, -1);
}

void FaultPlane::inject_seu(int board, int slot) {
  BoardRec& rec = boards_[static_cast<std::size_t>(board)];
  assert(rec.up);
  int slot_count = static_cast<int>(rec.board->slots().size());
  if (slot_count == 0) return;
  if (slot < 0) {
    slot = static_cast<int>(rec.seu_rng.uniform_int(0, slot_count - 1));
  }
  if (slot >= slot_count) return;  // scripted slot beyond this fabric
  VS_WARN << rec.board->name() << ": SEU injected in slot " << slot;
  emit(FaultKind::kSlotSeu, board, slot);
}

void FaultPlane::inject_rack_event(int domain) {
  const FailureDomain& dom =
      scenario_.domains.at(static_cast<std::size_t>(domain));
  DomainRec& rec = domains_[static_cast<std::size_t>(domain)];
  ++rack_events_;
  VS_WARN << "rack event injected in domain "
          << (dom.name.empty() ? std::to_string(domain) : dom.name) << " ("
          << dom.boards.size() << " boards)";
  // The rack record itself goes out first so handlers can batch the member
  // crashes that follow; board carries the domain index.
  emit(FaultKind::kRackEvent, domain, -1);
  // Member draws happen in declaration order from the single rack stream:
  // survival first, then (for the doomed) a jitter offset. A member that
  // is already down still consumes its survival draw, so the stream's
  // consumption pattern — and with it every later rack schedule — cannot
  // depend on transient board state beyond what the seed already fixed.
  for (int member : dom.boards) {
    if (member < 0 || member >= board_count()) {
      VS_WARN << "rack domain member " << member << " out of range for "
              << board_count() << " boards; skipping";
      continue;
    }
    bool survives = dom.survival_probability > 0 &&
                    rec.rng.uniform01() < dom.survival_probability;
    if (survives) continue;
    sim::SimDuration jitter = 0;
    if (dom.jitter > 0) {
      jitter = static_cast<sim::SimDuration>(
          rec.rng.uniform01() * static_cast<double>(dom.jitter));
    }
    if (!boards_[static_cast<std::size_t>(member)].up) continue;
    if (jitter == 0) {
      inject_crash(member);
    } else {
      sim_.schedule(jitter, [this, member] {
        if (boards_[static_cast<std::size_t>(member)].up) {
          inject_crash(member);
        }
      });
    }
  }
}

double FaultPlane::board_availability(int board, sim::SimTime now) const {
  const BoardRec& rec = boards_.at(static_cast<std::size_t>(board));
  if (now <= 0) return 1.0;
  sim::SimDuration down = rec.down_ns;
  if (!rec.up) down += now - rec.down_since;
  return 1.0 - static_cast<double>(down) / static_cast<double>(now);
}

double FaultPlane::mean_availability(sim::SimTime now) const {
  if (boards_.empty()) return 1.0;
  double sum = 0.0;
  for (int b = 0; b < board_count(); ++b) {
    sum += board_availability(b, now);
  }
  return sum / static_cast<double>(boards_.size());
}

}  // namespace vs::faults
