// Calibration constants for the simulated ZCU216 board and cluster.
//
// Values are chosen to be plausible for a Zynq UltraScale+ RFSoC (XCZU49DR)
// and to land the paper's headline ratios; DESIGN.md §3.2 documents each
// choice. All of them are plain data so experiments can perturb them.
#pragma once

#include <cstdint>

#include "fpga/resources.h"
#include "sim/time.h"

namespace vs::fpga {

struct BoardParams {
  // ---- Fabric capacity (XCZU49DR-class, after carving the static region).
  ResourceVector little_slot{38'000, 76'000, 96, 360};
  ResourceVector big_slot{76'000, 152'000, 192, 720};
  ResourceVector static_region{120'000, 240'000, 300, 1200};

  // ---- PCAP (Processor Configuration Access Port).
  // Effective sustained bandwidth; the theoretical peak is ~400 MB/s but
  // measured DFX throughput on UltraScale+ through the PCAP driver path is
  // materially lower (~128 MB/s is the commonly reported figure).
  double pcap_bandwidth_bytes_per_s = 128e6;
  sim::SimDuration pcap_fixed_overhead = sim::ms(1.0);  ///< per-PR setup

  // ---- Partial bitstream sizes (proportional to region size).
  std::int64_t little_bitstream_bytes = 12'000'000;  // ≈ 49 ms PR
  std::int64_t big_bitstream_bytes = 24'000'000;     // ≈ 97 ms PR
  // Exclusive baseline: monolithic full-fabric bitstream plus the PS-side
  // teardown/re-init of the whole shell (clocks, AXI, drivers) that full
  // reconfiguration entails on a real board.
  std::int64_t full_bitstream_bytes = 90'000'000;
  sim::SimDuration full_reconfig_restart = sim::ms(1200.0);

  // ---- SD card bitstream storage.
  double sd_bandwidth_bytes_per_s = 80e6;
  sim::SimDuration sd_seek_overhead = sim::ms(0.5);
  // Bitstream relocation: partial bitstreams are placement-specific, but
  // once one slot's variant of a task is DDR-resident, the variant for a
  // different slot is produced by an in-memory copy with frame-address
  // patching instead of a fresh SD read.
  double reloc_bandwidth_bytes_per_s = 1e9;
  sim::SimDuration reloc_overhead = sim::ms(0.5);

  [[nodiscard]] sim::SimDuration reloc_time(std::int64_t bytes) const {
    return reloc_overhead +
           static_cast<sim::SimDuration>(
               static_cast<double>(bytes) / reloc_bandwidth_bytes_per_s *
               1e9);
  }

  // ---- AXI DMA for application data.
  double dma_bandwidth_bytes_per_s = 4e9;
  sim::SimDuration dma_setup = sim::us(5.0);

  // ---- OCM mailbox between PR server and scheduler cores.
  sim::SimDuration ocm_message_latency = sim::us(2.0);

  // ---- DDR checkpoint snapshots (runtime::CheckpointPolicy).
  // Snapshots copy DDR-resident progress (descriptors, staging headers,
  // queued inter-stage buffers) into a reserved checkpoint region; the copy
  // runs at DDR-to-DDR bandwidth and holds the issuing core.
  double ckpt_bandwidth_bytes_per_s = 8e9;
  sim::SimDuration ckpt_fixed_overhead = sim::us(10.0);  ///< per-pass setup

  [[nodiscard]] sim::SimDuration ckpt_snapshot_time(std::int64_t bytes) const {
    return ckpt_fixed_overhead +
           static_cast<sim::SimDuration>(
               static_cast<double>(bytes) / ckpt_bandwidth_bytes_per_s * 1e9);
  }

  /// Dirty-delta snapshot pass: the copy engine walks a region list instead
  /// of the whole image, so the per-pass setup is cheaper; the copied bytes
  /// still move at DDR-to-DDR bandwidth.
  sim::SimDuration ckpt_delta_fixed_overhead = sim::us(5.0);

  [[nodiscard]] sim::SimDuration ckpt_delta_time(
      std::int64_t dirty_bytes) const {
    return ckpt_delta_fixed_overhead +
           static_cast<sim::SimDuration>(static_cast<double>(dirty_bytes) /
                                         ckpt_bandwidth_bytes_per_s * 1e9);
  }

  // ---- Hypervisor core operation costs (bare-metal ARM Cortex-A53).
  sim::SimDuration sched_pass_cost = sim::us(20.0);   ///< one scheduling pass
  sim::SimDuration launch_op_cost = sim::us(50.0);    ///< buffer alloc + DMA kick
  sim::SimDuration alloc_op_cost = sim::us(30.0);     ///< slot (re)allocation

  [[nodiscard]] sim::SimDuration pcap_load_time(std::int64_t bytes) const {
    return pcap_fixed_overhead +
           static_cast<sim::SimDuration>(
               static_cast<double>(bytes) / pcap_bandwidth_bytes_per_s * 1e9);
  }
  [[nodiscard]] sim::SimDuration sd_read_time(std::int64_t bytes) const {
    return sd_seek_overhead +
           static_cast<sim::SimDuration>(
               static_cast<double>(bytes) / sd_bandwidth_bytes_per_s * 1e9);
  }
  [[nodiscard]] sim::SimDuration dma_time(std::int64_t bytes) const {
    return dma_setup + static_cast<sim::SimDuration>(
                           static_cast<double>(bytes) /
                           dma_bandwidth_bytes_per_s * 1e9);
  }
};

struct LinkParams {
  // Aurora over GT transceivers (zSFP+), 10 Gb/s line rate.
  double bandwidth_bytes_per_s = 1.25e9;
  sim::SimDuration setup_latency = sim::us(20.0);
  /// Retry backoff base after a link flap aborts a transfer: the aborted
  /// transfer restarts retry_backoff * 2^(attempts-1) after the link comes
  /// back (exponent capped at 6).
  sim::SimDuration retry_backoff = sim::ms(10.0);

  [[nodiscard]] sim::SimDuration transfer_time(std::int64_t bytes) const {
    return setup_latency + static_cast<sim::SimDuration>(
                               static_cast<double>(bytes) /
                               bandwidth_bytes_per_s * 1e9);
  }
};

}  // namespace vs::fpga
