// A simulated FPGA board: PS (two ARM cores, PCAP, OCM, SD card) plus PL
// (the slot fabric and DMA paths). The BoardRuntime in src/runtime drives
// it; schedulers never touch the board directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fpga/fabric.h"
#include "fpga/params.h"
#include "fpga/pcap.h"
#include "fpga/slot.h"
#include "fpga/storage.h"
#include "sim/core.h"
#include "sim/simulator.h"

namespace vs::fpga {

class Board {
 public:
  Board(sim::Simulator& sim, std::string name, FabricConfig fabric,
        BoardParams params = {})
      : sim_(sim),
        name_(std::move(name)),
        params_(params),
        fabric_(fabric),
        slots_(make_slots(fabric, params_)),
        core0_(sim, name_ + ".PS0"),
        core1_(sim, name_ + ".PS1"),
        pcap_(sim),
        sdcard_(sim, params_),
        ocm_(sim, params_),
        dma_(sim, params_) {}

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const BoardParams& params() const noexcept { return params_; }
  [[nodiscard]] const FabricConfig& fabric() const noexcept { return fabric_; }

  [[nodiscard]] std::vector<Slot>& slots() noexcept { return slots_; }
  [[nodiscard]] const std::vector<Slot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] Slot& slot(int id) { return slots_.at(static_cast<std::size_t>(id)); }

  /// Core 0 always hosts the scheduler; core 1 hosts the PR server when the
  /// policy runs in dual-core mode.
  [[nodiscard]] sim::Core& scheduler_core() noexcept { return core0_; }
  [[nodiscard]] sim::Core& pr_core() noexcept { return core1_; }

  [[nodiscard]] Pcap& pcap() noexcept { return pcap_; }
  [[nodiscard]] SdCard& sdcard() noexcept { return sdcard_; }
  [[nodiscard]] Ocm& ocm() noexcept { return ocm_; }
  [[nodiscard]] Dma& dma() noexcept { return dma_; }

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }

  /// Shard tag for the canonical event order (sim/event_queue.h). The
  /// cluster assigns each board a unique tag in construction order — under
  /// both kernels, so the serial oracle and the sharded run break equal-time
  /// ties identically. Standalone boards keep the untagged default.
  void set_shard_tag(sim::ShardTag tag) noexcept { shard_tag_ = tag; }
  [[nodiscard]] sim::ShardTag shard_tag() const noexcept { return shard_tag_; }

  [[nodiscard]] int count_slots(SlotKind kind) const {
    int n = 0;
    for (const Slot& s : slots_) n += (s.kind() == kind) ? 1 : 0;
    return n;
  }

  /// Rebuilds the fabric with a new configuration. Real hardware needs a
  /// full restart for this, which is exactly why the paper migrates to a
  /// pre-configured spare board instead; the cluster layer uses this only
  /// for spare-pool management between workloads.
  void reconfigure_fabric(FabricConfig config) {
    fabric_ = config;
    slots_ = make_slots(config, params_);
  }

 private:
  sim::Simulator& sim_;
  sim::ShardTag shard_tag_ = 0;
  std::string name_;
  BoardParams params_;
  FabricConfig fabric_;
  std::vector<Slot> slots_;
  sim::Core core0_;
  sim::Core core1_;
  Pcap pcap_;
  SdCard sdcard_;
  Ocm ocm_;
  Dma dma_;
};

}  // namespace vs::fpga
