#include "fpga/pcap.h"

#include <utility>

namespace vs::fpga {

void Pcap::request(sim::SimDuration load_duration, sim::Core& core,
                   sim::EventFn on_done, std::string label,
                   sim::EventFn on_blocked, std::int64_t bytes) {
  Request req{load_duration, &core,     std::move(on_done),
              std::move(label), sim_.now(), bytes};
  if (busy_) {
    ++stats_.loads_queued_behind_another;
    queued_total_.add();
    queue_depth_.set(static_cast<double>(queue_.size() + 1));
    if (on_blocked) on_blocked();
    queue_.push_back(std::move(req));
    return;
  }
  start(std::move(req));
}

void Pcap::bind_metrics(obs::MetricsRegistry& registry,
                        const std::string& board) {
  obs::Labels labels{{"board", board}};
  loads_total_ =
      obs::CounterHandle{&registry.counter("vs_pcap_loads_total", labels)};
  queued_total_ =
      obs::CounterHandle{&registry.counter("vs_pcap_queued_total", labels)};
  failures_total_ = obs::CounterHandle{
      &registry.counter("vs_pcap_load_failures_total", labels)};
  bytes_total_ = obs::CounterHandle{
      &registry.counter("vs_pcap_bytes_loaded_total", labels)};
  queue_depth_ =
      obs::GaugeHandle{&registry.gauge("vs_pcap_queue_depth", labels)};
  wait_ms_ = obs::HistogramHandle{&registry.histogram(
      "vs_pcap_wait_ms", obs::default_ms_bounds(), labels)};
  load_ms_ = obs::HistogramHandle{&registry.histogram(
      "vs_pcap_load_ms", obs::default_ms_bounds(), labels)};
}

void Pcap::reset() {
  busy_ = false;
  current_ = Request{};
  queue_.clear();
  queue_depth_.set(0.0);
}

void Pcap::start(Request req) {
  busy_ = true;
  stats_.total_wait += sim_.now() - req.enqueued;
  stats_.total_load += req.duration;
  wait_ms_.observe(sim::to_ms(sim_.now() - req.enqueued));
  load_ms_.observe(sim::to_ms(req.duration));
  sim::SimDuration duration = req.duration;
  sim::Core& core = *req.core;
  // The "pcap:" prefix is functional — BoardRuntime::kick() detects a
  // suspended scheduler core by it. The suffix is cosmetic and empty when
  // tracing is off, so this concatenation stays within SSO.
  std::string label = "pcap:" + req.label;
  current_ = std::move(req);
  // The load suspends the issuing core: it is a core operation of the full
  // load duration. Note: if the core is itself mid-operation, the load (and
  // thus the PCAP) effectively starts when the core frees up — matching the
  // real flow where the CPU drives the PCAP transfer.
  core.submit(duration, [this] { finish_load(); }, std::move(label));
}

void Pcap::finish_load() {
  if (failure_probability_ > 0 && rng_.bernoulli(failure_probability_)) {
    // Verification failed: reload immediately, ahead of the queue.
    ++stats_.load_failures;
    failures_total_.add();
    Request retry = std::move(current_);
    retry.enqueued = sim_.now();
    busy_ = false;
    start(std::move(retry));
    return;
  }
  ++stats_.loads_completed;
  loads_total_.add();
  bytes_total_.add(current_.bytes);
  // Move out first: on_done may request another load re-entrantly, which
  // would overwrite current_.
  Request done = std::move(current_);
  busy_ = false;
  if (done.on_done) done.on_done();
  if (!busy_ && !queue_.empty()) {
    Request next = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_.set(static_cast<double>(queue_.size()));
    start(std::move(next));
  } else {
    queue_depth_.set(static_cast<double>(queue_.size()));
  }
}

}  // namespace vs::fpga
