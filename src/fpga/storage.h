// SD-card bitstream storage with an in-memory cache, plus the OCM mailbox
// and AXI DMA latency models.
//
// The PR server loads pre-generated partial bitstreams from the SD card into
// DDR before pushing them through the PCAP. Once a bitstream has been read
// (or pre-warmed during cross-board switching), it stays memory-resident and
// the SD cost disappears — this is the "loads task bitstreams into SD
// storage in a new FPGA" pre-warming effect of §III-D.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "fpga/params.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace vs::fpga {

/// Key identifying a stored bitstream: caller packs (app, task range,
/// target slot, variant) into 64 bits — partial bitstreams are
/// placement-specific.
using BitstreamKey = std::uint64_t;

/// SD-card controller: a serial device with an in-memory (DDR) cache.
/// Reads go through its own DMA queue — one transfer at a time — and do
/// not occupy a CPU core or the PCAP, so bitstream staging overlaps
/// reconfiguration and execution (the PR server double-buffers), but a
/// burst of distinct bitstream requests still queues at the card.
class SdCard {
 public:
  SdCard(sim::Simulator& sim, const BoardParams& params)
      : sim_(sim), params_(params) {}

  /// Makes `key` memory-resident, then fires `on_ready`: immediately when
  /// cached, after a queued SD read of `bytes` otherwise. `on_blocked`, if
  /// set, fires once when the read had to wait behind another transfer
  /// (PR-contention accounting).
  void fetch(BitstreamKey key, std::int64_t bytes, sim::EventFn on_ready,
             sim::EventFn on_blocked = nullptr) {
    if (cache_.contains(key)) {
      on_ready();
      return;
    }
    ++misses_;
    Pending p{key, bytes, std::move(on_ready)};
    if (busy_) {
      if (on_blocked) on_blocked();
      queue_.push_back(std::move(p));
      return;
    }
    start(std::move(p));
  }

  /// Synchronous variant for tests and estimators: the read time a cold
  /// fetch of `key` would take (0 when cached). Marks the key cached.
  [[nodiscard]] sim::SimDuration fetch_time(BitstreamKey key,
                                            std::int64_t bytes) {
    if (cache_.contains(key)) return 0;
    cache_.insert(key);
    ++misses_;
    return params_.sd_read_time(bytes);
  }

  /// Placement-aware fetch with bitstream relocation: `content_key`
  /// identifies the task logic independent of the target slot. An exact
  /// (key) hit is free; when only another slot's variant of the same
  /// content is resident, the variant is produced by an in-memory
  /// copy-and-patch (relocation) instead of an SD read.
  [[nodiscard]] sim::SimDuration fetch_time(BitstreamKey key,
                                            BitstreamKey content_key,
                                            std::int64_t bytes) {
    if (cache_.contains(key)) return 0;
    cache_.insert(key);
    if (content_.contains(content_key)) {
      ++relocations_;
      return params_.reloc_time(bytes);
    }
    content_.insert(content_key);
    ++misses_;
    return params_.sd_read_time(bytes);
  }

  [[nodiscard]] std::int64_t relocations() const noexcept {
    return relocations_;
  }

  /// Pre-warming: marks `key` resident without charging read time to the
  /// critical path (the transfer happened in the background).
  void prewarm(BitstreamKey key) { cache_.insert(key); }

  [[nodiscard]] bool cached(BitstreamKey key) const {
    return cache_.contains(key);
  }
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::size_t backlog() const noexcept { return queue_.size(); }
  [[nodiscard]] std::int64_t misses() const noexcept { return misses_; }
  void drop_cache() { cache_.clear(); }

 private:
  struct Pending {
    BitstreamKey key = 0;
    std::int64_t bytes = 0;
    sim::EventFn on_ready;
  };

  void start(Pending p) {
    busy_ = true;
    sim::SimDuration read_time = params_.sd_read_time(p.bytes);
    // The card is serial: park the in-flight read in current_ so the
    // completion event captures only `this` (stays inline in the queue).
    current_ = std::move(p);
    sim_.schedule(read_time, [this] { finish_read(); });
  }

  void finish_read() {
    cache_.insert(current_.key);
    // Move out first: on_ready may fetch again re-entrantly.
    Pending done = std::move(current_);
    busy_ = false;
    if (done.on_ready) done.on_ready();
    if (!busy_ && !queue_.empty()) {
      Pending next = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(next));
    }
  }

  sim::Simulator& sim_;
  const BoardParams& params_;
  std::unordered_set<BitstreamKey> cache_;
  std::unordered_set<BitstreamKey> content_;
  std::deque<Pending> queue_;
  Pending current_;
  bool busy_ = false;
  std::int64_t misses_ = 0;
  std::int64_t relocations_ = 0;
};

/// On-Chip Memory mailbox: the PR server posts completion notices to the
/// scheduler through the OCM; delivery costs a small fixed latency.
class Ocm {
 public:
  Ocm(sim::Simulator& sim, const BoardParams& params)
      : sim_(sim), params_(params) {}

  void post(sim::EventFn deliver) {
    ++messages_;
    sim_.schedule(params_.ocm_message_latency, std::move(deliver));
  }

  [[nodiscard]] std::int64_t messages() const noexcept { return messages_; }

 private:
  sim::Simulator& sim_;
  const BoardParams& params_;
  std::int64_t messages_ = 0;
};

/// AXI DMA engine for application data. Transfers are not serialised: the
/// interconnect has ample parallel bandwidth relative to our payload sizes,
/// so each transfer simply takes bytes/bandwidth + setup.
class Dma {
 public:
  Dma(sim::Simulator& sim, const BoardParams& params)
      : sim_(sim), params_(params) {}

  void transfer(std::int64_t bytes, sim::EventFn on_done) {
    ++transfers_;
    bytes_moved_ += bytes;
    sim_.schedule(params_.dma_time(bytes), std::move(on_done));
  }

  [[nodiscard]] std::int64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::int64_t bytes_moved() const noexcept {
    return bytes_moved_;
  }

 private:
  sim::Simulator& sim_;
  const BoardParams& params_;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_moved_ = 0;
};

}  // namespace vs::fpga
