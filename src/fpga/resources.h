// FPGA fabric resource vectors (LUT / FF / BRAM / DSP).
//
// Counts are signed 64-bit: utilisation arithmetic subtracts freely and we
// never get near the range limit (ES.102 — prefer signed arithmetic).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace vs::fpga {

struct ResourceVector {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t brams = 0;
  std::int64_t dsps = 0;

  constexpr ResourceVector operator+(const ResourceVector& o) const noexcept {
    return {luts + o.luts, ffs + o.ffs, brams + o.brams, dsps + o.dsps};
  }
  constexpr ResourceVector operator-(const ResourceVector& o) const noexcept {
    return {luts - o.luts, ffs - o.ffs, brams - o.brams, dsps - o.dsps};
  }
  constexpr ResourceVector& operator+=(const ResourceVector& o) noexcept {
    luts += o.luts; ffs += o.ffs; brams += o.brams; dsps += o.dsps;
    return *this;
  }
  constexpr ResourceVector& operator-=(const ResourceVector& o) noexcept {
    luts -= o.luts; ffs -= o.ffs; brams -= o.brams; dsps -= o.dsps;
    return *this;
  }
  constexpr bool operator==(const ResourceVector&) const noexcept = default;

  /// Component-wise scale (used for synthesis->implementation factors).
  [[nodiscard]] constexpr ResourceVector scaled(double f) const noexcept {
    return {static_cast<std::int64_t>(static_cast<double>(luts) * f),
            static_cast<std::int64_t>(static_cast<double>(ffs) * f),
            static_cast<std::int64_t>(static_cast<double>(brams) * f),
            static_cast<std::int64_t>(static_cast<double>(dsps) * f)};
  }

  /// True if every component of `demand` fits within this capacity.
  [[nodiscard]] constexpr bool fits(const ResourceVector& demand) const noexcept {
    return demand.luts <= luts && demand.ffs <= ffs &&
           demand.brams <= brams && demand.dsps <= dsps;
  }

  [[nodiscard]] constexpr bool any_negative() const noexcept {
    return luts < 0 || ffs < 0 || brams < 0 || dsps < 0;
  }

  /// Largest component-wise ratio demand/capacity — the binding constraint
  /// when placing `*this` into `capacity`. Returns +inf style large value on
  /// zero capacity with nonzero demand.
  [[nodiscard]] double pressure_in(const ResourceVector& capacity) const noexcept {
    auto ratio = [](std::int64_t d, std::int64_t c) {
      if (d == 0) return 0.0;
      if (c == 0) return 1e9;
      return static_cast<double>(d) / static_cast<double>(c);
    };
    return std::max({ratio(luts, capacity.luts), ratio(ffs, capacity.ffs),
                     ratio(brams, capacity.brams), ratio(dsps, capacity.dsps)});
  }

  [[nodiscard]] std::string to_string() const {
    return "LUT=" + std::to_string(luts) + " FF=" + std::to_string(ffs) +
           " BRAM=" + std::to_string(brams) + " DSP=" + std::to_string(dsps);
  }
};

}  // namespace vs::fpga
