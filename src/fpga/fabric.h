// Fabric layout: how the programmable logic is carved into a static region
// and reconfigurable slots.
#pragma once

#include <string>
#include <vector>

#include "fpga/params.h"
#include "fpga/resources.h"
#include "fpga/slot.h"

namespace vs::fpga {

enum class FabricKind { kBigLittle, kOnlyLittle, kCustom };

[[nodiscard]] constexpr const char* to_string(FabricKind kind) noexcept {
  switch (kind) {
    case FabricKind::kBigLittle: return "Big.Little";
    case FabricKind::kOnlyLittle: return "Only.Little";
    case FabricKind::kCustom: return "Custom";
  }
  return "?";
}

struct FabricConfig {
  FabricKind kind = FabricKind::kOnlyLittle;
  int big_slots = 0;
  int little_slots = 0;

  [[nodiscard]] int total_slots() const noexcept {
    return big_slots + little_slots;
  }
  [[nodiscard]] std::string name() const { return to_string(kind); }

  /// The paper's Big.Little layout: 2 Big + 4 Little.
  static FabricConfig big_little() {
    return {FabricKind::kBigLittle, 2, 4};
  }
  /// The paper's Only.Little layout: 8 Little.
  static FabricConfig only_little() {
    return {FabricKind::kOnlyLittle, 0, 8};
  }
  /// "can be extended to any Big/Little configuration".
  static FabricConfig custom(int big, int little) {
    return {FabricKind::kCustom, big, little};
  }
};

/// Instantiates the slot objects for a configuration. Big slots get ids
/// 0..big-1, Little slots continue the numbering.
[[nodiscard]] std::vector<Slot> make_slots(const FabricConfig& config,
                                           const BoardParams& params);

/// Total reconfigurable capacity of a fabric configuration.
[[nodiscard]] ResourceVector reconfigurable_capacity(
    const FabricConfig& config, const BoardParams& params);

}  // namespace vs::fpga
