// PCAP (Processor Configuration Access Port) model.
//
// The PCAP is the serial bottleneck at the heart of the paper: it loads one
// partial bitstream at a time and suspends the issuing CPU core for the
// duration of the load. Requests that arrive while a load is in flight wait
// in a FIFO — that queueing delay is the "PR contention" VersaSlot is built
// to alleviate, and we account for it explicitly so the D_switch metric can
// observe it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "sim/core.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace vs::fpga {

class Pcap {
 public:
  Pcap(sim::Simulator& sim) : sim_(sim) {}

  struct Stats {
    std::int64_t loads_completed = 0;
    std::int64_t loads_queued_behind_another = 0;  ///< waited in the FIFO
    std::int64_t load_failures = 0;  ///< verification failures (retried)
    sim::SimDuration total_wait = 0;               ///< time spent in FIFO
    sim::SimDuration total_load = 0;               ///< time spent loading
  };

  /// Fault injection: each load independently fails verification with
  /// probability `failure_probability` (DFX requires confirming the partial
  /// bitstream loaded correctly; a CRC error forces a reload). Failed loads
  /// consume their full transfer time, then retry — still ahead of queued
  /// requests. Deterministic through the supplied RNG stream. Configured
  /// through faults::FaultScenario (`pcap_crc_probability`, stream
  /// "pcap/<board>") so every fault knob shares one seed-derivation rule.
  void set_fault_model(double failure_probability, util::Rng rng) {
    failure_probability_ = failure_probability;
    rng_ = rng;
  }

  /// Crash path: drops the in-flight request and the FIFO. The companion
  /// Core::reset() already cancelled the core op whose completion would
  /// have finished the in-flight load, so no stale callback can fire.
  void reset();

  /// Requests a load of `load_duration` issued from `core`. The load
  /// occupies the PCAP exclusively and suspends `core` while transferring;
  /// `on_done` fires at completion. `on_blocked`, if set, fires once if the
  /// request had to wait behind another load (used for blocked-task
  /// accounting). `bytes` is the partial-bitstream size, accounted to the
  /// vs_pcap_bytes_loaded_total telemetry counter on successful completion.
  void request(sim::SimDuration load_duration, sim::Core& core,
               sim::EventFn on_done, std::string label = {},
               sim::EventFn on_blocked = nullptr, std::int64_t bytes = 0);

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::size_t backlog() const noexcept { return queue_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Registers this PCAP's instruments under the board label and resolves
  /// the telemetry handles. Without this call every update is a no-op.
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& board);

 private:
  struct Request {
    sim::SimDuration duration = 0;
    sim::Core* core = nullptr;
    sim::EventFn on_done;
    std::string label;
    sim::SimTime enqueued = 0;
    std::int64_t bytes = 0;
  };

  void start(Request req);
  void finish_load();

  sim::Simulator& sim_;
  std::deque<Request> queue_;
  // The in-flight request. The PCAP is a serial device, so the core-op
  // completion closure captures only `this` and the request parks here —
  // keeping the closure inside the event queue's inline buffer.
  Request current_;
  bool busy_ = false;
  Stats stats_;
  double failure_probability_ = 0.0;
  util::Rng rng_;
  obs::CounterHandle loads_total_;     ///< vs_pcap_loads_total
  obs::CounterHandle queued_total_;    ///< vs_pcap_queued_total
  obs::CounterHandle failures_total_;  ///< vs_pcap_load_failures_total
  obs::CounterHandle bytes_total_;     ///< vs_pcap_bytes_loaded_total
  obs::GaugeHandle queue_depth_;       ///< vs_pcap_queue_depth
  obs::HistogramHandle wait_ms_;       ///< vs_pcap_wait_ms
  obs::HistogramHandle load_ms_;       ///< vs_pcap_load_ms
};

}  // namespace vs::fpga
