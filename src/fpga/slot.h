// Reconfigurable slot state machine.
//
// A slot is a DFX reconfigurable region: it is idle, being reconfigured
// through the PCAP, configured with a task's partial bitstream, or executing
// a batch item of that task. The BoardRuntime drives transitions; the slot
// enforces their legality.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "fpga/resources.h"
#include "sim/time.h"

namespace vs::fpga {

enum class SlotKind : std::uint8_t { kLittle, kBig };

[[nodiscard]] constexpr const char* to_string(SlotKind kind) noexcept {
  return kind == SlotKind::kBig ? "Big" : "Little";
}

enum class SlotState : std::uint8_t {
  kIdle,           ///< no bitstream configured
  kReconfiguring,  ///< PCAP load in flight (DFX decoupler engaged)
  kConfigured,     ///< task logic present, not executing
  kExecuting,      ///< running one batch item
};

[[nodiscard]] constexpr const char* to_string(SlotState s) noexcept {
  switch (s) {
    case SlotState::kIdle: return "idle";
    case SlotState::kReconfiguring: return "reconfiguring";
    case SlotState::kConfigured: return "configured";
    case SlotState::kExecuting: return "executing";
  }
  return "?";
}

/// Opaque handle identifying the logic configured into a slot: a (task,
/// variant) pair packed by the caller. 0 means "none".
using ConfiguredKey = std::uint64_t;

class Slot {
 public:
  Slot(int id, SlotKind kind, ResourceVector capacity)
      : id_(id), kind_(kind), capacity_(capacity) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] SlotKind kind() const noexcept { return kind_; }
  [[nodiscard]] const ResourceVector& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] SlotState state() const noexcept { return state_; }
  [[nodiscard]] ConfiguredKey configured() const noexcept { return configured_; }
  [[nodiscard]] int occupant_app() const noexcept { return occupant_app_; }

  [[nodiscard]] std::string name() const {
    return std::string(kind_ == SlotKind::kBig ? "B" : "L") +
           std::to_string(id_);
  }

  /// DFX decoupler engages; previous logic is discarded.
  void begin_reconfig(int app, ConfiguredKey key) {
    assert(state_ != SlotState::kExecuting &&
           "cannot reconfigure a slot mid-execution");
    state_ = SlotState::kReconfiguring;
    occupant_app_ = app;
    configured_ = key;
  }

  /// PCAP load finished; logic is live.
  void finish_reconfig() {
    assert(state_ == SlotState::kReconfiguring);
    state_ = SlotState::kConfigured;
  }

  void begin_exec() {
    assert(state_ == SlotState::kConfigured);
    state_ = SlotState::kExecuting;
  }

  void finish_exec() {
    assert(state_ == SlotState::kExecuting);
    state_ = SlotState::kConfigured;
  }

  /// Clears the slot (task complete or preempted while configured).
  void release() {
    assert(state_ == SlotState::kConfigured || state_ == SlotState::kIdle);
    state_ = SlotState::kIdle;
    configured_ = 0;
    occupant_app_ = -1;
  }

  /// Crash path: unconditionally clears the slot from any state. An SEU
  /// kill or board crash loses the region's contents mid-reconfiguration
  /// or mid-execution — states release() legally cannot leave.
  void scrub() {
    state_ = SlotState::kIdle;
    configured_ = 0;
    occupant_app_ = -1;
  }

 private:
  int id_;
  SlotKind kind_;
  ResourceVector capacity_;
  SlotState state_ = SlotState::kIdle;
  ConfiguredKey configured_ = 0;
  int occupant_app_ = -1;
};

}  // namespace vs::fpga
