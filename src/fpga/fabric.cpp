#include "fpga/fabric.h"

namespace vs::fpga {

std::vector<Slot> make_slots(const FabricConfig& config,
                             const BoardParams& params) {
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(config.total_slots()));
  int id = 0;
  for (int i = 0; i < config.big_slots; ++i) {
    slots.emplace_back(id++, SlotKind::kBig, params.big_slot);
  }
  for (int i = 0; i < config.little_slots; ++i) {
    slots.emplace_back(id++, SlotKind::kLittle, params.little_slot);
  }
  return slots;
}

ResourceVector reconfigurable_capacity(const FabricConfig& config,
                                       const BoardParams& params) {
  ResourceVector total;
  for (int i = 0; i < config.big_slots; ++i) total += params.big_slot;
  for (int i = 0; i < config.little_slots; ++i) total += params.little_slot;
  return total;
}

}  // namespace vs::fpga
