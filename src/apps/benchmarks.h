// The five-application benchmark suite from the paper (the Nimblock /
// Rosetta-derived set): 3D Rendering (3 tasks), LeNet (6), Image
// Compression (6), AlexNet (6) and Optical Flow (9).
//
// The paper generates the task partitioning and bitstreams with a Vivado
// TCL flow; here each application is described by per-task raw resource
// demand and per-item kernel latency, then pushed through the
// SynthesisModel to obtain synthesis/implementation usage and bitstream
// sizes. Latencies are in the ranges published for the Rosetta kernels on
// UltraScale+ parts; resource profiles are calibrated so the suite
// reproduces the paper's utilisation anchors (DESIGN.md §3).
#pragma once

#include <vector>

#include "apps/synthesis.h"
#include "apps/task.h"
#include "fpga/params.h"

namespace vs::apps {

/// Identifiers matching the paper's abbreviations.
enum class Benchmark { k3DR = 0, kLeNet = 1, kIC = 2, kAN = 3, kOF = 4 };

constexpr int kBenchmarkCount = 5;

[[nodiscard]] const char* benchmark_name(Benchmark b) noexcept;

/// Builds one application spec. `params` provides the slot capacities used
/// to size bitstreams; `model` provides the synthesis behaviour.
[[nodiscard]] AppSpec make_app(Benchmark b, const fpga::BoardParams& params,
                               const SynthesisModel& model = {});

/// Builds the full suite in enum order.
[[nodiscard]] std::vector<AppSpec> make_suite(
    const fpga::BoardParams& params, const SynthesisModel& model = {});

}  // namespace vs::apps
