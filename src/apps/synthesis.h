// HLS synthesis / implementation resource model.
//
// Two facts about the Vivado flow drive the paper's utilisation argument and
// are modelled here:
//
//  1. HLS resource consumption grows stepwise (unroll/partition factors
//     quantise usage), so synthesis-based task partitioning routinely
//     over-reserves slot capacity ("resource over-subscription and
//     under-utilization within slots", §I).
//  2. Implementation (place & route with cross-boundary optimisation) uses
//     substantially less than synthesis reports — the paper's IC bundle
//     drops from 0.98 (synthesis) to 0.57 (implementation).
//
// The model turns a raw demand estimate into quantised synthesis usage and a
// scaled implementation usage, and produces the merged usage of a 3-in-1
// bundle (bundling shares control/interconnect logic, so the merged usage is
// slightly below the sum of the parts).
#pragma once

#include <vector>

#include "fpga/params.h"
#include "fpga/resources.h"

namespace vs::apps {

struct SynthesisModel {
  // Quantisation steps (stepwise HLS growth).
  std::int64_t lut_step = 1'000;
  std::int64_t ff_step = 4'000;
  std::int64_t bram_step = 4;
  std::int64_t dsp_step = 8;

  // Implementation-vs-synthesis scale factors (post-P&R optimisation).
  double impl_factor_lut = 0.628;
  double impl_factor_ff = 0.64;
  double impl_factor_bram = 1.0;   ///< memories do not shrink
  double impl_factor_dsp = 1.0;

  // Bundle sharing: merged 3-in-1 logic relative to the sum of the parts.
  double bundle_share_lut = 0.92;
  double bundle_share_ff = 0.86;

  /// Rounds raw demand up to the quantisation grid — the synthesis report.
  [[nodiscard]] fpga::ResourceVector synthesize(
      const fpga::ResourceVector& raw) const;

  /// Post-implementation usage for a single task.
  [[nodiscard]] fpga::ResourceVector implement(
      const fpga::ResourceVector& synth) const;

  /// Synthesis usage of a bundle: the plain sum (the tools conservatively
  /// add the parts when checking whether the bundle fits the Big slot).
  [[nodiscard]] fpga::ResourceVector bundle_synth(
      const std::vector<fpga::ResourceVector>& parts) const;

  /// Implementation usage of a bundle: sum of the parts' implementation
  /// usage scaled by the sharing factors.
  [[nodiscard]] fpga::ResourceVector bundle_impl(
      const std::vector<fpga::ResourceVector>& parts_synth) const;
};

}  // namespace vs::apps
