// 3-in-1 task bundling and schedulable units.
//
// A *schedulable unit* is what a policy places into a slot: either one task
// (Little slot) or a bundle of up to three consecutive tasks (Big slot).
// Bundled tasks execute inside the Big slot either as an internal parallel
// pipeline (per-item period = max task latency, plus a fill of
// (group-1)·Tmax) or serially (per-item period = sum of task latencies).
//
// Mode choice (paper §III-B / Fig 3): parallel makespan for a batch of N is
// Tmax·(N + g − 1) (= Tmax·(N+2) for g = 3); serial makespan is ΣTi·N. The
// system picks whichever is smaller for the actual batch size at runtime —
// serial wins only when the pipeline is so unbalanced that paying the fill
// is worse than serialising, which for g = 3 happens at small N (see
// DESIGN.md §3.3 for how we read the paper's inequality).
#pragma once

#include <optional>
#include <vector>

#include "apps/synthesis.h"
#include "apps/task.h"
#include "fpga/params.h"
#include "fpga/slot.h"

namespace vs::apps {

enum class BundleMode { kSingle, kSerial, kParallel };

[[nodiscard]] constexpr const char* to_string(BundleMode mode) noexcept {
  switch (mode) {
    case BundleMode::kSingle: return "single";
    case BundleMode::kSerial: return "serial";
    case BundleMode::kParallel: return "parallel";
  }
  return "?";
}

/// A unit of scheduling: a task or a bundle, with the derived execution and
/// resource model used by the runtime.
struct UnitSpec {
  int first_task = 0;  ///< inclusive range into AppSpec::tasks
  int last_task = 0;
  fpga::SlotKind slot_kind = fpga::SlotKind::kLittle;
  BundleMode mode = BundleMode::kSingle;
  sim::SimDuration item_latency = 0;  ///< steady-state period per item
  sim::SimDuration fill_latency = 0;  ///< extra latency before first item
  fpga::ResourceVector synth_usage;
  fpga::ResourceVector impl_usage;
  std::int64_t bitstream_bytes = 0;
  std::int64_t item_bytes_in = 0;   ///< per-item DMA into the unit
  std::int64_t item_bytes_out = 0;

  [[nodiscard]] int task_count() const noexcept {
    return last_task - first_task + 1;
  }
};

/// Chooses serial vs parallel for a bundle of task latencies at batch size
/// `batch` by comparing makespans (ties go to parallel, which also has the
/// lower first-item latency).
[[nodiscard]] BundleMode choose_mode(
    const std::vector<sim::SimDuration>& latencies, int batch);

/// One unit per task, targeting Little slots.
[[nodiscard]] std::vector<UnitSpec> make_little_units(const AppSpec& app);

/// Bundled units targeting Big slots: consecutive groups of up to
/// `bundle_size` tasks, each with its runtime-chosen mode for `batch` —
/// or with `forced_mode` for every multi-task bundle (ablation of the
/// runtime selection; single-task groups stay kSingle).
[[nodiscard]] std::vector<UnitSpec> make_big_units(
    const AppSpec& app, int batch, const fpga::BoardParams& params,
    const SynthesisModel& model = {}, int bundle_size = 3,
    std::optional<BundleMode> forced_mode = std::nullopt);

/// True when every bundle of the app fits a Big slot at implementation —
/// the canBundle() predicate of Algorithm 1.
[[nodiscard]] bool can_bundle(const AppSpec& app,
                              const fpga::BoardParams& params,
                              const SynthesisModel& model = {},
                              int bundle_size = 3);

/// Pipeline-optimal Little-slot count for an app at batch size `batch`
/// (the ILP of [14], [15] approximated by direct makespan search): the
/// smallest k in [1, max_slots] minimising the estimated pipeline makespan
/// including PR cost. Usually below the task count.
[[nodiscard]] int optimal_little_slots(const AppSpec& app, int batch,
                                       const fpga::BoardParams& params,
                                       int max_slots);

/// Optimal Big-slot count: one slot per bundle.
[[nodiscard]] int optimal_big_slots(const AppSpec& app, int bundle_size = 3);

/// Estimated makespan of running the app on k Little slots (used by the
/// optimal-count search and by Nimblock-style priority ordering).
[[nodiscard]] sim::SimDuration estimate_little_makespan(
    const AppSpec& app, int batch, int k, const fpga::BoardParams& params);

}  // namespace vs::apps
