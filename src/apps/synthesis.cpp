#include "apps/synthesis.h"

namespace vs::apps {

namespace {
std::int64_t round_up(std::int64_t value, std::int64_t step) {
  if (step <= 0) return value;
  return (value + step - 1) / step * step;
}
}  // namespace

fpga::ResourceVector SynthesisModel::synthesize(
    const fpga::ResourceVector& raw) const {
  return {round_up(raw.luts, lut_step), round_up(raw.ffs, ff_step),
          round_up(raw.brams, bram_step), round_up(raw.dsps, dsp_step)};
}

fpga::ResourceVector SynthesisModel::implement(
    const fpga::ResourceVector& synth) const {
  return {
      static_cast<std::int64_t>(static_cast<double>(synth.luts) *
                                impl_factor_lut),
      static_cast<std::int64_t>(static_cast<double>(synth.ffs) *
                                impl_factor_ff),
      static_cast<std::int64_t>(static_cast<double>(synth.brams) *
                                impl_factor_bram),
      static_cast<std::int64_t>(static_cast<double>(synth.dsps) *
                                impl_factor_dsp),
  };
}

fpga::ResourceVector SynthesisModel::bundle_synth(
    const std::vector<fpga::ResourceVector>& parts) const {
  fpga::ResourceVector sum;
  for (const auto& p : parts) sum += p;
  return sum;
}

fpga::ResourceVector SynthesisModel::bundle_impl(
    const std::vector<fpga::ResourceVector>& parts_synth) const {
  fpga::ResourceVector sum;
  for (const auto& p : parts_synth) sum += implement(p);
  return {
      static_cast<std::int64_t>(static_cast<double>(sum.luts) *
                                bundle_share_lut),
      static_cast<std::int64_t>(static_cast<double>(sum.ffs) *
                                bundle_share_ff),
      sum.brams,
      sum.dsps,
  };
}

}  // namespace vs::apps
