#include "apps/offline_flow.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vs::apps {

namespace {

/// Synthesis usage of ops [i, j] fused into one task.
fpga::ResourceVector fused_synth(const KernelGraph& graph, int i, int j,
                                 const SynthesisModel& model) {
  fpga::ResourceVector raw;
  for (int k = i; k <= j; ++k) {
    raw += graph.ops[static_cast<std::size_t>(k)].raw_demand;
  }
  return model.synthesize(raw);
}

sim::SimDuration fused_latency(const KernelGraph& graph, int i, int j,
                               const OfflineFlowConfig& config) {
  sim::SimDuration sum = 0;
  for (int k = i; k <= j; ++k) {
    sum += graph.ops[static_cast<std::size_t>(k)].item_latency;
  }
  if (j > i) {
    sum = static_cast<sim::SimDuration>(static_cast<double>(sum) *
                                        config.fusion_speedup);
  }
  return sum;
}

}  // namespace

FlowReport partition(const KernelGraph& graph,
                     const OfflineFlowConfig& config) {
  const int n = static_cast<int>(graph.ops.size());
  if (n == 0) throw std::invalid_argument("empty kernel graph");

  const fpga::ResourceVector budget =
      config.board.little_slot.scaled(config.max_fill);

  // feasible[i][j]: ops i..j fused fit a Little slot at synthesis.
  std::vector<std::vector<bool>> feasible(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i) {
    if (!budget.fits(fused_synth(graph, i, i, config.synthesis))) {
      throw std::invalid_argument("kernel op '" + graph.ops[static_cast<std::size_t>(i)].name +
                                  "' does not fit a Little slot even alone");
    }
    for (int j = i; j < n; ++j) {
      feasible[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          budget.fits(fused_synth(graph, i, j, config.synthesis));
      if (!feasible[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        break;  // resource usage is monotone in the op range
      }
    }
  }

  // DP over chain partitions: minimise task count, then minimise the
  // pipeline bottleneck (max per-task latency).
  struct Cell {
    int tasks = std::numeric_limits<int>::max();
    sim::SimDuration bottleneck = std::numeric_limits<sim::SimDuration>::max();
    int cut = -1;  // previous boundary: last task is ops [cut+1 .. i]
  };
  std::vector<Cell> dp(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int cut = -1; cut < i; ++cut) {
      if (!feasible[static_cast<std::size_t>(cut + 1)]
                   [static_cast<std::size_t>(i)]) {
        continue;
      }
      if (cut >= 0 && dp[static_cast<std::size_t>(cut)].tasks ==
                          std::numeric_limits<int>::max()) {
        continue;  // no feasible partition of the prefix
      }
      int tasks = 1 + (cut >= 0 ? dp[static_cast<std::size_t>(cut)].tasks : 0);
      sim::SimDuration lat = fused_latency(graph, cut + 1, i, config);
      sim::SimDuration bottleneck =
          cut >= 0 ? std::max(lat, dp[static_cast<std::size_t>(cut)].bottleneck)
                   : lat;
      Cell& cell = dp[static_cast<std::size_t>(i)];
      if (tasks < cell.tasks ||
          (tasks == cell.tasks && bottleneck < cell.bottleneck)) {
        cell = Cell{tasks, bottleneck, cut};
      }
    }
  }
  if (dp[static_cast<std::size_t>(n - 1)].tasks ==
      std::numeric_limits<int>::max()) {
    throw std::invalid_argument("kernel graph cannot be partitioned");
  }

  // Reconstruct boundaries.
  std::vector<std::pair<int, int>> ranges;
  for (int i = n - 1; i >= 0;) {
    int cut = dp[static_cast<std::size_t>(i)].cut;
    ranges.emplace_back(cut + 1, i);
    i = cut;
  }
  std::reverse(ranges.begin(), ranges.end());

  FlowReport report;
  report.app.name = graph.name;
  int index = 0;
  for (auto [i, j] : ranges) {
    TaskSpec task;
    task.index = index++;
    task.name = graph.ops[static_cast<std::size_t>(i)].name +
                (j > i ? "+" + std::to_string(j - i) : "");
    task.synth_usage = fused_synth(graph, i, j, config.synthesis);
    task.impl_usage = config.synthesis.implement(task.synth_usage);
    task.item_latency = fused_latency(graph, i, j, config);
    task.item_bytes_in = graph.ops[static_cast<std::size_t>(i)].bytes_in;
    task.item_bytes_out = graph.ops[static_cast<std::size_t>(j)].bytes_out;
    task.bitstream_bytes = config.board.little_bitstream_bytes;
    report.app.tasks.push_back(task);
    report.ops_per_task.push_back(j - i + 1);
    report.synth_fill.push_back(
        static_cast<double>(task.synth_usage.luts) /
        static_cast<double>(config.board.little_slot.luts));
  }
  report.bundleable = can_bundle(report.app, config.board, config.synthesis,
                                 config.bundle_size);
  return report;
}

BitstreamManifest make_manifest(const AppSpec& app,
                                const OfflineFlowConfig& config) {
  BitstreamManifest manifest;
  for (const TaskSpec& task : app.tasks) {
    BitstreamEntry e;
    e.label = "task" + std::to_string(task.index) + ".little";
    e.first_task = e.last_task = task.index;
    e.slot_kind = fpga::SlotKind::kLittle;
    e.mode = BundleMode::kSingle;
    e.bytes = task.bitstream_bytes;
    manifest.entries.push_back(e);
    manifest.total_bytes += e.bytes;
  }
  if (can_bundle(app, config.board, config.synthesis, config.bundle_size)) {
    // Both execution modes are generated offline; the scheduler picks one
    // at runtime based on the batch size (§III-B).
    auto add_bundles = [&](BundleMode mode) {
      auto units = make_big_units(app, mode == BundleMode::kParallel ? 30 : 1,
                                  config.board, config.synthesis,
                                  config.bundle_size);
      int bundle_index = 0;
      for (const UnitSpec& u : units) {
        BitstreamEntry e;
        e.label = "bundle" + std::to_string(bundle_index++) + "." +
                  to_string(mode);
        e.first_task = u.first_task;
        e.last_task = u.last_task;
        e.slot_kind = fpga::SlotKind::kBig;
        e.mode = mode;
        e.bytes = u.bitstream_bytes;
        manifest.entries.push_back(e);
        manifest.total_bytes += e.bytes;
      }
    };
    add_bundles(BundleMode::kParallel);
    add_bundles(BundleMode::kSerial);
  }
  return manifest;
}

}  // namespace vs::apps
