#include "apps/benchmarks.h"

#include <cassert>

namespace vs::apps {

namespace {

/// Raw per-task description before synthesis.
struct RawTask {
  const char* name;
  double lut_frac;   ///< raw LUT demand as fraction of a Little slot
  double ff_frac;    ///< raw FF demand as fraction of a Little slot
  double bram_frac;
  double dsp_frac;
  double latency_ms; ///< kernel time per batch item
  double mb_in;      ///< input payload per item, MB
};

struct RawApp {
  const char* name;
  std::vector<RawTask> tasks;
};

// Task profiles. LUT fractions sit in the 0.55–0.95 raw band so that
// synthesis (step-quantised) lands around 0.6–0.98 of a Little slot — the
// regime the paper describes where synthesis-based partitioning
// over-reserves. IC's first three tasks are calibrated to the paper's
// anchor: bundle synthesis 0.98 of a Big slot, implementation 0.57.
const RawApp kRawApps[kBenchmarkCount] = {
    // 3D Rendering: projection -> rasterization -> z-culling/coloring.
    {"3DR",
     {
         {"proj", 0.70, 0.52, 0.30, 0.35, 3.2, 0.50},
         {"rast", 0.84, 0.60, 0.42, 0.28, 4.8, 0.45},
         {"zcul", 0.64, 0.48, 0.55, 0.15, 3.6, 0.45},
     }},
    // LeNet inference, layer-grouped into six tasks.
    {"LeNet",
     {
         {"conv1", 0.66, 0.50, 0.46, 0.62, 2.6, 0.35},
         {"pool1", 0.56, 0.42, 0.22, 0.12, 0.9, 0.30},
         {"conv2", 0.78, 0.58, 0.58, 0.74, 3.4, 0.30},
         {"pool2", 0.55, 0.40, 0.20, 0.10, 0.8, 0.25},
         {"fc1", 0.72, 0.55, 0.62, 0.80, 1.9, 0.25},
         {"fc2", 0.58, 0.44, 0.30, 0.40, 1.0, 0.10},
     }},
    // Image Compression: DCT -> quantisation -> zigzag -> RLE -> Huffman ->
    // packing. First three tasks are the paper's Fig 7 (right) anchor.
    {"IC",
     {
         {"dct", 0.645, 0.50, 0.40, 0.55, 3.0, 0.60},
         {"quant", 0.640, 0.49, 0.30, 0.42, 2.2, 0.55},
         {"zigzag", 0.650, 0.51, 0.28, 0.20, 1.8, 0.55},
         {"rle", 0.60, 0.46, 0.25, 0.12, 1.6, 0.40},
         {"huff", 0.76, 0.56, 0.48, 0.15, 2.8, 0.35},
         {"pack", 0.55, 0.42, 0.22, 0.08, 1.2, 0.20},
     }},
    // AlexNet inference, heavier kernels.
    {"AN",
     {
         {"conv1", 0.82, 0.62, 0.55, 0.85, 8.5, 1.10},
         {"pool1", 0.56, 0.42, 0.25, 0.12, 2.6, 0.80},
         {"conv2", 0.88, 0.66, 0.62, 0.92, 10.4, 0.75},
         {"conv3", 0.84, 0.64, 0.58, 0.70, 7.8, 0.60},
         {"conv45", 0.86, 0.65, 0.60, 0.68, 6.4, 0.55},
         {"fc", 0.74, 0.58, 0.62, 0.55, 4.2, 0.40},
     }},
    // Optical Flow: nine fine-grained stages.
    {"OF",
     {
         {"grad_xy", 0.62, 0.47, 0.35, 0.40, 1.8, 0.70},
         {"grad_z", 0.58, 0.44, 0.32, 0.36, 1.5, 0.65},
         {"grad_w", 0.60, 0.46, 0.30, 0.34, 1.6, 0.60},
         {"outer", 0.68, 0.52, 0.38, 0.52, 2.4, 0.60},
         {"tens_y", 0.63, 0.48, 0.34, 0.38, 1.9, 0.55},
         {"tens_x", 0.63, 0.48, 0.34, 0.38, 1.9, 0.55},
         {"flow_a", 0.70, 0.53, 0.40, 0.56, 2.6, 0.50},
         {"flow_b", 0.66, 0.50, 0.36, 0.48, 2.2, 0.50},
         {"out", 0.54, 0.41, 0.24, 0.16, 1.2, 0.45},
     }},
};

/// Slot kernels run at a conservative fabric clock with AXI/DDR access
/// overhead; per-item latencies are the raw kernel estimates scaled by this
/// factor (calibrated so per-app service times sit in the 0.5-3 s band the
/// paper's congestion conditions imply).
constexpr double kLatencyScale = 6.0;

}  // namespace

const char* benchmark_name(Benchmark b) noexcept {
  return kRawApps[static_cast<int>(b)].name;
}

AppSpec make_app(Benchmark b, const fpga::BoardParams& params,
                 const SynthesisModel& model) {
  const RawApp& raw = kRawApps[static_cast<int>(b)];
  AppSpec app;
  app.name = raw.name;
  int index = 0;
  for (const RawTask& rt : raw.tasks) {
    TaskSpec task;
    task.index = index++;
    task.name = rt.name;
    fpga::ResourceVector demand{
        static_cast<std::int64_t>(rt.lut_frac *
                                  static_cast<double>(params.little_slot.luts)),
        static_cast<std::int64_t>(rt.ff_frac *
                                  static_cast<double>(params.little_slot.ffs)),
        static_cast<std::int64_t>(
            rt.bram_frac * static_cast<double>(params.little_slot.brams)),
        static_cast<std::int64_t>(
            rt.dsp_frac * static_cast<double>(params.little_slot.dsps)),
    };
    task.synth_usage = model.synthesize(demand);
    assert(params.little_slot.fits(task.synth_usage) &&
           "task partitioning must fit the Little slot at synthesis");
    task.impl_usage = model.implement(task.synth_usage);
    task.item_latency = sim::ms(rt.latency_ms * kLatencyScale);
    task.item_bytes_in = static_cast<std::int64_t>(rt.mb_in * 1e6);
    task.item_bytes_out = task.item_bytes_in / 2;
    task.bitstream_bytes = params.little_bitstream_bytes;
    app.tasks.push_back(task);
  }
  return app;
}

std::vector<AppSpec> make_suite(const fpga::BoardParams& params,
                                const SynthesisModel& model) {
  std::vector<AppSpec> suite;
  suite.reserve(kBenchmarkCount);
  for (int i = 0; i < kBenchmarkCount; ++i) {
    suite.push_back(make_app(static_cast<Benchmark>(i), params, model));
  }
  return suite;
}

}  // namespace vs::apps
