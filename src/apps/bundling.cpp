#include "apps/bundling.h"

#include <algorithm>
#include <cassert>

namespace vs::apps {

BundleMode choose_mode(const std::vector<sim::SimDuration>& latencies,
                       int batch) {
  assert(!latencies.empty() && batch >= 1);
  if (latencies.size() == 1) return BundleMode::kSingle;
  sim::SimDuration tmax = 0;
  sim::SimDuration sum = 0;
  for (sim::SimDuration t : latencies) {
    tmax = std::max(tmax, t);
    sum += t;
  }
  auto g = static_cast<sim::SimDuration>(latencies.size());
  sim::SimDuration parallel_makespan =
      tmax * (static_cast<sim::SimDuration>(batch) + g - 1);
  sim::SimDuration serial_makespan =
      sum * static_cast<sim::SimDuration>(batch);
  return parallel_makespan <= serial_makespan ? BundleMode::kParallel
                                              : BundleMode::kSerial;
}

std::vector<UnitSpec> make_little_units(const AppSpec& app) {
  std::vector<UnitSpec> units;
  units.reserve(app.tasks.size());
  for (const TaskSpec& task : app.tasks) {
    UnitSpec u;
    u.first_task = u.last_task = task.index;
    u.slot_kind = fpga::SlotKind::kLittle;
    u.mode = BundleMode::kSingle;
    u.item_latency = task.item_latency;
    u.fill_latency = 0;
    u.synth_usage = task.synth_usage;
    u.impl_usage = task.impl_usage;
    u.bitstream_bytes = task.bitstream_bytes;
    u.item_bytes_in = task.item_bytes_in;
    u.item_bytes_out = task.item_bytes_out;
    units.push_back(u);
  }
  return units;
}

std::vector<UnitSpec> make_big_units(const AppSpec& app, int batch,
                                     const fpga::BoardParams& params,
                                     const SynthesisModel& model,
                                     int bundle_size,
                                     std::optional<BundleMode> forced_mode) {
  assert(bundle_size >= 1);
  std::vector<UnitSpec> units;
  const int n = app.task_count();
  for (int first = 0; first < n; first += bundle_size) {
    int last = std::min(first + bundle_size, n) - 1;
    UnitSpec u;
    u.first_task = first;
    u.last_task = last;
    u.slot_kind = fpga::SlotKind::kBig;

    std::vector<sim::SimDuration> latencies;
    std::vector<fpga::ResourceVector> parts;
    for (int t = first; t <= last; ++t) {
      latencies.push_back(app.tasks[static_cast<std::size_t>(t)].item_latency);
      parts.push_back(app.tasks[static_cast<std::size_t>(t)].synth_usage);
    }
    u.mode = (forced_mode.has_value() && latencies.size() > 1)
                 ? *forced_mode
                 : choose_mode(latencies, batch);
    sim::SimDuration tmax = *std::max_element(latencies.begin(),
                                              latencies.end());
    sim::SimDuration sum = 0;
    for (sim::SimDuration t : latencies) sum += t;
    if (u.mode == BundleMode::kParallel) {
      u.item_latency = tmax;
      u.fill_latency = tmax * static_cast<sim::SimDuration>(latencies.size() - 1);
    } else {
      u.item_latency = sum;
      u.fill_latency = 0;
    }
    u.synth_usage = model.bundle_synth(parts);
    u.impl_usage = u.task_count() > 1 ? model.bundle_impl(parts)
                                      : model.implement(parts.front());
    u.bitstream_bytes = params.big_bitstream_bytes;
    u.item_bytes_in = app.tasks[static_cast<std::size_t>(first)].item_bytes_in;
    u.item_bytes_out = app.tasks[static_cast<std::size_t>(last)].item_bytes_out;
    units.push_back(u);
  }
  return units;
}

bool can_bundle(const AppSpec& app, const fpga::BoardParams& params,
                const SynthesisModel& model, int bundle_size) {
  if (app.task_count() < 2) return false;  // nothing to bundle
  // Representative batch of 1 for mode choice; fit does not depend on mode.
  auto units = make_big_units(app, 1, params, model, bundle_size);
  for (const UnitSpec& u : units) {
    if (!params.big_slot.fits(u.impl_usage)) return false;
  }
  return true;
}

sim::SimDuration estimate_little_makespan(const AppSpec& app, int batch,
                                          int k,
                                          const fpga::BoardParams& params) {
  assert(k >= 1);
  const int n = app.task_count();
  sim::SimDuration pr =
      params.pcap_load_time(params.little_bitstream_bytes);
  // Tasks run in ceil(n/k) groups of at most k pipelined stages; each group
  // costs a pipeline fill plus the batch at the group's bottleneck rate.
  // PRs for a group overlap with the previous group's execution except for
  // the first, so charge one PR chain of k loads per group conservatively
  // halved by overlap.
  sim::SimDuration total = 0;
  int groups = (n + k - 1) / k;
  for (int g = 0; g < groups; ++g) {
    int first = g * k;
    int last = std::min(first + k, n) - 1;
    sim::SimDuration tmax = 0;
    for (int t = first; t <= last; ++t) {
      tmax = std::max(tmax,
                      app.tasks[static_cast<std::size_t>(t)].item_latency);
    }
    int width = last - first + 1;
    total += tmax * static_cast<sim::SimDuration>(batch + width - 1);
    total += pr * static_cast<sim::SimDuration>(width) / 2 + pr / 2;
  }
  return total;
}

int optimal_little_slots(const AppSpec& app, int batch,
                         const fpga::BoardParams& params, int max_slots) {
  const int n = app.task_count();
  int limit = std::min(n, std::max(1, max_slots));
  int best_k = 1;
  sim::SimDuration best = estimate_little_makespan(app, batch, 1, params);
  for (int k = 2; k <= limit; ++k) {
    sim::SimDuration est = estimate_little_makespan(app, batch, k, params);
    if (est < best) {
      best = est;
      best_k = k;
    }
  }
  return best_k;
}

int optimal_big_slots(const AppSpec& app, int bundle_size) {
  assert(bundle_size >= 1);
  return (app.task_count() + bundle_size - 1) / bundle_size;
}

}  // namespace vs::apps
