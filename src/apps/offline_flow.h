// Offline application-preparation flow.
//
// The paper prepares applications ahead of time: "applications are
// partitioned into smaller tasks suitable for Little slots by synthesis
// resources via automated scripts", and "the automated script generates
// partial bitstreams for each task adaptive to each slot" (§III-A, §IV —
// a TCL flow in Vivado 2024.1). This module is that flow's model: it takes
// a streaming kernel graph (a chain of indivisible ops), partitions it into
// the fewest Little-slot-sized tasks by synthesis resource usage, and emits
// the bitstream manifest (every variant that must be generated and stored
// on the SD card: per-task Little bitstreams plus serial and parallel 3-in-1
// bundle variants for Big slots).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/bundling.h"
#include "apps/synthesis.h"
#include "apps/task.h"
#include "fpga/params.h"

namespace vs::apps {

/// Smallest indivisible unit of application logic (an HLS kernel / dataflow
/// stage). Ops are fused into tasks by the partitioner.
struct KernelOp {
  std::string name;
  fpga::ResourceVector raw_demand;   ///< pre-synthesis estimate
  sim::SimDuration item_latency = 0; ///< per batch item
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
};

/// A linear streaming dataflow of ops — the unit the flow partitions.
struct KernelGraph {
  std::string name;
  std::vector<KernelOp> ops;
};

struct OfflineFlowConfig {
  fpga::BoardParams board;
  SynthesisModel synthesis;
  /// Ops fused into one region avoid per-op DDR round-trips; the fused
  /// per-item latency is the sum of op latencies scaled by this factor.
  double fusion_speedup = 0.85;
  /// Partitioning may not fill a task beyond this fraction of the Little
  /// slot at synthesis (headroom for routing).
  double max_fill = 1.0;
  int bundle_size = 3;
};

/// Result of partitioning one kernel graph.
struct FlowReport {
  AppSpec app;                       ///< ready to submit to a runtime
  std::vector<int> ops_per_task;     ///< fusion widths
  std::vector<double> synth_fill;    ///< per-task synthesis LUT fill fraction
  bool bundleable = false;           ///< fits Big slots as 3-in-1 bundles

  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(ops_per_task.size());
  }
};

/// Partitions a chain of ops into the minimum number of tasks such that
/// every task's *synthesis* usage fits a Little slot (x max_fill). Among
/// minimum-task partitions, chooses the one with the most balanced per-task
/// latencies (the pipeline bottleneck Tmax is minimised) — the "optimal fit
/// between slot resources and task resource usage after synthesis" of §IV.
/// Throws std::invalid_argument if any single op cannot fit a Little slot.
[[nodiscard]] FlowReport partition(const KernelGraph& graph,
                                   const OfflineFlowConfig& config = {});

/// One pre-generated bitstream the SD card must hold.
struct BitstreamEntry {
  std::string label;        ///< e.g. "task2.little", "bundle0.parallel"
  int first_task = 0;
  int last_task = 0;
  fpga::SlotKind slot_kind = fpga::SlotKind::kLittle;
  BundleMode mode = BundleMode::kSingle;
  std::int64_t bytes = 0;
};

/// The complete offline artifact set for an application: Little-slot task
/// bitstreams plus, when the app is bundleable, serial and parallel
/// variants of every 3-in-1 bundle ("bitstreams for each task adaptive to
/// each slot").
struct BitstreamManifest {
  std::vector<BitstreamEntry> entries;
  std::int64_t total_bytes = 0;
};

[[nodiscard]] BitstreamManifest make_manifest(
    const AppSpec& app, const OfflineFlowConfig& config = {});

}  // namespace vs::apps
