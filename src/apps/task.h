// Application and task model.
//
// An application is partitioned offline (by the paper's Vivado TCL flow; by
// the SynthesisModel here) into a linear pipeline of tasks sized for Little
// slots. Each task carries its synthesis-reported and implemented resource
// usage, its per-batch-item latency, and the partial bitstream sizes for
// each slot variant. Batches of items stream through the pipeline: item b of
// task t can execute once task t-1 has finished item b.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/resources.h"
#include "sim/time.h"

namespace vs::apps {

struct TaskSpec {
  int index = 0;           ///< position in the pipeline
  std::string name;
  fpga::ResourceVector synth_usage;  ///< synthesis-reported, Little variant
  fpga::ResourceVector impl_usage;   ///< post-implementation usage
  sim::SimDuration item_latency = 0; ///< execution time per batch item
  std::int64_t item_bytes_in = 0;    ///< DMA payload per item
  std::int64_t item_bytes_out = 0;
  std::int64_t bitstream_bytes = 0;  ///< Little-slot partial bitstream
};

struct AppSpec {
  std::string name;
  std::vector<TaskSpec> tasks;

  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(tasks.size());
  }

  /// Sum of per-item latencies across the pipeline (one item's latency
  /// through an unconstrained pipeline).
  [[nodiscard]] sim::SimDuration item_latency_sum() const noexcept {
    sim::SimDuration t = 0;
    for (const TaskSpec& task : tasks) t += task.item_latency;
    return t;
  }

  [[nodiscard]] sim::SimDuration max_item_latency() const noexcept {
    sim::SimDuration t = 0;
    for (const TaskSpec& task : tasks) t = std::max(t, task.item_latency);
    return t;
  }
};

/// One submitted instance of an application: arrival time plus batch size.
struct AppArrival {
  int spec_index = 0;        ///< index into the benchmark suite
  sim::SimTime arrival = 0;
  int batch = 1;             ///< number of items to stream through
  /// Dynamic batch processing (§III-A): when non-zero, item i of the batch
  /// only becomes available at arrival + i * item_interval (a live source
  /// such as a camera feed). Zero = the whole batch is staged up front.
  sim::SimDuration item_interval = 0;
  /// Serving plane: owning tenant index (serve::ServeConfig::tenants), or
  /// -1 for the closed batch workloads. Rides through the board runtime so
  /// completions and migrations stay attributable to their tenant.
  int tenant = -1;
};

}  // namespace vs::apps
