// Workload generation matching the paper's evaluation setup (§IV):
// randomly generated application sequences (10 sequences × 20 apps for
// Figs 5/6; 3 × 80 apps for Fig 8) with random batch sizes in [5, 30] and
// one of four arrival-interval regimes:
//   Loose      5000 ms fixed
//   Standard   uniform 1500–2000 ms
//   Stress     uniform 150–200 ms
//   Real-time  50 ms fixed
#pragma once

#include <string>
#include <vector>

#include "apps/task.h"
#include "util/rng.h"

namespace vs::workload {

enum class Congestion { kLoose = 0, kStandard = 1, kStress = 2, kRealtime = 3 };

constexpr int kCongestionCount = 4;

[[nodiscard]] const char* congestion_name(Congestion c) noexcept;

struct WorkloadConfig {
  Congestion congestion = Congestion::kStandard;
  int apps_per_sequence = 20;
  int min_batch = 5;
  int max_batch = 30;
  int suite_size = 5;  ///< number of distinct application specs to draw from
};

/// One generated sequence: arrivals sorted by time.
using Sequence = std::vector<apps::AppArrival>;

/// Generates a single sequence. Deterministic in (config, rng state).
[[nodiscard]] Sequence generate_sequence(const WorkloadConfig& config,
                                         util::Rng& rng);

/// Generates `count` sequences from a master seed, each with an
/// independent derived stream (so sequences do not correlate).
[[nodiscard]] std::vector<Sequence> generate_sequences(
    const WorkloadConfig& config, int count, std::uint64_t master_seed);

/// Arrival interval draw for a congestion regime, in nanoseconds.
[[nodiscard]] sim::SimDuration draw_interval(Congestion c, util::Rng& rng);

}  // namespace vs::workload
