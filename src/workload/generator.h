// Workload generation matching the paper's evaluation setup (§IV):
// randomly generated application sequences (10 sequences × 20 apps for
// Figs 5/6; 3 × 80 apps for Fig 8) with random batch sizes in [5, 30] and
// one of four arrival-interval regimes:
//   Loose      5000 ms fixed
//   Standard   uniform 1500–2000 ms
//   Stress     uniform 150–200 ms
//   Real-time  50 ms fixed
#pragma once

#include <string>
#include <vector>

#include "apps/task.h"
#include "util/rng.h"

namespace vs::workload {

enum class Congestion { kLoose = 0, kStandard = 1, kStress = 2, kRealtime = 3 };

constexpr int kCongestionCount = 4;

[[nodiscard]] const char* congestion_name(Congestion c) noexcept;

struct WorkloadConfig {
  Congestion congestion = Congestion::kStandard;
  int apps_per_sequence = 20;
  int min_batch = 5;
  int max_batch = 30;
  int suite_size = 5;  ///< number of distinct application specs to draw from
};

/// One generated sequence: arrivals sorted by time.
using Sequence = std::vector<apps::AppArrival>;

/// Generates a single sequence. Deterministic in (config, rng state).
[[nodiscard]] Sequence generate_sequence(const WorkloadConfig& config,
                                         util::Rng& rng);

/// Generates `count` sequences from a master seed, each with an
/// independent derived stream (so sequences do not correlate).
[[nodiscard]] std::vector<Sequence> generate_sequences(
    const WorkloadConfig& config, int count, std::uint64_t master_seed);

/// Arrival interval draw for a congestion regime, in nanoseconds.
[[nodiscard]] sim::SimDuration draw_interval(Congestion c, util::Rng& rng);

// --- Open-loop arrival processes (serving plane) -----------------------
//
// Unlike the closed ~N-app sequences above, the serving plane replays
// open-loop traffic: a tenant keeps submitting on its own clock whether or
// not the cluster keeps up. Each process generates its full arrival-time
// trace up front from one forked Rng stream, so a schedule is a pure
// function of (config, seed) — independent of kernel worker count,
// telemetry, and whatever the cluster does with the jobs.

enum class ArrivalKind {
  kPoisson = 0,  ///< homogeneous: exponential inter-arrivals at rate_per_s
  kMmpp = 1,     ///< 2-state Markov-modulated: quiet/burst rate switching
  kDiurnal = 2,  ///< sinusoidally modulated rate (Lewis-Shedler thinning)
};

constexpr int kArrivalKindCount = 3;

[[nodiscard]] const char* arrival_kind_name(ArrivalKind k) noexcept;

/// One tenant's arrival process. A non-positive base rate emits nothing
/// (and an MMPP whose burst rate is also non-positive emits nothing).
struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_s = 1.0;  ///< base rate (MMPP: quiet-state rate)
  // MMPP (2-state): burst-state rate and mean exponential sojourn times.
  // The chain starts quiet; sojourn means must be positive when used.
  double burst_rate_per_s = 0.0;
  double burst_on_s = 1.0;   ///< mean burst-window length
  double burst_off_s = 4.0;  ///< mean quiet-window length
  // Diurnal: rate(t) = rate_per_s * (1 + depth * sin(2*pi*t/period)),
  // depth in [0, 1] — a compressed day/night cycle.
  double diurnal_depth = 0.5;
  double diurnal_period_s = 60.0;

  /// Arrival times in [0, horizon), ascending, drawn from `rng`.
  [[nodiscard]] std::vector<sim::SimTime> generate(sim::SimDuration horizon,
                                                   util::Rng& rng) const;
};

}  // namespace vs::workload
