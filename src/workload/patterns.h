// Composite workload patterns and sequence persistence.
//
// The paper's evaluation uses fixed-regime sequences (generator.h); the
// cluster experiments additionally need load that *changes over time* so
// the D_switch signal has a trajectory. This module provides phased
// sequences (each phase draws arrivals from one congestion regime),
// Poisson arrivals for queueing-theory-style experiments, and CSV
// import/export so a workload can be pinned, shared and replayed exactly.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.h"

namespace vs::workload {

/// One phase of a composite workload.
struct Phase {
  int count = 0;                 ///< number of arrivals in this phase
  Congestion congestion = Congestion::kStandard;
};

/// Concatenates phases into one sequence; batch sizes and app choices are
/// drawn per arrival exactly as in generate_sequence.
[[nodiscard]] Sequence phased_sequence(const std::vector<Phase>& phases,
                                       util::Rng& rng,
                                       const WorkloadConfig& config = {});

/// The Fig 8 long workload: a congested burst then standard-interval
/// arrivals (see EXPERIMENTS.md for why this reproduces the paper's
/// congestion-then-relief trajectory).
[[nodiscard]] Sequence fig8_long_workload(std::uint64_t seed,
                                          int burst = 30, int total = 80);

/// Memoryless arrivals at the given mean inter-arrival time.
[[nodiscard]] Sequence poisson_sequence(int count,
                                        sim::SimDuration mean_interval,
                                        util::Rng& rng,
                                        const WorkloadConfig& config = {});

/// CSV persistence: "spec_index,arrival_ns,batch" per row with a header.
void save_sequence(const Sequence& sequence, const std::string& path);

/// Loads a saved sequence; throws std::runtime_error on unreadable files
/// or malformed rows.
[[nodiscard]] Sequence load_sequence(const std::string& path);

}  // namespace vs::workload
