#include "workload/generator.h"

#include <cassert>

namespace vs::workload {

const char* congestion_name(Congestion c) noexcept {
  switch (c) {
    case Congestion::kLoose: return "Loose";
    case Congestion::kStandard: return "Standard";
    case Congestion::kStress: return "Stress";
    case Congestion::kRealtime: return "Real-time";
  }
  return "?";
}

sim::SimDuration draw_interval(Congestion c, util::Rng& rng) {
  switch (c) {
    case Congestion::kLoose:
      return sim::ms(5000.0);
    case Congestion::kStandard:
      return sim::ms(static_cast<double>(rng.uniform_int(1500, 2000)));
    case Congestion::kStress:
      return sim::ms(static_cast<double>(rng.uniform_int(150, 200)));
    case Congestion::kRealtime:
      return sim::ms(50.0);
  }
  return sim::ms(1000.0);
}

Sequence generate_sequence(const WorkloadConfig& config, util::Rng& rng) {
  assert(config.apps_per_sequence >= 1);
  assert(config.min_batch >= 1 && config.min_batch <= config.max_batch);
  assert(config.suite_size >= 1);
  Sequence seq;
  seq.reserve(static_cast<std::size_t>(config.apps_per_sequence));
  sim::SimTime t = 0;
  for (int i = 0; i < config.apps_per_sequence; ++i) {
    apps::AppArrival a;
    a.spec_index =
        static_cast<int>(rng.uniform_int(0, config.suite_size - 1));
    a.batch = static_cast<int>(
        rng.uniform_int(config.min_batch, config.max_batch));
    a.arrival = t;
    seq.push_back(a);
    t += draw_interval(config.congestion, rng);
  }
  return seq;
}

std::vector<Sequence> generate_sequences(const WorkloadConfig& config,
                                         int count,
                                         std::uint64_t master_seed) {
  std::vector<Sequence> out;
  out.reserve(static_cast<std::size_t>(count));
  util::Rng master(master_seed);
  for (int i = 0; i < count; ++i) {
    util::Rng stream = master.fork("sequence-" + std::to_string(i));
    out.push_back(generate_sequence(config, stream));
  }
  return out;
}

}  // namespace vs::workload
