#include "workload/generator.h"

#include <cassert>
#include <cmath>

namespace vs::workload {

const char* congestion_name(Congestion c) noexcept {
  switch (c) {
    case Congestion::kLoose: return "Loose";
    case Congestion::kStandard: return "Standard";
    case Congestion::kStress: return "Stress";
    case Congestion::kRealtime: return "Real-time";
  }
  return "?";
}

sim::SimDuration draw_interval(Congestion c, util::Rng& rng) {
  switch (c) {
    case Congestion::kLoose:
      return sim::ms(5000.0);
    case Congestion::kStandard:
      return sim::ms(static_cast<double>(rng.uniform_int(1500, 2000)));
    case Congestion::kStress:
      return sim::ms(static_cast<double>(rng.uniform_int(150, 200)));
    case Congestion::kRealtime:
      return sim::ms(50.0);
  }
  return sim::ms(1000.0);
}

Sequence generate_sequence(const WorkloadConfig& config, util::Rng& rng) {
  assert(config.apps_per_sequence >= 1);
  assert(config.min_batch >= 1 && config.min_batch <= config.max_batch);
  assert(config.suite_size >= 1);
  Sequence seq;
  seq.reserve(static_cast<std::size_t>(config.apps_per_sequence));
  sim::SimTime t = 0;
  for (int i = 0; i < config.apps_per_sequence; ++i) {
    apps::AppArrival a;
    a.spec_index =
        static_cast<int>(rng.uniform_int(0, config.suite_size - 1));
    a.batch = static_cast<int>(
        rng.uniform_int(config.min_batch, config.max_batch));
    a.arrival = t;
    seq.push_back(a);
    t += draw_interval(config.congestion, rng);
  }
  return seq;
}

std::vector<Sequence> generate_sequences(const WorkloadConfig& config,
                                         int count,
                                         std::uint64_t master_seed) {
  std::vector<Sequence> out;
  out.reserve(static_cast<std::size_t>(count));
  util::Rng master(master_seed);
  for (int i = 0; i < count; ++i) {
    util::Rng stream = master.fork("sequence-" + std::to_string(i));
    out.push_back(generate_sequence(config, stream));
  }
  return out;
}

// --- Open-loop arrival processes ---------------------------------------

const char* arrival_kind_name(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp: return "mmpp";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

/// Exponential inter-arrival draw in seconds. uniform01() is in [0, 1), so
/// 1 - u is in (0, 1] and the log is finite.
double exp_interval_s(double rate_per_s, util::Rng& rng) {
  return -std::log(1.0 - rng.uniform01()) / rate_per_s;
}

}  // namespace

std::vector<sim::SimTime> ArrivalProcess::generate(sim::SimDuration horizon,
                                                   util::Rng& rng) const {
  std::vector<sim::SimTime> out;
  if (horizon <= 0) return out;
  const double horizon_s = sim::to_seconds(horizon);
  switch (kind) {
    case ArrivalKind::kPoisson: {
      if (rate_per_s <= 0) return out;
      double t = 0;
      for (;;) {
        t += exp_interval_s(rate_per_s, rng);
        if (t >= horizon_s) break;
        out.push_back(sim::seconds(t));
      }
      break;
    }
    case ArrivalKind::kMmpp: {
      if (rate_per_s <= 0 && burst_rate_per_s <= 0) return out;
      assert(burst_on_s > 0 && burst_off_s > 0);
      // The chain starts in the quiet state. Memorylessness lets us discard
      // the partial inter-arrival interval at every state switch.
      bool burst = false;
      double t = 0;
      double t_switch = burst_off_s * exp_interval_s(1.0, rng);
      while (t < horizon_s) {
        double rate = burst ? burst_rate_per_s : rate_per_s;
        if (rate <= 0) {
          // Silent state: jump straight to the next state boundary.
          t = t_switch;
          burst = !burst;
          t_switch = t + (burst ? burst_on_s : burst_off_s) *
                             exp_interval_s(1.0, rng);
          continue;
        }
        double next = t + exp_interval_s(rate, rng);
        if (next < t_switch) {
          t = next;
          if (t < horizon_s) out.push_back(sim::seconds(t));
        } else {
          t = t_switch;
          burst = !burst;
          t_switch = t + (burst ? burst_on_s : burst_off_s) *
                             exp_interval_s(1.0, rng);
        }
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      if (rate_per_s <= 0) return out;
      assert(diurnal_depth >= 0 && diurnal_depth <= 1);
      assert(diurnal_period_s > 0);
      // Lewis-Shedler thinning against the peak rate.
      const double peak = rate_per_s * (1.0 + diurnal_depth);
      const double two_pi = 2.0 * 3.14159265358979323846;
      double t = 0;
      for (;;) {
        t += exp_interval_s(peak, rng);
        if (t >= horizon_s) break;
        double rate_t =
            rate_per_s *
            (1.0 + diurnal_depth * std::sin(two_pi * t / diurnal_period_s));
        if (rng.uniform01() * peak < rate_t) out.push_back(sim::seconds(t));
      }
      break;
    }
  }
  return out;
}

}  // namespace vs::workload
