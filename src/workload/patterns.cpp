#include "workload/patterns.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vs::workload {

Sequence phased_sequence(const std::vector<Phase>& phases, util::Rng& rng,
                         const WorkloadConfig& config) {
  Sequence seq;
  sim::SimTime t = 0;
  for (const Phase& phase : phases) {
    for (int i = 0; i < phase.count; ++i) {
      apps::AppArrival a;
      a.spec_index =
          static_cast<int>(rng.uniform_int(0, config.suite_size - 1));
      a.batch = static_cast<int>(
          rng.uniform_int(config.min_batch, config.max_batch));
      a.arrival = t;
      seq.push_back(a);
      t += draw_interval(phase.congestion, rng);
    }
  }
  return seq;
}

Sequence fig8_long_workload(std::uint64_t seed, int burst, int total) {
  util::Rng rng(seed);
  return phased_sequence(
      {{burst, Congestion::kStress}, {total - burst, Congestion::kStandard}},
      rng);
}

Sequence poisson_sequence(int count, sim::SimDuration mean_interval,
                          util::Rng& rng, const WorkloadConfig& config) {
  Sequence seq;
  sim::SimTime t = 0;
  for (int i = 0; i < count; ++i) {
    apps::AppArrival a;
    a.spec_index =
        static_cast<int>(rng.uniform_int(0, config.suite_size - 1));
    a.batch = static_cast<int>(
        rng.uniform_int(config.min_batch, config.max_batch));
    a.arrival = t;
    seq.push_back(a);
    // Exponential inter-arrival via inverse transform; clamp u away from 0
    // so log() stays finite.
    double u = std::max(rng.uniform01(), 1e-12);
    t += static_cast<sim::SimDuration>(
        -std::log(u) * static_cast<double>(mean_interval));
  }
  return seq;
}

void save_sequence(const Sequence& sequence, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "spec_index,arrival_ns,batch\n";
  for (const apps::AppArrival& a : sequence) {
    out << a.spec_index << ',' << a.arrival << ',' << a.batch << '\n';
  }
}

Sequence load_sequence(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  Sequence seq;
  std::string line;
  std::getline(in, line);  // header
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    apps::AppArrival a;
    char c1 = 0, c2 = 0;
    if (!(row >> a.spec_index >> c1 >> a.arrival >> c2 >> a.batch) ||
        c1 != ',' || c2 != ',') {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed row '" + line + "'");
    }
    if (a.spec_index < 0 || a.batch < 1 || a.arrival < 0) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": out-of-range values");
    }
    seq.push_back(a);
  }
  return seq;
}

}  // namespace vs::workload
