#include "runtime/invariants.h"

#include <map>
#include <sstream>

namespace vs::runtime {

namespace {

void check(InvariantReport& report, bool condition, const std::string& msg) {
  if (!condition) report.violations.push_back(msg);
}

std::string unit_name(const AppRun& a, int unit_index) {
  return (a.spec ? a.spec->name : std::string("<extracted>")) + "#" +
         std::to_string(a.id) + ".u" + std::to_string(unit_index);
}

}  // namespace

std::string InvariantReport::to_string() const {
  if (ok()) return "all invariants hold";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const auto& v : violations) out << "  - " << v << "\n";
  return out.str();
}

InvariantReport audit(const BoardRuntime& rt) {
  InvariantReport report;
  const fpga::Board& board = rt.board();

  // Map slot id -> (app, unit) holding it, built from unit state.
  std::map<int, std::pair<int, int>> holders;

  for (const AppRun& a : rt.apps()) {
    if (a.spec == nullptr) continue;  // extracted tombstone: no state to hold
    int prev_items = -1;
    for (std::size_t ui = 0; ui < a.units.size(); ++ui) {
      const UnitRun& u = a.units[ui];
      int unit_index = static_cast<int>(ui);
      std::string name = unit_name(a, unit_index);

      // I1: items_done within [0, batch].
      check(report, u.items_done >= 0 && u.items_done <= a.batch,
            name + ": items_done " + std::to_string(u.items_done) +
                " outside [0," + std::to_string(a.batch) + "]");

      // I2: pipeline order — a unit can never be ahead of its predecessor.
      if (prev_items >= 0) {
        check(report, u.items_done <= prev_items,
              name + ": ahead of upstream (" + std::to_string(u.items_done) +
                  " > " + std::to_string(prev_items) + ")");
      }
      prev_items = u.items_done;

      // I3: state/slot consistency.
      switch (u.state) {
        case UnitState::kPending:
          check(report, u.slot == -1, name + ": pending but holds a slot");
          check(report, !u.item_in_flight,
                name + ": pending with an item in flight");
          break;
        case UnitState::kReconfiguring:
        case UnitState::kRunning:
          check(report, u.slot >= 0 || u.slot == -2,
                name + ": placed without a slot");
          if (u.slot >= 0) {
            auto [it, inserted] =
                holders.emplace(u.slot, std::make_pair(a.id, unit_index));
            check(report, inserted,
                  name + ": slot " + std::to_string(u.slot) +
                      " also held by app " + std::to_string(it->second.first));
          }
          if (u.state == UnitState::kReconfiguring) {
            check(report, !u.item_in_flight,
                  name + ": executing while reconfiguring");
          }
          break;
        case UnitState::kFinished:
          check(report, u.slot == -1, name + ": finished but holds a slot");
          check(report, u.items_done == a.batch,
                name + ": finished with incomplete batch");
          check(report, !u.item_in_flight,
                name + ": finished with an item in flight");
          break;
      }
    }

    // I4: app completion implies all units finished, and vice versa.
    bool all_finished = true;
    for (const UnitRun& u : a.units) {
      all_finished &= (u.state == UnitState::kFinished);
    }
    if (a.done()) {
      check(report, all_finished,
            "app " + std::to_string(a.id) + ": done with unfinished units");
    }

    // I5: derived counts agree with unit states.
    int placed = 0, unfinished = 0;
    for (const UnitRun& u : a.units) {
      placed += (u.state == UnitState::kReconfiguring ||
                 u.state == UnitState::kRunning);
      unfinished += (u.state != UnitState::kFinished);
    }
    check(report, placed == a.units_placed(),
          "app " + std::to_string(a.id) + ": units_placed mismatch");
    check(report, unfinished == a.units_unfinished(),
          "app " + std::to_string(a.id) + ": units_unfinished mismatch");
  }

  // I6: slot states agree with the holder map.
  for (const fpga::Slot& s : board.slots()) {
    bool held = holders.count(s.id()) > 0;
    if (s.state() == fpga::SlotState::kIdle) {
      check(report, !held,
            "slot " + s.name() + ": idle but a unit claims it");
    } else {
      check(report, held,
            "slot " + s.name() + ": " + to_string(s.state()) +
                " but no unit claims it");
      if (held) {
        check(report, s.occupant_app() == holders[s.id()].first,
              "slot " + s.name() + ": occupant app mismatch");
      }
    }
  }

  // I7: counter consistency.
  const RuntimeCounters& c = rt.counters();
  check(report, c.pr_blocked <= c.pr_requests,
        "more blocked PRs than PR requests");
  check(report, c.apps_completed ==
                    static_cast<std::int64_t>(rt.completed().size()),
        "apps_completed counter disagrees with completion log");

  // I8: completion log sanity.
  for (const CompletedApp& done : rt.completed()) {
    check(report, done.completed >= done.arrival,
          done.name + "#" + std::to_string(done.app_id) +
              ": completed before arrival");
  }

  return report;
}

}  // namespace vs::runtime
