// Global-state invariant auditing for the BoardRuntime.
//
// The runtime's correctness rests on cross-object consistency that no
// single class can assert locally: every non-idle slot must be accounted
// to exactly one live unit and vice versa, item progress must respect
// pipeline order, and counters must be mutually consistent. The audit
// walks the entire runtime state and reports every violation; tests and
// debugging sessions call it at arbitrary points (it is side-effect free).
#pragma once

#include <string>
#include <vector>

#include "runtime/board_runtime.h"

namespace vs::runtime {

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Audits all invariants; see implementation for the complete list.
[[nodiscard]] InvariantReport audit(const BoardRuntime& rt);

}  // namespace vs::runtime
