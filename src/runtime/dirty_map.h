// Fixed-granularity dirty-region tracking for an app's DDR state image.
//
// The checkpoint pass (runtime/checkpoint.h) and the pre-copy migration
// loop (cluster/migration.h) both want to move only the bytes that changed
// since *they* last looked — but they look at different times. A DirtyMap
// therefore keeps one region geometry and two independent consumer planes:
// every write marks both planes, and each consumer drains only its own, so
// a checkpoint never shortens a migration round's delta or vice versa.
//
// Region geometry is fixed at `granularity` bytes (the paper's DDR state
// images are 0.3–15 MB, so the default 64 KiB gives tens to hundreds of
// regions); the trailing region is partial and is accounted at its true
// byte size when drained.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace vs::runtime {

class DirtyMap {
 public:
  /// Consumer planes: the periodic checkpoint pass and the pre-copy
  /// migration loop drain independently.
  enum Plane : int { kCheckpoint = 0, kMigration = 1 };

  DirtyMap() = default;

  /// (Re)initialises the map for a `state_bytes` image split into
  /// `granularity`-byte regions, all regions clean in both planes.
  void reset(std::int64_t state_bytes, std::int64_t granularity) {
    assert(state_bytes >= 0 && granularity > 0);
    state_bytes_ = state_bytes;
    granularity_ = granularity;
    regions_ = static_cast<int>(
        (state_bytes + granularity - 1) / granularity);
    std::size_t words = static_cast<std::size_t>((regions_ + 63) / 64);
    for (auto& plane : bits_) {
      plane.assign(words, 0);
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return granularity_ > 0; }
  [[nodiscard]] std::int64_t state_bytes() const noexcept {
    return state_bytes_;
  }
  [[nodiscard]] std::int64_t granularity() const noexcept {
    return granularity_;
  }
  [[nodiscard]] int regions() const noexcept { return regions_; }

  /// Marks [offset, offset + len) dirty in both planes. Ranges are clamped
  /// to the image (writes never land outside it, but clamping keeps the
  /// map robust if a caller over-approximates).
  void mark(std::int64_t offset, std::int64_t len) {
    if (!enabled() || len <= 0) return;
    std::int64_t end = std::min(offset + len, state_bytes_);
    offset = std::max<std::int64_t>(offset, 0);
    if (offset >= end) return;
    int first = static_cast<int>(offset / granularity_);
    int last = static_cast<int>((end - 1) / granularity_);
    for (int r = first; r <= last; ++r) {
      std::size_t w = static_cast<std::size_t>(r) / 64;
      bits_[kCheckpoint][w] |= 1ULL << (r % 64);
      bits_[kMigration][w] |= 1ULL << (r % 64);
    }
  }

  /// Marks the whole image dirty in both planes (fresh admission,
  /// re-unitise, restored progress).
  void mark_all() { mark(0, state_bytes_); }

  struct Drain {
    int regions = 0;          ///< dirty regions drained
    std::int64_t bytes = 0;   ///< their byte footprint (tail region partial)
  };

  /// Returns `plane`'s dirty footprint and clears it.
  Drain take(Plane plane) {
    Drain d = peek(plane);
    auto& bits = bits_[plane];
    std::fill(bits.begin(), bits.end(), 0);
    return d;
  }

  /// Dirty footprint of `plane` without clearing it.
  [[nodiscard]] Drain peek(Plane plane) const {
    Drain d;
    if (!enabled()) return d;
    const auto& bits = bits_[plane];
    for (const std::uint64_t w : bits) {
      d.regions += __builtin_popcountll(w);
    }
    d.bytes = static_cast<std::int64_t>(d.regions) * granularity_;
    // The trailing region is partial: account it at its true size.
    if (regions_ > 0) {
      int tail = regions_ - 1;
      bool tail_dirty =
          (bits[static_cast<std::size_t>(tail) / 64] >>
           (tail % 64)) & 1ULL;
      if (tail_dirty) {
        std::int64_t tail_bytes =
            state_bytes_ - static_cast<std::int64_t>(tail) * granularity_;
        d.bytes -= granularity_ - tail_bytes;
      }
    }
    return d;
  }

 private:
  std::int64_t state_bytes_ = 0;
  std::int64_t granularity_ = 0;
  int regions_ = 0;
  std::vector<std::uint64_t> bits_[2];
};

}  // namespace vs::runtime
