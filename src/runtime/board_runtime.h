// BoardRuntime: the execution engine for one FPGA board.
//
// Owns application runtime state and drives the board hardware models:
// scheduler passes and batch launches run as operations on the scheduler
// core, PR loads go through the SD card + PCAP (suspending the issuing
// core), batch items execute in slots with item-wise pipeline dependencies
// between a pipeline's units. All policy decision logic is delegated to a
// SchedulerPolicy; all blocked-time accounting needed by the D_switch metric
// is collected here.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/bundling.h"
#include "apps/task.h"
#include "fpga/board.h"
#include "obs/metrics.h"
#include "runtime/checkpoint.h"
#include "runtime/dirty_map.h"
#include "runtime/policy.h"
#include "sim/trace.h"

namespace vs::obs {
class TraceChannel;
}  // namespace vs::obs

namespace vs::runtime {

/// Packs a unit's identity into the bitstream-store key. DFX partial
/// bitstreams are placement-specific — the offline flow generates one per
/// (application, task range, mode, *target slot*), "adaptive to each slot"
/// (§III-A) — so the key includes the concrete slot id: a task that has
/// been loaded into L2 before still pays the SD fetch the first time it
/// lands in L5. Shared with the cluster layer for SD-cache pre-warming.
[[nodiscard]] fpga::BitstreamKey unit_bitstream_key(
    int spec_index, const apps::UnitSpec& unit, int slot_id) noexcept;

enum class UnitState : std::uint8_t {
  kPending,        ///< not placed in a slot
  kReconfiguring,  ///< PR in flight
  kRunning,        ///< configured in a slot (possibly executing an item)
  kFinished,       ///< all batch items done
};

struct UnitRun {
  apps::UnitSpec spec;
  UnitState state = UnitState::kPending;
  int slot = -1;               ///< slot id; -2 = full-fabric (baseline)
  int items_done = 0;
  bool item_in_flight = false;
  bool pr_was_blocked = false; ///< this unit's last PR waited in the PCAP FIFO
  bool seu_poisoned = false;   ///< SEU hit mid-PR/mid-item: discard on finish
};

/// Response-time phases. Every nanosecond between an app's arrival and its
/// completion is attributed to exactly one phase, so the per-app phase sums
/// reconcile exactly with the response-time histogram (the invariant the
/// PhaseAccounting property tests pin).
enum class AppPhase : std::uint8_t {
  kQueueWait,  ///< admitted (or still in transit) but never started
  kReconfig,   ///< at least one unit mid-PR, none executing
  kExec,       ///< at least one unit executing a batch item
  kPaused,     ///< started, configured or preempted, nothing in flight
  kMigration,  ///< in a migration transfer (D_switch / pre-copy stop-copy)
  kRecovery,   ///< in a crash evacuation / restore / readmission path
};
inline constexpr std::size_t kAppPhaseCount = 6;

[[nodiscard]] const char* to_string(AppPhase p) noexcept;

struct AppRun {
  int id = -1;
  const apps::AppSpec* spec = nullptr;
  int spec_index = -1;
  int tenant = -1;  ///< serving plane: owning tenant (-1 = closed workload)
  sim::SimTime arrival = 0;   ///< cluster arrival (response time base)
  sim::SimTime admitted = 0;  ///< when this board received the app
  int batch = 1;
  sim::SimDuration item_interval = 0;  ///< streaming source period (0 = staged)
  std::vector<UnitRun> units;
  bool started = false;       ///< any PR ever issued for it
  sim::SimTime completed = -1;
  sim::SimTime stream_kick = -1;  ///< pending wake-up for streamed items
  /// Last DDR checkpoint (CheckpointPolicy): expanded per-task progress,
  /// when it was taken (-1 = never), and the byte volume a crash
  /// evacuation ships to restore it — the reconstructed image in both
  /// modes (a restore reads each surviving region once, so a delta chain
  /// never ships more than the union of its base + delta regions).
  std::vector<int> ckpt_progress;
  sim::SimTime ckpt_time = -1;
  std::int64_t ckpt_bytes = 0;
  /// Deltas chained onto the current base snapshot (delta mode only).
  int ckpt_chain = 0;
  /// Pre-copy: this app's migratable footprint has been streamed to the
  /// target at least once this migration (later rounds ship only dirt).
  bool precopy_streamed = false;
  /// DDR dirty-region map; empty unless the board tracks dirty state
  /// (delta checkpointing and/or pre-copy migration).
  DirtyMap dirty;
  /// Phase accounting (zero-cost unless enable_phase_accounting()):
  /// nanoseconds attributed per phase, the phase the app is currently in,
  /// and when it entered it. Carried across boards through MigratedApp.
  std::array<sim::SimDuration, kAppPhaseCount> phase_ns{};
  AppPhase phase = AppPhase::kQueueWait;
  sim::SimTime phase_since = 0;
  /// Causal flow id of this app's checkpoint base→delta→restore chain
  /// (0 = none yet); only assigned when cluster tracing is on.
  std::uint64_t ckpt_flow = 0;

  [[nodiscard]] bool done() const noexcept { return completed >= 0; }

  /// Items of the first pipeline stage available from the source by `now`.
  [[nodiscard]] int items_available(sim::SimTime now) const noexcept {
    if (item_interval <= 0) return batch;
    if (now < arrival) return 0;
    auto streamed =
        static_cast<std::int64_t>((now - arrival) / item_interval) + 1;
    return static_cast<int>(
        std::min<std::int64_t>(streamed, batch));
  }
  [[nodiscard]] int units_finished() const noexcept {
    int n = 0;
    for (const UnitRun& u : units) n += (u.state == UnitState::kFinished);
    return n;
  }
  /// Unfinished units (the N_T of Algorithm 1).
  [[nodiscard]] int units_unfinished() const noexcept {
    return static_cast<int>(units.size()) - units_finished();
  }
  /// Units currently holding a slot (reconfiguring or running).
  [[nodiscard]] int units_placed() const noexcept {
    int n = 0;
    for (const UnitRun& u : units) {
      n += (u.state == UnitState::kReconfiguring ||
            u.state == UnitState::kRunning);
    }
    return n;
  }
};

struct RuntimeCounters {
  std::int64_t pr_requests = 0;
  std::int64_t pr_blocked = 0;       ///< PRs that waited behind another PR
  std::int64_t launch_blocked = 0;   ///< passes delayed by a PR on the core
  std::int64_t items_executed = 0;
  std::int64_t apps_completed = 0;
  std::int64_t preemptions = 0;
  std::int64_t passes = 0;
  std::int64_t ckpt_snapshots = 0;  ///< per-app snapshots committed
  std::int64_t ckpt_bytes = 0;      ///< total snapshot bytes copied
};

/// Time-integrated fabric utilisation (numerators in resource·ns).
struct UtilizationIntegral {
  double lut_used = 0, ff_used = 0;
  double lut_capacity = 0, ff_capacity = 0;  ///< occupied slots only
  double lut_fabric = 0, ff_fabric = 0;      ///< whole reconfigurable fabric

  [[nodiscard]] double lut_of_occupied() const {
    return lut_capacity > 0 ? lut_used / lut_capacity : 0.0;
  }
  [[nodiscard]] double ff_of_occupied() const {
    return ff_capacity > 0 ? ff_used / ff_capacity : 0.0;
  }
  [[nodiscard]] double lut_of_fabric() const {
    return lut_fabric > 0 ? lut_used / lut_fabric : 0.0;
  }
  [[nodiscard]] double ff_of_fabric() const {
    return ff_fabric > 0 ? ff_used / ff_fabric : 0.0;
  }
};

struct CompletedApp {
  int app_id;
  int spec_index;
  std::string name;
  sim::SimTime arrival;
  sim::SimTime completed;
  /// Serving plane: owning tenant (-1 = closed workload). Survives
  /// migration and recovery with the app.
  int tenant = -1;
  /// Per-phase attribution; all zero unless phase accounting was enabled,
  /// in which case the entries sum exactly to completed - arrival.
  std::array<sim::SimDuration, kAppPhaseCount> phase_ns{};
  [[nodiscard]] double response_ms() const {
    return sim::to_ms(completed - arrival);
  }
};

class BoardRuntime {
 public:
  BoardRuntime(fpga::Board& board, SchedulerPolicy& policy);

  BoardRuntime(const BoardRuntime&) = delete;
  BoardRuntime& operator=(const BoardRuntime&) = delete;

  // ---------------------------------------------------------------- admission
  /// Admits an application instance; returns its runtime id. Units default
  /// to the Little (per-task) decomposition; policies re-unitise via
  /// set_units before the first PR. A non-zero `item_interval` makes the
  /// batch *streaming*: item i only becomes available at
  /// arrival + i * item_interval (dynamic batch processing, §III-A).
  int submit(const apps::AppSpec& spec, int spec_index, int batch,
             sim::SimTime arrival, sim::SimDuration item_interval = 0,
             int tenant = -1);

  /// Admits an application that already made progress elsewhere (live
  /// migration target side): `items_done` carries per-task completed item
  /// counts (monotone non-increasing along the pipeline). The app arrives
  /// marked as started, with its per-task Little units pre-advanced —
  /// fully-done tasks are Finished — so execution resumes exactly where the
  /// origin board paused it.
  int submit_with_progress(const apps::AppSpec& spec, int spec_index,
                           int batch, sim::SimTime arrival,
                           const std::vector<int>& items_done,
                           sim::SimDuration item_interval = 0);

  /// Stops accepting new apps (migration origin drain).
  void stop_admission() noexcept { admission_open_ = false; }
  [[nodiscard]] bool admission_open() const noexcept {
    return admission_open_;
  }

  // ------------------------------------------------------- policy commands
  /// Replaces an app's unit decomposition (bundling / rebinding). Only legal
  /// before the app has started.
  void set_units(int app_id, std::vector<apps::UnitSpec> units);

  /// Requests partial reconfiguration of a pending unit into an idle slot of
  /// the matching kind. Asynchronous: the PR server (or the scheduler core
  /// in single-core mode) performs SD fetch + PCAP load.
  void request_pr(int app_id, int unit_index, int slot_id);

  /// Full-fabric reconfiguration for the exclusive baseline: loads the
  /// app's monolithic bitstream, after which every unit runs concurrently
  /// without slot constraints. Requires the fabric to be otherwise empty.
  void request_full_reconfig(int app_id);

  /// Preempts a unit that is configured but not mid-item: releases its slot
  /// and returns it to Pending. Completed items are preserved (buffers stay
  /// in DDR).
  void preempt_unit(int app_id, int unit_index);

  // ---------------------------------------------------------------- queries
  [[nodiscard]] fpga::Board& board() noexcept { return board_; }
  [[nodiscard]] const fpga::Board& board() const noexcept { return board_; }
  [[nodiscard]] sim::SimTime sim_now() const noexcept {
    return board_.sim().now();
  }
  [[nodiscard]] sim::Simulator& sim() noexcept { return board_.sim(); }
  [[nodiscard]] const std::vector<AppRun>& apps() const noexcept {
    return apps_;
  }
  [[nodiscard]] AppRun& app(int id) {
    return apps_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const AppRun& app(int id) const {
    return apps_.at(static_cast<std::size_t>(id));
  }

  [[nodiscard]] std::vector<int> idle_slots(fpga::SlotKind kind) const;
  [[nodiscard]] int count_idle_slots(fpga::SlotKind kind) const;

  /// Placement hint: among idle `candidates`, returns the one whose
  /// placement-specific bitstream for (app, unit) is already staged in DDR
  /// (skipping the SD fetch), or the first candidate when none is. All
  /// policies route slot choices through this — the PR server knows its
  /// cache either way.
  [[nodiscard]] int choose_slot(int app_id, int unit_index,
                                const std::vector<int>& candidates) const;

  /// True when the next item of `unit` has its upstream dependency
  /// satisfied (unit 0 is always ready until the batch is exhausted).
  [[nodiscard]] bool item_ready(const AppRun& app, int unit_index) const;

  /// Apps not yet complete.
  [[nodiscard]] int active_apps() const noexcept;
  [[nodiscard]] bool drained() const noexcept { return active_apps() == 0; }

  [[nodiscard]] const RuntimeCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const UtilizationIntegral& utilization() const noexcept {
    return util_;
  }
  [[nodiscard]] const std::vector<CompletedApp>& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] sim::TraceRecorder& trace() noexcept { return trace_; }

  /// Blocked-event count since the last D_switch sampling window reset.
  [[nodiscard]] std::int64_t window_blocked() const noexcept {
    return window_blocked_;
  }
  void reset_window() noexcept { window_blocked_ = 0; }

  /// Hook invoked on every app completion (cluster layer: D_switch
  /// recalculation cadence).
  void set_on_app_complete(std::function<void(const CompletedApp&)> fn) {
    on_app_complete_ = std::move(fn);
  }

  // -------------------------------------------------------- phase accounting
  /// Enables response-time phase decomposition. Call before the first
  /// submit and before bind_metrics — the vs_app_phase_ms instruments are
  /// registered only when accounting is on, so phase-free exports stay
  /// byte-identical. Off (the default), the per-event cost is one branch.
  void enable_phase_accounting() noexcept { phase_acct_ = true; }
  [[nodiscard]] bool phase_accounting() const noexcept { return phase_acct_; }

  // ---------------------------------------------------------- observability
  /// Binds this board's channel of a ClusterTraceHub. Journal records and
  /// causal flow events are emitted only while the hub has the matching
  /// stream enabled; unbound (the default) costs one branch per site.
  void bind_observability(obs::TraceChannel* channel) noexcept {
    obs_ = channel;
  }

  // -------------------------------------------------------------- telemetry
  /// Binds the whole board stack — runtime counters/histograms, per-state
  /// slot occupancy gauges, both cores, the PCAP, and the policy — to
  /// `registry`, labelled by board name. Idempotent: rebinding (cluster
  /// epochs reusing a board) resolves the same cells, so counts accumulate.
  /// Without this call every telemetry update is a no-op.
  void bind_metrics(obs::MetricsRegistry& registry);

  // ------------------------------------------------------------- migration
  /// Removes and returns apps that have not started executing (the paper's
  /// "applications and tasks in the ready list"); they migrate to another
  /// board. Their buffers' byte volume is returned for transfer costing.
  struct MigratedApp {
    int spec_index;
    int batch;
    int tenant = -1;  ///< owning tenant, carried to the destination board
    sim::SimTime arrival;
    sim::SimDuration item_interval;  ///< streaming source period (0 = staged)
    std::int64_t state_bytes;
    /// Per-task completed item counts; empty when the app never started.
    std::vector<int> progress;
    /// The progress vector is a DDR checkpoint restore, not live state:
    /// the app re-runs the window since `ckpt_time` (≤ one interval).
    bool from_checkpoint = false;
    sim::SimTime ckpt_time = -1;
    /// Phase account carried to the destination board (all zero when the
    /// origin had no phase accounting).
    std::array<sim::SimDuration, kAppPhaseCount> phase_ns{};
    /// When the origin extracted the app (-1 = fabricated descriptor, e.g.
    /// a held arrival): submit_migrated charges [extracted, now) to the
    /// transit phase so the account still sums to response time.
    sim::SimTime extracted = -1;
    /// Checkpoint chain flow id, so a restore can close the base→delta
    /// causal arrow on the destination board (0 = no chain).
    std::uint64_t ckpt_flow = 0;
  };
  [[nodiscard]] std::vector<MigratedApp> extract_unstarted();

  /// Re-admits a migrated / evacuated / held app, restoring its carried
  /// phase account and charging its time off-board to `transit`
  /// (kMigration for D_switch and pre-copy placements, kRecovery for crash
  /// evacuation, shedding survivors, and reboot readmissions). Subsumes the
  /// submit / submit_with_progress branch every resubmission site used to
  /// spell out; with phase accounting off it behaves identically.
  int submit_migrated(const apps::AppSpec& spec, const MigratedApp& m,
                      AppPhase transit);

  // ---------------------------------------------------------- checkpointing
  /// Enables periodic DDR snapshots (see runtime/checkpoint.h). Call before
  /// the first submit and before bind_metrics — the checkpoint instruments
  /// are registered only when the policy is active, so checkpoint-free
  /// exports stay byte-identical.
  void enable_checkpoints(const CheckpointPolicy& policy);
  [[nodiscard]] const CheckpointPolicy& checkpoint_policy() const noexcept {
    return ckpt_;
  }
  [[nodiscard]] const CheckpointStats& checkpoint_stats() const noexcept {
    return ckpt_stats_;
  }

  // --------------------------------------------------------- dirty tracking
  /// Enables per-app DDR dirty-region maps at `granularity` bytes. Call
  /// before the first submit. Idempotent; when both delta checkpointing
  /// and pre-copy migration ask for tracking, the finer granularity wins.
  /// enable_checkpoints() with an active delta policy calls this itself.
  void enable_dirty_tracking(std::int64_t granularity);
  [[nodiscard]] bool dirty_tracking() const noexcept {
    return dirty_granularity_ > 0;
  }

  // -------------------------------------------------------------- pre-copy
  /// Byte volume a stop-and-copy extraction would ship *right now*:
  /// descriptors of unstarted apps plus the DDR images of started per-task
  /// apps. Unlike extract_migratable() this does not require apps to be
  /// paused — an upper bound on what a pre-copy would ever stream.
  [[nodiscard]] std::int64_t migratable_state_bytes() const;

  /// Starts a pre-copy stream: clears every app's streamed flag so the
  /// next take_migration_stream_bytes() ships full footprints again.
  void begin_migration_stream();

  /// One pre-copy round's payload. Only apps that are migratable *right
  /// now* (unstarted, or paused between tasks on the per-task
  /// decomposition) are streamed: a first-time app ships its full
  /// migratable footprint, an already-streamed app only the migration-
  /// plane dirt it accumulated since (writes while it was running).
  /// Running and bundled apps are left untouched — their dirt keeps
  /// accumulating until they pause (or drain on this board).
  [[nodiscard]] std::int64_t take_migration_stream_bytes();

  // ------------------------------------------------------------ fault plane
  /// Board crash result, partitioned three ways: `evacuable` apps were
  /// between items with DDR-resident per-task progress (the recovery policy
  /// live-migrates them, unchanged from a D_switch migration);
  /// `checkpointed` apps — bundled apps and apps caught without committed
  /// per-task progress — carry the expanded progress of their last DDR
  /// checkpoint and restore through the same submit_with_progress packing;
  /// `killed` apps had neither and can only restart from scratch (empty
  /// progress). Without an active CheckpointPolicy, `checkpointed` is
  /// always empty and the partition matches the two-way PR 4 behaviour.
  struct CrashReport {
    std::vector<MigratedApp> evacuable;
    std::vector<MigratedApp> checkpointed;
    std::vector<MigratedApp> killed;
  };

  /// Kills this board: every active app is extracted (paused apps as
  /// evacuable, checkpointed apps to their last snapshot, the rest as
  /// killed descriptors), all slots are scrubbed, the cores and PCAP
  /// reset, and the runtime freezes — stale in-flight events (DMA
  /// completions, item finishes, OCM posts, checkpoint ticks) become
  /// no-ops. Terminal: a rebooted board gets a fresh BoardRuntime epoch.
  [[nodiscard]] CrashReport crash();
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// SEU/ECC upset in `slot_id`: the configured task-logic instance dies.
  /// A unit mid-PR or mid-item is poisoned (the load/item completes with
  /// its result discarded); an idle-configured unit is evicted on the spot.
  /// Either way the unit returns to Pending with its completed items
  /// preserved in DDR, and the slot must be reconfigured before reuse.
  void inject_slot_seu(int slot_id);

  /// Live-migration extraction: unstarted apps plus *paused* started apps —
  /// apps whose units are all between executions (none placed in a slot,
  /// none mid-item) and which still run per-task Little units. Those carry
  /// their per-task progress and intermediate buffers ("tasks in the ready
  /// list, along with their buffers", §III-D). Apps with units currently
  /// configured or executing stay and drain on the origin.
  [[nodiscard]] std::vector<MigratedApp> extract_migratable();

  // -------------------------------------------------------------- scheduling
  /// Requests a scheduling pass. Passes are collapsed: at most one queued at
  /// a time. The pass runs as an op on the scheduler core, then invokes the
  /// policy, then performs ready-item launches.
  void kick();

 private:
  /// Phase an app is in *right now* given its unit states.
  [[nodiscard]] AppPhase classify(const AppRun& a) const noexcept;
  /// Closes the open phase interval at sim now and reclassifies. Call after
  /// every unit-state change; no-op unless phase accounting is on.
  void touch_phase(AppRun& a);
  /// Advances a fresh app's units to `items_done` (migration restore).
  void apply_progress(AppRun& a, const std::vector<int>& items_done);
  void run_pass();
  void try_launches();
  void launch_item(AppRun& app, UnitRun& unit);
  void finish_item(int app_id, int unit_index);
  void finish_unit(UnitRun& unit);
  void check_app_complete(AppRun& app);
  void touch_utilization();
  /// Recounts the per-state slot occupancy gauges; no-op until bound.
  void refresh_slot_gauges();
  /// Schedules the next checkpoint tick (no-op when the policy is inactive,
  /// a tick is already pending, or the board crashed).
  void arm_checkpoint();
  /// Snapshots every started app with committed progress, then charges the
  /// total snapshot DMA on the scheduler core. In delta mode only regions
  /// dirtied since the last snapshot are copied (base-plus-delta chain
  /// with compaction every CheckpointPolicy::compact_every deltas).
  void checkpoint_pass();
  /// (Re)initialises an app's dirty map for its current unit layout, all
  /// regions dirty. No-op unless dirty tracking is enabled.
  void init_dirty(AppRun& a);
  /// Marks the DDR writes of one committed item: its staging header and
  /// its output in the next stage's input-buffer slot.
  void mark_item_write(AppRun& a, int unit_index, int item);
  /// Total DDR image size of an app under the current unit layout.
  [[nodiscard]] std::int64_t state_image_bytes(const AppRun& a) const;

  fpga::Board& board_;
  SchedulerPolicy& policy_;
  bool dual_core_;
  std::vector<AppRun> apps_;
  RuntimeCounters counters_;
  UtilizationIntegral util_;
  std::vector<CompletedApp> completed_;
  sim::TraceRecorder trace_;
  std::function<void(const CompletedApp&)> on_app_complete_;
  bool pass_queued_ = false;
  bool admission_open_ = true;
  bool crashed_ = false;
  CheckpointPolicy ckpt_;
  CheckpointStats ckpt_stats_;
  bool ckpt_armed_ = false;
  bool phase_acct_ = false;
  obs::TraceChannel* obs_ = nullptr;
  std::int64_t dirty_granularity_ = 0;  ///< 0 = no dirty tracking
  int full_fabric_app_ = -1;  ///< baseline: app owning the whole fabric
  std::int64_t window_blocked_ = 0;
  sim::SimTime last_util_touch_ = 0;

  // Telemetry handles (null until bind_metrics; updates are then no-ops).
  bool metrics_bound_ = false;
  obs::CounterHandle m_pr_requests_;     ///< vs_runtime_pr_requests_total
  obs::CounterHandle m_pr_blocked_;      ///< vs_runtime_pr_blocked_total
  obs::CounterHandle m_launch_blocked_;  ///< vs_runtime_launch_blocked_total
  obs::CounterHandle m_items_;           ///< vs_runtime_items_total
  obs::CounterHandle m_apps_completed_;  ///< vs_runtime_apps_completed_total
  obs::CounterHandle m_preemptions_;     ///< vs_runtime_preemptions_total
  obs::CounterHandle m_passes_;          ///< vs_runtime_passes_total
  obs::HistogramHandle m_response_ms_;   ///< vs_app_response_ms
  obs::HistogramHandle m_item_ms_;       ///< vs_runtime_item_ms
  /// vs_app_phase_ms{phase=...}, indexed by AppPhase; registered only when
  /// phase accounting is enabled.
  std::array<obs::HistogramHandle, kAppPhaseCount> m_phase_ms_{};
  // Checkpoint instruments (registered only when ckpt_.active(); the
  // delta instruments additionally require ckpt_.delta_active()).
  obs::CounterHandle m_ckpt_snapshots_;  ///< vs_ckpt_snapshots_total
  obs::CounterHandle m_ckpt_bytes_;      ///< vs_ckpt_bytes_total
  obs::CounterHandle m_ckpt_skipped_clean_;  ///< vs_ckpt_skipped_total{clean}
  obs::CounterHandle m_ckpt_skipped_empty_;  ///< vs_ckpt_skipped_total{empty}
  obs::CounterHandle m_ckpt_dirty_bytes_;    ///< vs_ckpt_dirty_bytes_total
  obs::CounterHandle m_ckpt_dirty_regions_;  ///< vs_ckpt_dirty_regions_total
  obs::CounterHandle m_ckpt_deltas_;         ///< vs_ckpt_deltas_total
  obs::CounterHandle m_ckpt_compactions_;    ///< vs_ckpt_compactions_total
  /// vs_slot_state_count{state=...}, indexed by fpga::SlotState.
  std::array<obs::GaugeHandle, 4> m_slot_state_{};
};

}  // namespace vs::runtime
