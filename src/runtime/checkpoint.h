// Periodic DDR checkpointing of slot state.
//
// PR 4's crash model is a PL wedge: DDR survives, the fabric does not.
// Live migration (§III-D) can therefore evacuate any app whose progress is
// DDR-resident — but bundled apps bound to Big slots carry no portable
// progress, and a per-task app caught before its first committed item has
// nothing to evacuate either. A CheckpointPolicy closes that gap: every
// `interval` the runtime snapshots the expanded per-task progress of each
// started app into DDR (charging the snapshot DMA on the scheduler core so
// the cost shows up in response times), and BoardRuntime::crash() restores
// apps that are not live-evacuable to their last snapshot instead of
// killing them. The re-run window per app is bounded by one interval.
//
// Disabled by default: a default-constructed policy schedules nothing and
// leaves every code path untouched, so checkpoint-free runs stay
// byte-identical.
#pragma once

#include "sim/time.h"

namespace vs::runtime {

struct CheckpointPolicy {
  bool enabled = false;
  /// Snapshot cadence. The tick chain arms on first admission and re-arms
  /// while the board has active apps, so drained boards schedule nothing.
  sim::SimDuration interval = sim::ms(25.0);

  [[nodiscard]] bool active() const noexcept {
    return enabled && interval > 0;
  }
};

}  // namespace vs::runtime
