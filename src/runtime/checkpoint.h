// Periodic DDR checkpointing of slot state.
//
// PR 4's crash model is a PL wedge: DDR survives, the fabric does not.
// Live migration (§III-D) can therefore evacuate any app whose progress is
// DDR-resident — but bundled apps bound to Big slots carry no portable
// progress, and a per-task app caught before its first committed item has
// nothing to evacuate either. A CheckpointPolicy closes that gap: every
// `interval` the runtime snapshots the expanded per-task progress of each
// started app into DDR (charging the snapshot DMA on the scheduler core so
// the cost shows up in response times), and BoardRuntime::crash() restores
// apps that are not live-evacuable to their last snapshot instead of
// killing them. The re-run window per app is bounded by one interval.
//
// Delta mode (PR 7) stops re-copying the whole image every interval: a
// DirtyMap (runtime/dirty_map.h) records which fixed-granularity regions
// each committed item wrote, and the pass copies only those — a
// base-plus-delta chain, compacted back into a full base every
// `compact_every` deltas so the restore chain (shipped on crash
// evacuation) stays bounded at one base plus a handful of deltas.
//
// Disabled by default: a default-constructed policy schedules nothing and
// leaves every code path untouched, so checkpoint-free runs stay
// byte-identical.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace vs::runtime {

/// Fixed cost of a delta snapshot record: region list + expanded progress
/// vector + chain link back to the previous snapshot.
constexpr std::int64_t kCkptDeltaHeaderBytes = 256;

struct CheckpointPolicy {
  bool enabled = false;
  /// Snapshot cadence. The tick chain arms on first admission and re-arms
  /// while the board has active apps, so drained boards schedule nothing.
  sim::SimDuration interval = sim::ms(25.0);
  /// Dirty-delta mode: passes copy only regions written since the last
  /// snapshot (charged via BoardParams::ckpt_delta_time) instead of the
  /// whole image. Off by default — whole-state mode stays byte-identical
  /// to the PR 5 behaviour.
  bool delta = false;
  /// Region size of the per-app DDR dirty map. Shared with the pre-copy
  /// migration loop (cluster/migration.h), which tracks its own plane of
  /// the same map.
  std::int64_t granularity = 64 * 1024;
  /// After this many chained deltas the next pass rewrites a full base
  /// snapshot (compaction), bounding restore cost.
  int compact_every = 8;

  [[nodiscard]] bool active() const noexcept {
    return enabled && interval > 0;
  }
  [[nodiscard]] bool delta_active() const noexcept {
    return active() && delta && granularity > 0;
  }
};

/// Per-board checkpoint pass accounting. `skipped_clean` and
/// `skipped_empty` split what used to be one silent skip: a *clean* skip
/// refreshes `ckpt_time` (the existing snapshot still reflects "now"),
/// while an *empty* skip means the app has no committed progress yet and
/// there is nothing to refresh — conflating the two made
/// `vs_ckpt_skipped_total` unattributable.
struct CheckpointStats {
  std::int64_t bases = 0;          ///< full base snapshots committed
  std::int64_t deltas = 0;         ///< dirty-delta snapshots committed
  std::int64_t compactions = 0;    ///< bases that closed a delta chain
  std::int64_t base_bytes = 0;     ///< bytes copied by base snapshots
  std::int64_t delta_bytes = 0;    ///< bytes copied by deltas (incl. headers)
  std::int64_t dirty_regions = 0;  ///< regions shipped across all deltas
  std::int64_t skipped_clean = 0;  ///< pass skips: snapshot exists, no change
  std::int64_t skipped_empty = 0;  ///< pass skips: nothing committed yet

  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return base_bytes + delta_bytes;
  }
  CheckpointStats& operator+=(const CheckpointStats& o) noexcept {
    bases += o.bases;
    deltas += o.deltas;
    compactions += o.compactions;
    base_bytes += o.base_bytes;
    delta_bytes += o.delta_bytes;
    dirty_regions += o.dirty_regions;
    skipped_clean += o.skipped_clean;
    skipped_empty += o.skipped_empty;
    return *this;
  }
};

}  // namespace vs::runtime
