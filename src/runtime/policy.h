// Scheduler policy interface.
//
// A policy is the decision logic the paper compares: Baseline, FCFS,
// Round-Robin, Nimblock, VersaSlot Only.Little and VersaSlot Big.Little.
// The BoardRuntime owns all mechanism (PCAP, cores, slots, pipelines,
// accounting); a policy only decides *which unit goes into which slot when*
// and whether to preempt. Policy code runs inside scheduler passes, which
// execute as operations on the board's scheduler core — so a policy's
// decisions are automatically delayed when that core is suspended by a PR
// (the single-core blocking problem), unless the policy declares itself
// dual-core.
#pragma once

#include <string>

namespace vs::obs {
class MetricsRegistry;
}  // namespace vs::obs

namespace vs::runtime {

class BoardRuntime;

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when PR loads are issued from the dedicated PR-server core
  /// (core 1) instead of the scheduler core — the paper's dual-core design.
  [[nodiscard]] virtual bool dual_core() const { return false; }

  /// Called once when the runtime is constructed.
  virtual void attach(BoardRuntime&) {}

  /// Registers the policy's own instruments (decision counters) when the
  /// run carries telemetry, labelled by the owning board so same-policy
  /// epochs on different boards resolve distinct cells (required for the
  /// sharded kernel, where boards update metrics from different workers).
  /// Policies without instruments ignore it.
  virtual void bind_metrics(obs::MetricsRegistry&,
                            const std::string& /*board*/) {}

  /// Called (outside any core op) when an app is admitted, so the policy
  /// can register it in its own queues. A pass is always kicked afterwards.
  virtual void on_app_submitted(BoardRuntime&, int app_id) = 0;

  /// One scheduling pass: inspect runtime state, issue PR/preempt commands.
  /// Ready-item launches are performed by the runtime after this returns.
  virtual void on_pass(BoardRuntime&) = 0;
};

}  // namespace vs::runtime
