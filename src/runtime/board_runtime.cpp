#include "runtime/board_runtime.h"

#include <algorithm>
#include <utility>

#include "obs/trace_hub.h"
#include "util/log.h"

namespace vs::runtime {

const char* to_string(AppPhase p) noexcept {
  switch (p) {
    case AppPhase::kQueueWait: return "queue_wait";
    case AppPhase::kReconfig: return "reconfig";
    case AppPhase::kExec: return "exec";
    case AppPhase::kPaused: return "paused";
    case AppPhase::kMigration: return "migration";
    case AppPhase::kRecovery: return "recovery";
  }
  return "unknown";
}

fpga::BitstreamKey unit_bitstream_key(int spec_index,
                                      const apps::UnitSpec& unit,
                                      int slot_id) noexcept {
  return (static_cast<fpga::BitstreamKey>(static_cast<std::uint32_t>(
              spec_index))
          << 32) |
         (static_cast<fpga::BitstreamKey>(
              static_cast<std::uint8_t>(unit.first_task))
          << 24) |
         (static_cast<fpga::BitstreamKey>(
              static_cast<std::uint8_t>(unit.last_task))
          << 16) |
         (static_cast<fpga::BitstreamKey>(
              static_cast<std::uint8_t>(slot_id))
          << 8) |
         static_cast<fpga::BitstreamKey>(static_cast<std::uint8_t>(unit.mode));
}

BoardRuntime::BoardRuntime(fpga::Board& board, SchedulerPolicy& policy)
    : board_(board), policy_(policy), dual_core_(policy.dual_core()) {
  policy_.attach(*this);
}

void BoardRuntime::bind_metrics(obs::MetricsRegistry& registry) {
  obs::Labels labels{{"board", board_.name()}};
  m_pr_requests_ = obs::CounterHandle{
      &registry.counter("vs_runtime_pr_requests_total", labels)};
  m_pr_blocked_ = obs::CounterHandle{
      &registry.counter("vs_runtime_pr_blocked_total", labels)};
  m_launch_blocked_ = obs::CounterHandle{
      &registry.counter("vs_runtime_launch_blocked_total", labels)};
  m_items_ =
      obs::CounterHandle{&registry.counter("vs_runtime_items_total", labels)};
  m_apps_completed_ = obs::CounterHandle{
      &registry.counter("vs_runtime_apps_completed_total", labels)};
  m_preemptions_ = obs::CounterHandle{
      &registry.counter("vs_runtime_preemptions_total", labels)};
  m_passes_ = obs::CounterHandle{
      &registry.counter("vs_runtime_passes_total", labels)};
  m_response_ms_ = obs::HistogramHandle{&registry.histogram(
      "vs_app_response_ms", obs::default_ms_bounds(), labels)};
  m_item_ms_ = obs::HistogramHandle{&registry.histogram(
      "vs_runtime_item_ms", obs::default_ms_bounds(), labels)};
  if (phase_acct_) {
    // Registered only when phase accounting is on, so phase-free exports
    // stay byte-identical.
    for (std::size_t p = 0; p < kAppPhaseCount; ++p) {
      obs::Labels phase_labels = labels;
      phase_labels.emplace_back("phase",
                                to_string(static_cast<AppPhase>(p)));
      m_phase_ms_[p] = obs::HistogramHandle{
          &registry.histogram("vs_app_phase_ms", obs::default_ms_bounds(),
                              std::move(phase_labels))};
    }
  }
  if (ckpt_.active()) {
    // Registered only when checkpointing is on, so checkpoint-free exports
    // stay byte-identical.
    m_ckpt_snapshots_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_snapshots_total", labels)};
    m_ckpt_bytes_ =
        obs::CounterHandle{&registry.counter("vs_ckpt_bytes_total", labels)};
    obs::Labels clean = labels, empty = labels;
    clean.emplace_back("reason", "clean");
    empty.emplace_back("reason", "empty");
    m_ckpt_skipped_clean_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_skipped_total", std::move(clean))};
    m_ckpt_skipped_empty_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_skipped_total", std::move(empty))};
  }
  if (ckpt_.delta_active()) {
    m_ckpt_dirty_bytes_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_dirty_bytes_total", labels)};
    m_ckpt_dirty_regions_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_dirty_regions_total", labels)};
    m_ckpt_deltas_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_deltas_total", labels)};
    m_ckpt_compactions_ = obs::CounterHandle{
        &registry.counter("vs_ckpt_compactions_total", labels)};
  }
  for (std::size_t s = 0; s < m_slot_state_.size(); ++s) {
    obs::Labels state_labels = labels;
    state_labels.emplace_back(
        "state", fpga::to_string(static_cast<fpga::SlotState>(s)));
    m_slot_state_[s] = obs::GaugeHandle{
        &registry.gauge("vs_slot_state_count", std::move(state_labels))};
  }
  board_.scheduler_core().bind_metrics(registry);
  board_.pr_core().bind_metrics(registry);
  board_.pcap().bind_metrics(registry, board_.name());
  policy_.bind_metrics(registry, board_.name());
  metrics_bound_ = true;
  refresh_slot_gauges();
}

AppPhase BoardRuntime::classify(const AppRun& a) const noexcept {
  // Precedence: an app with any item executing is making progress (kExec)
  // even while another unit reconfigures; reconfig next; an app that never
  // issued a PR is still queued; otherwise it is configured-or-preempted
  // and waiting between items.
  bool reconfiguring = false;
  for (const UnitRun& u : a.units) {
    if (u.item_in_flight) return AppPhase::kExec;
    reconfiguring |= u.state == UnitState::kReconfiguring;
  }
  if (reconfiguring) return AppPhase::kReconfig;
  if (!a.started) return AppPhase::kQueueWait;
  return AppPhase::kPaused;
}

void BoardRuntime::touch_phase(AppRun& a) {
  if (!phase_acct_ || a.done()) return;
  sim::SimTime now = sim().now();
  a.phase_ns[static_cast<std::size_t>(a.phase)] += now - a.phase_since;
  a.phase_since = now;
  a.phase = classify(a);
}

void BoardRuntime::refresh_slot_gauges() {
  if (!metrics_bound_) return;
  std::array<int, 4> counts{};
  for (const fpga::Slot& s : board_.slots()) {
    ++counts[static_cast<std::size_t>(s.state())];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    m_slot_state_[s].set(counts[s]);
  }
}

int BoardRuntime::submit(const apps::AppSpec& spec, int spec_index, int batch,
                         sim::SimTime arrival, sim::SimDuration item_interval,
                         int tenant) {
  assert(admission_open_ && "board is draining; submit to the active board");
  assert(batch >= 1);
  // Cross-shard entry point: everything this admission schedules (and, via
  // tag inheritance, the whole causal chain) carries this board's tag, so
  // the serial and sharded kernels assign identical canonical event keys.
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  AppRun app;
  app.id = static_cast<int>(apps_.size());
  app.spec = &spec;
  app.spec_index = spec_index;
  app.tenant = tenant;
  app.arrival = arrival;
  app.admitted = sim().now();
  app.batch = batch;
  app.item_interval = item_interval;
  auto units = apps::make_little_units(spec);
  app.units.reserve(units.size());
  for (auto& u : units) app.units.push_back(UnitRun{std::move(u)});
  // The phase chain starts at *arrival*, not admission: any gap between the
  // two (a resubmission, a held arrival) is re-attributed by
  // submit_migrated, and for fresh arrivals the two coincide, so phases
  // always sum to completed - arrival.
  app.phase = AppPhase::kQueueWait;
  app.phase_since = app.arrival;
  apps_.push_back(std::move(app));
  int id = apps_.back().id;
  init_dirty(apps_.back());
  if (obs_ && obs_->journal_on()) {
    obs_->journal(sim().now(), obs::JournalEvent::kAdmit, board_.name(), id,
                  spec.name, 0, "batch " + std::to_string(batch));
  }
  policy_.on_app_submitted(*this, id);
  arm_checkpoint();
  kick();
  return id;
}

void BoardRuntime::enable_checkpoints(const CheckpointPolicy& policy) {
  assert(apps_.empty() &&
         "enable checkpointing before the first admission");
  ckpt_ = policy;
  if (ckpt_.delta_active()) enable_dirty_tracking(ckpt_.granularity);
}

void BoardRuntime::enable_dirty_tracking(std::int64_t granularity) {
  assert(apps_.empty() &&
         "enable dirty tracking before the first admission");
  if (granularity <= 0) return;
  dirty_granularity_ = dirty_granularity_ > 0
                           ? std::min(dirty_granularity_, granularity)
                           : granularity;
}

std::int64_t BoardRuntime::state_image_bytes(const AppRun& a) const {
  // Descriptor + per-item staging headers + one input-buffer area per
  // pipeline stage (batch slots of item_bytes_in each). This is the layout
  // the snapshot/migration byte formulas walk: item k's header lives at
  // 4096 + k*16384, stage u's input slot k at area(u) + k*item_bytes_in.
  std::int64_t bytes = 4096 + static_cast<std::int64_t>(a.batch) * 16384;
  for (const UnitRun& u : a.units) {
    bytes += static_cast<std::int64_t>(a.batch) * u.spec.item_bytes_in;
  }
  return bytes;
}

void BoardRuntime::init_dirty(AppRun& a) {
  if (dirty_granularity_ <= 0) return;
  a.dirty.reset(state_image_bytes(a), dirty_granularity_);
  // A fresh image (admission, re-unitise, restored progress) is all-new to
  // both consumers.
  a.dirty.mark_all();
}

void BoardRuntime::mark_item_write(AppRun& a, int unit_index, int item) {
  if (dirty_granularity_ <= 0) return;
  // The committed item rewrites its staging header ...
  a.dirty.mark(4096 + static_cast<std::int64_t>(item) * 16384, 16384);
  // ... and lands its output in the next stage's input-buffer slot. The
  // final stage's output DMAs back to the host instead, leaving DDR clean.
  std::size_t next = static_cast<std::size_t>(unit_index) + 1;
  if (next >= a.units.size()) return;
  std::int64_t off = 4096 + static_cast<std::int64_t>(a.batch) * 16384;
  for (std::size_t j = 0; j < next; ++j) {
    off += static_cast<std::int64_t>(a.batch) * a.units[j].spec.item_bytes_in;
  }
  off += static_cast<std::int64_t>(item) * a.units[next].spec.item_bytes_in;
  a.dirty.mark(off, a.units[next].spec.item_bytes_in);
}

namespace {

/// The byte volume migrating this app ships right now: its descriptor and
/// staging headers, plus — once started — the inter-stage buffers queued
/// between pipeline units (the same formula migrated_with_progress and
/// base snapshots use).
std::int64_t migratable_app_bytes(const AppRun& a) {
  std::int64_t bytes = 4096 + static_cast<std::int64_t>(a.batch) * 16384;
  if (!a.started) return bytes;
  int upstream_done = a.batch;
  for (const UnitRun& u : a.units) {
    bytes += static_cast<std::int64_t>(upstream_done - u.items_done) *
             u.spec.item_bytes_in;
    upstream_done = u.items_done;
  }
  return bytes;
}

/// On the per-task decomposition (bundled apps drain on the Big slots they
/// are bound to, §III-C).
bool per_task_units(const AppRun& a) {
  return a.units.size() == static_cast<std::size_t>(a.spec->task_count());
}

/// Migratable right now: unstarted, or paused between tasks — the same
/// test extract_migratable applies before tombstoning.
bool migratable_now(const AppRun& a) {
  if (!a.started) return true;
  if (!per_task_units(a)) return false;
  for (const UnitRun& u : a.units) {
    if ((u.state != UnitState::kPending && u.state != UnitState::kFinished) ||
        u.item_in_flight) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::int64_t BoardRuntime::migratable_state_bytes() const {
  std::int64_t bytes = 0;
  for (const AppRun& a : apps_) {
    if (a.spec == nullptr || a.done()) continue;
    if (a.started && !per_task_units(a)) continue;
    bytes += migratable_app_bytes(a);
  }
  return bytes;
}

void BoardRuntime::begin_migration_stream() {
  for (AppRun& a : apps_) a.precopy_streamed = false;
}

std::int64_t BoardRuntime::take_migration_stream_bytes() {
  if (dirty_granularity_ <= 0) return 0;
  std::int64_t bytes = 0;
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.done()) continue;
    // Running apps keep dirtying their image until they pause — or drain
    // here, in which case their dirt was never anybody's payload. Bundled
    // apps never migrate at all.
    if (!migratable_now(a)) continue;
    if (!a.precopy_streamed) {
      // First time this app is pause-visible during the stream: ship its
      // whole migratable footprint and start tracking dirt from here.
      a.precopy_streamed = true;
      (void)a.dirty.take(DirtyMap::kMigration);
      bytes += migratable_app_bytes(a);
    } else {
      // Already streamed: only what it wrote since (it ran in between).
      bytes += a.dirty.take(DirtyMap::kMigration).bytes;
    }
  }
  return bytes;
}

void BoardRuntime::arm_checkpoint() {
  if (!ckpt_.active() || ckpt_armed_ || crashed_) return;
  ckpt_armed_ = true;
  sim().schedule(ckpt_.interval, [this] {
    ckpt_armed_ = false;
    if (crashed_) return;
    checkpoint_pass();
    // Re-arm only while apps are active: a drained board goes dormant (and
    // never ping-pongs with the telemetry Sampler's idle check); the next
    // submit re-arms the chain.
    if (active_apps() > 0) arm_checkpoint();
  });
}

void BoardRuntime::checkpoint_pass() {
  std::int64_t pass_full_bytes = 0;
  std::int64_t pass_delta_bytes = 0;
  const bool delta_mode = ckpt_.delta_active() && dirty_granularity_ > 0;
  std::vector<int> snap;
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.done() || !a.started) continue;
    // Expand to per-task progress: a bundle's items_done means that many
    // items passed through every task in its range, so each covered task
    // inherits the bundle count. Pipeline item-readiness keeps items_done
    // non-increasing across units, so the expansion stays monotone and
    // restores cleanly through submit_with_progress.
    snap.clear();
    bool any = false;
    for (const UnitRun& u : a.units) {
      for (int t = 0; t < u.spec.task_count(); ++t) {
        snap.push_back(u.items_done);
      }
      any |= u.items_done > 0;
    }
    if (!any) {
      // Started but nothing committed: a snapshot restores nothing and
      // there is no restore point to refresh either — distinct from the
      // clean skip below, where a valid snapshot already covers "now".
      ++ckpt_stats_.skipped_empty;
      m_ckpt_skipped_empty_.add();
      continue;
    }
    if (a.ckpt_time >= 0 && snap == a.ckpt_progress) {
      // Unchanged since the last snapshot: skip the copy but refresh the
      // timestamp — the restore point still reflects "now", keeping the
      // re-run window bounded by one interval.
      a.ckpt_time = sim().now();
      ++ckpt_stats_.skipped_clean;
      m_ckpt_skipped_clean_.add();
      continue;
    }
    // Full-image footprint at this progress: descriptor + per-item staging
    // headers + the inter-stage buffers queued between pipeline units (the
    // same DDR footprint migrated_with_progress ships over the Aurora
    // link). A base snapshot copies exactly this; a crash evacuation ships
    // it too, even mid-chain — the rescuer reads each surviving region
    // once, and the union of base + delta regions is the current image.
    std::int64_t image = 4096 + static_cast<std::int64_t>(a.batch) * 16384;
    int upstream_done = a.batch;
    for (const UnitRun& u : a.units) {
      std::int64_t queued_items = upstream_done - u.items_done;
      image += queued_items * u.spec.item_bytes_in;
      upstream_done = u.items_done;
    }
    std::int64_t bytes;
    bool is_delta = false;
    if (delta_mode && a.ckpt_time >= 0 && a.ckpt_chain < ckpt_.compact_every) {
      is_delta = true;
      // Delta snapshot: copy only the regions written since the last pass,
      // chained onto the current base.
      DirtyMap::Drain d = a.dirty.take(DirtyMap::kCheckpoint);
      bytes = kCkptDeltaHeaderBytes + d.bytes;
      ++a.ckpt_chain;
      pass_delta_bytes += bytes;
      ++ckpt_stats_.deltas;
      ckpt_stats_.delta_bytes += bytes;
      ckpt_stats_.dirty_regions += d.regions;
      m_ckpt_dirty_bytes_.add(d.bytes);
      m_ckpt_dirty_regions_.add(d.regions);
      m_ckpt_deltas_.add();
    } else {
      // Base snapshot: whole-state mode, an app's first snapshot, or a
      // chain that hit compact_every (compaction rewrites a full base so
      // the restore chain stays bounded).
      bytes = image;
      if (delta_mode) {
        if (a.ckpt_time >= 0) {
          ++ckpt_stats_.compactions;
          m_ckpt_compactions_.add();
        }
        // The base covers every outstanding write: start the next delta
        // from a clean checkpoint plane.
        (void)a.dirty.take(DirtyMap::kCheckpoint);
      }
      a.ckpt_chain = 0;
      pass_full_bytes += bytes;
      ++ckpt_stats_.bases;
      ckpt_stats_.base_bytes += bytes;
    }
    a.ckpt_bytes = image;
    a.ckpt_progress = snap;
    a.ckpt_time = sim().now();
    ++counters_.ckpt_snapshots;
    counters_.ckpt_bytes += bytes;
    m_ckpt_snapshots_.add();
    m_ckpt_bytes_.add(bytes);
    if (obs_ && obs_->trace_on()) {
      // Causal chain base → delta* → restore: the first base starts the
      // flow, every later snapshot (delta or compaction) is a step; a
      // crash restore on another board closes it.
      if (a.ckpt_flow == 0) {
        a.ckpt_flow = obs_->new_flow_id();
        obs_->flow(a.ckpt_flow, obs::FlowPhase::kStart, sim().now(),
                   board_.name(), "ckpt",
                   "ckpt " + a.spec->name + "#" + std::to_string(a.id));
      } else {
        obs_->flow(a.ckpt_flow, obs::FlowPhase::kStep, sim().now(),
                   board_.name(), "ckpt", is_delta ? "ckpt delta" : "ckpt base");
      }
    }
    if (obs_ && obs_->journal_on()) {
      obs_->journal(sim().now(), obs::JournalEvent::kCheckpoint,
                    board_.name(), a.id, a.spec->name, a.ckpt_flow,
                    std::string(is_delta ? "delta " : "base ") +
                        std::to_string(bytes) + " B");
    }
  }
  // Charge the DDR-to-DDR copies on the scheduler core: launches and
  // passes queue behind them, so the checkpoint cost is visible in
  // response times. Base and delta copies price differently.
  sim::SimDuration cost = 0;
  if (pass_full_bytes > 0) {
    cost += board_.params().ckpt_snapshot_time(pass_full_bytes);
  }
  if (pass_delta_bytes > 0) {
    cost += board_.params().ckpt_delta_time(pass_delta_bytes);
  }
  if (cost > 0) {
    board_.scheduler_core().submit(cost, [] {}, "ckpt");
  }
}

void BoardRuntime::set_units(int app_id, std::vector<apps::UnitSpec> units) {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  AppRun& a = app(app_id);
  assert(!a.started && "cannot re-unitise an app that has begun execution");
  assert(!units.empty());
  a.units.clear();
  a.units.reserve(units.size());
  for (auto& u : units) a.units.push_back(UnitRun{std::move(u)});
  // Re-unitising reshapes the DDR image: rebuild the dirty map for the new
  // layout (everything is new to both consumers again).
  init_dirty(a);
}

std::vector<int> BoardRuntime::idle_slots(fpga::SlotKind kind) const {
  std::vector<int> out;
  for (const fpga::Slot& s : board_.slots()) {
    if (s.kind() == kind && s.state() == fpga::SlotState::kIdle) {
      out.push_back(s.id());
    }
  }
  return out;
}

int BoardRuntime::count_idle_slots(fpga::SlotKind kind) const {
  int n = 0;
  for (const fpga::Slot& s : board_.slots()) {
    n += (s.kind() == kind && s.state() == fpga::SlotState::kIdle);
  }
  return n;
}

int BoardRuntime::choose_slot(int app_id, int unit_index,
                              const std::vector<int>& candidates) const {
  assert(!candidates.empty());
  const AppRun& a = app(app_id);
  const UnitRun& u = a.units[static_cast<std::size_t>(unit_index)];
  for (int slot_id : candidates) {
    fpga::BitstreamKey key =
        unit_bitstream_key(a.spec_index, u.spec, slot_id);
    if (board_.sdcard().cached(key)) return slot_id;
  }
  return candidates.front();
}

bool BoardRuntime::item_ready(const AppRun& app, int unit_index) const {
  const UnitRun& u = app.units[static_cast<std::size_t>(unit_index)];
  if (u.items_done >= app.batch) return false;
  if (unit_index == 0) {
    // Streaming sources gate the first stage on item availability.
    return u.items_done < app.items_available(sim_now());
  }
  const UnitRun& up = app.units[static_cast<std::size_t>(unit_index - 1)];
  return up.items_done > u.items_done;
}

int BoardRuntime::active_apps() const noexcept {
  int n = 0;
  for (const AppRun& a : apps_) n += (!a.done() && a.spec != nullptr);
  return n;
}

void BoardRuntime::request_pr(int app_id, int unit_index, int slot_id) {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  AppRun& a = app(app_id);
  UnitRun& u = a.units[static_cast<std::size_t>(unit_index)];
  fpga::Slot& slot = board_.slot(slot_id);
  assert(u.state == UnitState::kPending && "unit must be pending to PR");
  assert(slot.state() == fpga::SlotState::kIdle && "slot must be idle");
  assert(slot.kind() == u.spec.slot_kind && "slot kind mismatch");
  assert(slot.capacity().fits(u.spec.impl_usage) &&
         "unit does not fit the slot at implementation");

  touch_utilization();
  fpga::BitstreamKey key = unit_bitstream_key(a.spec_index, u.spec, slot_id);
  slot.begin_reconfig(app_id, key);
  u.state = UnitState::kReconfiguring;
  u.slot = slot_id;
  u.pr_was_blocked = false;
  a.started = true;
  touch_phase(a);
  ++counters_.pr_requests;
  m_pr_requests_.add();
  refresh_slot_gauges();
  if (obs_ && obs_->journal_on()) {
    obs_->journal(sim().now(), obs::JournalEvent::kBind, board_.name(),
                  app_id, a.spec->name, 0,
                  "unit " + std::to_string(unit_index) + " slot " +
                      std::to_string(slot_id));
  }

  const fpga::BoardParams& p = board_.params();
  // The bare-metal PR flow runs entirely on the issuing core: read the
  // partial bitstream from the SD card into DDR (skipped when a previous
  // load of this placement-specific bitstream left it resident), then push
  // it through the PCAP. Both halves hold the core — this is precisely why
  // the single-core designs block launches for the whole duration, and why
  // VersaSlot moves the flow to a dedicated PR-server core.
  // Content key: the same task/bundle logic independent of the target slot
  // (slot byte canonicalised), enabling in-DDR bitstream relocation.
  fpga::BitstreamKey content_key =
      unit_bitstream_key(a.spec_index, u.spec, 0xFF);
  sim::SimDuration duration =
      board_.sdcard().fetch_time(key, content_key, u.spec.bitstream_bytes) +
      p.pcap_load_time(u.spec.bitstream_bytes);
  sim::Core& core = dual_core_ ? board_.pr_core() : board_.scheduler_core();
  // Span labels are built only when tracing is on: benchmark runs must not
  // pay for string formatting (or its allocations) per PR.
  std::string label;
  if (trace_.enabled()) {
    label = a.spec->name + "#" + std::to_string(app_id) + ".u" +
            std::to_string(unit_index);
  }
  sim::SimTime requested = sim().now();

  board_.pcap().request(
      duration, core,
      [this, app_id, unit_index, requested]() {
        if (crashed_) return;
        AppRun& a2 = app(app_id);
        UnitRun& u2 = a2.units[static_cast<std::size_t>(unit_index)];
        touch_utilization();
        board_.slot(u2.slot).finish_reconfig();
        if (u2.seu_poisoned) {
          // An SEU hit the region mid-load: the configured logic is dead on
          // arrival. Release the slot and retry the unit from Pending.
          u2.seu_poisoned = false;
          board_.slot(u2.slot).release();
          u2.state = UnitState::kPending;
          u2.slot = -1;
          touch_phase(a2);
          refresh_slot_gauges();
          board_.ocm().post([this] { kick(); });
          return;
        }
        u2.state = UnitState::kRunning;
        touch_phase(a2);
        refresh_slot_gauges();
        if (trace_.enabled()) {
          trace_.add(requested, sim().now(), board_.slot(u2.slot).name(),
                     a2.spec->name + "#" + std::to_string(app_id) + ".u" +
                         std::to_string(unit_index) + " PR",
                     sim::SpanKind::kReconfig);
        }
        // The PR server notifies the scheduler through the OCM mailbox.
        board_.ocm().post([this] { kick(); });
      },
      std::move(label),
      [this, app_id, unit_index]() {
        UnitRun& blocked_unit =
            app(app_id).units[static_cast<std::size_t>(unit_index)];
        if (blocked_unit.pr_was_blocked) return;
        blocked_unit.pr_was_blocked = true;
        ++counters_.pr_blocked;
        ++window_blocked_;
        m_pr_blocked_.add();
      },
      u.spec.bitstream_bytes);
}

void BoardRuntime::request_full_reconfig(int app_id) {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  AppRun& a = app(app_id);
  assert(full_fabric_app_ == -1 && "fabric already owned");
  for (const fpga::Slot& s : board_.slots()) {
    assert(s.state() == fpga::SlotState::kIdle &&
           "full reconfig requires an empty fabric");
    (void)s;
  }
  touch_utilization();
  full_fabric_app_ = app_id;
  a.started = true;
  ++counters_.pr_requests;
  m_pr_requests_.add();
  for (UnitRun& u : a.units) {
    u.state = UnitState::kReconfiguring;
    u.slot = -2;
  }
  touch_phase(a);
  const fpga::BoardParams& p = board_.params();
  fpga::BitstreamKey key =
      unit_bitstream_key(a.spec_index, a.units.front().spec, 0) |
      (1ULL << 63);
  sim::SimDuration duration = board_.sdcard().fetch_time(
                                  key, p.full_bitstream_bytes) +
                              p.pcap_load_time(p.full_bitstream_bytes) +
                              p.full_reconfig_restart;
  sim::SimTime requested = sim().now();
  board_.pcap().request(
      duration, board_.scheduler_core(),
      [this, app_id, requested]() {
        AppRun& a2 = app(app_id);
        touch_utilization();
        for (UnitRun& u : a2.units) u.state = UnitState::kRunning;
        touch_phase(a2);
        if (trace_.enabled()) {
          trace_.add(requested, sim().now(), "fabric",
                     a2.spec->name + "#" + std::to_string(app_id) + " full",
                     sim::SpanKind::kReconfig);
        }
        kick();
      },
      trace_.enabled()
          ? a.spec->name + "#" + std::to_string(app_id) + ".full"
          : std::string{},
      nullptr, p.full_bitstream_bytes);
}

void BoardRuntime::preempt_unit(int app_id, int unit_index) {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  AppRun& a = app(app_id);
  UnitRun& u = a.units[static_cast<std::size_t>(unit_index)];
  assert(u.state == UnitState::kRunning && !u.item_in_flight &&
         "preemption only at item boundaries");
  assert(u.slot >= 0);
  touch_utilization();
  board_.slot(u.slot).release();
  u.state = UnitState::kPending;
  u.slot = -1;
  touch_phase(a);
  ++counters_.preemptions;
  m_preemptions_.add();
  refresh_slot_gauges();
  if (obs_ && obs_->journal_on()) {
    obs_->journal(sim().now(), obs::JournalEvent::kPreempt, board_.name(),
                  app_id, a.spec->name, 0,
                  "unit " + std::to_string(unit_index));
  }
}

void BoardRuntime::apply_progress(AppRun& a,
                                  const std::vector<int>& items_done) {
  assert(items_done.size() == a.units.size() &&
         "progress vector must cover every task");
  int upstream = a.batch;
  for (std::size_t i = 0; i < items_done.size(); ++i) {
    int done = items_done[i];
    assert(done >= 0 && done <= a.batch && done <= upstream &&
           "progress must be monotone non-increasing along the pipeline");
    upstream = done;
    UnitRun& u = a.units[i];
    u.items_done = done;
    if (done >= a.batch) u.state = UnitState::kFinished;
  }
  // Mark started so policies neither re-unitise nor rebind the app: its
  // per-task progress pins the Little decomposition.
  a.started = true;
}

int BoardRuntime::submit_with_progress(const apps::AppSpec& spec,
                                       int spec_index, int batch,
                                       sim::SimTime arrival,
                                       const std::vector<int>& items_done,
                                       sim::SimDuration item_interval) {
  int id = submit(spec, spec_index, batch, arrival, item_interval);
  AppRun& a = app(id);
  apply_progress(a, items_done);
  touch_phase(a);
  check_app_complete(a);
  kick();
  return id;
}

int BoardRuntime::submit_migrated(const apps::AppSpec& spec,
                                  const MigratedApp& m, AppPhase transit) {
  int id =
      submit(spec, m.spec_index, m.batch, m.arrival, m.item_interval, m.tenant);
  AppRun& a = app(id);
  if (!m.progress.empty()) apply_progress(a, m.progress);
  if (phase_acct_) {
    // Restore the carried account and charge the off-board interval to the
    // transit phase — from extraction when the origin recorded one, from
    // arrival for fabricated descriptors (held arrivals never admitted
    // anywhere). Restored *before* check_app_complete so an app that
    // arrives finished closes against the true account.
    a.phase_ns = m.phase_ns;
    sim::SimTime from = m.extracted >= 0 ? m.extracted : a.arrival;
    a.phase_ns[static_cast<std::size_t>(transit)] += sim().now() - from;
    a.phase_since = sim().now();
    a.phase = classify(a);
  }
  if (m.ckpt_flow != 0 && obs_ && obs_->trace_on()) {
    obs_->flow(m.ckpt_flow, obs::FlowPhase::kEnd, sim().now(), board_.name(),
               "ckpt", "restore " + spec.name + "#" + std::to_string(id));
  }
  if (obs_ && obs_->journal_on()) {
    obs_->journal(sim().now(), obs::JournalEvent::kRestore, board_.name(),
                  id, spec.name, m.ckpt_flow,
                  m.from_checkpoint
                      ? "from checkpoint"
                      : (m.progress.empty() ? "descriptor" : "live progress"));
  }
  check_app_complete(a);
  kick();
  return id;
}

namespace {

BoardRuntime::MigratedApp migrated_descriptor(const AppRun& a) {
  BoardRuntime::MigratedApp m;
  m.spec_index = a.spec_index;
  m.batch = a.batch;
  m.arrival = a.arrival;
  m.item_interval = a.item_interval;
  m.tenant = a.tenant;
  // App descriptor plus per-item staging headers; bulk input data stays
  // host-fetchable and is re-DMAed on the target board at launch time.
  m.state_bytes = 4096 + static_cast<std::int64_t>(a.batch) * 16384;
  return m;
}

// Descriptor plus per-task progress and the inter-stage buffers queued
// between pipeline stages — everything that lives in DDR rather than in
// the fabric. Only valid for apps still on the per-task decomposition.
BoardRuntime::MigratedApp migrated_with_progress(const AppRun& a) {
  BoardRuntime::MigratedApp m = migrated_descriptor(a);
  int upstream_done = a.batch;
  for (const UnitRun& u : a.units) {
    m.progress.push_back(u.items_done);
    // Intermediate buffers waiting between stage i-1 and i travel too.
    std::int64_t queued_items = upstream_done - u.items_done;
    m.state_bytes += queued_items * u.spec.item_bytes_in;
    upstream_done = u.items_done;
  }
  return m;
}

}  // namespace

std::vector<BoardRuntime::MigratedApp> BoardRuntime::extract_unstarted() {
  std::vector<MigratedApp> out;
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.started || a.done()) continue;
    touch_phase(a);
    MigratedApp m = migrated_descriptor(a);
    m.phase_ns = a.phase_ns;
    m.extracted = sim().now();
    m.ckpt_flow = a.ckpt_flow;
    out.push_back(std::move(m));
    a.spec = nullptr;  // tombstone: extracted
  }
  return out;
}

std::vector<BoardRuntime::MigratedApp> BoardRuntime::extract_migratable() {
  std::vector<MigratedApp> out = extract_unstarted();
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.done() || !a.started) continue;
    // Paused: nothing placed, nothing mid-flight, and still on the per-task
    // decomposition (one unit per task — bundled apps complete on the Big
    // slots they are bound to, per §III-C).
    bool paused = a.units.size() ==
                  static_cast<std::size_t>(a.spec->task_count());
    for (const UnitRun& u : a.units) {
      paused &= (u.state == UnitState::kPending ||
                 u.state == UnitState::kFinished) &&
                !u.item_in_flight;
    }
    if (!paused) continue;
    touch_phase(a);
    MigratedApp m = migrated_with_progress(a);
    m.phase_ns = a.phase_ns;
    m.extracted = sim().now();
    m.ckpt_flow = a.ckpt_flow;
    out.push_back(std::move(m));
    a.spec = nullptr;  // tombstone: extracted
  }
  return out;
}

BoardRuntime::CrashReport BoardRuntime::crash() {
  assert(!crashed_ && "board already crashed");
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  CrashReport report;
  touch_utilization();
  stop_admission();
  // The crash model is a PL wedge: the fabric (and anything mid-flight in
  // it) is gone, but the PS side — DDR images, completed-item progress,
  // inter-stage buffers — stays readable, which is what makes recovery
  // via the §III-D migration path possible at all. Paused apps evacuate
  // exactly as they would for a switch.
  report.evacuable = extract_migratable();
  // Running apps lose the in-flight item (its result was still in the
  // fabric) but keep their DDR-resident progress, provided they are still
  // on the per-task decomposition. Bundled apps are bound to the Big
  // slots they died on (§III-C) and carry no portable *live* progress —
  // but when checkpointing is on, their last DDR snapshot restores them
  // through the same submit_with_progress packing, re-running at most one
  // checkpoint interval. Only apps with neither live progress nor a
  // snapshot are truly lost: killed descriptors restart from scratch.
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.done()) continue;
    touch_phase(a);
    bool per_task =
        a.units.size() == static_cast<std::size_t>(a.spec->task_count());
    bool has_progress = false;
    for (const UnitRun& u : a.units) has_progress |= u.items_done > 0;
    MigratedApp m;
    if (per_task && has_progress) {
      m = migrated_with_progress(a);
    } else if (a.ckpt_time >= 0) {
      m = migrated_descriptor(a);
      m.progress = a.ckpt_progress;
      m.state_bytes = a.ckpt_bytes;
      m.from_checkpoint = true;
      m.ckpt_time = a.ckpt_time;
    } else {
      m = migrated_descriptor(a);
    }
    m.phase_ns = a.phase_ns;
    m.extracted = sim().now();
    m.ckpt_flow = a.ckpt_flow;
    if (m.from_checkpoint) {
      report.checkpointed.push_back(std::move(m));
    } else if (per_task && has_progress) {
      report.evacuable.push_back(std::move(m));
    } else {
      report.killed.push_back(std::move(m));
    }
    a.spec = nullptr;  // tombstone: extracted by the crash
  }
  crashed_ = true;
  pass_queued_ = false;
  for (fpga::Slot& s : board_.slots()) s.scrub();
  // Cores drop their queues and in-flight ops (this also cancels the core
  // op that would have completed the PCAP's in-flight load), then the PCAP
  // clears its FIFO. Stale simulator events (DMA completions, item
  // finishes, OCM posts, checkpoint ticks) hit the crashed_ guards and
  // die.
  board_.scheduler_core().reset();
  board_.pr_core().reset();
  board_.pcap().reset();
  refresh_slot_gauges();
  VS_WARN << board_.name() << ": crashed (" << report.evacuable.size()
          << " evacuable, " << report.checkpointed.size()
          << " checkpoint-restored, " << report.killed.size() << " killed)";
  return report;
}

void BoardRuntime::inject_slot_seu(int slot_id) {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  if (crashed_) return;
  if (full_fabric_app_ >= 0) return;  // exclusive baseline: out of scope
  fpga::Slot& slot = board_.slot(slot_id);
  if (slot.state() == fpga::SlotState::kIdle) return;  // empty region
  int app_id = slot.occupant_app();
  if (app_id < 0) return;
  AppRun& a = app(app_id);
  if (a.spec == nullptr || a.done()) return;
  UnitRun* unit = nullptr;
  for (UnitRun& u : a.units) {
    if (u.slot == slot_id && u.state != UnitState::kFinished) {
      unit = &u;
      break;
    }
  }
  if (unit == nullptr) return;
  VS_WARN << board_.name() << ": SEU kills " << a.spec->name << "#" << app_id
          << " in slot " << slot_id;
  if (unit->state == UnitState::kReconfiguring || unit->item_in_flight) {
    // Mid-PR or mid-item: the in-flight operation completes mechanically
    // (PCAP transfer / datapath drain) and its result is discarded there.
    unit->seu_poisoned = true;
    return;
  }
  assert(unit->state == UnitState::kRunning);
  // Configured and between items: evict on the spot.
  touch_utilization();
  slot.release();
  unit->state = UnitState::kPending;
  unit->slot = -1;
  touch_phase(a);
  refresh_slot_gauges();
  kick();
}

void BoardRuntime::kick() {
  sim::TagScope tag_scope(sim(), board_.shard_tag());
  if (crashed_) return;
  if (pass_queued_) return;
  pass_queued_ = true;
  sim::Core& core = board_.scheduler_core();
  // Single-core designs: if the scheduler core is currently suspended by a
  // PCAP load, this pass (and the launches it would perform) is blocked —
  // the paper's task-execution-blocking problem.
  if (!dual_core_ && core.busy() &&
      core.current_label().rfind("pcap:", 0) == 0) {
    ++counters_.launch_blocked;
    ++window_blocked_;
    m_launch_blocked_.add();
  }
  core.submit(
      board_.params().sched_pass_cost, [this] { run_pass(); }, "pass");
}

void BoardRuntime::run_pass() {
  if (crashed_) return;
  pass_queued_ = false;
  ++counters_.passes;
  m_passes_.add();
  policy_.on_pass(*this);
  try_launches();
}

void BoardRuntime::try_launches() {
  for (AppRun& a : apps_) {
    if (a.spec == nullptr || a.done()) continue;
    for (UnitRun& u : a.units) {
      if (u.state != UnitState::kRunning || u.item_in_flight) continue;
      if (u.items_done >= a.batch) continue;
      int idx = static_cast<int>(&u - a.units.data());
      if (!item_ready(a, idx)) {
        // A streamed first stage blocked only on source availability needs
        // a wake-up at the next item's arrival (nothing else would kick).
        if (idx == 0 && a.item_interval > 0) {
          sim::SimTime next =
              a.arrival + a.item_interval *
                              static_cast<sim::SimDuration>(u.items_done);
          if (next > sim().now() &&
              (a.stream_kick < 0 || a.stream_kick < sim().now())) {
            a.stream_kick = next;
            int app_id = a.id;
            sim().schedule_at(next, [this, app_id] {
              app(app_id).stream_kick = -1;
              kick();
            });
          }
        }
        continue;
      }
      launch_item(a, u);
    }
  }
}

void BoardRuntime::launch_item(AppRun& app_ref, UnitRun& unit_ref) {
  unit_ref.item_in_flight = true;
  touch_phase(app_ref);
  int app_id = app_ref.id;
  int unit_index = static_cast<int>(&unit_ref - app_ref.units.data());
  int item = unit_ref.items_done;
  // Launch: scheduler-core op (buffer setup, DMA kick) ...
  board_.scheduler_core().submit(
      board_.params().launch_op_cost,
      [this, app_id, unit_index, item] {
        AppRun& a = app(app_id);
        UnitRun& u = a.units[static_cast<std::size_t>(unit_index)];
        // ... then the input DMA ...
        board_.dma().transfer(u.spec.item_bytes_in, [this, app_id, unit_index,
                                                     item] {
          if (crashed_) return;
          AppRun& a2 = app(app_id);
          UnitRun& u2 = a2.units[static_cast<std::size_t>(unit_index)];
          // ... then execution in the slot.
          touch_utilization();
          if (u2.slot >= 0) board_.slot(u2.slot).begin_exec();
          refresh_slot_gauges();
          sim::SimDuration d = u2.spec.item_latency +
                               (item == 0 ? u2.spec.fill_latency : 0);
          sim::SimTime started = sim().now();
          // Sync event: finish_item can complete the app and call into the
          // cluster hook — the one place a board-local chain touches
          // cross-shard state. d >= the suite's minimum item latency, which
          // bounds the sharded kernel's lookahead, so this never fires
          // inside a conservative window.
          sim().schedule_sync(d, [this, app_id, unit_index, started, item] {
            if (crashed_) return;
            if (trace_.enabled()) {
              AppRun& a3 = app(app_id);
              UnitRun& u3 = a3.units[static_cast<std::size_t>(unit_index)];
              trace_.add(started, sim().now(),
                         u3.slot >= 0 ? board_.slot(u3.slot).name() : "fabric",
                         a3.spec->name + "#" + std::to_string(app_id) + ".u" +
                             std::to_string(unit_index) + " B" +
                             std::to_string(item + 1),
                         sim::SpanKind::kExec);
            }
            m_item_ms_.observe(sim::to_ms(sim().now() - started));
            finish_item(app_id, unit_index);
          });
        });
      },
      "launch");
}

void BoardRuntime::finish_item(int app_id, int unit_index) {
  if (crashed_) return;
  AppRun& a = app(app_id);
  UnitRun& u = a.units[static_cast<std::size_t>(unit_index)];
  touch_utilization();
  if (u.slot >= 0) board_.slot(u.slot).finish_exec();
  u.item_in_flight = false;
  if (u.seu_poisoned) {
    // An SEU killed the slot logic mid-item: the item's result is garbage
    // and is discarded (not counted), the instance is evicted, and the
    // unit retries from Pending with its earlier items intact in DDR.
    u.seu_poisoned = false;
    if (u.slot >= 0) board_.slot(u.slot).release();
    u.state = UnitState::kPending;
    u.slot = -1;
    touch_phase(a);
    refresh_slot_gauges();
    kick();
    return;
  }
  ++u.items_done;
  mark_item_write(a, unit_index, u.items_done - 1);
  ++counters_.items_executed;
  m_items_.add();
  if (u.items_done >= a.batch) finish_unit(u);
  touch_phase(a);
  refresh_slot_gauges();
  check_app_complete(a);
  kick();
}

void BoardRuntime::finish_unit(UnitRun& unit) {
  touch_utilization();
  unit.state = UnitState::kFinished;
  if (unit.slot >= 0) {
    board_.slot(unit.slot).release();
  }
  unit.slot = -1;
}

void BoardRuntime::check_app_complete(AppRun& a) {
  if (a.done()) return;
  for (const UnitRun& u : a.units) {
    if (u.state != UnitState::kFinished) return;
  }
  if (phase_acct_) {
    // Close the open interval against the current phase; after this the
    // account sums exactly (in integer nanoseconds) to completed - arrival.
    a.phase_ns[static_cast<std::size_t>(a.phase)] +=
        sim().now() - a.phase_since;
    a.phase_since = sim().now();
    for (std::size_t p = 0; p < kAppPhaseCount; ++p) {
      m_phase_ms_[p].observe(sim::to_ms(a.phase_ns[p]));
    }
  }
  a.completed = sim().now();
  ++counters_.apps_completed;
  m_apps_completed_.add();
  m_response_ms_.observe(sim::to_ms(a.completed - a.arrival));
  if (full_fabric_app_ == a.id) {
    touch_utilization();
    full_fabric_app_ = -1;
  }
  CompletedApp c{a.id, a.spec_index, a.spec->name, a.arrival, a.completed};
  c.phase_ns = a.phase_ns;
  c.tenant = a.tenant;
  completed_.push_back(c);
  VS_DEBUG << board_.name() << ": " << c.name << "#" << a.id
           << " complete, response " << c.response_ms() << " ms";
  if (obs_ && obs_->journal_on()) {
    obs_->journal(sim().now(), obs::JournalEvent::kComplete, board_.name(),
                  a.id, a.spec->name, 0,
                  "response_ms " + std::to_string(c.response_ms()));
  }
  if (on_app_complete_) on_app_complete_(c);
}

void BoardRuntime::touch_utilization() {
  sim::SimTime now = sim().now();
  auto dt = static_cast<double>(now - last_util_touch_);
  last_util_touch_ = now;
  if (dt <= 0) return;

  fpga::ResourceVector used;
  for (const AppRun& a : apps_) {
    if (a.spec == nullptr || a.done()) continue;
    for (const UnitRun& u : a.units) {
      if (u.state == UnitState::kRunning) used += u.spec.impl_usage;
    }
  }
  fpga::ResourceVector occupied;
  if (full_fabric_app_ >= 0) {
    occupied = reconfigurable_capacity(board_.fabric(), board_.params());
  } else {
    for (const fpga::Slot& s : board_.slots()) {
      if (s.state() != fpga::SlotState::kIdle) occupied += s.capacity();
    }
  }
  fpga::ResourceVector fabric =
      reconfigurable_capacity(board_.fabric(), board_.params());

  util_.lut_used += dt * static_cast<double>(used.luts);
  util_.ff_used += dt * static_cast<double>(used.ffs);
  util_.lut_capacity += dt * static_cast<double>(occupied.luts);
  util_.ff_capacity += dt * static_cast<double>(occupied.ffs);
  util_.lut_fabric += dt * static_cast<double>(fabric.luts);
  util_.ff_fabric += dt * static_cast<double>(fabric.ffs);
}

}  // namespace vs::runtime
