// Multi-tenant serving plane: tenants, SLO classes, and the serve-level
// configuration surface.
//
// A ServeConfig describes who is submitting open-loop traffic — tenants
// with a fair-share weight, an outstanding-work quota, and an arrival
// process — and what they were promised: SLO classes with a latency target
// and an admission priority. Like faults::FaultScenario, all randomness
// derives from one master seed through one rule: `config.stream(label)`
// forks a named PCG32 stream, so arrival schedules are a pure function of
// the seed — bit-identical across platforms, sweep parallelism, and kernel
// worker counts. A default-constructed config has no tenants and is
// disabled: no resource manager is built and every code path stays
// byte-identical to a serve-free run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs::serve {

/// One tenant's arrival process (Poisson / MMPP-bursty / diurnal); see
/// workload/generator.h for the knobs and the generation contract.
using ArrivalProcess = workload::ArrivalProcess;

/// A service class: what response time was promised and how urgently the
/// admission controller drains its queues (lower priority value = drained
/// first when deferred work competes for freed capacity).
struct SloClass {
  std::string name;
  sim::SimDuration latency_target = sim::ms(2000.0);
  int priority = 0;
};

struct Tenant {
  std::string name;
  int slo_class = 0;    ///< index into ServeConfig::classes
  double weight = 1.0;  ///< fair share in the weighted-deficit scheduler
  /// Max outstanding admitted jobs for this tenant; arrivals beyond it are
  /// deferred (queued) rather than admitted. Default: effectively unbounded.
  int quota = 1 << 30;
  /// Max deferred-queue depth; arrivals beyond it are rejected outright.
  int defer_limit = 1 << 30;
  ArrivalProcess arrivals;
  // Per-job batch draw (the same [5, 30] span the closed benches use).
  int min_batch = 5;
  int max_batch = 30;
};

/// The one struct holding every serving-plane knob.
struct ServeConfig {
  std::uint64_t seed = 2025;
  std::vector<SloClass> classes;
  std::vector<Tenant> tenants;
  /// Open-loop trace horizon: arrivals are generated in [0, horizon).
  sim::SimDuration horizon = sim::seconds(30.0);
  /// Cluster-wide admitted-jobs cap — the capacity the weighted-deficit
  /// scheduler shares out under saturation. Default: effectively unbounded
  /// (admission limited only by per-tenant quotas).
  int max_inflight = 1 << 30;
  /// Butler-style routing: prefer a board already running the same app
  /// spec (its placement-specific bitstreams are warm) among the least
  /// loaded. Off routes purely by load.
  bool affinity_routing = true;
  /// Load rebalancing: every `rebalance_period` completions, if the spread
  /// between the most- and least-loaded active boards reaches
  /// `rebalance_spread`, unstarted apps live-migrate over the Aurora link.
  bool rebalance = false;
  int rebalance_period = 8;
  int rebalance_spread = 4;

  /// The serving plane is enabled iff someone is submitting.
  [[nodiscard]] bool enabled() const noexcept { return !tenants.empty(); }

  /// Named sub-stream derivation — the same fork rule as
  /// faults::FaultScenario::stream, and the only path from the master seed
  /// to any serve-plane randomness.
  [[nodiscard]] util::Rng stream(std::string_view label) const noexcept {
    return util::Rng(seed).fork(label);
  }
};

}  // namespace vs::serve
