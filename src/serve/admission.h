// Fair-share admission control for the serving plane.
//
// Every arrival passes through here before it may touch a board. The
// controller enforces three limits — the cluster-wide admitted-jobs cap
// (ServeConfig::max_inflight), each tenant's outstanding-work quota, and
// each tenant's deferred-queue depth — and shares freed capacity out with
// a weighted deficit round-robin: each drain round tops every waiting
// tenant's deficit up by its weight, and the tenant with the largest
// deficit admits the head of its FIFO queue. Queues are SLO-aware: among
// waiting tenants, the lowest SLO-class priority value always drains
// first; the deficit only arbitrates within a priority level. All state
// changes happen inside coordinator-owned simulation events, so admission
// decisions are bit-identical across kernel worker counts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "serve/arrival.h"
#include "serve/tenant.h"

namespace vs::serve {

class AdmissionController {
 public:
  /// What happened to an arrival at the admission edge. Deferred arrivals
  /// are admitted later (in on_complete) when capacity frees up.
  enum class Action { kAdmit, kDefer, kReject };

  /// Per-tenant admission bookkeeping, available without telemetry.
  struct TenantState {
    int outstanding = 0;  ///< admitted, not yet completed
    std::int64_t submitted = 0;
    std::int64_t admitted = 0;
    std::int64_t deferred = 0;  ///< arrivals that entered the queue
    std::int64_t rejected = 0;
    double deficit = 0.0;
    std::deque<ServeArrival> queue;
  };

  explicit AdmissionController(const ServeConfig& config);

  /// Dispatch sink for admitted jobs; must be set before the first arrival.
  void set_dispatch(std::function<void(const ServeArrival&)> fn) {
    dispatch_ = std::move(fn);
  }

  /// Admission edge: admit now if the tenant is under quota, its queue is
  /// empty, and the cluster cap has room; otherwise defer (queue) or, with
  /// the queue full, reject.
  Action on_arrival(const ServeArrival& a);

  /// Completion edge: releases the tenant's slot and pumps deferred work.
  void on_complete(int tenant);

  [[nodiscard]] const std::vector<TenantState>& tenants() const noexcept {
    return tenants_;
  }
  [[nodiscard]] int inflight() const noexcept { return inflight_; }
  [[nodiscard]] std::int64_t queued() const {
    std::int64_t n = 0;
    for (const TenantState& t : tenants_) {
      n += static_cast<std::int64_t>(t.queue.size());
    }
    return n;
  }

 private:
  /// True when tenant `i` may admit the head of its queue right now.
  [[nodiscard]] bool eligible(std::size_t i) const;
  /// Admits queued work while capacity lasts (the WDRR loop).
  void pump();

  const ServeConfig& config_;
  std::vector<TenantState> tenants_;
  std::function<void(const ServeArrival&)> dispatch_;
  int inflight_ = 0;
};

}  // namespace vs::serve
