// Butler-style cluster resource manager for the serving plane.
//
// The ResourceManager sits between the open-loop arrival trace and the
// Cluster: it schedules every tenant arrival as a coordinator event,
// passes it through the fair-share AdmissionController, and routes
// admitted jobs across the active board pool by load and app affinity
// (a board already running the same spec has its placement-specific
// bitstreams warm — prefer it when the load penalty is small, like
// Butler's locality-aware dispatch). Completions flow back through the
// cluster-level hook: they release admission capacity, record per-tenant
// and per-SLO-class response times, and — when ServeConfig::rebalance is
// on — periodically trigger live-migration rebalancing over the Aurora
// link.
//
// Determinism: the trace is a pure function of (config, seed); every
// admission and routing decision runs inside a coordinator-pinned event
// (arrivals via Simulator::schedule_at on the coordinator, completions
// inside the cluster's tag-0 completion path), so results are
// bit-identical across kernel worker counts. Telemetry (`vs_tenant_*`)
// registers only when a registry is passed AND the plane is enabled, so
// serve-free exports stay byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/tenant.h"
#include "sim/simulator.h"

namespace vs::serve {

class ResourceManager {
 public:
  /// Per-tenant serving counters, available without telemetry.
  struct TenantCounters {
    std::int64_t completed = 0;
    std::int64_t slo_miss = 0;
    std::vector<double> response_ms;  ///< per-completion, arrival order
  };

  /// `metrics` may be null (no instruments). The cluster, config, and
  /// registry must outlive the manager. The manager claims the cluster's
  /// completion hook (Cluster::set_on_app_complete).
  ResourceManager(sim::Simulator& sim, cluster::Cluster& cluster,
                  const ServeConfig& config,
                  obs::MetricsRegistry* metrics = nullptr);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Generates the arrival trace and schedules every arrival. Call once,
  /// before running the simulator. `suite_size` bounds the per-arrival
  /// spec draw (the cluster's suite size).
  void start(int suite_size);

  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }
  [[nodiscard]] const std::vector<TenantCounters>& tenant_counters()
      const noexcept {
    return tenant_counters_;
  }
  /// Arrivals scheduled by start().
  [[nodiscard]] std::int64_t arrivals() const noexcept { return arrivals_; }
  /// Completions attributed to a tenant (== admitted once drained, minus
  /// anything the recovery layer lost or shed).
  [[nodiscard]] std::int64_t completions() const noexcept {
    return completions_;
  }

 private:
  void on_arrival(const ServeArrival& a);
  /// Routing: least loaded among active boards, with an affinity bonus for
  /// boards already running the same spec (score = 2*load - affinity).
  void dispatch(const ServeArrival& a);
  void on_complete(const runtime::CompletedApp& c);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const ServeConfig& config_;
  AdmissionController admission_;
  std::vector<TenantCounters> tenant_counters_;
  std::int64_t arrivals_ = 0;
  std::int64_t completions_ = 0;
  int completions_since_rebalance_ = 0;

  // vs_tenant_* instruments: one row per tenant (label tenant=<name>) and
  // one response histogram per SLO class (label class=<name>). Registered
  // only when a registry is bound — the plane itself is only constructed
  // when config.enabled(), so serve-free exports never see these series.
  std::vector<obs::CounterHandle> m_admitted_;   ///< vs_tenant_admitted_total
  std::vector<obs::CounterHandle> m_rejected_;   ///< vs_tenant_rejected_total
  std::vector<obs::CounterHandle> m_deferred_;   ///< vs_tenant_deferred_total
  std::vector<obs::CounterHandle> m_completed_;  ///< vs_tenant_completed_total
  std::vector<obs::CounterHandle> m_slo_miss_;   ///< vs_tenant_slo_miss_total
  std::vector<obs::HistogramHandle> m_response_;  ///< vs_tenant_response_ms
};

}  // namespace vs::serve
