#include "serve/serve.h"

#include <cassert>

#include "obs/trace_hub.h"
#include "sim/sharded.h"

namespace vs::serve {

namespace {

ServeResult collect_serve_result(const cluster::Cluster& cluster,
                                 const ResourceManager& manager,
                                 const ServeConfig& config,
                                 std::uint64_t events) {
  ServeResult result;
  result.arrivals = manager.arrivals();
  result.completed = manager.completions();
  result.recovery = cluster.recovery_stats();
  result.events = events;

  const auto& admission = manager.admission().tenants();
  const auto& counters = manager.tenant_counters();
  std::vector<std::vector<double>> class_responses(config.classes.size());
  std::vector<double> all_responses;
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    TenantResult t;
    t.name = config.tenants[i].name;
    t.slo_class = config.tenants[i].slo_class;
    t.submitted = admission[i].submitted;
    t.admitted = admission[i].admitted;
    t.deferred = admission[i].deferred;
    t.rejected = admission[i].rejected;
    t.completed = counters[i].completed;
    t.slo_miss = counters[i].slo_miss;
    result.admitted += t.admitted;
    result.rejected += t.rejected;
    auto cls = static_cast<std::size_t>(t.slo_class);
    class_responses[cls].insert(class_responses[cls].end(),
                                counters[i].response_ms.begin(),
                                counters[i].response_ms.end());
    all_responses.insert(all_responses.end(), counters[i].response_ms.begin(),
                         counters[i].response_ms.end());
    result.tenants.push_back(std::move(t));
  }
  const double horizon_s = sim::to_seconds(config.horizon);
  for (std::size_t c = 0; c < config.classes.size(); ++c) {
    ClassResult r;
    r.name = config.classes[c].name;
    for (const TenantResult& t : result.tenants) {
      if (static_cast<std::size_t>(t.slo_class) != c) continue;
      r.completed += t.completed;
      r.slo_miss += t.slo_miss;
    }
    if (r.completed > 0) {
      r.attainment = static_cast<double>(r.completed - r.slo_miss) /
                     static_cast<double>(r.completed);
    }
    if (horizon_s > 0) {
      r.goodput_per_s =
          static_cast<double>(r.completed - r.slo_miss) / horizon_s;
    }
    r.response_ms = util::summarize(class_responses[c]);
    result.classes.push_back(std::move(r));
  }
  result.response_ms = util::summarize(all_responses);
  return result;
}

}  // namespace

ServeResult run_serve(const std::vector<apps::AppSpec>& suite,
                      const ServeConfig& config,
                      const cluster::ClusterOptions& options,
                      sim::SimTime time_limit, obs::Telemetry* telemetry) {
  assert(config.enabled() && "run_serve needs at least one tenant");
  cluster::ClusterOptions cluster_options = options;
  if (telemetry != nullptr) {
    cluster_options.metrics = &telemetry->registry();
    telemetry->info().experiment = "serve";
    telemetry->info().config = {
        {"tenants", std::to_string(config.tenants.size())},
        {"horizon_s", std::to_string(sim::to_seconds(config.horizon))},
        {"boards_per_config",
         std::to_string(options.boards_per_config)},
    };
  }
  const int suite_size = static_cast<int>(suite.size());
  if (options.kernel_workers > 0) {
    // Sharded event kernel: same construction as metrics::run_cluster —
    // one shard per board, conservative windows from the suite's minimum
    // item latency. The serving plane runs entirely in coordinator events,
    // so everything observable is bit-identical to the serial branch.
    sim::ShardedOptions kernel_options;
    kernel_options.shards = 2 * options.boards_per_config;
    kernel_options.workers = options.kernel_workers;
    kernel_options.lookahead =
        cluster::conservative_lookahead(suite, options.link_params);
    sim::ShardedSimulator kernel(kernel_options);
    cluster_options.sharded = &kernel;
    cluster::Cluster cluster(kernel.global(), suite, cluster_options);
    ResourceManager manager(kernel.global(), cluster, config,
                            cluster_options.metrics);
    if (telemetry != nullptr) telemetry->start_sampling(kernel.global());
    manager.start(suite_size);
    kernel.run(time_limit);
    if (cluster_options.hub != nullptr) cluster_options.hub->seal();
    return collect_serve_result(cluster, manager, config,
                                kernel.events_executed());
  }
  sim::Simulator sim;
  cluster::Cluster cluster(sim, suite, cluster_options);
  ResourceManager manager(sim, cluster, config, cluster_options.metrics);
  if (telemetry != nullptr) telemetry->start_sampling(sim);
  manager.start(suite_size);
  sim.run(time_limit);
  if (cluster_options.hub != nullptr) cluster_options.hub->seal();
  return collect_serve_result(cluster, manager, config,
                              sim.events_executed());
}

}  // namespace vs::serve
