#include "serve/arrival.h"

#include <algorithm>
#include <cassert>

namespace vs::serve {

std::vector<ServeArrival> generate_trace(const ServeConfig& config,
                                         int suite_size) {
  assert(suite_size >= 1);
  std::vector<ServeArrival> trace;
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    const Tenant& tenant = config.tenants[i];
    assert(tenant.min_batch >= 1 && tenant.min_batch <= tenant.max_batch);
    util::Rng rng = config.stream("arrivals/" + tenant.name);
    for (sim::SimTime t : tenant.arrivals.generate(config.horizon, rng)) {
      ServeArrival a;
      a.tenant = static_cast<int>(i);
      a.app.spec_index = static_cast<int>(rng.uniform_int(0, suite_size - 1));
      a.app.batch = static_cast<int>(
          rng.uniform_int(tenant.min_batch, tenant.max_batch));
      a.app.arrival = t;
      a.app.tenant = a.tenant;
      trace.push_back(a);
    }
  }
  // Merge the per-tenant streams into one timeline. stable_sort keeps each
  // tenant's arrivals in generation order and breaks equal-time ties by
  // tenant index — fully deterministic.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ServeArrival& a, const ServeArrival& b) {
                     if (a.app.arrival != b.app.arrival) {
                       return a.app.arrival < b.app.arrival;
                     }
                     return a.tenant < b.tenant;
                   });
  return trace;
}

}  // namespace vs::serve
