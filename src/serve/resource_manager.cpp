#include "serve/resource_manager.h"

#include <cassert>

namespace vs::serve {

ResourceManager::ResourceManager(sim::Simulator& sim,
                                 cluster::Cluster& cluster,
                                 const ServeConfig& config,
                                 obs::MetricsRegistry* metrics)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      admission_(config),
      tenant_counters_(config.tenants.size()) {
  assert(config.enabled() && "build a ResourceManager only for enabled configs");
  admission_.set_dispatch([this](const ServeArrival& a) { dispatch(a); });
  cluster_.set_on_app_complete(
      [this](const runtime::CompletedApp& c) { on_complete(c); });
  if (metrics != nullptr) {
    for (const Tenant& t : config.tenants) {
      obs::Labels labels{{"tenant", t.name}};
      m_admitted_.emplace_back(
          &metrics->counter("vs_tenant_admitted_total", labels));
      m_rejected_.emplace_back(
          &metrics->counter("vs_tenant_rejected_total", labels));
      m_deferred_.emplace_back(
          &metrics->counter("vs_tenant_deferred_total", labels));
      m_completed_.emplace_back(
          &metrics->counter("vs_tenant_completed_total", labels));
      m_slo_miss_.emplace_back(
          &metrics->counter("vs_tenant_slo_miss_total", labels));
    }
    for (const SloClass& c : config.classes) {
      m_response_.emplace_back(&metrics->histogram(
          "vs_tenant_response_ms", obs::default_ms_bounds(),
          obs::Labels{{"class", c.name}}));
    }
  } else {
    m_admitted_.resize(config.tenants.size());
    m_rejected_.resize(config.tenants.size());
    m_deferred_.resize(config.tenants.size());
    m_completed_.resize(config.tenants.size());
    m_slo_miss_.resize(config.tenants.size());
    m_response_.resize(config.classes.size());
  }
}

void ResourceManager::start(int suite_size) {
  std::vector<ServeArrival> trace = generate_trace(config_, suite_size);
  arrivals_ = static_cast<std::int64_t>(trace.size());
  for (const ServeArrival& a : trace) {
    sim_.schedule_at(a.app.arrival, [this, a] { on_arrival(a); });
  }
}

void ResourceManager::on_arrival(const ServeArrival& a) {
  auto i = static_cast<std::size_t>(a.tenant);
  switch (admission_.on_arrival(a)) {
    case AdmissionController::Action::kAdmit:
      break;  // dispatch() already counted the admission
    case AdmissionController::Action::kDefer:
      m_deferred_[i].add();
      break;
    case AdmissionController::Action::kReject:
      m_rejected_[i].add();
      break;
  }
}

void ResourceManager::dispatch(const ServeArrival& a) {
  // Counted here, not in on_arrival: deferred arrivals admitted later by
  // the admission pump dispatch through this same path, and the counter
  // must agree with AdmissionController's per-tenant `admitted` stat.
  m_admitted_[static_cast<std::size_t>(a.tenant)].add();
  runtime::BoardRuntime* preferred = nullptr;
  if (config_.affinity_routing) {
    // Butler-style routing: among the active pool (fixed order, so ties
    // resolve identically under both kernels), minimise 2*load minus an
    // affinity bonus for boards already running the same spec — a warm
    // board wins only while it is at most half an app busier.
    int best = 0;
    for (runtime::BoardRuntime* rt : cluster_.active_runtimes()) {
      int score = 2 * rt->active_apps();
      for (const runtime::AppRun& r : rt->apps()) {
        if (r.spec != nullptr && !r.done() &&
            r.spec_index == a.app.spec_index) {
          score -= 1;
          break;
        }
      }
      if (preferred == nullptr || score < best) {
        preferred = rt;
        best = score;
      }
    }
  }
  cluster_.dispatch_arrival(a.app, preferred);
}

void ResourceManager::on_complete(const runtime::CompletedApp& c) {
  // The closed benches (tenant == -1) share the cluster; only serve-plane
  // jobs touch admission capacity or the tenant accounts.
  if (c.tenant < 0) return;
  auto i = static_cast<std::size_t>(c.tenant);
  ++completions_;
  TenantCounters& tc = tenant_counters_[i];
  ++tc.completed;
  const double response_ms = c.response_ms();
  tc.response_ms.push_back(response_ms);
  m_completed_[i].add();
  const auto cls =
      static_cast<std::size_t>(config_.tenants[i].slo_class);
  m_response_[cls].observe(response_ms);
  if (response_ms > sim::to_ms(config_.classes[cls].latency_target)) {
    ++tc.slo_miss;
    m_slo_miss_[i].add();
  }
  // Releasing the slot may admit deferred work, which dispatches inside
  // this coordinator-pinned completion event — deterministic under both
  // kernels.
  admission_.on_complete(c.tenant);
  if (config_.rebalance &&
      ++completions_since_rebalance_ >= config_.rebalance_period) {
    completions_since_rebalance_ = 0;
    cluster_.rebalance_active(config_.rebalance_spread);
  }
}

}  // namespace vs::serve
