// Serving-plane run harness: the serve-side analogue of
// metrics::run_cluster. Builds a Cluster plus a ResourceManager, plays the
// open-loop tenant trace, and collects per-tenant / per-SLO-class results
// (SLO attainment, goodput, response tails) the ext_multitenant bench
// reports. Results are bit-identical across kernel worker counts and with
// telemetry on or off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/task.h"
#include "cluster/cluster.h"
#include "obs/telemetry.h"
#include "serve/resource_manager.h"
#include "serve/tenant.h"
#include "util/stats.h"

namespace vs::serve {

/// Per-tenant outcome of a serve run.
struct TenantResult {
  std::string name;
  int slo_class = 0;
  std::int64_t submitted = 0;  ///< arrivals generated for this tenant
  std::int64_t admitted = 0;
  std::int64_t deferred = 0;   ///< entered the admission queue
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t slo_miss = 0;
};

/// Per-SLO-class outcome, pooled over the class's tenants.
struct ClassResult {
  std::string name;
  std::int64_t completed = 0;
  std::int64_t slo_miss = 0;
  /// Fraction of completions inside the latency target (1.0 when nothing
  /// completed — an empty class misses nothing).
  double attainment = 1.0;
  /// SLO-attained completions per simulated second of trace horizon.
  double goodput_per_s = 0.0;
  util::Summary response_ms;  ///< p50/p95/p99/p99.9 over completions
};

struct ServeResult {
  std::vector<TenantResult> tenants;
  std::vector<ClassResult> classes;
  std::int64_t arrivals = 0;   ///< open-loop trace size
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;  ///< tenant-attributed completions
  util::Summary response_ms;   ///< pooled over every completion
  cluster::RecoveryStats recovery;
  std::uint64_t events = 0;    ///< kernel events executed
};

/// Runs the serving plane to completion (or `time_limit`). `config` must
/// be enabled (have tenants); `options.kernel_workers` selects the serial
/// (0) or sharded (> 0) event kernel exactly as metrics::run_cluster does;
/// `telemetry`, when non-null, registers the vs_tenant_* instruments and
/// samples the run.
[[nodiscard]] ServeResult run_serve(
    const std::vector<apps::AppSpec>& suite, const ServeConfig& config,
    const cluster::ClusterOptions& options,
    sim::SimTime time_limit = sim::seconds(36000.0),
    obs::Telemetry* telemetry = nullptr);

}  // namespace vs::serve
