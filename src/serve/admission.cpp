#include "serve/admission.h"

#include <cassert>
#include <limits>

namespace vs::serve {

AdmissionController::AdmissionController(const ServeConfig& config)
    : config_(config), tenants_(config.tenants.size()) {
  for (const Tenant& t : config.tenants) {
    assert(t.weight > 0 && "a zero-weight tenant would never drain");
    assert(t.slo_class >= 0 &&
           t.slo_class < static_cast<int>(config.classes.size()));
    (void)t;
  }
}

AdmissionController::Action AdmissionController::on_arrival(
    const ServeArrival& a) {
  auto i = static_cast<std::size_t>(a.tenant);
  TenantState& t = tenants_[i];
  const Tenant& spec = config_.tenants[i];
  ++t.submitted;
  if (t.queue.empty() && t.outstanding < spec.quota &&
      inflight_ < config_.max_inflight) {
    ++t.admitted;
    ++t.outstanding;
    ++inflight_;
    dispatch_(a);
    return Action::kAdmit;
  }
  if (static_cast<int>(t.queue.size()) < spec.defer_limit) {
    ++t.deferred;
    t.queue.push_back(a);
    // The arrival may be admissible immediately (quota room but a backlog
    // ahead of it, or capacity freed without a completion): pump once so
    // the FIFO order is preserved without waiting for the next completion.
    pump();
    return Action::kDefer;
  }
  ++t.rejected;
  return Action::kReject;
}

void AdmissionController::on_complete(int tenant) {
  TenantState& t = tenants_[static_cast<std::size_t>(tenant)];
  assert(t.outstanding > 0);
  --t.outstanding;
  --inflight_;
  pump();
}

bool AdmissionController::eligible(std::size_t i) const {
  const TenantState& t = tenants_[i];
  return !t.queue.empty() && t.outstanding < config_.tenants[i].quota;
}

void AdmissionController::pump() {
  while (inflight_ < config_.max_inflight) {
    // SLO-aware ordering: only the most urgent priority level with waiting,
    // under-quota tenants competes for this slot.
    int best_priority = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (!eligible(i)) continue;
      int p = config_.classes[static_cast<std::size_t>(
                                  config_.tenants[i].slo_class)]
                  .priority;
      if (p < best_priority) best_priority = p;
    }
    if (best_priority == std::numeric_limits<int>::max()) return;

    // Weighted deficit round-robin within the priority level: the largest
    // deficit wins (ties to the lowest tenant index); when nobody has a
    // whole credit, everybody waiting at this level gets topped up by its
    // weight. Weights are positive, so the refresh loop terminates.
    for (;;) {
      std::size_t winner = tenants_.size();
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (!eligible(i)) continue;
        if (config_.classes[static_cast<std::size_t>(
                                config_.tenants[i].slo_class)]
                .priority != best_priority) {
          continue;
        }
        if (winner == tenants_.size() ||
            tenants_[i].deficit > tenants_[winner].deficit) {
          winner = i;
        }
      }
      assert(winner < tenants_.size());
      if (tenants_[winner].deficit >= 1.0) {
        TenantState& t = tenants_[winner];
        t.deficit -= 1.0;
        ServeArrival a = t.queue.front();
        t.queue.pop_front();
        // Classic DRR: an emptied queue forfeits its banked credit so an
        // idle tenant cannot hoard capacity against the others.
        if (t.queue.empty()) t.deficit = 0.0;
        ++t.admitted;
        ++t.outstanding;
        ++inflight_;
        dispatch_(a);
        break;
      }
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (!eligible(i)) continue;
        if (config_.classes[static_cast<std::size_t>(
                                config_.tenants[i].slo_class)]
                .priority != best_priority) {
          continue;
        }
        tenants_[i].deficit += config_.tenants[i].weight;
      }
    }
  }
}

}  // namespace vs::serve
