// Open-loop trace generation for the serving plane: expands every tenant's
// arrival process into one merged, tenant-tagged arrival trace.
#pragma once

#include <vector>

#include "apps/task.h"
#include "serve/tenant.h"

namespace vs::serve {

/// One tenant-tagged arrival. `app.tenant` carries the tenant index too —
/// it rides through the board runtime so completions can be attributed.
struct ServeArrival {
  int tenant = -1;
  apps::AppArrival app;
};

/// Generates the full trace for a config: each tenant's arrival times come
/// from `config.stream("arrivals/<tenant-name>")` and its spec/batch draws
/// from the same stream, then all tenants merge into one ascending
/// timeline (ties broken by tenant order). Pure function of (config,
/// suite_size) — no simulator, no cluster state.
[[nodiscard]] std::vector<ServeArrival> generate_trace(
    const ServeConfig& config, int suite_size);

}  // namespace vs::serve
