// Experiment harness shared by the benches, tests and examples: runs one
// workload sequence under one of the six compared systems on a fresh
// simulated board (or on the two-board cluster) and collects the metrics
// the paper reports.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/task.h"
#include "cluster/cluster.h"
#include "core/versaslot_policy.h"
#include "faults/scenario.h"
#include "fpga/params.h"
#include "obs/telemetry.h"
#include "runtime/board_runtime.h"
#include "runtime/checkpoint.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace vs::metrics {

/// The six systems of Figs 5/6 (Baseline, FCFS, RR, Nimblock, VersaSlot
/// Only.Little, VersaSlot Big.Little) plus the DML extension system (not in
/// the paper's comparison; see baselines/dml.h).
enum class SystemKind {
  kBaseline = 0,
  kFcfs = 1,
  kRoundRobin = 2,
  kNimblock = 3,
  kVersaOnlyLittle = 4,
  kVersaBigLittle = 5,
  kDml = 6,
};

/// The paper's comparison set (Fig 5/6 iterate exactly these).
constexpr int kSystemCount = 6;
/// All implemented systems including extensions.
constexpr int kSystemCountExtended = 7;

[[nodiscard]] const char* system_name(SystemKind kind) noexcept;

/// Fabric configuration each system runs on (Big.Little only for the
/// VersaSlot Big.Little system; all others use the uniform 8-slot layout).
[[nodiscard]] fpga::FabricConfig fabric_for(SystemKind kind);

/// Factory for the scheduler policy of a system. `vs_options` seeds the two
/// VersaSlot variants (mode is overridden per kind) so the ablation benches
/// can flip individual mechanisms.
[[nodiscard]] std::unique_ptr<runtime::SchedulerPolicy> make_policy(
    SystemKind kind, const core::VersaSlotOptions& vs_options = {});

struct RunResult {
  std::string system;
  std::vector<runtime::CompletedApp> apps;  ///< completion order
  std::vector<double> response_ms;   ///< per completed app
  util::Summary response;            ///< summary over response_ms
  runtime::RuntimeCounters counters; ///< summed over board epochs
  runtime::UtilizationIntegral utilization;
  sim::SimTime makespan = 0;         ///< completion time of the last app
  int submitted = 0;
  int completed = 0;
  /// Fault bookkeeping (all zero without a fault scenario). On a single
  /// board every displaced app is held and re-admitted at reboot, so
  /// apps_lost/apps_shed stay zero; evacuated / checkpoint_restored /
  /// restarted record how much progress survived each crash.
  cluster::RecoveryStats recovery;
  /// Board availability over the run (1.0 without a fault plane).
  double availability = 1.0;
  /// Checkpoint pass accounting summed over board epochs (all zero
  /// without an active CheckpointPolicy).
  runtime::CheckpointStats checkpoint;
};

struct RunOptions {
  fpga::BoardParams board_params;
  core::VersaSlotOptions vs_options;
  bool record_trace = false;
  /// When record_trace is set and this is non-empty, the span log is also
  /// written as Chrome trace-event JSON to this path after the run.
  std::string trace_path;
  /// Overrides the system's default fabric (design-space exploration of
  /// "any Big/Little configuration", §III-A).
  std::optional<fpga::FabricConfig> fabric;
  /// Safety net: abort the run if simulated time passes this bound.
  sim::SimTime time_limit = sim::seconds(36000.0);
  /// Telemetry bundle; null (the default) disables instrumentation. When
  /// set, the harness binds the board stack to its registry, starts its
  /// sampler, and records the run's config echo into its RunInfo. Single
  /// runs only — parallel sweep jobs must leave this null (one registry
  /// cannot be shared across replica threads).
  obs::Telemetry* telemetry = nullptr;
  /// Causal trace / journal hub (obs/trace_hub.h); null (the default)
  /// disables flow + journal emission entirely. When set, the harness
  /// attaches every board epoch's span recorder and binds the runtime to a
  /// per-board channel. Same single-run restriction as `telemetry`.
  obs::ClusterTraceHub* hub = nullptr;
  /// Decomposes every app's response time into queue-wait / reconfig /
  /// exec / paused / migration / recovery phases (board_runtime.h) and
  /// exports vs_app_phase_ms histograms when telemetry is bound. Off by
  /// default so instrument-free runs stay byte-identical.
  bool phase_accounting = false;
  /// Fault injection: the full scenario (PCAP CRC via stream "pcap/0",
  /// board crashes, slot SEUs, scripted timeline) drives a FaultPlane with
  /// this board registered as plane board 0. A crash freezes the live
  /// runtime epoch and holds displaced apps (and arrivals while down);
  /// the reboot scrubs the fabric, starts a fresh epoch and re-admits
  /// them. Link events are ignored — one board has no Aurora link.
  /// Disabled by default: the fault-free path is untouched. Cluster runs
  /// take the scenario through ClusterOptions::faults instead.
  faults::FaultScenario faults;
  /// Periodic DDR checkpointing (restores bundled apps across crashes).
  runtime::CheckpointPolicy checkpoint;
  /// > 0 runs the sharded event kernel (sim/sharded.h): the board lives on
  /// its own shard advanced in conservative windows by this many workers,
  /// while arrivals and the fault plane stay on the coordinator. 0 (the
  /// default) is the serial reference kernel; results are bit-identical
  /// either way (tests/sharded_kernel_test.cpp).
  int kernel_workers = 0;
};

/// Runs `sequence` to completion under `kind` on a fresh single board.
[[nodiscard]] RunResult run_single_board(
    SystemKind kind, const std::vector<apps::AppSpec>& suite,
    const workload::Sequence& sequence, const RunOptions& options = {});

/// Averages response-time summaries over several sequences (the paper runs
/// 10 sequences per congestion condition and reports means).
struct AggregateResult {
  std::string system;
  double mean_response_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::vector<double> all_responses_ms;  ///< pooled across sequences
};

[[nodiscard]] AggregateResult aggregate(
    SystemKind kind, const std::vector<apps::AppSpec>& suite,
    const std::vector<workload::Sequence>& sequences,
    const RunOptions& options = {});

/// Cluster run (Fig 8): live D_switch monitoring, optional switching.
struct ClusterRunResult {
  std::vector<runtime::CompletedApp> apps;  ///< completion order
  std::vector<double> response_ms;
  util::Summary response;
  std::vector<core::DSwitchSample> dswitch_trace;
  std::vector<cluster::SwitchEvent> switches;
  int submitted = 0;
  int completed = 0;
  /// Recovery bookkeeping (all zero without a fault scenario).
  cluster::RecoveryStats recovery;
  /// Mean board availability over the run (1.0 without a fault plane).
  double availability = 1.0;
  /// Checkpoint pass accounting summed over every board epoch (all zero
  /// without an active CheckpointPolicy).
  runtime::CheckpointStats checkpoint;
  /// Events executed by the kernel (coordinator + shards when sharded).
  /// Identical across kernels and worker counts for a given seed.
  std::uint64_t events = 0;
};

/// `telemetry`, when non-null, instruments the whole cluster (boards,
/// policies, Aurora link, D_switch loop) and runs its sampler — results are
/// bit-identical either way. `options.kernel_workers > 0` runs the sharded
/// event kernel (one shard per board, that many window workers) instead of
/// the serial reference kernel; results are bit-identical by construction
/// (tests/sharded_kernel_test.cpp enforces it).
[[nodiscard]] ClusterRunResult run_cluster(
    const std::vector<apps::AppSpec>& suite,
    const workload::Sequence& sequence,
    const cluster::ClusterOptions& options,
    sim::SimTime time_limit = sim::seconds(36000.0),
    obs::Telemetry* telemetry = nullptr);

/// Completed apps whose phase account charged any time to kRecovery — i.e.
/// apps that finished *through* a crash (evacuated, restored, or restarted
/// and re-admitted). Requires phase accounting on the run; with it off (or
/// without faults) every account is zero and this returns 0.
[[nodiscard]] int recovered_completions(
    const std::vector<runtime::CompletedApp>& apps);

}  // namespace vs::metrics
