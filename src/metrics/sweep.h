// Deterministic parallel sweep execution.
//
// Every grid-shaped experiment in bench/ evaluates a (system × congestion ×
// sequence) grid of fully independent replicas: each run_single_board() call
// owns a fresh sim::Simulator, so replicas share no mutable state and can
// shard across hardware threads. SweepRunner does exactly that — one job per
// (SystemKind, Sequence, RunOptions) tuple — and collects RunResults keyed
// by job index, then reduces them in job order. Because each replica is a
// pure function of its inputs (identical seed => identical result) and the
// reduction order is fixed, aggregate output is bit-identical to the serial
// path for any worker count, including 1.
#pragma once

#include <functional>
#include <vector>

#include "metrics/experiment.h"
#include "util/thread_pool.h"

namespace vs::metrics {

/// One sweep cell: a system evaluated on one sequence under one option set.
struct SweepJob {
  SystemKind kind = SystemKind::kBaseline;
  workload::Sequence sequence;
  RunOptions options;
};

class SweepRunner {
 public:
  /// `jobs` is the worker count; 0 resolves via util::resolve_jobs()
  /// (--jobs is the caller's to parse; VS_JOBS and hardware concurrency
  /// resolve here).
  explicit SweepRunner(int jobs = 0)
      : jobs_(jobs > 0 ? jobs : util::resolve_jobs()) {}

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Runs every job on its own simulator replica and returns results in
  /// job order (results[i] belongs to sweep[i], regardless of which worker
  /// ran it or when it finished). If any replica throws, the remaining
  /// jobs still drain and the lowest-indexed exception is rethrown — so
  /// even the error path is deterministic.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<apps::AppSpec>& suite,
      const std::vector<SweepJob>& sweep) const;

  /// Parallel counterpart of metrics::aggregate(): shards the per-sequence
  /// replicas, then pools response times in sequence order. Bit-identical
  /// to the serial function for any worker count.
  [[nodiscard]] AggregateResult aggregate(
      SystemKind kind, const std::vector<apps::AppSpec>& suite,
      const std::vector<workload::Sequence>& sequences,
      const RunOptions& options = {}) const;

  /// Deterministic generic map for grids that do not fit SweepJob (cluster
  /// runs, custom reducers): evaluates fn(0..n-1) across the workers and
  /// returns results keyed by index. Same drain-then-rethrow error path
  /// as run().
  template <typename R>
  [[nodiscard]] std::vector<R> map(
      std::size_t n, const std::function<R(std::size_t)>& fn) const;

 private:
  int jobs_;
};

/// Reduces per-sequence results (in sequence order) into the pooled
/// AggregateResult exactly as metrics::aggregate() does.
[[nodiscard]] AggregateResult reduce_aggregate(
    SystemKind kind, const std::vector<RunResult>& per_sequence);

/// Free-function convenience over SweepRunner::run.
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<apps::AppSpec>& suite,
    const std::vector<SweepJob>& sweep, int jobs = 0);

/// Free-function convenience over SweepRunner::aggregate.
[[nodiscard]] AggregateResult parallel_aggregate(
    SystemKind kind, const std::vector<apps::AppSpec>& suite,
    const std::vector<workload::Sequence>& sequences,
    const RunOptions& options = {}, int jobs = 0);

// ---------------------------------------------------------------- inline

template <typename R>
std::vector<R> SweepRunner::map(
    std::size_t n, const std::function<R(std::size_t)>& fn) const {
  std::vector<R> results(n);
  std::vector<std::exception_ptr> errors(n);
  util::parallel_for(jobs_, n, [&](std::size_t i) {
    try {
      results[i] = fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

}  // namespace vs::metrics
