#include "metrics/sweep.h"

namespace vs::metrics {

std::vector<RunResult> SweepRunner::run(
    const std::vector<apps::AppSpec>& suite,
    const std::vector<SweepJob>& sweep) const {
  return map<RunResult>(sweep.size(), [&](std::size_t i) {
    const SweepJob& job = sweep[i];
    return run_single_board(job.kind, suite, job.sequence, job.options);
  });
}

AggregateResult SweepRunner::aggregate(
    SystemKind kind, const std::vector<apps::AppSpec>& suite,
    const std::vector<workload::Sequence>& sequences,
    const RunOptions& options) const {
  std::vector<SweepJob> sweep;
  sweep.reserve(sequences.size());
  for (const workload::Sequence& seq : sequences) {
    sweep.push_back(SweepJob{kind, seq, options});
  }
  return reduce_aggregate(kind, run(suite, sweep));
}

AggregateResult reduce_aggregate(SystemKind kind,
                                 const std::vector<RunResult>& per_sequence) {
  AggregateResult agg;
  agg.system = system_name(kind);
  for (const RunResult& r : per_sequence) {
    agg.all_responses_ms.insert(agg.all_responses_ms.end(),
                                r.response_ms.begin(), r.response_ms.end());
  }
  util::Summary s = util::summarize(agg.all_responses_ms);
  agg.mean_response_ms = s.mean;
  agg.p95_ms = s.p95;
  agg.p99_ms = s.p99;
  return agg;
}

std::vector<RunResult> run_sweep(const std::vector<apps::AppSpec>& suite,
                                 const std::vector<SweepJob>& sweep,
                                 int jobs) {
  return SweepRunner(jobs).run(suite, sweep);
}

AggregateResult parallel_aggregate(
    SystemKind kind, const std::vector<apps::AppSpec>& suite,
    const std::vector<workload::Sequence>& sequences,
    const RunOptions& options, int jobs) {
  return SweepRunner(jobs).aggregate(kind, suite, sequences, options);
}

}  // namespace vs::metrics
