// Scheduling-quality metrics beyond raw response time: per-application
// slowdown (response over an estimate of the app's unshared run time),
// Jain's fairness index over slowdowns, system throughput and makespan.
// Used by the extension benches to compare schedulers on dimensions the
// paper discusses qualitatively (monopolisation, starvation, fairness of
// preemption).
#pragma once

#include <vector>

#include "apps/task.h"
#include "fpga/params.h"
#include "metrics/experiment.h"

namespace vs::metrics {

struct QualityReport {
  /// Per-app slowdown = response time / estimated alone-on-the-fabric time.
  double mean_slowdown = 0;
  double p95_slowdown = 0;
  double max_slowdown = 0;
  /// Jain's fairness index over slowdowns: 1 = perfectly fair, 1/n = one
  /// app got everything.
  double jain_fairness = 0;
  /// Time from first arrival to last completion.
  double makespan_s = 0;
  /// Completed apps per second of makespan.
  double throughput_apps_per_s = 0;
};

/// Estimated response time of `app` at `batch` items if it had the board to
/// itself (pipeline on its optimal Little-slot allocation, including PR).
[[nodiscard]] sim::SimDuration alone_estimate(const apps::AppSpec& app,
                                              int batch,
                                              const fpga::BoardParams& params,
                                              int total_little = 8);

/// Computes the quality report from a finished run. `sequence` provides the
/// batch sizes keyed by the same submission order used by the runtime.
[[nodiscard]] QualityReport quality(const RunResult& run,
                                    const std::vector<apps::AppSpec>& suite,
                                    const workload::Sequence& sequence,
                                    const fpga::BoardParams& params = {});

}  // namespace vs::metrics
