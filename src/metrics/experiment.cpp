#include "metrics/experiment.h"

#include <stdexcept>

#include "baselines/baseline_exclusive.h"
#include "baselines/dml.h"
#include "baselines/fcfs.h"
#include "baselines/nimblock.h"
#include "baselines/round_robin.h"
#include "fpga/board.h"
#include "sim/simulator.h"
#include "sim/trace_export.h"

namespace vs::metrics {

const char* system_name(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kBaseline: return "Baseline";
    case SystemKind::kFcfs: return "FCFS";
    case SystemKind::kRoundRobin: return "RR";
    case SystemKind::kNimblock: return "Nimblock";
    case SystemKind::kVersaOnlyLittle: return "VersaSlot-OL";
    case SystemKind::kVersaBigLittle: return "VersaSlot-BL";
    case SystemKind::kDml: return "DML";
  }
  return "?";
}

fpga::FabricConfig fabric_for(SystemKind kind) {
  return kind == SystemKind::kVersaBigLittle
             ? fpga::FabricConfig::big_little()
             : fpga::FabricConfig::only_little();
}

std::unique_ptr<runtime::SchedulerPolicy> make_policy(
    SystemKind kind, const core::VersaSlotOptions& vs_options) {
  switch (kind) {
    case SystemKind::kBaseline:
      return std::make_unique<baselines::BaselineExclusivePolicy>();
    case SystemKind::kFcfs:
      return std::make_unique<baselines::FcfsPolicy>();
    case SystemKind::kRoundRobin:
      return std::make_unique<baselines::RoundRobinPolicy>();
    case SystemKind::kNimblock:
      return std::make_unique<baselines::NimblockPolicy>();
    case SystemKind::kVersaOnlyLittle: {
      core::VersaSlotOptions o = vs_options;
      o.mode = core::VersaSlotOptions::Mode::kOnlyLittle;
      return std::make_unique<core::VersaSlotPolicy>(o);
    }
    case SystemKind::kVersaBigLittle: {
      core::VersaSlotOptions o = vs_options;
      o.mode = core::VersaSlotOptions::Mode::kBigLittle;
      return std::make_unique<core::VersaSlotPolicy>(o);
    }
    case SystemKind::kDml:
      return std::make_unique<baselines::DmlPolicy>();
  }
  throw std::invalid_argument("unknown SystemKind");
}

RunResult run_single_board(SystemKind kind,
                           const std::vector<apps::AppSpec>& suite,
                           const workload::Sequence& sequence,
                           const RunOptions& options) {
  sim::Simulator sim;
  fpga::Board board(sim, "fpga0",
                    options.fabric.value_or(fabric_for(kind)),
                    options.board_params);
  auto policy = make_policy(kind, options.vs_options);
  runtime::BoardRuntime rt(board, *policy);
  rt.trace().enable(options.record_trace);
  if (options.faults.pcap_crc_probability > 0.0) {
    board.pcap().set_fault_model(options.faults.pcap_crc_probability,
                                 options.faults.stream("pcap/0"));
  }
  if (options.telemetry != nullptr) {
    rt.bind_metrics(options.telemetry->registry());
    options.telemetry->info().experiment = "single_board";
    options.telemetry->info().config = {
        {"system", system_name(kind)},
        {"board", board.name()},
        {"apps", std::to_string(sequence.size())},
    };
    options.telemetry->start_sampling(sim);
  }

  for (const apps::AppArrival& a : sequence) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite.at(static_cast<std::size_t>(a.spec_index)),
                a.spec_index, a.batch, a.arrival, a.item_interval);
    });
  }
  sim.run(options.time_limit);
  if (options.record_trace && !options.trace_path.empty()) {
    sim::write_chrome_trace_file(rt.trace().spans(), options.trace_path);
  }

  RunResult result;
  result.system = system_name(kind);
  result.submitted = static_cast<int>(sequence.size());
  result.completed = static_cast<int>(rt.completed().size());
  for (const runtime::CompletedApp& c : rt.completed()) {
    result.apps.push_back(c);
    result.response_ms.push_back(c.response_ms());
    result.makespan = std::max(result.makespan, c.completed);
  }
  result.response = util::summarize(result.response_ms);
  result.counters = rt.counters();
  result.utilization = rt.utilization();
  return result;
}

AggregateResult aggregate(SystemKind kind,
                          const std::vector<apps::AppSpec>& suite,
                          const std::vector<workload::Sequence>& sequences,
                          const RunOptions& options) {
  AggregateResult agg;
  agg.system = system_name(kind);
  for (const workload::Sequence& seq : sequences) {
    RunResult r = run_single_board(kind, suite, seq, options);
    agg.all_responses_ms.insert(agg.all_responses_ms.end(),
                                r.response_ms.begin(), r.response_ms.end());
  }
  util::Summary s = util::summarize(agg.all_responses_ms);
  agg.mean_response_ms = s.mean;
  agg.p95_ms = s.p95;
  agg.p99_ms = s.p99;
  return agg;
}

ClusterRunResult run_cluster(const std::vector<apps::AppSpec>& suite,
                             const workload::Sequence& sequence,
                             const cluster::ClusterOptions& options,
                             sim::SimTime time_limit,
                             obs::Telemetry* telemetry) {
  sim::Simulator sim;
  cluster::ClusterOptions cluster_options = options;
  if (telemetry != nullptr) {
    cluster_options.metrics = &telemetry->registry();
    telemetry->info().experiment = "cluster";
    telemetry->info().config = {
        {"apps", std::to_string(sequence.size())},
        {"t1", std::to_string(options.t1)},
        {"t2", std::to_string(options.t2)},
        {"boards_per_config", std::to_string(options.boards_per_config)},
    };
  }
  cluster::Cluster cluster(sim, suite, cluster_options);
  if (telemetry != nullptr) telemetry->start_sampling(sim);
  cluster.submit_sequence(sequence);
  sim.run(time_limit);

  ClusterRunResult result;
  result.submitted = cluster.submitted();
  result.completed = static_cast<int>(cluster.completed().size());
  for (const runtime::CompletedApp& c : cluster.completed()) {
    result.apps.push_back(c);
    result.response_ms.push_back(c.response_ms());
  }
  result.response = util::summarize(result.response_ms);
  result.dswitch_trace = cluster.dswitch().trace();
  result.switches = cluster.switches();
  result.recovery = cluster.recovery_stats();
  if (cluster.fault_plane() != nullptr) {
    result.availability = cluster.fault_plane()->mean_availability(sim.now());
  }
  return result;
}

}  // namespace vs::metrics
