#include "metrics/experiment.h"

#include <deque>
#include <stdexcept>

#include "baselines/baseline_exclusive.h"
#include "baselines/dml.h"
#include "faults/fault_plane.h"
#include "baselines/fcfs.h"
#include "baselines/nimblock.h"
#include "baselines/round_robin.h"
#include "fpga/board.h"
#include "obs/trace_hub.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/trace_export.h"

namespace vs::metrics {

const char* system_name(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kBaseline: return "Baseline";
    case SystemKind::kFcfs: return "FCFS";
    case SystemKind::kRoundRobin: return "RR";
    case SystemKind::kNimblock: return "Nimblock";
    case SystemKind::kVersaOnlyLittle: return "VersaSlot-OL";
    case SystemKind::kVersaBigLittle: return "VersaSlot-BL";
    case SystemKind::kDml: return "DML";
  }
  return "?";
}

fpga::FabricConfig fabric_for(SystemKind kind) {
  return kind == SystemKind::kVersaBigLittle
             ? fpga::FabricConfig::big_little()
             : fpga::FabricConfig::only_little();
}

std::unique_ptr<runtime::SchedulerPolicy> make_policy(
    SystemKind kind, const core::VersaSlotOptions& vs_options) {
  switch (kind) {
    case SystemKind::kBaseline:
      return std::make_unique<baselines::BaselineExclusivePolicy>();
    case SystemKind::kFcfs:
      return std::make_unique<baselines::FcfsPolicy>();
    case SystemKind::kRoundRobin:
      return std::make_unique<baselines::RoundRobinPolicy>();
    case SystemKind::kNimblock:
      return std::make_unique<baselines::NimblockPolicy>();
    case SystemKind::kVersaOnlyLittle: {
      core::VersaSlotOptions o = vs_options;
      o.mode = core::VersaSlotOptions::Mode::kOnlyLittle;
      return std::make_unique<core::VersaSlotPolicy>(o);
    }
    case SystemKind::kVersaBigLittle: {
      core::VersaSlotOptions o = vs_options;
      o.mode = core::VersaSlotOptions::Mode::kBigLittle;
      return std::make_unique<core::VersaSlotPolicy>(o);
    }
    case SystemKind::kDml:
      return std::make_unique<baselines::DmlPolicy>();
  }
  throw std::invalid_argument("unknown SystemKind");
}

RunResult run_single_board(SystemKind kind,
                           const std::vector<apps::AppSpec>& suite,
                           const workload::Sequence& sequence,
                           const RunOptions& options) {
  // Kernel selection: serial by default; kernel_workers > 0 puts the board
  // on its own shard, with arrivals and the fault plane on the coordinator.
  // The board carries shard tag 1 under BOTH kernels so the canonical
  // (time, tag, seq) event order — and with it every output — matches.
  std::optional<sim::ShardedSimulator> kernel;
  std::optional<sim::Simulator> serial_sim;
  if (options.kernel_workers > 0) {
    sim::ShardedOptions kernel_options;
    kernel_options.shards = 1;
    kernel_options.workers = options.kernel_workers;
    kernel_options.lookahead =
        cluster::conservative_lookahead(suite, fpga::LinkParams{});
    kernel.emplace(kernel_options);
  } else {
    serial_sim.emplace();
  }
  sim::Simulator& sim = kernel ? kernel->global() : *serial_sim;
  sim::Simulator& board_sim = kernel ? kernel->shard(0) : sim;
  fpga::Board board(board_sim, "fpga0",
                    options.fabric.value_or(fabric_for(kind)),
                    options.board_params);
  board.set_shard_tag(1);

  // One scheduling epoch per board-up interval, like the cluster: a crash
  // freezes the live runtime, and the reboot starts a fresh one on the
  // scrubbed board. Fault-free runs have exactly one epoch, so every code
  // path below matches the pre-epoch harness event for event.
  struct EpochState {
    std::unique_ptr<runtime::SchedulerPolicy> policy;
    std::unique_ptr<runtime::BoardRuntime> runtime;
  };
  std::vector<EpochState> epochs;
  RunResult result;
  result.system = system_name(kind);
  result.submitted = static_cast<int>(sequence.size());
  std::vector<sim::Span> spans;

  // Folds a finished (crashed or drained) epoch into the run totals.
  // Epochs retire in order and a frozen epoch completes nothing further,
  // so concatenating their completion lists preserves completion order.
  auto retire = [&](runtime::BoardRuntime& rt) {
    for (const runtime::CompletedApp& c : rt.completed()) {
      result.apps.push_back(c);
      result.response_ms.push_back(c.response_ms());
      result.makespan = std::max(result.makespan, c.completed);
    }
    const runtime::RuntimeCounters& rc = rt.counters();
    result.counters.pr_requests += rc.pr_requests;
    result.counters.pr_blocked += rc.pr_blocked;
    result.counters.launch_blocked += rc.launch_blocked;
    result.counters.items_executed += rc.items_executed;
    result.counters.apps_completed += rc.apps_completed;
    result.counters.preemptions += rc.preemptions;
    result.counters.passes += rc.passes;
    result.counters.ckpt_snapshots += rc.ckpt_snapshots;
    result.counters.ckpt_bytes += rc.ckpt_bytes;
    result.checkpoint += rt.checkpoint_stats();
    const runtime::UtilizationIntegral& u = rt.utilization();
    result.utilization.lut_used += u.lut_used;
    result.utilization.ff_used += u.ff_used;
    result.utilization.lut_capacity += u.lut_capacity;
    result.utilization.ff_capacity += u.ff_capacity;
    result.utilization.lut_fabric += u.lut_fabric;
    result.utilization.ff_fabric += u.ff_fabric;
    spans.insert(spans.end(), rt.trace().spans().begin(),
                 rt.trace().spans().end());
  };

  auto new_epoch = [&]() -> runtime::BoardRuntime& {
    EpochState e;
    e.policy = make_policy(kind, options.vs_options);
    e.runtime = std::make_unique<runtime::BoardRuntime>(board, *e.policy);
    e.runtime->trace().enable(options.record_trace);
    e.runtime->enable_checkpoints(options.checkpoint);
    if (options.phase_accounting) e.runtime->enable_phase_accounting();
    if (options.telemetry != nullptr) {
      // Idempotent registration: every epoch resolves the same cells
      // (same board name), so counters accumulate over the whole run.
      e.runtime->bind_metrics(options.telemetry->registry());
    }
    if (options.hub != nullptr) {
      options.hub->attach_spans(board.name(), &e.runtime->trace());
      if (options.hub->trace_enabled()) e.runtime->trace().enable();
      e.runtime->bind_observability(&options.hub->channel(board.name()));
    }
    epochs.push_back(std::move(e));
    return *epochs.back().runtime;
  };
  new_epoch();

  // Fault plane: the whole scenario applies to this board as plane board 0
  // (PCAP CRC through stream "pcap/0", exactly as the direct model did).
  // Displaced apps and arrivals during downtime are held and re-admitted
  // when the reboot brings the (single) board back.
  std::unique_ptr<faults::FaultPlane> plane;
  std::deque<runtime::BoardRuntime::MigratedApp> held;
  sim::SimTime last_crash_time = 0;
  std::uint64_t crash_flow = 0;
  if (options.faults.enabled()) {
    plane = std::make_unique<faults::FaultPlane>(sim, options.faults);
    if (options.telemetry != nullptr) {
      plane->bind_metrics(options.telemetry->registry());
    }
    plane->add_board(board);
    plane->set_handler([&](const faults::HealthEvent& e) {
      runtime::BoardRuntime& rt = *epochs.back().runtime;
      switch (e.kind) {
        case faults::FaultKind::kBoardCrash: {
          ++result.recovery.boards_crashed;
          last_crash_time = e.time;
          runtime::BoardRuntime::CrashReport report = rt.crash();
          retire(rt);
          result.recovery.apps_evacuated +=
              static_cast<int>(report.evacuable.size());
          result.recovery.apps_checkpoint_restored +=
              static_cast<int>(report.checkpointed.size());
          result.recovery.apps_restarted +=
              static_cast<int>(report.killed.size());
          std::size_t displaced = report.evacuable.size() +
                                  report.checkpointed.size() +
                                  report.killed.size();
          for (auto& m : report.evacuable) held.push_back(std::move(m));
          for (auto& m : report.checkpointed) held.push_back(std::move(m));
          for (auto& m : report.killed) held.push_back(std::move(m));
          if (options.hub != nullptr) {
            obs::TraceChannel& ch = options.hub->channel(board.name());
            if (ch.trace_on()) {
              crash_flow = ch.new_flow_id();
              ch.flow(crash_flow, obs::FlowPhase::kStart, e.time,
                      board.name(), "fault", "crash " + board.name());
            }
            if (ch.journal_on()) {
              ch.journal(e.time, obs::JournalEvent::kCrash, board.name(), -1,
                         {}, crash_flow,
                         std::to_string(displaced) + " displaced");
            }
          }
          break;
        }
        case faults::FaultKind::kBoardReboot: {
          ++result.recovery.boards_rebooted;
          // The reboot reloads the full bitstream: fresh slots, empty
          // fabric — then the held apps re-admit into a fresh epoch.
          board.reconfigure_fabric(board.fabric());
          runtime::BoardRuntime& fresh = new_epoch();
          while (!held.empty()) {
            runtime::BoardRuntime::MigratedApp m = std::move(held.front());
            held.pop_front();
            ++result.recovery.readmissions;
            const apps::AppSpec& spec =
                suite.at(static_cast<std::size_t>(m.spec_index));
            if (options.hub != nullptr) {
              obs::TraceChannel& ch = options.hub->channel(board.name());
              if (ch.journal_on()) {
                ch.journal(sim.now(), obs::JournalEvent::kReadmit,
                           board.name(), -1, spec.name, crash_flow);
              }
              if (crash_flow != 0) {
                ch.flow(crash_flow, obs::FlowPhase::kEnd, sim.now(),
                        board.name(), "recovery", "readmit");
                crash_flow = 0;
              }
            }
            fresh.submit_migrated(spec, m, runtime::AppPhase::kRecovery);
          }
          // MTTR on one board: crash to re-admission (re-admission happens
          // at reboot, so the repair window is detection-free downtime).
          result.recovery.mttr_total += sim.now() - last_crash_time;
          ++result.recovery.mttr_count;
          break;
        }
        case faults::FaultKind::kSlotSeu:
          ++result.recovery.slot_seus;
          if (!rt.crashed()) rt.inject_slot_seu(e.slot);
          break;
        case faults::FaultKind::kRackEvent:
          // The (single-board) rack's member crash follows as its own
          // kBoardCrash event; the rack record is bookkeeping.
          ++result.recovery.rack_events;
          break;
        case faults::FaultKind::kLinkDown:
        case faults::FaultKind::kLinkUp:
          break;  // a single board has no Aurora link
      }
    });
    plane->start();
  }

  if (options.telemetry != nullptr) {
    options.telemetry->info().experiment = "single_board";
    options.telemetry->info().config = {
        {"system", system_name(kind)},
        {"board", board.name()},
        {"apps", std::to_string(sequence.size())},
    };
    options.telemetry->start_sampling(sim);
  }

  for (const apps::AppArrival& a : sequence) {
    sim.schedule_at(a.arrival, [&epochs, &held, &suite, a] {
      runtime::BoardRuntime& rt = *epochs.back().runtime;
      if (rt.crashed()) {
        // Board down: hold the arrival for re-admission at reboot. Its
        // original arrival time is kept, so the downtime shows up in the
        // app's response time.
        runtime::BoardRuntime::MigratedApp m;
        m.spec_index = a.spec_index;
        m.batch = a.batch;
        m.arrival = a.arrival;
        m.item_interval = a.item_interval;
        m.state_bytes = 0;
        held.push_back(std::move(m));
        return;
      }
      rt.submit(suite.at(static_cast<std::size_t>(a.spec_index)),
                a.spec_index, a.batch, a.arrival, a.item_interval);
    });
  }
  if (kernel) {
    kernel->run(options.time_limit);
  } else {
    sim.run(options.time_limit);
  }

  if (!epochs.back().runtime->crashed()) retire(*epochs.back().runtime);
  if (options.record_trace && !options.trace_path.empty()) {
    sim::write_chrome_trace_file(spans, options.trace_path);
  }
  // Snapshot span logs into the hub before the epochs are torn down so the
  // caller can export after this function returns.
  if (options.hub != nullptr) options.hub->seal();
  result.completed = static_cast<int>(result.apps.size());
  result.response = util::summarize(result.response_ms);
  if (plane != nullptr) {
    result.availability = plane->mean_availability(sim.now());
  }
  return result;
}

AggregateResult aggregate(SystemKind kind,
                          const std::vector<apps::AppSpec>& suite,
                          const std::vector<workload::Sequence>& sequences,
                          const RunOptions& options) {
  AggregateResult agg;
  agg.system = system_name(kind);
  for (const workload::Sequence& seq : sequences) {
    RunResult r = run_single_board(kind, suite, seq, options);
    agg.all_responses_ms.insert(agg.all_responses_ms.end(),
                                r.response_ms.begin(), r.response_ms.end());
  }
  util::Summary s = util::summarize(agg.all_responses_ms);
  agg.mean_response_ms = s.mean;
  agg.p95_ms = s.p95;
  agg.p99_ms = s.p99;
  return agg;
}

namespace {

ClusterRunResult collect_cluster_result(const cluster::Cluster& cluster,
                                        sim::SimTime now,
                                        std::uint64_t events) {
  ClusterRunResult result;
  result.submitted = cluster.submitted();
  result.completed = static_cast<int>(cluster.completed().size());
  for (const runtime::CompletedApp& c : cluster.completed()) {
    result.apps.push_back(c);
    result.response_ms.push_back(c.response_ms());
  }
  result.response = util::summarize(result.response_ms);
  result.dswitch_trace = cluster.dswitch().trace();
  result.switches = cluster.switches();
  result.recovery = cluster.recovery_stats();
  result.checkpoint = cluster.checkpoint_stats();
  if (cluster.fault_plane() != nullptr) {
    result.availability = cluster.fault_plane()->mean_availability(now);
  }
  result.events = events;
  return result;
}

}  // namespace

int recovered_completions(const std::vector<runtime::CompletedApp>& apps) {
  int n = 0;
  for (const runtime::CompletedApp& c : apps) {
    auto phase = static_cast<std::size_t>(runtime::AppPhase::kRecovery);
    if (c.phase_ns[phase] > 0) ++n;
  }
  return n;
}

ClusterRunResult run_cluster(const std::vector<apps::AppSpec>& suite,
                             const workload::Sequence& sequence,
                             const cluster::ClusterOptions& options,
                             sim::SimTime time_limit,
                             obs::Telemetry* telemetry) {
  cluster::ClusterOptions cluster_options = options;
  if (telemetry != nullptr) {
    cluster_options.metrics = &telemetry->registry();
    telemetry->info().experiment = "cluster";
    telemetry->info().config = {
        {"apps", std::to_string(sequence.size())},
        {"t1", std::to_string(options.t1)},
        {"t2", std::to_string(options.t2)},
        {"boards_per_config", std::to_string(options.boards_per_config)},
    };
  }
  if (options.kernel_workers > 0) {
    // Sharded event kernel: one shard per board, conservative windows
    // bounded by the suite's minimum item latency. Everything observable
    // is bit-identical to the serial branch below.
    sim::ShardedOptions kernel_options;
    kernel_options.shards = 2 * options.boards_per_config;
    kernel_options.workers = options.kernel_workers;
    kernel_options.lookahead =
        cluster::conservative_lookahead(suite, options.link_params);
    sim::ShardedSimulator kernel(kernel_options);
    cluster_options.sharded = &kernel;
    cluster::Cluster cluster(kernel.global(), suite, cluster_options);
    if (telemetry != nullptr) telemetry->start_sampling(kernel.global());
    cluster.submit_sequence(sequence);
    kernel.run(time_limit);
    if (cluster_options.hub != nullptr) cluster_options.hub->seal();
    return collect_cluster_result(cluster, kernel.global().now(),
                                  kernel.events_executed());
  }
  sim::Simulator sim;
  cluster::Cluster cluster(sim, suite, cluster_options);
  if (telemetry != nullptr) telemetry->start_sampling(sim);
  cluster.submit_sequence(sequence);
  sim.run(time_limit);
  if (cluster_options.hub != nullptr) cluster_options.hub->seal();
  return collect_cluster_result(cluster, sim.now(), sim.events_executed());
}

}  // namespace vs::metrics
