#include "metrics/quality.h"

#include <algorithm>

#include "apps/bundling.h"
#include "util/stats.h"

namespace vs::metrics {

sim::SimDuration alone_estimate(const apps::AppSpec& app, int batch,
                                const fpga::BoardParams& params,
                                int total_little) {
  int k = apps::optimal_little_slots(app, batch, params, total_little);
  return apps::estimate_little_makespan(app, batch, k, params);
}

QualityReport quality(const RunResult& run,
                      const std::vector<apps::AppSpec>& suite,
                      const workload::Sequence& sequence,
                      const fpga::BoardParams& params) {
  QualityReport report;
  if (run.apps.empty()) return report;

  std::vector<double> slowdowns;
  sim::SimTime first_arrival = run.apps.front().arrival;
  sim::SimTime last_completion = 0;
  for (const runtime::CompletedApp& c : run.apps) {
    first_arrival = std::min(first_arrival, c.arrival);
    last_completion = std::max(last_completion, c.completed);
    // app_id is the submission index, which matches the sequence order.
    if (c.app_id < 0 ||
        c.app_id >= static_cast<int>(sequence.size())) {
      continue;
    }
    const apps::AppArrival& a =
        sequence[static_cast<std::size_t>(c.app_id)];
    const apps::AppSpec& spec =
        suite[static_cast<std::size_t>(a.spec_index)];
    double ideal_ms =
        sim::to_ms(alone_estimate(spec, a.batch, params));
    if (ideal_ms <= 0) continue;
    slowdowns.push_back(c.response_ms() / ideal_ms);
  }
  if (slowdowns.empty()) return report;

  util::Summary s = util::summarize(slowdowns);
  report.mean_slowdown = s.mean;
  report.p95_slowdown = s.p95;
  report.max_slowdown = s.max;

  double sum = 0, sum_sq = 0;
  for (double v : slowdowns) {
    sum += v;
    sum_sq += v * v;
  }
  report.jain_fairness =
      sum * sum / (static_cast<double>(slowdowns.size()) * sum_sq);

  report.makespan_s = sim::to_seconds(last_completion - first_arrival);
  if (report.makespan_s > 0) {
    report.throughput_apps_per_s =
        static_cast<double>(run.apps.size()) / report.makespan_s;
  }
  return report;
}

}  // namespace vs::metrics
