// Runs one workload under all six systems the paper compares (Baseline,
// FCFS, RR, Nimblock, VersaSlot Only.Little, VersaSlot Big.Little) and
// prints mean/P95/P99 response times side by side — a miniature of the
// paper's Fig 5/6 experiment on a single sequence.
//
// Usage: scheduler_comparison [loose|standard|stress|realtime] [n_apps] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/versaslot.h"

int main(int argc, char** argv) {
  using namespace vs;

  workload::Congestion congestion = workload::Congestion::kStandard;
  if (argc > 1) {
    std::string arg = argv[1];
    if (arg == "loose") congestion = workload::Congestion::kLoose;
    else if (arg == "standard") congestion = workload::Congestion::kStandard;
    else if (arg == "stress") congestion = workload::Congestion::kStress;
    else if (arg == "realtime") congestion = workload::Congestion::kRealtime;
    else {
      std::cerr << "unknown congestion '" << arg << "'\n";
      return 1;
    }
  }
  int n_apps = argc > 2 ? std::atoi(argv[2]) : 20;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = congestion;
  config.apps_per_sequence = n_apps;
  util::Rng rng(seed);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  std::cout << "Workload: " << n_apps << " apps, "
            << workload::congestion_name(congestion)
            << " arrivals, seed " << seed << "\n\n";

  util::Table table({"system", "fabric", "mean ms", "P95 ms", "P99 ms",
                     "PRs", "PR-blocked", "preempt", "done"});
  double baseline_mean = 0;
  for (int k = 0; k < metrics::kSystemCount; ++k) {
    auto kind = static_cast<metrics::SystemKind>(k);
    metrics::RunResult r =
        metrics::run_single_board(kind, suite, sequence);
    if (kind == metrics::SystemKind::kBaseline) baseline_mean = r.response.mean;
    table.add_row();
    table.cell(r.system);
    table.cell(metrics::fabric_for(kind).name());
    table.cell(r.response.mean, 1);
    table.cell(r.response.p95, 1);
    table.cell(r.response.p99, 1);
    table.cell(r.counters.pr_requests);
    table.cell(r.counters.pr_blocked);
    table.cell(r.counters.preemptions);
    table.cell(std::to_string(r.completed) + "/" +
               std::to_string(r.submitted));
  }
  table.print(std::cout);
  std::cout << "\n(baseline mean " << util::fmt(baseline_mean, 1)
            << " ms; lower is better)\n";
  return 0;
}
