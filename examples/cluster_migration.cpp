// Cross-board switching demo (the paper's §III-D / Fig 8 machinery): a long
// workload runs on a two-board cluster; the D_switch metric is sampled every
// 4 candidate-queue updates and fed into the Schmitt-trigger switch loop.
// When it crosses T1 the cluster live-migrates waiting applications over the
// Aurora link from the Only.Little board to the pre-warmed Big.Little board.
//
// Usage: cluster_migration [n_apps] [seed]
#include <cstdlib>
#include <iostream>

#include "core/versaslot.h"

int main(int argc, char** argv) {
  using namespace vs;

  int n_apps = argc > 1 ? std::atoi(argv[1]) : 80;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = n_apps;
  util::Rng rng(seed);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options;
  metrics::ClusterRunResult with_switching =
      metrics::run_cluster(suite, sequence, options);

  cluster::ClusterOptions no_switching = options;
  no_switching.enable_switching = false;
  metrics::ClusterRunResult only_little =
      metrics::run_cluster(suite, sequence, no_switching);

  std::cout << "Cluster live-migration demo — " << n_apps
            << " apps, Stress arrivals, T1=" << options.t1
            << " T2=" << options.t2 << "\n\nD_switch trace (every "
            << options.dswitch_period << " queue updates):\n";
  util::Table trace({"t (s)", "D_switch", "blocked", "PRs", "apps",
                     "batch"});
  for (const core::DSwitchSample& s : with_switching.dswitch_trace) {
    trace.add_row();
    trace.cell(sim::to_seconds(s.time), 1);
    trace.cell(s.value, 3);
    trace.cell(s.blocked);
    trace.cell(s.prs);
    trace.cell(s.apps);
    trace.cell(s.batch);
  }
  trace.print(std::cout);

  std::cout << "\nSwitch events:\n";
  if (with_switching.switches.empty()) {
    std::cout << "  (none triggered)\n";
  }
  for (const cluster::SwitchEvent& e : with_switching.switches) {
    std::cout << "  t=" << util::fmt(sim::to_seconds(e.time), 2) << "s  -> "
              << (e.to == core::SwitchLoop::Config::kBigLittle
                      ? "Big.Little"
                      : "Only.Little")
              << "  D=" << util::fmt(e.dswitch, 3) << "  migrated "
              << e.apps_migrated << " apps (" << e.bytes << " B) in "
              << util::fmt_duration_ns(e.overhead) << "\n";
  }

  std::cout << "\nResponse time:  with switching mean "
            << util::fmt(with_switching.response.mean, 1) << " ms ("
            << with_switching.completed << "/" << with_switching.submitted
            << " done);  Only.Little-only mean "
            << util::fmt(only_little.response.mean, 1) << " ms ("
            << only_little.completed << "/" << only_little.submitted
            << " done);  improvement "
            << util::fmt(only_little.response.mean /
                             std::max(with_switching.response.mean, 1e-9),
                         2)
            << "x\n";
  return 0;
}
