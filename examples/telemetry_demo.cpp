// Telemetry demo: run a congested workload through the two-board cluster
// (VersaSlot Big.Little + Only.Little, D_switch loop, Aurora migration)
// with the metrics registry bound and the 50 ms sampler running, then
// render the registry as an ASCII dashboard.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/telemetry_demo
//
// Export machine-readable snapshots next to the dashboard:
//   ./build/examples/telemetry_demo --metrics-out demo
//   # -> demo.prom (Prometheus text), demo.jsonl (time series),
//   #    demo.report.json (run report)
// or equivalently VS_METRICS=demo ./build/examples/telemetry_demo.
#include <iostream>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "obs/telemetry.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vs;

  util::CliArgs args(argc, argv);
  const std::string metrics_out = obs::resolve_metrics_out(&args);

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  // Stress arrivals congest the Only.Little board enough to exercise the
  // whole control plane: PCAP queueing, bundled Big bindings, D_switch
  // threshold crossings, and Aurora live migration.
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 30;
  util::Rng rng(/*seed=*/2025);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  obs::Telemetry telemetry;
  metrics::ClusterRunResult result = metrics::run_cluster(
      suite, sequence, cluster::ClusterOptions{}, sim::seconds(36000.0),
      &telemetry);
  telemetry.info().config.emplace_back("example", "telemetry_demo");

  std::cout << telemetry.dashboard("VersaSlot cluster telemetry") << "\n";

  std::cout << "completed " << result.completed << "/" << result.submitted
            << " apps;  mean response " << util::fmt(result.response.mean, 1)
            << " ms;  " << result.switches.size() << " cross-board switch(es);  "
            << telemetry.sampler().snapshots().size()
            << " sampler snapshots @ "
            << sim::to_ms(telemetry.sampler().interval()) << " ms\n";

  if (!metrics_out.empty()) {
    telemetry.write_outputs(metrics_out);
    std::cout << "Telemetry written to " << metrics_out
              << ".{prom,jsonl,report.json}\n";
  }
  return 0;
}
