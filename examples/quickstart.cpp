// Quickstart: submit a small workload to a Big.Little board running the
// VersaSlot scheduler and print per-application response times.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/versaslot.h"

int main() {
  using namespace vs;

  // 1. Describe the board (ZCU216-like defaults) and build the benchmark
  //    suite: 3DR, LeNet, IC, AlexNet, OpticalFlow.
  fpga::BoardParams params;
  std::vector<apps::AppSpec> suite = apps::make_suite(params);

  // 2. Generate a workload: 8 applications, Standard arrival intervals
  //    (uniform 1500-2000 ms), batch sizes 5-30.
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStandard;
  config.apps_per_sequence = 8;
  util::Rng rng(/*seed=*/2025);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  // 3. Run it under the VersaSlot Big.Little scheduler.
  metrics::RunResult result = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, sequence);

  // 4. Report.
  std::cout << "VersaSlot quickstart — " << result.system << " on "
            << fabric_for(metrics::SystemKind::kVersaBigLittle).name()
            << " fabric\n\n";
  std::vector<double> by_id(sequence.size(), -1.0);
  for (const auto& c : result.apps) {
    by_id[static_cast<std::size_t>(c.app_id)] = c.response_ms();
  }
  util::Table table({"app", "batch", "arrival", "response"});
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const apps::AppArrival& a = sequence[i];
    table.add_row();
    table.cell(suite[static_cast<std::size_t>(a.spec_index)].name);
    table.cell(static_cast<long long>(a.batch));
    table.cell(util::fmt_duration_ns(a.arrival));
    table.cell(by_id[i] >= 0 ? util::fmt(by_id[i], 1) + " ms"
                             : std::string("-"));
  }
  table.print(std::cout);

  std::cout << "\ncompleted " << result.completed << "/" << result.submitted
            << " apps;  mean response " << util::fmt(result.response.mean, 1)
            << " ms;  P95 " << util::fmt(result.response.p95, 1)
            << " ms\nPR ops " << result.counters.pr_requests << " ("
            << result.counters.pr_blocked
            << " queued behind another);  items executed "
            << result.counters.items_executed << "\n";
  return 0;
}
