// Dynamic batch processing demo (§III-A): live sources feed items over
// time instead of staging whole batches. Three camera-style feeds run the
// Optical Flow pipeline at different frame rates alongside staged batch
// jobs, under VersaSlot Big.Little — showing how source-bound and
// compute-bound applications share the fabric.
//
// Usage: streaming_feed [fps1 fps2 fps3]
#include <cstdlib>
#include <iostream>

#include "core/versaslot.h"

int main(int argc, char** argv) {
  using namespace vs;

  double fps[3] = {25.0, 10.0, 5.0};
  for (int i = 0; i < 3 && i + 1 < argc; ++i) {
    fps[i] = std::atof(argv[i + 1]);
  }

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::Sequence seq;
  // Three live Optical Flow feeds (30 frames each) at the given rates...
  for (int i = 0; i < 3; ++i) {
    apps::AppArrival a;
    a.spec_index = 4;  // OF
    a.batch = 30;
    a.arrival = sim::ms(100.0 * i);
    a.item_interval = sim::seconds(1.0 / fps[i]);
    seq.push_back(a);
  }
  // ... plus two staged batch jobs arriving mid-run.
  for (int i = 0; i < 2; ++i) {
    apps::AppArrival a;
    a.spec_index = i == 0 ? 2 : 1;  // IC, LeNet
    a.batch = 12;
    a.arrival = sim::seconds(0.5 + 0.8 * i);
    seq.push_back(a);
  }

  metrics::RunResult r = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq);

  std::cout << "Streaming-feed demo — VersaSlot Big.Little\n\n";
  util::Table table({"app", "kind", "source", "batch", "response",
                     "source-bound floor"});
  for (const auto& c : r.apps) {
    const apps::AppArrival& a = seq[static_cast<std::size_t>(c.app_id)];
    table.add_row();
    table.cell(c.name + "#" + std::to_string(c.app_id));
    table.cell(a.item_interval > 0 ? "live feed" : "staged");
    table.cell(a.item_interval > 0
                   ? util::fmt(1e9 / static_cast<double>(a.item_interval), 1) +
                         " items/s"
                   : std::string("-"));
    table.cell(static_cast<std::int64_t>(a.batch));
    table.cell(util::fmt(c.response_ms(), 1) + " ms");
    // A live feed cannot finish before its last item is produced.
    table.cell(a.item_interval > 0
                   ? util::fmt(sim::to_ms(a.item_interval) * (a.batch - 1), 1) +
                         " ms"
                   : std::string("-"));
  }
  table.print(std::cout);
  std::cout << "\ncompleted " << r.completed << "/" << r.submitted
            << "; live feeds track their source rate while staged jobs run "
               "compute-bound in between\n";
  return 0;
}
