// General-purpose simulation driver: run any system on any workload from
// the command line, with quality metrics, CSV export, workload persistence
// and Chrome-trace output.
//
// Examples:
//   simulate --system versaslot-bl --congestion stress --apps 20 --seed 7
//   simulate --system nimblock --workload saved.csv --quality
//   simulate --system versaslot-ol --apps 40 --save-workload w.csv
//   simulate --cluster --apps 80 --boards 2 --congestion stress
//   simulate --system versaslot-bl --apps 10 --trace out.json
#include <iostream>

#include "core/versaslot.h"
#include "metrics/quality.h"
#include "util/cli.h"
#include "util/csv.h"
#include "workload/patterns.h"

namespace {

using namespace vs;

constexpr const char* kUsage = R"(usage: simulate [options]
  --system NAME       baseline|fcfs|rr|nimblock|dml|versaslot-ol|versaslot-bl
                      (default versaslot-bl)
  --congestion NAME   loose|standard|stress|realtime (default standard)
  --apps N            applications per sequence (default 20)
  --seed S            workload seed (default 7)
  --workload FILE     load the workload from a CSV instead of generating
  --save-workload F   save the generated workload to a CSV
  --cluster           run on the two-pool cluster with live migration
  --boards N          boards per fabric configuration (cluster mode)
  --quality           print slowdown/fairness/throughput metrics
  --csv FILE          append one summary row to a CSV file
  --trace FILE        write a Chrome trace of the run (single-board mode)
  --help              this text
)";

bool parse_system(const std::string& name, metrics::SystemKind& kind) {
  const std::pair<const char*, metrics::SystemKind> table[] = {
      {"baseline", metrics::SystemKind::kBaseline},
      {"fcfs", metrics::SystemKind::kFcfs},
      {"rr", metrics::SystemKind::kRoundRobin},
      {"nimblock", metrics::SystemKind::kNimblock},
      {"dml", metrics::SystemKind::kDml},
      {"versaslot-ol", metrics::SystemKind::kVersaOnlyLittle},
      {"versaslot-bl", metrics::SystemKind::kVersaBigLittle},
  };
  for (const auto& [label, k] : table) {
    if (name == label) {
      kind = k;
      return true;
    }
  }
  return false;
}

bool parse_congestion(const std::string& name, workload::Congestion& c) {
  const std::pair<const char*, workload::Congestion> table[] = {
      {"loose", workload::Congestion::kLoose},
      {"standard", workload::Congestion::kStandard},
      {"stress", workload::Congestion::kStress},
      {"realtime", workload::Congestion::kRealtime},
  };
  for (const auto& [label, k] : table) {
    if (name == label) {
      c = k;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }

  metrics::SystemKind kind = metrics::SystemKind::kVersaBigLittle;
  if (!parse_system(args.get("system", "versaslot-bl"), kind)) {
    std::cerr << "unknown --system\n" << kUsage;
    return 1;
  }
  workload::Congestion congestion = workload::Congestion::kStandard;
  if (!parse_congestion(args.get("congestion", "standard"), congestion)) {
    std::cerr << "unknown --congestion\n" << kUsage;
    return 1;
  }

  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  workload::Sequence sequence;
  if (args.has("workload")) {
    sequence = workload::load_sequence(args.get("workload"));
  } else {
    workload::WorkloadConfig config;
    config.congestion = congestion;
    config.apps_per_sequence = static_cast<int>(args.get_int("apps", 20));
    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    sequence = workload::generate_sequence(config, rng);
  }
  if (args.has("save-workload")) {
    workload::save_sequence(sequence, args.get("save-workload"));
    std::cout << "workload saved to " << args.get("save-workload") << "\n";
  }

  if (args.get_bool("cluster")) {
    cluster::ClusterOptions options;
    options.boards_per_config =
        static_cast<int>(args.get_int("boards", 1));
    auto r = metrics::run_cluster(suite, sequence, options);
    std::cout << "cluster run: " << r.completed << "/" << r.submitted
              << " apps, mean " << util::fmt(r.response.mean, 1)
              << " ms, P95 " << util::fmt(r.response.p95, 1) << " ms, "
              << r.switches.size() << " switches\n";
    for (const auto& e : r.switches) {
      std::cout << "  switch @ " << util::fmt(sim::to_seconds(e.time), 2)
                << "s -> "
                << (e.to == core::SwitchLoop::Config::kBigLittle
                        ? "Big.Little"
                        : "Only.Little")
                << " (" << e.apps_migrated << " apps, "
                << util::fmt_duration_ns(e.overhead) << ")\n";
    }
    return 0;
  }

  metrics::RunOptions options;
  options.record_trace = args.has("trace");
  options.trace_path = args.get("trace");
  metrics::RunResult r =
      metrics::run_single_board(kind, suite, sequence, options);
  if (options.record_trace) {
    std::cout << "trace written to " << options.trace_path << "\n";
  }

  std::cout << r.system << ": " << r.completed << "/" << r.submitted
            << " apps, mean " << util::fmt(r.response.mean, 1) << " ms, P95 "
            << util::fmt(r.response.p95, 1) << " ms, P99 "
            << util::fmt(r.response.p99, 1) << " ms\nPRs "
            << r.counters.pr_requests << " (" << r.counters.pr_blocked
            << " queued), preemptions " << r.counters.preemptions
            << ", items " << r.counters.items_executed << "\n";

  if (args.get_bool("quality")) {
    metrics::QualityReport q = metrics::quality(r, suite, sequence, params);
    std::cout << "quality: mean slowdown " << util::fmt(q.mean_slowdown, 2)
              << ", P95 slowdown " << util::fmt(q.p95_slowdown, 2)
              << ", Jain fairness " << util::fmt(q.jain_fairness, 3)
              << ", throughput " << util::fmt(q.throughput_apps_per_s, 2)
              << " apps/s\n";
  }

  if (args.has("csv")) {
    util::CsvWriter csv(args.get("csv"));
    csv.header({"system", "congestion", "apps", "mean_ms", "p95_ms",
                "p99_ms", "prs", "pr_blocked"});
    csv.row({r.system, args.get("congestion", "standard"),
             std::to_string(r.submitted), util::fmt(r.response.mean, 3),
             util::fmt(r.response.p95, 3), util::fmt(r.response.p99, 3),
             std::to_string(r.counters.pr_requests),
             std::to_string(r.counters.pr_blocked)});
    std::cout << "summary appended to " << args.get("csv") << "\n";
  }
  return 0;
}
