// Fig 2 reproduction: the PR-contention / task-execution-blocking timeline.
//
// Two applications, each with 3 tasks and small batches, run on four Little
// slots under three schedulers:
//   - Nimblock (single-core): each PCAP load suspends the scheduler, so
//     batch launches and the other app's PRs queue behind it;
//   - VersaSlot Only.Little (dual-core): launches proceed during PRs, but
//     PCAP serialisation still delays bitstream loads;
//   - VersaSlot Big.Little: each app is bundled into one Big-slot 3-in-1
//     task; a single PR per app, no cross-app PR interference.
// The ASCII Gantt rendering makes the blocking structure visible, and the
// summary line quantifies response times for both apps.
#include <iostream>

#include "core/versaslot.h"

namespace {

using namespace vs;

apps::AppSpec make_demo_app(const std::string& name,
                            const fpga::BoardParams& params) {
  apps::AppSpec app;
  app.name = name;
  for (int i = 0; i < 3; ++i) {
    apps::TaskSpec t;
    t.index = i;
    t.name = "T" + std::to_string(i + 1);
    t.synth_usage = {24'000, 36'000, 32, 120};
    t.impl_usage = {15'000, 23'000, 32, 120};
    t.item_latency = sim::ms(30.0);
    t.item_bytes_in = 200'000;
    t.item_bytes_out = 100'000;
    t.bitstream_bytes = params.little_bitstream_bytes;
    app.tasks.push_back(t);
  }
  return app;
}

void run_scenario(metrics::SystemKind kind) {
  sim::Simulator sim;
  fpga::Board board(sim, "fpga0", metrics::fabric_for(kind));
  auto policy = metrics::make_policy(kind);
  runtime::BoardRuntime rt(board, *policy);
  rt.trace().enable();

  apps::AppSpec app1 = make_demo_app("App1", board.params());
  apps::AppSpec app2 = make_demo_app("App2", board.params());
  rt.submit(app1, 0, /*batch=*/3, 0);
  sim.schedule(sim::ms(20.0), [&] { rt.submit(app2, 1, /*batch=*/2, sim::ms(20.0)); });
  sim.run();

  std::cout << "--- " << policy->name() << " ("
            << metrics::fabric_for(kind).name() << " fabric) ---\n";
  std::cout << sim::render_gantt(rt.trace().spans(), 110);
  for (const auto& c : rt.completed()) {
    std::cout << "  " << c.name << " response: "
              << util::fmt(c.response_ms(), 1) << " ms\n";
  }
  std::cout << "  PRs: " << rt.counters().pr_requests << " ("
            << rt.counters().pr_blocked
            << " queued behind another), blocked scheduler passes: "
            << rt.counters().launch_blocked << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Fig 2 scenario: App1 (3 tasks, batch 3) and App2 (3 tasks, "
               "batch 2) sharing one FPGA\n\n";
  run_scenario(vs::metrics::SystemKind::kNimblock);
  run_scenario(vs::metrics::SystemKind::kVersaOnlyLittle);
  run_scenario(vs::metrics::SystemKind::kVersaBigLittle);
  std::cout << "Note how the single-core scheduler's reconfigurations (#) "
               "serialise with executions (=),\nwhile Big.Little loads one "
               "bundle per app and pipelines internally.\n";
  return 0;
}
