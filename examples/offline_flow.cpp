// Offline preparation flow demo: partition a user-defined streaming kernel
// graph into Little-slot-sized tasks (what the paper's Vivado TCL scripts
// do), inspect the bitstream manifest the SD card must hold, run the
// partitioned application under VersaSlot Big.Little, and export a Chrome
// trace of the execution (open chrome://tracing or ui.perfetto.dev and load
// offline_flow_trace.json).
#include <iostream>

#include "core/versaslot.h"

int main() {
  using namespace vs;

  // A 10-stage video-analytics pipeline: decode -> preprocess -> detect ->
  // track -> encode, with raw resource estimates per stage.
  apps::OfflineFlowConfig config;
  apps::KernelGraph graph{"VideoPipe", {}};
  struct Stage {
    const char* name;
    double lut_frac, ff_frac, bram_frac, dsp_frac, latency_ms, mb;
  };
  const Stage stages[] = {
      {"decode", 0.30, 0.22, 0.40, 0.10, 3.0, 1.2},
      {"resize", 0.15, 0.12, 0.10, 0.20, 1.0, 0.9},
      {"denoise", 0.35, 0.28, 0.25, 0.30, 4.0, 0.9},
      {"edge", 0.25, 0.20, 0.15, 0.25, 2.0, 0.9},
      {"conv_a", 0.55, 0.40, 0.45, 0.60, 8.0, 0.6},
      {"conv_b", 0.50, 0.38, 0.40, 0.55, 7.0, 0.5},
      {"nms", 0.20, 0.15, 0.10, 0.10, 1.5, 0.3},
      {"track", 0.40, 0.30, 0.30, 0.20, 3.5, 0.3},
      {"overlay", 0.18, 0.14, 0.12, 0.08, 1.0, 0.9},
      {"encode", 0.45, 0.34, 0.42, 0.15, 5.0, 1.2},
  };
  for (const Stage& s : stages) {
    apps::KernelOp op;
    op.name = s.name;
    op.raw_demand = {
        static_cast<std::int64_t>(
            s.lut_frac * static_cast<double>(config.board.little_slot.luts)),
        static_cast<std::int64_t>(
            s.ff_frac * static_cast<double>(config.board.little_slot.ffs)),
        static_cast<std::int64_t>(
            s.bram_frac * static_cast<double>(config.board.little_slot.brams)),
        static_cast<std::int64_t>(
            s.dsp_frac * static_cast<double>(config.board.little_slot.dsps)),
    };
    op.item_latency = sim::ms(s.latency_ms);
    op.bytes_in = static_cast<std::int64_t>(s.mb * 1e6);
    op.bytes_out = op.bytes_in / 2;
    graph.ops.push_back(op);
  }

  // 1. Partition by synthesis resources.
  apps::FlowReport report = apps::partition(graph, config);
  std::cout << "Offline flow for '" << graph.name << "' ("
            << graph.ops.size() << " kernel ops)\n\n";
  util::Table tasks({"task", "fused ops", "synth LUT fill", "latency/item"});
  for (int t = 0; t < report.task_count(); ++t) {
    const apps::TaskSpec& task = report.app.tasks[static_cast<std::size_t>(t)];
    tasks.add_row();
    tasks.cell(task.name);
    tasks.cell(static_cast<std::int64_t>(
        report.ops_per_task[static_cast<std::size_t>(t)]));
    tasks.cell(report.synth_fill[static_cast<std::size_t>(t)], 2);
    tasks.cell(util::fmt_duration_ns(task.item_latency));
  }
  tasks.print(std::cout);
  std::cout << "\n" << graph.ops.size() << " ops -> " << report.task_count()
            << " tasks; bundleable into Big slots: "
            << (report.bundleable ? "yes" : "no") << "\n\n";

  // 2. Bitstream manifest (everything the TCL flow must generate).
  apps::BitstreamManifest manifest = apps::make_manifest(report.app, config);
  util::Table entries({"bitstream", "tasks", "slot", "mode", "MB"});
  for (const apps::BitstreamEntry& e : manifest.entries) {
    entries.add_row();
    entries.cell(e.label);
    entries.cell(std::to_string(e.first_task) + "-" +
                 std::to_string(e.last_task));
    entries.cell(to_string(e.slot_kind));
    entries.cell(to_string(e.mode));
    entries.cell(static_cast<double>(e.bytes) / 1e6, 1);
  }
  entries.print(std::cout);
  std::cout << "\nSD card footprint: "
            << util::fmt(static_cast<double>(manifest.total_bytes) / 1e6, 1)
            << " MB\n\n";

  // 3. Run it.
  sim::Simulator sim;
  fpga::Board board(sim, "fpga0", fpga::FabricConfig::big_little(),
                    config.board);
  core::VersaSlotPolicy policy{core::VersaSlotOptions{}};
  runtime::BoardRuntime rt(board, policy);
  rt.trace().enable();
  rt.submit(report.app, 0, /*batch=*/8, 0);
  rt.submit(report.app, 0, /*batch=*/12, 0);
  sim.run();

  for (const auto& c : rt.completed()) {
    std::cout << c.name << "#" << c.app_id << " completed in "
              << util::fmt(c.response_ms(), 1) << " ms\n";
  }
  auto audit = runtime::audit(rt);
  std::cout << "invariant audit: " << audit.to_string();

  // 4. Export the execution trace.
  sim::write_chrome_trace_file(rt.trace().spans(),
                               "offline_flow_trace.json");
  std::cout << "\ntrace written to offline_flow_trace.json (load in "
               "chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}
