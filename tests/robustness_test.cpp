// Robustness and auditing tests: runtime invariants under every policy,
// PCAP fault injection (DFX verification failures with retry), Chrome
// trace export, and the DML extension policy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/benchmarks.h"
#include "baselines/dml.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "sim/trace_export.h"
#include "test_helpers.h"
#include "workload/generator.h"

namespace vs {
namespace {

// ----------------------------------------------------------- invariants

TEST(Invariants, HoldOnFreshRuntime) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  EXPECT_TRUE(runtime::audit(rt).ok());
}

TEST(Invariants, HoldThroughoutAnExecution) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 4, sim::ms(3));
  rt.submit(app, 0, 5, 0);
  rt.submit(app, 0, 3, 0);
  int checked = 0;
  while (sim.step()) {
    if (++checked % 7 == 0) {
      auto report = runtime::audit(rt);
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }
  EXPECT_TRUE(runtime::audit(rt).ok());
  EXPECT_EQ(rt.completed().size(), 2u);
}

class InvariantSweep
    : public ::testing::TestWithParam<metrics::SystemKind> {};

TEST_P(InvariantSweep, HoldAtCompletionForEverySystem) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 12;
  util::Rng rng(17);
  auto seq = workload::generate_sequence(config, rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0", metrics::fabric_for(GetParam()), params);
  auto policy = metrics::make_policy(GetParam());
  runtime::BoardRuntime rt(board, *policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  // Audit at periodic checkpoints and at the end.
  for (int i = 1; i <= 10; ++i) {
    sim.run(sim::seconds(3.0 * i));
    auto report = runtime::audit(rt);
    ASSERT_TRUE(report.ok()) << report.to_string();
  }
  sim.run();
  auto report = runtime::audit(rt);
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(rt.completed().size(), seq.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, InvariantSweep,
    ::testing::Values(metrics::SystemKind::kBaseline,
                      metrics::SystemKind::kFcfs,
                      metrics::SystemKind::kRoundRobin,
                      metrics::SystemKind::kNimblock,
                      metrics::SystemKind::kVersaOnlyLittle,
                      metrics::SystemKind::kVersaBigLittle,
                      metrics::SystemKind::kDml),
    [](const auto& info) {
      std::string n = metrics::system_name(info.param);
      for (char& c : n) {
        if (c == '-' || c == '.') c = '_';
      }
      return n;
    });

TEST(Invariants, DetectInconsistentState) {
  // Manually corrupt a runtime into an inconsistent state and verify the
  // audit reports it: a slot left reconfiguring with no unit claiming it.
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 1, sim::ms(1));
  rt.submit(app, 0, 1, 0);
  board.slot(3).begin_reconfig(/*app=*/0, /*key=*/1);  // no unit owns this
  auto report = runtime::audit(rt);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("slot L3"), std::string::npos);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjection, FailedLoadsRetryAndComplete) {
  sim::Simulator sim;
  sim::Core core(sim, "c0");
  fpga::Pcap pcap(sim);
  faults::FaultScenario scenario;
  scenario.seed = 42;
  scenario.pcap_crc_probability = 0.5;
  pcap.set_fault_model(scenario.pcap_crc_probability,
                       scenario.stream("pcap/0"));
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    pcap.request(sim::ms(1), core, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(pcap.stats().loads_completed, 20);
  EXPECT_GT(pcap.stats().load_failures, 0);
  // Total load time covers the retries.
  EXPECT_EQ(pcap.stats().total_load,
            sim::ms(1) * (20 + pcap.stats().load_failures));
}

TEST(FaultInjection, DeterministicGivenSeed) {
  auto run_one = [] {
    sim::Simulator sim;
    sim::Core core(sim, "c0");
    fpga::Pcap pcap(sim);
    faults::FaultScenario scenario;
    scenario.seed = 7;
    scenario.pcap_crc_probability = 0.3;
    pcap.set_fault_model(scenario.pcap_crc_probability,
                         scenario.stream("pcap/0"));
    for (int i = 0; i < 50; ++i) pcap.request(sim::ms(1), core, [] {});
    sim.run();
    return pcap.stats().load_failures;
  };
  EXPECT_EQ(run_one(), run_one());
}

TEST(FaultInjection, ZeroProbabilityNeverFails) {
  sim::Simulator sim;
  sim::Core core(sim, "c0");
  fpga::Pcap pcap(sim);
  faults::FaultScenario scenario;
  scenario.seed = 7;
  pcap.set_fault_model(scenario.pcap_crc_probability,
                       scenario.stream("pcap/0"));
  for (int i = 0; i < 50; ++i) pcap.request(sim::ms(1), core, [] {});
  sim.run();
  EXPECT_EQ(pcap.stats().load_failures, 0);
}

TEST(FaultInjection, WholeSystemSurvivesFlakyPcap) {
  // End-to-end: a VersaSlot run where 20% of PCAP loads fail verification
  // still completes every application, with invariants intact.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStandard;
  config.apps_per_sequence = 8;
  util::Rng rng(5);
  auto seq = workload::generate_sequence(config, rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  faults::FaultScenario scenario;
  scenario.seed = 99;
  scenario.pcap_crc_probability = 0.2;
  board.pcap().set_fault_model(scenario.pcap_crc_probability,
                               scenario.stream("pcap/0"));
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  sim.run();
  EXPECT_EQ(rt.completed().size(), seq.size());
  EXPECT_GT(board.pcap().stats().load_failures, 0);
  auto report = runtime::audit(rt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ----------------------------------------------------------- trace export

TEST(TraceExport, EmitsValidChromeJson) {
  std::vector<sim::Span> spans{
      {0, sim::ms(10), "L0", "App1.T1 PR", sim::SpanKind::kReconfig},
      {sim::ms(10), sim::ms(15), "L0", "App1.T1 B1", sim::SpanKind::kExec},
      {sim::ms(2), sim::ms(4), "PS0", "pass \"q\"", sim::SpanKind::kCoreOp},
  };
  std::ostringstream out;
  sim::write_chrome_trace(spans, out);
  std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"reconfig\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"exec\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Quotes in labels must be escaped.
  EXPECT_NE(json.find("pass \\\"q\\\""), std::string::npos);
  // Two lanes -> two thread_name metadata records.
  EXPECT_NE(json.find("\"name\":\"L0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"PS0\""), std::string::npos);
}

TEST(TraceExport, FileRoundTrip) {
  std::vector<sim::Span> spans{
      {0, 100, "lane", "x", sim::SpanKind::kExec}};
  std::string path = testing::TempDir() + "/vs_trace.json";
  sim::write_chrome_trace_file(spans, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"dur\":0.1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, ThrowsOnBadPath) {
  EXPECT_THROW(
      sim::write_chrome_trace_file({}, "/nonexistent_dir_xyz/trace.json"),
      std::runtime_error);
}

TEST(TraceExport, RealRunExportsAllSpanKinds) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.apps_per_sequence = 4;
  util::Rng rng(3);
  auto seq = workload::generate_sequence(config, rng);
  metrics::RunOptions options;
  options.record_trace = true;
  auto r = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                     suite, seq, options);
  EXPECT_EQ(r.completed, 4);
}

// ------------------------------------------------------------------- DML

TEST(Dml, CompletesAndPipelinesMultiSlot) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  baselines::DmlPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 6, sim::ms(5));
  int id = rt.submit(app, 0, 10, 0);
  int max_placed = 0;
  while (sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  EXPECT_GT(max_placed, 1);  // pipelined, unlike naive FCFS
  EXPECT_TRUE(rt.app(id).done());
  EXPECT_STREQ(policy.name(), "DML");
  EXPECT_FALSE(policy.dual_core());
}

TEST(Dml, BackfillsPastBlockedHead) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  baselines::DmlPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  // First app grabs most slots with a long run; a second app wanting many
  // slots cannot start, but a third small app backfills ahead of it.
  auto big = test::make_uniform_app("big", 6, sim::ms(100));
  auto mid = test::make_uniform_app("mid", 6, sim::ms(50));
  auto tiny = test::make_uniform_app("tiny", 1, sim::ms(1));
  rt.submit(big, 0, 25, 0);
  sim.run(sim::ms(50));
  int mid_id = rt.submit(mid, 1, 25, sim.now());
  int tiny_id = rt.submit(tiny, 2, 1, sim.now());
  sim.run(sim::ms(2000));
  // tiny got a slot even while mid waits for its full allocation.
  EXPECT_TRUE(rt.app(tiny_id).done() || rt.app(tiny_id).started);
  (void)mid_id;
  sim.run();
  EXPECT_EQ(rt.completed().size(), 3u);
}

TEST(Dml, InExperimentHarness) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 10;
  util::Rng rng(23);
  auto seq = workload::generate_sequence(config, rng);
  auto r = metrics::run_single_board(metrics::SystemKind::kDml, suite, seq);
  EXPECT_EQ(r.completed, 10);
  EXPECT_EQ(r.system, "DML");
}

}  // namespace
}  // namespace vs
