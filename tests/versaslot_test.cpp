// Tests for the VersaSlot policy — Algorithm 1 (slot allocation: Big-first
// binding, redistribution, rebinding) and Algorithm 2 (online bundling,
// dual-core scheduling, Little-only preemption) in both fabric modes.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "core/versaslot_policy.h"
#include "fpga/board.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::core {
namespace {

using runtime::BoardRuntime;
using test::make_uniform_app;

struct Fixture {
  sim::Simulator sim;
  fpga::Board board;
  explicit Fixture(fpga::FabricConfig fabric = fpga::FabricConfig::big_little())
      : board(sim, "b0", fabric) {}
};

VersaSlotOptions bl_options() {
  VersaSlotOptions o;
  o.mode = VersaSlotOptions::Mode::kBigLittle;
  return o;
}

VersaSlotOptions ol_options() {
  VersaSlotOptions o;
  o.mode = VersaSlotOptions::Mode::kOnlyLittle;
  return o;
}

TEST(VersaSlot, NamesAndCoreMode) {
  VersaSlotPolicy bl(bl_options());
  VersaSlotPolicy ol(ol_options());
  EXPECT_STREQ(bl.name(), "VersaSlot-BL");
  EXPECT_STREQ(ol.name(), "VersaSlot-OL");
  EXPECT_TRUE(bl.dual_core());
  VersaSlotOptions single = bl_options();
  single.dual_core = false;
  VersaSlotPolicy sc(single);
  EXPECT_FALSE(sc.dual_core());
}

TEST(VersaSlot, BundleableAppBindsToBigSlots) {
  Fixture f;
  VersaSlotPolicy policy(bl_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  int id = rt.submit(suite[1], 1, 10, 0);  // LeNet, 6 tasks -> 2 bundles
  f.sim.run(sim::ms(5));
  EXPECT_EQ(policy.binding(id), VersaSlotPolicy::Binding::kBig);
  EXPECT_EQ(rt.app(id).units.size(), 2u);  // re-unitised into bundles
  EXPECT_EQ(rt.app(id).units[0].spec.slot_kind, fpga::SlotKind::kBig);
  f.sim.run();
  EXPECT_TRUE(rt.app(id).done());
  EXPECT_EQ(rt.counters().pr_requests, 2);  // two big PRs, no task swaps
}

TEST(VersaSlot, OverflowAppsBindToLittle) {
  Fixture f;
  VersaSlotPolicy policy(bl_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  // Three 6-task apps want 2 big slots each; only 2 big slots exist.
  int a = rt.submit(suite[1], 1, 8, 0);
  int b = rt.submit(suite[2], 2, 8, 0);
  int c = rt.submit(suite[2], 2, 8, 0);
  (void)c;
  f.sim.run(sim::ms(5));
  EXPECT_EQ(policy.binding(a), VersaSlotPolicy::Binding::kBig);
  // b gets no big slots (0 available) -> bound to Little; c too.
  EXPECT_EQ(policy.binding(b), VersaSlotPolicy::Binding::kLittle);
  EXPECT_EQ(rt.app(b).units.size(), 6u);  // still per-task units
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 3u);
}

TEST(VersaSlot, RebindingPromotesWaitingLittleApp) {
  Fixture f;
  VersaSlotPolicy policy(bl_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  // First app takes both Big slots with a long run.
  int a = rt.submit(suite[3], 3, 30, 0);  // AlexNet, heavy
  f.sim.run(sim::ms(5));
  ASSERT_EQ(policy.binding(a), VersaSlotPolicy::Binding::kBig);
  // Second app must fall back to Little...
  int b = rt.submit(suite[0], 0, 20, f.sim.now());
  (void)b;
  f.sim.run(sim::ms(100));
  // ... but 3DR needs only 1 big slot; before it starts on Little slots a
  // big slot may free. Either way, by completion everything finishes and if
  // it started on Little it must not hold Big slots simultaneously.
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 2u);
}

TEST(VersaSlot, RebindingDisabledKeepsLittleBinding) {
  Fixture f;
  VersaSlotOptions o = bl_options();
  o.enable_rebinding = false;
  VersaSlotPolicy policy(o);
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  rt.submit(suite[1], 1, 10, 0);
  rt.submit(suite[1], 1, 10, 0);
  rt.submit(suite[1], 1, 10, 0);
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 3u);
}

TEST(VersaSlot, RedistributionGrantsExtraLittleSlots) {
  // Only.Little mode, single app with 6 tasks: primary allocation gives the
  // ILP-optimal count, redistribution then tops up to all remaining units.
  Fixture f(fpga::FabricConfig::only_little());
  VersaSlotPolicy policy(ol_options());
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(50));
  int id = rt.submit(app, 0, 20, 0);
  int max_placed = 0;
  while (f.sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  // With redistribution the lone app eventually holds more slots than any
  // reasonable primary allocation for a 6-task pipeline.
  EXPECT_EQ(max_placed, 6);
  EXPECT_TRUE(rt.app(id).done());
}

TEST(VersaSlot, RedistributionDisabledCapsAtOptimal) {
  Fixture f(fpga::FabricConfig::only_little());
  VersaSlotOptions o = ol_options();
  o.enable_redistribution = false;
  VersaSlotPolicy policy(o);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(50));
  int id = rt.submit(app, 0, 20, 0);
  int optimal = apps::optimal_little_slots(app, 20, f.board.params(), 8);
  int max_placed = 0;
  while (f.sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  EXPECT_LE(max_placed, optimal);
  EXPECT_TRUE(rt.app(id).done());
}

TEST(VersaSlot, OnlyLittleModeNeverUsesBigSlots) {
  // Run OL policy on a Big.Little fabric: it must ignore the Big slots.
  Fixture f;
  VersaSlotPolicy policy(ol_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  rt.submit(suite[1], 1, 5, 0);
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 1u);
  for (const fpga::Slot& s : f.board.slots()) {
    if (s.kind() == fpga::SlotKind::kBig) {
      EXPECT_EQ(s.state(), fpga::SlotState::kIdle);
    }
  }
}

TEST(VersaSlot, BigBoundAppNeverTouchesLittleSlots) {
  Fixture f;
  VersaSlotPolicy policy(bl_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  int id = rt.submit(suite[4], 4, 10, 0);  // OF: 3 bundles, 2 big slots
  bool little_used_by_a = false;
  while (f.sim.step()) {
    for (const fpga::Slot& s : f.board.slots()) {
      if (s.kind() == fpga::SlotKind::kLittle && s.occupant_app() == id) {
        little_used_by_a = true;
      }
    }
  }
  EXPECT_FALSE(little_used_by_a);
  EXPECT_TRUE(rt.app(id).done());
  // 3 bundles through 2 big slots: exactly 3 PRs.
  EXPECT_EQ(rt.counters().pr_requests, 3);
}

TEST(VersaSlot, LittlePreemptionRelievesStarvation) {
  Fixture f(fpga::FabricConfig::only_little());
  VersaSlotOptions o = ol_options();
  o.starvation_threshold = sim::ms(50.0);
  o.preempt_cooldown = sim::ms(10.0);
  VersaSlotPolicy policy(o);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec big = make_uniform_app("big", 8, sim::ms(200));
  rt.submit(big, 0, 30, 0);
  apps::AppSpec small = make_uniform_app("small", 1, sim::ms(1));
  f.sim.schedule(sim::ms(500), [&] { rt.submit(small, 1, 1, sim::ms(500)); });
  f.sim.run(sim::seconds(60.0));
  EXPECT_GT(rt.counters().preemptions, 0);
  bool small_done = false;
  for (const auto& c : rt.completed()) {
    if (c.name == "small") small_done = true;
  }
  EXPECT_TRUE(small_done);
}

TEST(VersaSlot, BundleSizeOptionChangesUnitCount) {
  Fixture f;
  VersaSlotOptions o = bl_options();
  o.bundle_size = 2;
  VersaSlotPolicy policy(o);
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  int id = rt.submit(suite[1], 1, 10, 0);  // 6 tasks -> 3 pairs
  f.sim.run(sim::ms(5));
  if (policy.binding(id) == VersaSlotPolicy::Binding::kBig) {
    EXPECT_EQ(rt.app(id).units.size(), 3u);
  }
  f.sim.run();
  EXPECT_TRUE(rt.app(id).done());
}

TEST(VersaSlot, ManyAppsAllComplete) {
  Fixture f;
  VersaSlotPolicy policy(bl_options());
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  for (int i = 0; i < 15; ++i) {
    rt.submit(suite[static_cast<std::size_t>(i % 5)], i % 5, 5 + i, 0);
  }
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 15u);
}

TEST(VersaSlot, SingleCoreAblationStillCompletes) {
  Fixture f;
  VersaSlotOptions o = bl_options();
  o.dual_core = false;
  VersaSlotPolicy policy(o);
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  for (int i = 0; i < 6; ++i) {
    rt.submit(suite[static_cast<std::size_t>(i % 5)], i % 5, 6, 0);
  }
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 6u);
}

TEST(VersaSlot, DualCoreReducesLaunchBlocking) {
  auto run_one = [](bool dual) {
    sim::Simulator sim;
    fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
    VersaSlotOptions o;
    o.mode = VersaSlotOptions::Mode::kOnlyLittle;
    o.dual_core = dual;
    VersaSlotPolicy policy(o);
    BoardRuntime rt(board, policy);
    auto suite = apps::make_suite(board.params());
    for (int i = 0; i < 8; ++i) {
      rt.submit(suite[static_cast<std::size_t>(i % 5)], i % 5, 8, 0);
    }
    sim.run();
    return rt.counters().launch_blocked;
  };
  EXPECT_EQ(run_one(true), 0);
  EXPECT_GT(run_one(false), 0);
}

}  // namespace
}  // namespace vs::core
