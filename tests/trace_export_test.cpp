// Chrome trace-event export: golden-output pin of the exact JSON produced
// for a fixed span log, plus the empty-log and unopenable-file edge cases,
// and the TraceRecorder::clear() capacity-release contract.
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/trace.h"
#include "sim/trace_export.h"

namespace vs::sim {
namespace {

TEST(ChromeTraceExport, GoldenOutputForFixedSpanLog) {
  std::vector<Span> spans;
  spans.push_back(Span{1000, 3000, "slot L0", "App1.T1 PR",
                       SpanKind::kReconfig});
  spans.push_back(Span{2500, 5000, "core PS0", "pass \"hot\"\nb\\c",
                       SpanKind::kCoreOp});

  std::ostringstream os;
  write_chrome_trace(spans, os);

  // Pinned byte-for-byte: tids follow first appearance (slot L0 = 1,
  // core PS0 = 2) while the thread-name metadata lines iterate the lane
  // map in lexicographic order; timestamps are ns / 1e3 microseconds.
  const std::string expected =
      "["
      "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"core PS0\"}},"
      "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"slot L0\"}},"
      "\n{\"name\":\"App1.T1 PR\",\"cat\":\"reconfig\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":1,\"ts\":1,\"dur\":2},"
      "\n{\"name\":\"pass \\\"hot\\\"\\nb\\\\c\",\"cat\":\"core\","
      "\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":2.5,\"dur\":2.5}"
      "\n]\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ChromeTraceExport, EmptySpanLogIsAnEmptyJsonArray) {
  std::ostringstream os;
  write_chrome_trace({}, os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(ChromeTraceExport, UnopenableFileThrows) {
  EXPECT_THROW(
      write_chrome_trace_file({}, "/nonexistent-dir/trace.json"),
      std::runtime_error);
}

TEST(TraceRecorder, ClearReleasesSpanCapacity) {
  TraceRecorder recorder;
  recorder.enable();
  for (int i = 0; i < 1000; ++i) {
    recorder.add(i, i + 1, "lane", "label", SpanKind::kMarker);
  }
  ASSERT_EQ(recorder.spans().size(), 1000u);
  ASSERT_GT(recorder.spans().capacity(), 0u);
  recorder.clear();
  EXPECT_TRUE(recorder.spans().empty());
  // The swap idiom must release the backing allocation, not just size().
  EXPECT_EQ(recorder.spans().capacity(), 0u);
}

}  // namespace
}  // namespace vs::sim
