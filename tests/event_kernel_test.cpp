// Tests for the allocation-free event kernel: InlineEvent lifetime
// semantics (SBO, heap fallback, move-only captures) and the slab-backed
// 4-ary-heap EventQueue (generation-tagged cancel, FIFO determinism under
// interleaved schedule/cancel/pop, equivalence with a reference model).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_event.h"
#include "util/rng.h"

namespace vs::sim {
namespace {

// ---- InlineEvent ----------------------------------------------------------

/// Counts constructions/destructions/moves of a capture, to pin down the
/// exact lifetime behaviour of closures stored in InlineEvent.
struct LifetimeStats {
  int constructed = 0;
  int destroyed = 0;
  int moves = 0;
};

struct Tracked {
  explicit Tracked(LifetimeStats* s) : stats(s) { ++stats->constructed; }
  Tracked(const Tracked& o) : stats(o.stats) { ++stats->constructed; }
  Tracked(Tracked&& o) noexcept : stats(o.stats) {
    ++stats->constructed;
    ++stats->moves;
  }
  ~Tracked() { ++stats->destroyed; }
  LifetimeStats* stats;
};

TEST(InlineEvent, InvokesStoredCallable) {
  int calls = 0;
  InlineEvent ev([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(ev));
  ev();
  ev();
  EXPECT_EQ(calls, 2);
}

TEST(InlineEvent, EmptyAndNullptrSemantics) {
  InlineEvent a;
  InlineEvent b(nullptr);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
  a = [] {};
  EXPECT_TRUE(static_cast<bool>(a));
  a = nullptr;
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineEvent, MoveTransfersAndEmptiesSource) {
  int calls = 0;
  InlineEvent a([&calls] { ++calls; });
  InlineEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineEvent, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(41);
  int seen = 0;
  InlineEvent ev([p = std::move(p), &seen] { seen = *p + 1; });
  InlineEvent moved = std::move(ev);
  moved();
  EXPECT_EQ(seen, 42);
}

TEST(InlineEvent, DestructorRunsExactlyOnce) {
  LifetimeStats stats;
  {
    InlineEvent ev([t = Tracked(&stats)] { (void)t; });
    InlineEvent moved = std::move(ev);
    moved();  // invoking must not destroy the capture
    EXPECT_EQ(stats.destroyed, stats.constructed - 1);
  }
  // Every constructed copy (temporaries included) destroyed, none twice.
  EXPECT_EQ(stats.destroyed, stats.constructed);
}

TEST(InlineEvent, ResetDestroysCapture) {
  LifetimeStats stats;
  InlineEvent ev([t = Tracked(&stats)] { (void)t; });
  int live_before = stats.constructed - stats.destroyed;
  EXPECT_EQ(live_before, 1);
  ev.reset();
  EXPECT_EQ(stats.constructed, stats.destroyed);
  EXPECT_FALSE(static_cast<bool>(ev));
}

TEST(InlineEvent, SmallCapturesAreStoredInline) {
  auto small = [a = std::int64_t{1}, b = std::int64_t{2}, c = (void*)nullptr] {
    (void)a; (void)b; (void)c;
  };
  static_assert(InlineEvent::stores_inline<decltype(small)>(),
                "a 24-byte capture must not hit the heap");
  static_assert(sizeof(InlineEvent) <= 2 * InlineEvent::kInlineSize,
                "InlineEvent itself must stay compact");
}

TEST(InlineEvent, OversizedCaptureFallsBackToHeap) {
  LifetimeStats stats;
  {
    std::array<char, 128> big{};
    big[0] = 7;
    auto fn = [big, t = Tracked(&stats), &stats_ref = stats]() {
      stats_ref.moves += big[0];  // arbitrary observable effect
      (void)t;
    };
    static_assert(!InlineEvent::stores_inline<decltype(fn)>(),
                  "a 128-byte capture must take the heap fallback");
    InlineEvent ev(std::move(fn));
    InlineEvent moved = std::move(ev);  // relocates the pointer, not the closure
    int moves_before = stats.moves;
    moved();
    EXPECT_EQ(stats.moves, moves_before + 7);
  }
  EXPECT_EQ(stats.constructed, stats.destroyed);
}

// ---- EventQueue: cancel accounting and id reuse ---------------------------

TEST(EventQueueSlab, CancelAfterPopIsNoOpAndSizeStaysCorrect) {
  // Regression: the old vector<bool> design let a cancel of an id that had
  // already fired decrement live_, underreporting size().
  EventQueue q;
  int fired = 0;
  EventId a = q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  EXPECT_EQ(q.size(), 2u);
  q.pop().fn();  // fires a
  EXPECT_EQ(q.size(), 1u);
  q.cancel(a);  // stale: a already fired
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueSlab, StaleCancelOnReusedSlotIsNoOp) {
  EventQueue q;
  int fired = 0;
  EventId a = q.schedule(10, [&] { fired += 1; });
  q.pop().fn();  // frees a's slot
  // The next schedule reuses the slot; its generation tag differs.
  q.schedule(20, [&] { fired += 10; });
  q.cancel(a);  // must not kill the new occupant
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_EQ(fired, 11);
}

TEST(EventQueueSlab, DoubleCancelDecrementsOnce) {
  EventQueue q;
  EventId a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueSlab, CancelOfNeverIssuedIdIsNoOp) {
  EventQueue q;
  q.schedule(10, [] {});
  q.cancel(0xFFFF'FFFF'0000'1234ULL);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueSlab, CancelReleasesCaptureImmediately) {
  // Cancelled closures must free their captures right away, not when the
  // tombstone eventually surfaces at the heap root.
  EventQueue q;
  LifetimeStats stats;
  q.schedule(5, [] {});  // keeps the queue non-empty throughout
  EventId id = q.schedule(10, [t = Tracked(&stats)] { (void)t; });
  EXPECT_LT(stats.destroyed, stats.constructed);
  q.cancel(id);
  EXPECT_EQ(stats.destroyed, stats.constructed);
}

TEST(EventQueueSlab, SameTimeFifoSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.schedule(100, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 10; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5, 7, 9}));
}

// ---- EventQueue: property test against a reference model ------------------

/// Straightforward reference implementation of the queue's contract:
/// pending events ordered by (time, schedule sequence), lazy cancellation.
class ReferenceQueue {
 public:
  std::uint64_t schedule(SimTime when) {
    events_.push_back(Ref{when, next_seq_++, /*cancelled=*/false});
    return events_.size() - 1;
  }
  bool cancel(std::uint64_t handle) {
    Ref& r = events_[handle];
    if (r.cancelled || r.fired) return false;
    r.cancelled = true;
    return true;
  }
  [[nodiscard]] std::optional<std::uint64_t> pop() {
    const Ref* best = nullptr;
    for (const Ref& r : events_) {
      if (r.cancelled || r.fired) continue;
      if (best == nullptr || r.time < best->time ||
          (r.time == best->time && r.seq < best->seq)) {
        best = &r;
      }
    }
    if (best == nullptr) return std::nullopt;
    std::uint64_t handle =
        static_cast<std::uint64_t>(best - events_.data());
    events_[handle].fired = true;
    return handle;
  }
  [[nodiscard]] std::size_t live() const {
    std::size_t n = 0;
    for (const Ref& r : events_) n += (!r.cancelled && !r.fired) ? 1 : 0;
    return n;
  }
  [[nodiscard]] SimTime time_of(std::uint64_t handle) const {
    return events_[handle].time;
  }

 private:
  struct Ref {
    SimTime time;
    std::uint64_t seq;
    bool cancelled = false;
    bool fired = false;
  };
  std::vector<Ref> events_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueueProperty, MatchesReferenceUnderInterleavedOps) {
  // Random interleavings of schedule / cancel / pop, several seeds. The
  // real queue must fire exactly the same payloads in exactly the same
  // order as the reference, and agree on size() throughout.
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2025ULL}) {
    util::Rng rng(seed, /*stream=*/99);
    EventQueue q;
    ReferenceQueue ref;
    std::vector<std::uint64_t> fired;       // reference handles, in order
    std::vector<std::uint64_t> ref_fired;   // model's expectation
    std::vector<std::pair<EventId, std::uint64_t>> outstanding;

    for (int step = 0; step < 4000; ++step) {
      std::int64_t op = rng.uniform_int(0, 9);
      if (op < 5) {  // schedule (biased so the queue grows)
        auto when = static_cast<SimTime>(rng.uniform_int(0, 50));
        std::uint64_t handle = ref.schedule(when);
        EventId id = q.schedule(
            when, [&fired, handle] { fired.push_back(handle); });
        outstanding.emplace_back(id, handle);
      } else if (op < 7 && !outstanding.empty()) {  // cancel a random event
        std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(outstanding.size()) - 1));
        auto [id, handle] = outstanding[pick];
        // May be stale (already fired or cancelled) — both sides must
        // treat it as a no-op then.
        ref.cancel(handle);
        q.cancel(id);
      } else if (!q.empty()) {  // pop
        auto expect = ref.pop();
        ASSERT_TRUE(expect.has_value());
        auto popped = q.pop();
        EXPECT_EQ(popped.time, ref.time_of(*expect));
        popped.fn();
        ref_fired.push_back(*expect);
      }
      ASSERT_EQ(q.size(), ref.live()) << "seed " << seed << " step " << step;
      ASSERT_EQ(q.empty(), ref.live() == 0);
    }
    while (!q.empty()) {
      auto expect = ref.pop();
      ASSERT_TRUE(expect.has_value());
      q.pop().fn();
      ref_fired.push_back(*expect);
    }
    EXPECT_EQ(fired, ref_fired) << "seed " << seed;
  }
}

TEST(EventQueueProperty, RecordedScriptDeterminism) {
  // A fixed schedule/cancel script replayed twice must fire bit-identical
  // sequences — the determinism contract the grid benches rely on.
  auto run = [] {
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    util::Rng rng(123, 5);
    for (int i = 0; i < 500; ++i) {
      auto when = static_cast<SimTime>(rng.uniform_int(0, 20));
      ids.push_back(q.schedule(when, [&order, i] { order.push_back(i); }));
      if (i % 7 == 3) q.cancel(ids[static_cast<size_t>(i / 2)]);
      if (i % 11 == 0 && !q.empty()) q.pop().fn();
    }
    while (!q.empty()) q.pop().fn();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// ---- Canonical (time, tag, seq) tie-break ---------------------------------
//
// The sharded kernel's total event order is the lexicographic order of
// Key{time, tag, seq}: simulated time first, then the shard tag, then a
// per-tag FIFO sequence number. Two consequences are pinned here:
//
//  1. equal-time events on DIFFERENT tags execute in tag order, regardless
//     of schedule order — so board k+1's events never jump ahead of board
//     k's at a shared timestamp, under either kernel;
//  2. equal-time events on the SAME tag keep schedule-order FIFO, because
//     seq counters are per tag — one tag's scheduling activity can never
//     reorder another tag's events.

TEST(EventQueueTieBreak, EqualTimeEventsRunInTagOrderNotScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  // Scheduled in descending tag order; execution must ascend by tag.
  q.schedule(50, [&order] { order.push_back(3); }, /*tag=*/3);
  q.schedule(50, [&order] { order.push_back(1); }, /*tag=*/1);
  q.schedule(50, [&order] { order.push_back(2); }, /*tag=*/2);
  q.schedule(50, [&order] { order.push_back(0); }, /*tag=*/0);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueTieBreak, TimeStillDominatesTag) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(60, [&order] { order.push_back(1); }, /*tag=*/0);
  q.schedule(50, [&order] { order.push_back(0); }, /*tag=*/9);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueTieBreak, SeqCountersArePerTag) {
  EventQueue q;
  std::vector<std::pair<int, int>> order;  // (tag, step)
  // Interleave scheduling across two tags at one timestamp. Per-tag seq
  // means each tag keeps its own FIFO; the interleaving pattern at schedule
  // time is irrelevant.
  for (int step = 0; step < 3; ++step) {
    q.schedule(10, [&order, step] { order.emplace_back(2, step); }, 2);
    q.schedule(10, [&order, step] { order.emplace_back(1, step); }, 1);
  }
  while (!q.empty()) q.pop().fn();
  std::vector<std::pair<int, int>> expected{{1, 0}, {1, 1}, {1, 2},
                                            {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTieBreak, DefaultTagZeroPreservesLegacyFifo) {
  // With every event on tag 0 (the serial default), the canonical order
  // degenerates to the original (time, seq) FIFO — the serial kernel is
  // bit-identical to its pre-sharding behaviour.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(7, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTieBreak, HeadKeyExposesCanonicalOrder) {
  EventQueue q;
  q.schedule(50, [] {}, /*tag=*/4);
  EventQueue::Key k = q.head_key();
  EXPECT_EQ(k.time, 50);
  EXPECT_EQ(k.tag, 4u);
  q.schedule(50, [] {}, /*tag=*/2);
  EXPECT_EQ(q.head_key().tag, 2u);  // lower tag wins the tie
  q.schedule(40, [] {}, /*tag=*/9);
  EXPECT_EQ(q.head_key().time, 40);  // earlier time beats any tag
}

TEST(EventQueueTieBreak, SyncEventsShareTheTagSeqSpace) {
  // Sync events order among their tag's events exactly like normal ones —
  // the sync flag routes them to barriers but never perturbs the canonical
  // order, so serial and sharded execution agree at barrier timestamps.
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&order] { order.push_back(0); }, /*tag=*/1);
  q.schedule(5, [&order] { order.push_back(1); }, /*tag=*/1, /*sync=*/true);
  q.schedule(5, [&order] { order.push_back(2); }, /*tag=*/1);
  EXPECT_EQ(q.next_sync_time(), 5);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.next_sync_time(), EventQueue::kNoSyncTime);
}

}  // namespace
}  // namespace vs::sim
