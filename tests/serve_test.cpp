// Tests for the multi-tenant serving plane: weighted-deficit admission
// fairness under saturation, quota/defer-limit edges, SLO-aware priority
// ordering, SLO-miss accounting reconciled against phase-accounted
// response times, bit-identical results across serial and sharded kernels
// and with telemetry on/off, and the recovery admission throttle holding
// arrivals behind a crash without losing any admitted work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "faults/scenario.h"
#include "obs/telemetry.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/resource_manager.h"
#include "serve/serve.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace vs {
namespace {

using Action = serve::AdmissionController::Action;

serve::ServeArrival make_arrival(int tenant, double t_s = 0.0) {
  serve::ServeArrival a;
  a.tenant = tenant;
  a.app.spec_index = 0;
  a.app.batch = 5;
  a.app.arrival = sim::seconds(t_s);
  a.app.tenant = tenant;
  return a;
}

// ------------------------------------------------------ AdmissionController

TEST(ServeAdmission, WeightedDeficitDrainsTwoToOneUnderSaturation) {
  serve::ServeConfig config;
  config.classes = {{"c", sim::ms(2000.0), 0}};
  serve::Tenant heavy;
  heavy.name = "heavy";
  heavy.weight = 2.0;
  serve::Tenant light;
  light.name = "light";
  light.weight = 1.0;
  config.tenants = {heavy, light};
  config.max_inflight = 1;  // one slot: every drain is a scheduler decision

  serve::AdmissionController adm(config);
  std::vector<int> order;
  adm.set_dispatch([&](const serve::ServeArrival& a) {
    order.push_back(a.tenant);
  });

  // First arrival takes the only slot; everything after defers.
  ASSERT_EQ(adm.on_arrival(make_arrival(0)), Action::kAdmit);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(adm.on_arrival(make_arrival(0)), Action::kDefer);
    ASSERT_EQ(adm.on_arrival(make_arrival(1)), Action::kDefer);
  }
  EXPECT_EQ(adm.queued(), 60);

  // Drain 30 slots; each completion frees exactly one and the weighted
  // deficit decides who gets it.
  order.clear();
  int running = 0;
  std::vector<int> drained;
  for (int i = 0; i < 30; ++i) {
    adm.on_complete(running);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(i + 1));
    running = order.back();
    drained.push_back(running);
  }
  auto heavy_n = std::count(drained.begin(), drained.end(), 0);
  auto light_n = std::count(drained.begin(), drained.end(), 1);
  // 2:1 weights under saturation admit exactly 2:1 (DRR with unit cost).
  EXPECT_EQ(heavy_n, 20);
  EXPECT_EQ(light_n, 10);
  // ...and in the canonical DRR cadence: heavy, heavy, light, repeating.
  for (std::size_t i = 0; i + 2 < drained.size(); i += 3) {
    EXPECT_EQ(drained[i], 0);
    EXPECT_EQ(drained[i + 1], 0);
    EXPECT_EQ(drained[i + 2], 1);
  }
}

TEST(ServeAdmission, QuotaDefersAndDeferLimitRejects) {
  serve::ServeConfig config;
  config.classes = {{"c", sim::ms(2000.0), 0}};
  serve::Tenant t;
  t.name = "capped";
  t.quota = 1;
  t.defer_limit = 2;
  config.tenants = {t};

  serve::AdmissionController adm(config);
  int dispatched = 0;
  adm.set_dispatch([&](const serve::ServeArrival&) { ++dispatched; });

  EXPECT_EQ(adm.on_arrival(make_arrival(0)), Action::kAdmit);
  EXPECT_EQ(adm.on_arrival(make_arrival(0)), Action::kDefer);
  EXPECT_EQ(adm.on_arrival(make_arrival(0)), Action::kDefer);
  EXPECT_EQ(adm.on_arrival(make_arrival(0)), Action::kReject);
  EXPECT_EQ(dispatched, 1);
  EXPECT_EQ(adm.queued(), 2);
  const auto& state = adm.tenants()[0];
  EXPECT_EQ(state.submitted, 4);
  EXPECT_EQ(state.admitted, 1);
  EXPECT_EQ(state.deferred, 2);
  EXPECT_EQ(state.rejected, 1);

  // A completion frees the quota slot and pumps exactly one deferral; the
  // emptied slot in the defer queue makes the next arrival defer again.
  adm.on_complete(0);
  EXPECT_EQ(dispatched, 2);
  EXPECT_EQ(adm.queued(), 1);
  EXPECT_EQ(adm.on_arrival(make_arrival(0)), Action::kDefer);
}

TEST(ServeAdmission, LowerPriorityValueDrainsFirstRegardlessOfWeight) {
  serve::ServeConfig config;
  config.classes = {{"urgent", sim::ms(500.0), 0},
                    {"bulk", sim::ms(10000.0), 1}};
  serve::Tenant bulk;  // tenant 0: huge weight, low-priority class
  bulk.name = "bulk";
  bulk.slo_class = 1;
  bulk.weight = 100.0;
  serve::Tenant urgent;  // tenant 1: tiny weight, high-priority class
  urgent.name = "urgent";
  urgent.slo_class = 0;
  urgent.weight = 1.0;
  config.tenants = {bulk, urgent};
  config.max_inflight = 1;

  serve::AdmissionController adm(config);
  std::vector<int> order;
  adm.set_dispatch([&](const serve::ServeArrival& a) {
    order.push_back(a.tenant);
  });
  ASSERT_EQ(adm.on_arrival(make_arrival(0)), Action::kAdmit);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(adm.on_arrival(make_arrival(0)), Action::kDefer);
    ASSERT_EQ(adm.on_arrival(make_arrival(1)), Action::kDefer);
  }

  order.clear();
  int running = 0;
  for (int i = 0; i < 10; ++i) {
    adm.on_complete(running);
    running = order.back();
  }
  // Priority trumps weight: all five urgent jobs before any bulk job.
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 1);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 0);
}

// ------------------------------------------------------------- integration

// A two-tenant mix small enough for fast tests: a Poisson foreground class
// and an MMPP-bursty background class whose burst windows exercise the
// state-switch boundaries of the arrival generator.
serve::ServeConfig small_config(double horizon_s = 8.0) {
  serve::ServeConfig config;
  config.seed = 2025;
  config.horizon = sim::seconds(horizon_s);
  config.max_inflight = 6;
  config.classes = {{"interactive", sim::ms(2500.0), 0},
                    {"batch", sim::ms(12000.0), 1}};
  serve::Tenant fg;
  fg.name = "fg";
  fg.slo_class = 0;
  fg.weight = 2.0;
  fg.arrivals.kind = workload::ArrivalKind::kPoisson;
  fg.arrivals.rate_per_s = 1.5;
  fg.min_batch = 5;
  fg.max_batch = 10;
  config.tenants.push_back(fg);
  serve::Tenant bg;
  bg.name = "bg";
  bg.slo_class = 1;
  bg.weight = 1.0;
  bg.quota = 4;
  bg.defer_limit = 16;
  bg.arrivals.kind = workload::ArrivalKind::kMmpp;
  bg.arrivals.rate_per_s = 0.3;
  bg.arrivals.burst_rate_per_s = 2.0;
  bg.arrivals.burst_on_s = 1.0;
  bg.arrivals.burst_off_s = 3.0;
  bg.min_batch = 8;
  bg.max_batch = 16;
  config.tenants.push_back(bg);
  return config;
}

cluster::ClusterOptions small_options(int kernel_workers) {
  cluster::ClusterOptions options;
  options.boards_per_config = 2;
  options.enable_switching = false;
  options.kernel_workers = kernel_workers;
  return options;
}

// Full-result equality; `events` excluded (the sharded kernel executes
// extra window-synchronisation events). Doubles compare bitwise — the
// claim is bit-identity, not tolerance.
void expect_results_equal(const serve::ServeResult& a,
                          const serve::ServeResult& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.response_ms.count, b.response_ms.count);
  EXPECT_EQ(a.response_ms.mean, b.response_ms.mean);
  EXPECT_EQ(a.response_ms.p50, b.response_ms.p50);
  EXPECT_EQ(a.response_ms.p99, b.response_ms.p99);
  EXPECT_EQ(a.response_ms.p999, b.response_ms.p999);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].submitted, b.tenants[i].submitted);
    EXPECT_EQ(a.tenants[i].admitted, b.tenants[i].admitted);
    EXPECT_EQ(a.tenants[i].deferred, b.tenants[i].deferred);
    EXPECT_EQ(a.tenants[i].rejected, b.tenants[i].rejected);
    EXPECT_EQ(a.tenants[i].completed, b.tenants[i].completed);
    EXPECT_EQ(a.tenants[i].slo_miss, b.tenants[i].slo_miss);
  }
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(a.classes[i].completed, b.classes[i].completed);
    EXPECT_EQ(a.classes[i].slo_miss, b.classes[i].slo_miss);
    EXPECT_EQ(a.classes[i].attainment, b.classes[i].attainment);
    EXPECT_EQ(a.classes[i].goodput_per_s, b.classes[i].goodput_per_s);
    EXPECT_EQ(a.classes[i].response_ms.mean, b.classes[i].response_ms.mean);
    EXPECT_EQ(a.classes[i].response_ms.p99, b.classes[i].response_ms.p99);
  }
}

TEST(ServePlane, SerialAndShardedKernelsBitIdentical) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  serve::ServeConfig config = small_config();
  config.rebalance = true;  // cover the rebalance trigger path too

  auto serial = serve::run_serve(suite, config, small_options(0));
  EXPECT_GT(serial.arrivals, 0);
  EXPECT_GT(serial.completed, 0);
  for (int workers : {1, 2, 4}) {
    auto sharded = serve::run_serve(suite, config, small_options(workers));
    expect_results_equal(serial, sharded);
  }
}

TEST(ServePlane, TelemetryOnOffBitIdenticalAndCountersMatch) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  serve::ServeConfig config = small_config();

  auto bare = serve::run_serve(suite, config, small_options(0));
  obs::Telemetry telemetry;
  auto instrumented = serve::run_serve(suite, config, small_options(0),
                                       sim::seconds(36000.0), &telemetry);
  // `events` differs by design: the telemetry sampler schedules its own
  // snapshot events. Everything observable must still be bit-identical.
  expect_results_equal(bare, instrumented);

  // The vs_tenant_* instruments agree with the collected result.
  obs::MetricsRegistry& reg = telemetry.registry();
  for (const serve::TenantResult& t : instrumented.tenants) {
    obs::Labels labels{{"tenant", t.name}};
    EXPECT_EQ(reg.counter("vs_tenant_admitted_total", labels).value(),
              t.admitted);
    EXPECT_EQ(reg.counter("vs_tenant_deferred_total", labels).value(),
              t.deferred);
    EXPECT_EQ(reg.counter("vs_tenant_rejected_total", labels).value(),
              t.rejected);
    EXPECT_EQ(reg.counter("vs_tenant_completed_total", labels).value(),
              t.completed);
    EXPECT_EQ(reg.counter("vs_tenant_slo_miss_total", labels).value(),
              t.slo_miss);
  }
}

TEST(ServePlane, SloMissAccountingMatchesPhaseAccountedResponses) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  serve::ServeConfig config = small_config();
  // Tighten the interactive target below the intrinsic service time so the
  // run produces real misses to reconcile.
  config.classes[0].latency_target = sim::ms(600.0);

  sim::Simulator sim;
  cluster::ClusterOptions options = small_options(0);
  options.phase_accounting = true;
  cluster::Cluster cluster(sim, suite, options);
  serve::ResourceManager manager(sim, cluster, config);
  manager.start(static_cast<int>(suite.size()));
  sim.run(sim::seconds(36000.0));

  // Recompute every tenant's completion and SLO-miss counts from the
  // phase-accounted completion records and reconcile with the manager.
  std::vector<std::int64_t> done(config.tenants.size(), 0);
  std::vector<std::int64_t> miss(config.tenants.size(), 0);
  for (const runtime::CompletedApp& c : cluster.completed()) {
    ASSERT_GE(c.tenant, 0);  // every job in this run is tenant-attributed
    sim::SimDuration phase_sum = 0;
    for (sim::SimDuration d : c.phase_ns) phase_sum += d;
    // The phase account sums exactly to the response time...
    ASSERT_EQ(phase_sum, c.completed - c.arrival);
    auto i = static_cast<std::size_t>(c.tenant);
    ++done[i];
    // ...so the SLO verdict recomputed from the phase account must match
    // the manager's response-based accounting.
    auto cls = static_cast<std::size_t>(config.tenants[i].slo_class);
    if (sim::to_ms(phase_sum) >
        sim::to_ms(config.classes[cls].latency_target)) {
      ++miss[i];
    }
  }
  const auto& counters = manager.tenant_counters();
  std::int64_t total_miss = 0;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(counters[i].completed, done[i]);
    EXPECT_EQ(counters[i].slo_miss, miss[i]);
    EXPECT_EQ(counters[i].response_ms.size(),
              static_cast<std::size_t>(done[i]));
    total_miss += miss[i];
  }
  EXPECT_GT(total_miss, 0);  // the tightened target actually bites
}

TEST(ServePlane, RecoveryThrottleDefersArrivalsWithoutLosingApps) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);

  serve::ServeConfig config;
  config.seed = 2025;
  config.horizon = sim::seconds(8.0);
  config.classes = {{"c", sim::ms(30000.0), 0}};
  serve::Tenant t;
  t.name = "t";
  t.arrivals.kind = workload::ArrivalKind::kPoisson;
  t.arrivals.rate_per_s = 4.0;
  t.min_batch = 5;
  t.max_batch = 10;
  config.tenants = {t};

  // Both pools' single boards go down mid-trace (the spare first, so the
  // active board's crash cannot fail over): the displaced apps sit in the
  // readmission queue until a reboot, and the kDefer throttle holds the
  // open-loop arrivals that land during that window behind them.
  cluster::ClusterOptions options = small_options(0);
  options.boards_per_config = 1;
  options.faults.timeline = {
      {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 1, -1},
      {sim::seconds(2.1), faults::FaultKind::kBoardCrash, 0, -1}};
  options.recovery.throttle = cluster::RecoveryOptions::Throttle::kDefer;

  auto r = serve::run_serve(suite, config, options);
  EXPECT_EQ(r.recovery.boards_crashed, 2);
  EXPECT_EQ(r.recovery.boards_rebooted, 2);
  EXPECT_GT(r.recovery.arrivals_deferred, 0);
  EXPECT_EQ(r.recovery.arrivals_shed, 0);
  EXPECT_GT(r.recovery.readmissions, 0);

  // Recovery and the throttle interact without losing anything: every
  // admitted job eventually completes (evacuated, readmitted, or throttled
  // into the readmission queue and drained after the reboot).
  EXPECT_EQ(r.recovery.apps_lost, 0);
  EXPECT_GT(r.admitted, 0);
  EXPECT_EQ(r.completed, r.admitted);
  for (const serve::TenantResult& tr : r.tenants) {
    EXPECT_EQ(tr.completed, tr.admitted);
  }
}

}  // namespace
}  // namespace vs
