// Unit tests for util: deterministic RNG, statistics, tables, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace vs::util {
namespace {

// ---------------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("alpha");
  Rng c3 = parent.fork("beta");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng c1b = parent.fork("alpha");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1b.next_u32() == c3.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.uniform_int(5, 30);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 30);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  bool seen[6] = {};
  for (int i = 0; i < 600; ++i) seen[rng.uniform_int(0, 5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(17, 17), 17);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRealRange) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_real(1500.0, 2000.0);
    EXPECT_GE(v, 1500.0);
    EXPECT_LT(v, 2000.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng rng(55);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, Fnv1aStable) {
  // Known FNV-1a vector: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), fnv1a("a"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

// -------------------------------------------------------------------- Stats

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    double v = i * 0.7 - 3;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, ClampsQuantile) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(Summarize, Basics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
}

TEST(Summarize, Empty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// -------------------------------------------------------------------- Table

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CellHelpers) {
  Table t({"a", "b", "c"});
  t.add_row();
  t.cell("s");
  t.cell(3.14159, 2);
  t.cell(static_cast<std::int64_t>(42));
  std::string out = t.to_string();
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(Table, FmtDuration) {
  EXPECT_EQ(fmt_duration_ns(500), "500 ns");
  EXPECT_EQ(fmt_duration_ns(1500), "1.50 us");
  EXPECT_EQ(fmt_duration_ns(2500000), "2.50 ms");
  EXPECT_EQ(fmt_duration_ns(3000000000LL), "3.000 s");
}

// ---------------------------------------------------------------------- Csv

TEST(Csv, WritesQuotedCells) {
  std::string path = testing::TempDir() + "/vs_csv_test.csv";
  {
    CsvWriter w(path);
    w.header({"a", "b"});
    w.row({"plain", "with,comma"});
    w.begin_row();
    w.field(1.5);
    w.field(static_cast<long long>(7));
    w.end_row();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 4), "1.50");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace vs::util
