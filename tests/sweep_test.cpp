// Tests for the deterministic parallel sweep runner (metrics/sweep.h,
// util/thread_pool.h): the thread pool itself, worker-count resolution,
// the bit-identical serial/parallel equivalence that makes sharding safe,
// a frozen-golden seed-stability regression, and the harness edge cases
// (empty/single-app sequences, time-limit expiry, exceptions in jobs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "apps/benchmarks.h"
#include "metrics/sweep.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace vs::metrics {
namespace {

std::vector<apps::AppSpec> suite() {
  fpga::BoardParams params;
  return apps::make_suite(params);
}

std::vector<workload::Sequence> sequences(workload::Congestion congestion,
                                          int count, int apps,
                                          std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.congestion = congestion;
  config.apps_per_sequence = apps;
  return workload::generate_sequences(config, count, seed);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEveryJobAndStaysUsable) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after a barrier.
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 110);
}

TEST(ThreadPool, WaitRethrowsJobExceptionAndDrains) {
  util::ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("job failed"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit(
        [&survivors] { survivors.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure neither wedged the queue nor poisoned later batches.
  EXPECT_EQ(survivors.load(), 20);
  std::atomic<int> more{0};
  pool.submit([&more] { more.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(more.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for(8, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesDegenerateShapes) {
  int calls = 0;
  util::parallel_for(4, 0, [&](std::size_t) { ++calls; });  // empty grid
  EXPECT_EQ(calls, 0);
  util::parallel_for(1, 5, [&](std::size_t) { ++calls; });  // inline serial
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, ResolveJobsPrecedence) {
  // --jobs beats VS_JOBS beats hardware concurrency.
  ASSERT_EQ(setenv("VS_JOBS", "5", 1), 0);
  const char* argv[] = {"prog", "--jobs", "3"};
  util::CliArgs with_flag(3, argv);
  EXPECT_EQ(util::resolve_jobs(&with_flag), 3);
  util::CliArgs no_flag(1, argv);
  EXPECT_EQ(util::resolve_jobs(&no_flag), 5);
  EXPECT_EQ(util::resolve_jobs(nullptr), 5);
  // Garbage and non-positive values fall through to the next rule.
  ASSERT_EQ(setenv("VS_JOBS", "0", 1), 0);
  EXPECT_GE(util::resolve_jobs(nullptr), 1);
  ASSERT_EQ(setenv("VS_JOBS", "banana", 1), 0);
  EXPECT_GE(util::resolve_jobs(nullptr), 1);
  ASSERT_EQ(unsetenv("VS_JOBS"), 0);
  EXPECT_GE(util::resolve_jobs(nullptr), 1);
}

// -------------------------------------------------- determinism goldens

/// The tentpole guarantee: the parallel reduction is byte-identical to the
/// serial aggregate() for any worker count, across systems and congestion
/// levels. Doubles are compared with operator== deliberately — identical
/// event streams must produce identical bits, not merely close values.
TEST(SweepDeterminism, ParallelAggregateMatchesSerialBitwise) {
  auto apps = suite();
  for (SystemKind kind :
       {SystemKind::kNimblock, SystemKind::kVersaBigLittle}) {
    for (workload::Congestion congestion :
         {workload::Congestion::kStandard, workload::Congestion::kStress}) {
      auto seqs = sequences(congestion, 3, 10, 777);
      AggregateResult serial = aggregate(kind, apps, seqs);
      for (int workers : {1, 2, 8}) {
        AggregateResult par =
            parallel_aggregate(kind, apps, seqs, {}, workers);
        SCOPED_TRACE(std::string(system_name(kind)) + " / " +
                     workload::congestion_name(congestion) + " / workers=" +
                     std::to_string(workers));
        EXPECT_EQ(par.system, serial.system);
        EXPECT_EQ(par.all_responses_ms, serial.all_responses_ms);
        EXPECT_EQ(par.mean_response_ms, serial.mean_response_ms);
        EXPECT_EQ(par.p95_ms, serial.p95_ms);
        EXPECT_EQ(par.p99_ms, serial.p99_ms);
      }
    }
  }
}

TEST(SweepDeterminism, RunSweepMatchesSerialReplicas) {
  auto apps = suite();
  auto seqs = sequences(workload::Congestion::kStandard, 2, 10, 777);
  std::vector<SweepJob> grid;
  for (SystemKind kind :
       {SystemKind::kFcfs, SystemKind::kVersaBigLittle}) {
    for (const auto& seq : seqs) grid.push_back(SweepJob{kind, seq, {}});
  }
  auto parallel = run_sweep(apps, grid, 8);
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    RunResult serial =
        run_single_board(grid[i].kind, apps, grid[i].sequence);
    EXPECT_EQ(parallel[i].system, serial.system);
    EXPECT_EQ(parallel[i].makespan, serial.makespan);
    EXPECT_EQ(parallel[i].completed, serial.completed);
    EXPECT_EQ(parallel[i].response_ms, serial.response_ms);
  }
}

/// Frozen goldens for one (seed, system, congestion) tuple: the Fig 5/6
/// setup at 3 sequences x 20 apps, master seed 2025, VersaSlot Big.Little,
/// Standard arrivals. Any change to RNG stream splitting in
/// workload::generate_sequences, to event ordering, or to the sweep
/// reduction order moves these values and must be deliberate (re-freeze
/// only with a changelog entry explaining why the stream moved).
TEST(SweepDeterminism, SeedStabilityGoldens) {
  auto apps = suite();
  auto seqs = sequences(workload::Congestion::kStandard, 3, 20, 2025);
  // Exercise the parallel path; the bitwise-equivalence test above ties it
  // to the serial path, so these goldens pin both at once.
  AggregateResult agg =
      parallel_aggregate(SystemKind::kVersaBigLittle, apps, seqs, {}, 4);
  ASSERT_EQ(agg.all_responses_ms.size(), 60u);
  EXPECT_DOUBLE_EQ(agg.mean_response_ms, 1058.2510233666667);
  EXPECT_DOUBLE_EQ(agg.p95_ms, 1982.5594999999989);
  EXPECT_DOUBLE_EQ(agg.p99_ms, 2596.8746331999978);
  EXPECT_DOUBLE_EQ(agg.all_responses_ms.front(), 1918.0719999999999);
  EXPECT_DOUBLE_EQ(agg.all_responses_ms.back(), 1050.597);
  // Integer-nanosecond makespan of the first replica: exact.
  RunResult r0 =
      run_single_board(SystemKind::kVersaBigLittle, apps, seqs[0]);
  EXPECT_EQ(r0.makespan, 33702643983);
}

// --------------------------------------------------------- harness edges

TEST(SweepEdgeCases, EmptyAndSingleAppSequences) {
  auto apps = suite();
  workload::Sequence empty;
  workload::Sequence single =
      sequences(workload::Congestion::kLoose, 1, 1, 42)[0];
  ASSERT_EQ(single.size(), 1u);
  std::vector<SweepJob> grid{
      SweepJob{SystemKind::kVersaBigLittle, empty, {}},
      SweepJob{SystemKind::kVersaBigLittle, single, {}},
      SweepJob{SystemKind::kBaseline, empty, {}},
  };
  auto results = run_sweep(apps, grid, 4);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].submitted, 0);
  EXPECT_EQ(results[0].completed, 0);
  EXPECT_TRUE(results[0].response_ms.empty());
  EXPECT_EQ(results[0].response.count, 0u);
  EXPECT_EQ(results[1].submitted, 1);
  EXPECT_EQ(results[1].completed, 1);
  EXPECT_EQ(results[1].response_ms.size(), 1u);
  EXPECT_EQ(results[2].completed, 0);
  // Aggregating over empty sequences is well-defined zeros, not a crash.
  AggregateResult agg = parallel_aggregate(
      SystemKind::kVersaBigLittle, apps, {empty, empty}, {}, 2);
  EXPECT_TRUE(agg.all_responses_ms.empty());
  EXPECT_EQ(agg.mean_response_ms, 0.0);
}

TEST(SweepEdgeCases, TimeLimitExpirySurfacesPartialResults) {
  auto apps = suite();
  auto seq = sequences(workload::Congestion::kStress, 1, 10, 99)[0];
  RunOptions cut;
  cut.time_limit = sim::seconds(2.0);  // well before the backlog drains
  RunResult serial =
      run_single_board(SystemKind::kVersaBigLittle, apps, seq, cut);
  ASSERT_LT(serial.completed, serial.submitted);
  auto results =
      run_sweep(apps, {SweepJob{SystemKind::kVersaBigLittle, seq, cut}}, 4);
  ASSERT_EQ(results.size(), 1u);
  // The truncated replica surfaces the same partial results as serial.
  EXPECT_EQ(results[0].completed, serial.completed);
  EXPECT_EQ(results[0].submitted, serial.submitted);
  EXPECT_EQ(results[0].response_ms, serial.response_ms);
  EXPECT_EQ(results[0].makespan, serial.makespan);
  EXPECT_EQ(results[0].response_ms.size(),
            static_cast<std::size_t>(results[0].completed));
}

TEST(SweepEdgeCases, JobExceptionPropagatesAfterPoolDrains) {
  SweepRunner runner(4);
  std::atomic<int> completed{0};
  // The lowest-index failure wins deterministically, regardless of which
  // worker hits its exception first; surviving jobs still run.
  try {
    (void)runner.map<int>(8, [&](std::size_t i) -> int {
      if (i == 3) throw std::logic_error("replica 3");
      if (i == 5) throw std::runtime_error("replica 5");
      completed.fetch_add(1, std::memory_order_relaxed);
      return static_cast<int>(i);
    });
    FAIL() << "expected the sweep to rethrow";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "replica 3");
  }
  EXPECT_EQ(completed.load(), 6);
  // The runner stays usable: the pool drained instead of deadlocking.
  auto ok = runner.map<int>(
      4, [](std::size_t i) { return static_cast<int>(i) * 2; });
  EXPECT_EQ(ok, (std::vector<int>{0, 2, 4, 6}));
}

TEST(SweepEdgeCases, InvalidSystemKindRethrownFromReplica) {
  auto apps = suite();
  auto seq = sequences(workload::Congestion::kLoose, 1, 2, 7)[0];
  std::vector<SweepJob> grid{
      SweepJob{SystemKind::kVersaBigLittle, seq, {}},
      SweepJob{static_cast<SystemKind>(99), seq, {}},
  };
  EXPECT_THROW((void)run_sweep(apps, grid, 2), std::invalid_argument);
}

}  // namespace
}  // namespace vs::metrics
