// Tests for the fault-injection plane and failure recovery: scenario seed
// derivation, FaultPlane scheduling (scripted + hazard chains), Aurora
// link flaps with retry/backoff, slot SEU semantics, board crash reports,
// cluster recovery via the live-migration path, and bit-identical
// determinism of faulty runs across serial and parallel execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/aurora.h"
#include "cluster/cluster.h"
#include "faults/fault_plane.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "metrics/sweep.h"
#include "obs/metrics.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "test_helpers.h"
#include "workload/generator.h"

namespace vs {
namespace {

// ----------------------------------------------------------- FaultScenario

TEST(FaultScenario, DisabledByDefault) {
  faults::FaultScenario s;
  EXPECT_FALSE(s.enabled());
  s.hazards.board_crash_per_s = 0.1;
  EXPECT_TRUE(s.enabled());
}

TEST(FaultScenario, StreamsAreDeterministicAndLabelSeparated) {
  faults::FaultScenario s;
  s.seed = 123;
  util::Rng a = s.stream("crash/0");
  util::Rng b = s.stream("crash/0");
  util::Rng c = s.stream("crash/1");
  bool all_equal = true;
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    std::int64_t va = a.uniform_int(0, 1 << 30);
    std::int64_t vb = b.uniform_int(0, 1 << 30);
    std::int64_t vc = c.uniform_int(0, 1 << 30);
    all_equal = all_equal && (va == vb);
    any_diff = any_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

// -------------------------------------------------------------- FaultPlane

TEST(FaultPlane, ScriptedCrashAndRebootFlipStateAndEmit) {
  sim::Simulator sim;
  faults::FaultScenario s;
  s.timeline.push_back(
      {sim::ms(10.0), faults::FaultKind::kBoardCrash, 0, -1});
  faults::FaultPlane plane(sim, s);
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  ASSERT_EQ(plane.add_board(board), 0);
  std::vector<faults::HealthEvent> seen;
  plane.set_handler([&](const faults::HealthEvent& e) { seen.push_back(e); });
  plane.start();

  EXPECT_TRUE(plane.board_up(0));
  sim.run();
  // Crash at 10 ms, automatic reboot repair.board_reboot (2 s) later.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, faults::FaultKind::kBoardCrash);
  EXPECT_EQ(seen[0].time, sim::ms(10.0));
  EXPECT_EQ(seen[1].kind, faults::FaultKind::kBoardReboot);
  EXPECT_EQ(seen[1].time, sim::ms(10.0) + s.repair.board_reboot);
  EXPECT_TRUE(plane.board_up(0));
  // Availability accounts for exactly the outage window.
  double avail = plane.board_availability(0, sim.now());
  EXPECT_LT(avail, 1.0);
  EXPECT_NEAR(avail,
              1.0 - static_cast<double>(s.repair.board_reboot) /
                        static_cast<double>(sim.now()),
              1e-12);
  EXPECT_EQ(plane.injected().size(), 2u);
}

TEST(FaultPlane, HazardScheduleIsDeterministic) {
  auto run_one = [] {
    sim::Simulator sim;
    faults::FaultScenario s;
    s.seed = 9;
    s.hazards.board_crash_per_s = 2.0;
    s.hazards.link_flap_per_s = 3.0;
    s.hazards.slot_seu_per_s = 4.0;
    s.horizon = sim::seconds(5.0);
    faults::FaultPlane plane(sim, s);
    fpga::Board board(sim, "b0", fpga::FabricConfig::big_little());
    plane.add_board(board);
    plane.start();
    // Keep-alive: hazard firings stop when the simulation is otherwise
    // idle; a sentinel event stands in for workload activity.
    sim.schedule_at(s.horizon, [] {});
    sim.run();
    std::vector<std::pair<sim::SimTime, faults::FaultKind>> out;
    for (const faults::HealthEvent& e : plane.injected()) {
      out.emplace_back(e.time, e.kind);
    }
    return out;
  };
  auto first = run_one();
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, run_one());
}

TEST(FaultPlane, HazardDrawsStopAtHorizon) {
  sim::Simulator sim;
  faults::FaultScenario s;
  s.seed = 11;
  s.hazards.link_flap_per_s = 50.0;
  s.horizon = sim::ms(100.0);
  faults::FaultPlane plane(sim, s);
  plane.start();
  sim.schedule_at(sim::seconds(10.0), [] {});
  sim.run();
  for (const faults::HealthEvent& e : plane.injected()) {
    // Injections stay inside the horizon; the closing repair may land just
    // past it.
    EXPECT_LE(e.time, s.horizon + s.repair.link_outage);
  }
  EXPECT_GT(plane.injected().size(), 0u);
}

TEST(FaultPlane, BindMetricsCountsInjectionsAndRecoveries) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  faults::FaultScenario s;
  s.timeline.push_back({sim::ms(1.0), faults::FaultKind::kBoardCrash, 0, -1});
  s.timeline.push_back({sim::ms(2.0), faults::FaultKind::kLinkDown, -1, -1});
  faults::FaultPlane plane(sim, s);
  plane.bind_metrics(registry);
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  plane.add_board(board);
  plane.start();
  sim.run();
  double injected = 0;
  double recovered = 0;
  for (const auto& row : registry.counters()) {
    if (row.name == "vs_faults_injected_total") injected += row.cell.value();
    if (row.name == "vs_faults_recovered_total") {
      recovered += row.cell.value();
    }
  }
  EXPECT_EQ(injected, 2.0);   // crash + link_down
  EXPECT_EQ(recovered, 2.0);  // reboot + link_up
  bool board_gauge = false;
  for (const auto& row : registry.gauges()) {
    if (row.name == "vs_board_available") board_gauge = true;
  }
  EXPECT_TRUE(board_gauge);
}

TEST(FaultPlane, ScenarioPcapModelExportsLoadFailures) {
  // The scenario's PCAP CRC knob reaches the board through add_board, and
  // the failure count surfaces as vs_pcap_load_failures_total.
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  faults::FaultScenario s;
  s.seed = 5;
  s.pcap_crc_probability = 0.4;
  faults::FaultPlane plane(sim, s);
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  plane.add_board(board);
  board.pcap().bind_metrics(registry, board.name());
  sim::Core core(sim, "c0");
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    board.pcap().request(sim::ms(1), core, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 30);
  ASSERT_GT(board.pcap().stats().load_failures, 0);
  double exported = 0;
  for (const auto& row : registry.counters()) {
    if (row.name == "vs_pcap_load_failures_total") {
      exported += row.cell.value();
    }
  }
  EXPECT_EQ(exported,
            static_cast<double>(board.pcap().stats().load_failures));
}

// ------------------------------------------------------ scripted validation

TEST(FaultPlaneValidation, OutOfRangeScriptedEventsAreRejected) {
  // Regression: out-of-range scripted indices used to flow through
  // unchecked into the injection paths. start()'s validation pass must
  // drop them (counted, warned) while valid entries still run.
  sim::Simulator sim;
  faults::FaultScenario s;
  s.timeline.push_back(
      {sim::ms(1.0), faults::FaultKind::kBoardCrash, 5, -1});  // board OOR
  s.timeline.push_back(
      {sim::ms(2.0), faults::FaultKind::kSlotSeu, 0, 99});  // slot OOR
  s.timeline.push_back(
      {sim::ms(3.0), faults::FaultKind::kRackEvent, 0, -1});  // no domains
  s.timeline.push_back(
      {sim::ms(4.0), faults::FaultKind::kBoardCrash, -1, -1});  // negative
  s.timeline.push_back(
      {sim::ms(5.0), faults::FaultKind::kBoardCrash, 0, -1});  // valid
  faults::FaultPlane plane(sim, s);
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  plane.add_board(board);
  std::vector<faults::HealthEvent> seen;
  plane.set_handler([&](const faults::HealthEvent& e) { seen.push_back(e); });
  plane.start();
  sim.run();
  EXPECT_EQ(plane.rejected_scripted(), 4);
  // Only the valid crash (and its automatic reboot) ran.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, faults::FaultKind::kBoardCrash);
  EXPECT_EQ(seen[0].time, sim::ms(5.0));
  EXPECT_EQ(seen[1].kind, faults::FaultKind::kBoardReboot);
}

TEST(FaultPlaneValidation, NegativeSeuSlotStillMeansDrawUniformly) {
  sim::Simulator sim;
  faults::FaultScenario s;
  s.seed = 77;
  s.timeline.push_back({sim::ms(1.0), faults::FaultKind::kSlotSeu, 0, -1});
  faults::FaultPlane plane(sim, s);
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  plane.add_board(board);
  std::vector<faults::HealthEvent> seen;
  plane.set_handler([&](const faults::HealthEvent& e) { seen.push_back(e); });
  plane.start();
  sim.run();
  EXPECT_EQ(plane.rejected_scripted(), 0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, faults::FaultKind::kSlotSeu);
  EXPECT_GE(seen[0].slot, 0);
  EXPECT_LT(seen[0].slot, static_cast<int>(board.slots().size()));
}

// -------------------------------------------------------------- RackEvents

TEST(RackEvents, ScriptedRackEventCrashesEveryMemberTogether) {
  sim::Simulator sim;
  faults::FaultScenario s;
  faults::FailureDomain dom;
  dom.name = "r0";
  dom.boards = {0, 1};
  s.domains.push_back(dom);
  s.timeline.push_back({sim::ms(10.0), faults::FaultKind::kRackEvent, 0, -1});
  faults::FaultPlane plane(sim, s);
  fpga::Board b0(sim, "b0", fpga::FabricConfig::only_little());
  fpga::Board b1(sim, "b1", fpga::FabricConfig::big_little());
  plane.add_board(b0);
  plane.add_board(b1);
  std::vector<faults::HealthEvent> seen;
  plane.set_handler([&](const faults::HealthEvent& e) { seen.push_back(e); });
  plane.start();
  sim.run();
  EXPECT_EQ(plane.rack_events(), 1);
  // One kRackEvent record (board = domain index), then both member
  // crashes at the same instant (jitter 0), then both reboots.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0].kind, faults::FaultKind::kRackEvent);
  EXPECT_EQ(seen[0].board, 0);
  EXPECT_EQ(seen[1].kind, faults::FaultKind::kBoardCrash);
  EXPECT_EQ(seen[1].board, 0);
  EXPECT_EQ(seen[1].time, sim::ms(10.0));
  EXPECT_EQ(seen[2].kind, faults::FaultKind::kBoardCrash);
  EXPECT_EQ(seen[2].board, 1);
  EXPECT_EQ(seen[2].time, sim::ms(10.0));
  EXPECT_EQ(seen[3].kind, faults::FaultKind::kBoardReboot);
  EXPECT_EQ(seen[4].kind, faults::FaultKind::kBoardReboot);
}

TEST(RackEvents, JitterStaysBoundedAndSurvivorsRideItOut) {
  // With survival_probability = 1 every member survives; with jitter the
  // non-survivor crashes land strictly inside (event, event + jitter].
  sim::Simulator sim;
  faults::FaultScenario s;
  s.seed = 2025;
  faults::FailureDomain all_survive;
  all_survive.name = "lucky";
  all_survive.boards = {0, 1};
  all_survive.survival_probability = 1.0;
  s.domains.push_back(all_survive);
  faults::FailureDomain jittered;
  jittered.name = "jit";
  jittered.boards = {0, 1};
  jittered.jitter = sim::ms(2.0);
  s.domains.push_back(jittered);
  s.timeline.push_back({sim::ms(5.0), faults::FaultKind::kRackEvent, 0, -1});
  s.timeline.push_back({sim::ms(40.0), faults::FaultKind::kRackEvent, 1, -1});
  faults::FaultPlane plane(sim, s);
  fpga::Board b0(sim, "b0", fpga::FabricConfig::only_little());
  fpga::Board b1(sim, "b1", fpga::FabricConfig::only_little());
  plane.add_board(b0);
  plane.add_board(b1);
  plane.set_handler([](const faults::HealthEvent&) {});
  plane.start();
  sim.run();
  EXPECT_EQ(plane.rack_events(), 2);
  int crashes = 0;
  for (const faults::HealthEvent& e : plane.injected()) {
    if (e.kind != faults::FaultKind::kBoardCrash) continue;
    ++crashes;
    // Only the jittered rack produces crashes; all land inside its window.
    EXPECT_GE(e.time, sim::ms(40.0));
    EXPECT_LE(e.time, sim::ms(42.0));
  }
  EXPECT_EQ(crashes, 2);
}

TEST(RackEvents, HazardChainIsSeedDeterministicPerDomain) {
  auto run_one = [](std::uint64_t seed) {
    sim::Simulator sim;
    faults::FaultScenario s;
    s.seed = seed;
    s.hazards.rack_event_per_s = 3.0;
    s.horizon = sim::seconds(4.0);
    faults::FailureDomain dom;
    dom.name = "r0";
    dom.boards = {0};
    s.domains.push_back(dom);
    faults::FaultPlane plane(sim, s);
    fpga::Board b0(sim, "b0", fpga::FabricConfig::only_little());
    plane.add_board(b0);
    plane.set_handler([](const faults::HealthEvent&) {});
    plane.start();
    sim.schedule_at(s.horizon, [] {});
    sim.run();
    std::vector<sim::SimTime> out;
    for (const faults::HealthEvent& e : plane.injected()) {
      if (e.kind == faults::FaultKind::kRackEvent) out.push_back(e.time);
    }
    return out;
  };
  auto first = run_one(2025);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, run_one(2025));
  EXPECT_NE(first, run_one(2026));  // the schedule follows the seed
}

// ------------------------------------------------- frozen rack goldens

// Seed-2025 rack-event timeline for two single-board domains at 2 events
// per rack-second over a 3 s horizon, with 1 ms member jitter — captured
// from the serial kernel. The literals pin the "rack/<domain>" stream
// derivation itself (inter-arrival, survival and jitter draws all come
// from it); the SweepRunner replicas prove the same schedule falls out
// bit-identically under sweep parallelism, mirroring the existing
// hazard-stream goldens. Update ONLY for an intentional, documented
// change to the stream rule.
TEST(RackGolden, Seed2025RackScheduleIsFrozenAcrossSweepParallelism) {
  struct Rec {
    sim::SimTime time;
    faults::FaultKind kind;
    int board;
    bool operator==(const Rec&) const = default;
  };
  auto schedule = [] {
    sim::Simulator sim;
    faults::FaultScenario s;
    s.seed = 2025;
    s.hazards.rack_event_per_s = 2.0;
    s.horizon = sim::seconds(3.0);
    for (int r = 0; r < 2; ++r) {
      faults::FailureDomain dom;
      dom.name = "r" + std::to_string(r);
      dom.boards = {r};
      dom.jitter = sim::ms(1.0);
      s.domains.push_back(dom);
    }
    faults::FaultPlane plane(sim, s);
    fpga::Board b0(sim, "b0", fpga::FabricConfig::only_little());
    fpga::Board b1(sim, "b1", fpga::FabricConfig::only_little());
    plane.add_board(b0);
    plane.add_board(b1);
    plane.set_handler([](const faults::HealthEvent&) {});
    plane.start();
    sim.schedule_at(s.horizon, [] {});
    sim.run();
    std::vector<Rec> out;
    for (const faults::HealthEvent& e : plane.injected()) {
      out.push_back({e.time, e.kind, e.board});
    }
    return out;
  };
  const std::vector<Rec> golden = {
      {143222957, faults::FaultKind::kRackEvent, 0},
      {143311148, faults::FaultKind::kBoardCrash, 0},
      {379154325, faults::FaultKind::kRackEvent, 1},
      {379601487, faults::FaultKind::kBoardCrash, 1},
      // Rack events landing while the member is already down inject no
      // second crash, but still consume their draws — later schedule
      // points cannot depend on transient board state.
      {1104312315, faults::FaultKind::kRackEvent, 1},
      {1305628941, faults::FaultKind::kRackEvent, 1},
      {2143311148, faults::FaultKind::kBoardReboot, 0},
      {2379601487, faults::FaultKind::kBoardReboot, 1},
      {2481503768, faults::FaultKind::kRackEvent, 0},
      {2482240800, faults::FaultKind::kBoardCrash, 0},
      {2747577560, faults::FaultKind::kRackEvent, 0},
      {2911728739, faults::FaultKind::kRackEvent, 1},
      {2912062170, faults::FaultKind::kBoardCrash, 1},
      {4482240800, faults::FaultKind::kBoardReboot, 0},
      {4912062170, faults::FaultKind::kBoardReboot, 1},
  };
  auto serial = schedule();
  ASSERT_EQ(serial.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(serial[i].time, golden[i].time) << i;
    EXPECT_EQ(serial[i].kind, golden[i].kind) << i;
    EXPECT_EQ(serial[i].board, golden[i].board) << i;
  }
  metrics::SweepRunner runner(4);
  auto cells = runner.map<std::vector<Rec>>(
      8, [&](std::size_t) { return schedule(); });
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell == serial);
  }
}

TEST(RackEvents, MetricRegistersOnlyWithDomains) {
  // vs_rack_events_total must not exist in rack-free registries, so
  // committed exports stay byte-identical.
  auto has_rack_counter = [](const faults::FaultScenario& s) {
    sim::Simulator sim;
    obs::MetricsRegistry registry;
    faults::FaultPlane plane(sim, s);
    plane.bind_metrics(registry);
    for (const auto& row : registry.counters()) {
      if (row.name == "vs_rack_events_total") return true;
    }
    return false;
  };
  faults::FaultScenario rack_free;
  rack_free.hazards.board_crash_per_s = 0.1;
  EXPECT_FALSE(has_rack_counter(rack_free));
  faults::FaultScenario racked;
  faults::FailureDomain dom;
  dom.name = "r0";
  dom.boards = {0};
  racked.domains.push_back(dom);
  EXPECT_TRUE(has_rack_counter(racked));
}

// -------------------------------------------------------------- AuroraFlap

TEST(AuroraFlap, AbortedTransferRetriesAfterBackoffAndCompletes) {
  sim::Simulator sim;
  cluster::AuroraLink link(sim);
  sim::SimTime done = -1;
  int fires = 0;
  const std::int64_t bytes = 1'250'000;  // ~1 ms on the link
  link.transfer(bytes, [&] {
    ++fires;
    done = sim.now();
  });
  // Flap mid-transfer, restore 2 ms later.
  sim::SimTime down_at = link.params().transfer_time(bytes) / 2;
  sim::SimTime up_at = down_at + sim::ms(2.0);
  sim.schedule_at(down_at, [&] { link.set_down(); });
  sim.schedule_at(up_at, [&] { link.set_up(); });
  sim.run();
  EXPECT_EQ(fires, 1);  // exactly one completion despite the retry
  EXPECT_EQ(link.aborts(), 1);
  EXPECT_FALSE(link.busy());
  EXPECT_TRUE(link.link_up());
  // Aurora restarts from scratch: link-up + first-attempt backoff + full
  // transfer time.
  EXPECT_EQ(done, up_at + link.params().retry_backoff +
                      link.params().transfer_time(bytes));
  // Accounting counts the logical transfer once.
  EXPECT_EQ(link.transfers(), 1);
  EXPECT_EQ(link.bytes_moved(), bytes);
}

TEST(AuroraFlap, TransfersRequestedWhileDownQueueAndSurvive) {
  sim::Simulator sim;
  cluster::AuroraLink link(sim);
  int completions = 0;
  link.set_down();
  for (int i = 0; i < 3; ++i) {
    link.transfer(1000, [&] { ++completions; });
  }
  sim.schedule_at(sim::ms(5.0), [&] { link.set_up(); });
  sim.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(link.transfers(), 3);
  EXPECT_EQ(link.aborts(), 0);  // queued, never aborted mid-flight
}

TEST(AuroraFlap, RepeatedFlapsGrowTheBackoffButNeverLoseTheTransfer) {
  sim::Simulator sim;
  cluster::AuroraLink link(sim);
  int fires = 0;
  const std::int64_t bytes = 1'250'000;
  link.transfer(bytes, [&] { ++fires; });
  // Three flaps, each timed mid-attempt: attempt k restarts
  // backoff_for(k) = retry_backoff << (k-1) after its link-up, so the
  // down/up pairs chase the growing backoff schedule.
  const sim::SimDuration tt = link.params().transfer_time(bytes);
  sim::SimTime start = 0;
  for (int i = 0; i < 3; ++i) {
    sim::SimTime down = start + tt / 2;
    sim::SimTime up = down + sim::us(50.0);
    sim.schedule_at(down, [&link] { link.set_down(); });
    sim.schedule_at(up, [&link] { link.set_up(); });
    start = up + (link.params().retry_backoff << i);
  }
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(link.aborts(), 3);
  EXPECT_EQ(link.transfers(), 1);
  EXPECT_EQ(link.bytes_moved(), bytes);
}

TEST(AuroraFlap, BackoffExponentClampsAfterSevenAttempts) {
  // backoff_for(attempts) = retry_backoff << min(attempts - 1, 6): the
  // schedule doubles for the first seven attempts and then plateaus at
  // retry_backoff * 64. Drive nine consecutive flaps, each aborting the
  // attempt mid-transfer, and check the exact restart times — including
  // that attempts 8, 9 and 10 all wait the same clamped delay (not << 7).
  sim::Simulator sim;
  cluster::AuroraLink link(sim);
  sim::SimTime done = -1;
  const std::int64_t bytes = 1'250'000;
  link.transfer(bytes, [&] { done = sim.now(); });
  const sim::SimDuration tt = link.params().transfer_time(bytes);
  const sim::SimDuration rb = link.params().retry_backoff;
  const int kFlaps = 9;
  std::vector<sim::SimTime> expected_restarts;
  sim::SimTime start = 0;  // attempt k begins here
  sim::SimTime last_up = 0;
  for (int i = 0; i < kFlaps; ++i) {
    sim::SimTime down = start + tt / 2;
    sim::SimTime up = down + sim::us(50.0);
    sim.schedule_at(down, [&link] { link.set_down(); });
    sim.schedule_at(up, [&link] { link.set_up(); });
    // After abort i+1 the queue head has attempts = i+1, so the retry
    // waits rb << min(i, 6) after the link comes back.
    start = up + (rb << std::min(i, 6));
    expected_restarts.push_back(start);
    last_up = up;
  }
  sim.run();
  EXPECT_EQ(link.aborts(), kFlaps);
  EXPECT_EQ(link.transfers(), 1);
  // The tenth attempt (after nine aborts) waited exactly the plateau
  // delay, not rb << 8: completion lands at its restart + transfer time.
  EXPECT_EQ(done, last_up + (rb << 6) + tt);
  // Attempts 8, 9, 10 share the clamped backoff; attempt 7 already did.
  ASSERT_GE(expected_restarts.size(), 3u);
  sim::SimDuration d8 =
      expected_restarts[7] - (expected_restarts[6] + tt / 2 + sim::us(50.0));
  sim::SimDuration d9 = done - tt - last_up;
  EXPECT_EQ(d8, rb << 6);
  EXPECT_EQ(d9, rb << 6);
  EXPECT_LT(done, last_up + (rb << 7) + tt);  // never escapes the clamp
}

// ----------------------------------------------------------------- SlotSeu

TEST(SlotSeu, RunsStillCompleteUnderRepeatedUpsets) {
  // End-to-end: periodic SEUs across all slots of a VersaSlot board; every
  // app still completes (poisoned items are discarded and re-run) and the
  // invariants audit stays green throughout.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStandard;
  config.apps_per_sequence = 6;
  util::Rng rng(17);
  auto seq = workload::generate_sequence(config, rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  const int n_slots = static_cast<int>(board.slots().size());
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(sim::ms(5.0) * (i + 1),
                    [&rt, i, n_slots] { rt.inject_slot_seu(i % n_slots); });
  }
  int steps = 0;
  while (sim.step()) {
    if (++steps % 997 == 0) {
      auto report = runtime::audit(rt);
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }
  EXPECT_EQ(rt.completed().size(), seq.size());
  auto report = runtime::audit(rt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SlotSeu, IdleConfiguredUnitIsEvictedImmediately) {
  // Drive a unit into the configured-idle (Running, no item in flight)
  // state with a scripted policy, then upset its slot: the unit returns to
  // Pending and the slot frees.
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy(/*dual=*/true);
  runtime::BoardRuntime rt(board, policy);
  // Streaming source slower than the item latency: between items the unit
  // sits Running with nothing in flight and its slot reads kConfigured.
  // (PR alone takes tens of ms, so the window's absolute time depends on
  // board params — step until the state is actually observed.)
  auto app = test::make_uniform_app("a", 1, sim::ms(1.0));
  rt.submit(app, 0, /*batch=*/4, 0, /*item_interval=*/sim::ms(50.0));
  int hit = -1;
  while (sim.step()) {
    for (const fpga::Slot& s : board.slots()) {
      if (s.state() == fpga::SlotState::kConfigured) hit = s.id();
    }
    if (hit >= 0) break;
  }
  ASSERT_GE(hit, 0);
  rt.inject_slot_seu(hit);
  EXPECT_EQ(board.slot(hit).state(), fpga::SlotState::kIdle);
  sim.run();
  EXPECT_EQ(rt.completed().size(), 1u);
  auto report = runtime::audit(rt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// -------------------------------------------------------------- BoardCrash

TEST(BoardCrash, ReportPartitionsAppsAndRuntimeFreezes) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 10;
  util::Rng rng(3);
  auto seq = workload::generate_sequence(config, rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      // A crashed board stops admitting; the cluster layer redirects
      // arrivals, so the stand-alone harness simply drops them.
      if (rt.crashed()) return;
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  // Crash mid-run with work in flight.
  const sim::SimTime crash_at = sim::ms(50.0);
  while (sim.step() && sim.now() < crash_at) {
  }
  int active_before = rt.active_apps();
  ASSERT_GT(active_before, 0);
  int completed_before = static_cast<int>(rt.completed().size());

  runtime::BoardRuntime::CrashReport report = rt.crash();
  EXPECT_TRUE(rt.crashed());
  EXPECT_EQ(static_cast<int>(report.evacuable.size() + report.killed.size()),
            active_before);
  for (const auto& m : report.killed) {
    EXPECT_TRUE(m.progress.empty());  // volatile state died with the board
  }
  EXPECT_EQ(rt.active_apps(), 0);
  for (const fpga::Slot& s : board.slots()) {
    EXPECT_EQ(s.state(), fpga::SlotState::kIdle);
  }
  auto audit_report = runtime::audit(rt);
  EXPECT_TRUE(audit_report.ok()) << audit_report.to_string();

  // Stale in-flight events (DMA, item finishes, core ops) must all die
  // against the crashed_ guards without completing anything.
  sim.run();
  EXPECT_EQ(static_cast<int>(rt.completed().size()), completed_before);
  audit_report = runtime::audit(rt);
  EXPECT_TRUE(audit_report.ok()) << audit_report.to_string();
}

// ----------------------------------------------------------- FaultRecovery

cluster::ClusterOptions faulty_options(bool enable_recovery,
                                       bool kill_restart) {
  cluster::ClusterOptions options;
  options.faults.seed = 404;
  options.faults.timeline.push_back(
      {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
  options.recovery.enable_recovery = enable_recovery;
  options.recovery.kill_restart = kill_restart;
  return options;
}

workload::Sequence recovery_sequence() {
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  util::Rng rng(41);
  return workload::generate_sequence(config, rng);
}

TEST(FaultRecovery, EvacuationViaLiveMigrationCompletesEveryApp) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  auto result = metrics::run_cluster(suite, seq,
                                     faulty_options(true, false));
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.boards_crashed, 1);
  EXPECT_EQ(result.recovery.boards_rebooted, 1);
  EXPECT_GT(result.recovery.apps_evacuated + result.recovery.apps_restarted,
            0);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.recovery.mttr_count, 1);
  EXPECT_GT(result.recovery.mttr_ms_mean(), 0.0);
  EXPECT_LT(result.availability, 1.0);
  test::expect_app_conservation(result);
}

TEST(FaultRecovery, NoRecoveryLosesTheDisplacedApps) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  auto result = metrics::run_cluster(suite, seq,
                                     faulty_options(false, false));
  EXPECT_GT(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.completed,
            result.submitted - result.recovery.apps_lost);
  test::expect_app_conservation(result);
}

TEST(FaultRecovery, KillRestartCompletesButForfeitsProgress) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  auto restart = metrics::run_cluster(suite, seq,
                                      faulty_options(true, true));
  EXPECT_EQ(restart.completed, restart.submitted);
  EXPECT_EQ(restart.recovery.apps_lost, 0);
  EXPECT_EQ(restart.recovery.apps_evacuated, 0);  // progress never moves
  EXPECT_GT(restart.recovery.apps_restarted, 0);
  test::expect_app_conservation(restart);
}

TEST(FaultRecovery, ShedThresholdDropsZeroProgressWorkFirst) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  cluster::ClusterOptions options = faulty_options(true, false);
  options.recovery.shed_threshold = 0;
  auto result = metrics::run_cluster(suite, seq, options);
  EXPECT_GT(result.recovery.apps_shed, 0);
  // Shed apps never complete; everything kept still does.
  EXPECT_EQ(result.completed, result.submitted - result.recovery.apps_shed);
  // Started tenants (progress carriers) are never shed: every shed app was
  // zero-progress, so none were counted evacuated-then-shed.
  EXPECT_EQ(result.recovery.apps_lost, 0);
  test::expect_app_conservation(result);
}

TEST(FaultRecovery, FaultFreeScenarioLeavesClusterOutputsUntouched) {
  // ClusterOptions with a default (disabled) scenario must construct no
  // plane and produce exactly the fault-free results.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  auto plain = metrics::run_cluster(suite, seq, cluster::ClusterOptions{});
  cluster::ClusterOptions with_struct;
  with_struct.faults = faults::FaultScenario{};
  auto defaulted = metrics::run_cluster(suite, seq, with_struct);
  ASSERT_EQ(defaulted.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(defaulted.response_ms[i], plain.response_ms[i]) << i;
  }
  EXPECT_EQ(defaulted.recovery.boards_crashed, 0);
  EXPECT_EQ(defaulted.availability, 1.0);
}

// -------------------------------------------------------- FaultDeterminism

TEST(FaultDeterminism, FaultyClusterRunsAreBitIdenticalAcrossRuns) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  cluster::ClusterOptions options = faulty_options(true, false);
  options.faults.hazards.link_flap_per_s = 0.2;
  options.faults.hazards.slot_seu_per_s = 0.5;
  options.faults.horizon = sim::seconds(30.0);
  auto a = metrics::run_cluster(suite, seq, options);
  auto b = metrics::run_cluster(suite, seq, options);
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_EQ(a.response_ms[i], b.response_ms[i]) << i;
  }
  EXPECT_EQ(a.recovery.mttr_total, b.recovery.mttr_total);
  EXPECT_EQ(a.recovery.slot_seus, b.recovery.slot_seus);
  EXPECT_EQ(a.recovery.link_flaps, b.recovery.link_flaps);
  EXPECT_EQ(a.availability, b.availability);
}

TEST(FaultDeterminism, SerialAndParallelSweepAgreeUnderFaults) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = recovery_sequence();
  cluster::ClusterOptions options = faulty_options(true, false);
  options.faults.hazards.link_flap_per_s = 0.2;
  options.faults.horizon = sim::seconds(30.0);

  auto serial = metrics::run_cluster(suite, seq, options);
  metrics::SweepRunner runner(2);
  auto cells = runner.map<metrics::ClusterRunResult>(
      2, [&](std::size_t) { return metrics::run_cluster(suite, seq, options); });
  for (const auto& cell : cells) {
    ASSERT_EQ(cell.response_ms.size(), serial.response_ms.size());
    for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
      EXPECT_EQ(cell.response_ms[i], serial.response_ms[i]) << i;
    }
    EXPECT_EQ(cell.recovery.mttr_total, serial.recovery.mttr_total);
    EXPECT_EQ(cell.recovery.link_flaps, serial.recovery.link_flaps);
  }
}

}  // namespace
}  // namespace vs
