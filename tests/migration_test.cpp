// Tests for iterative pre-copy live migration (cluster/migration.h): round
// convergence and the round cap, stop-and-copy downtime strictly below the
// whole-state switch, recovery through crashes/flaps/SEUs with pre-copy
// active, serial-vs-sharded and telemetry on/off bit-identity, and
// byte-identity of runs with the policy disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "cluster/migration.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace vs {
namespace {

// A stress sequence long enough to push D_switch over T1 (the ext bench's
// fault-free rows show two switches per 40-app stress sequence).
workload::Sequence switching_sequence(std::uint64_t seed = 2025,
                                      int n_apps = 40) {
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = n_apps;
  util::Rng rng(seed);
  return workload::generate_sequence(config, rng);
}

cluster::ClusterOptions precopy_options(int max_rounds = 4,
                                        double convergence = 0.125) {
  cluster::ClusterOptions options;
  options.migration.precopy = true;
  options.migration.max_rounds = max_rounds;
  options.migration.convergence = convergence;
  return options;
}

// ------------------------------------------------------- PrecopyConvergence

TEST(PrecopyConvergence, FullConvergenceThresholdStopsAfterOneRound) {
  // convergence = 1.0 sets the floor at the first round's own volume, so
  // any residue converges immediately: every switch streams exactly one
  // round and stops.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  auto r = metrics::run_cluster(suite, seq, precopy_options(8, 1.0));
  ASSERT_FALSE(r.switches.empty());
  EXPECT_EQ(r.completed, r.submitted);
  for (const cluster::SwitchEvent& e : r.switches) {
    EXPECT_EQ(e.precopy_rounds, 1);
    EXPECT_GE(e.precopy_bytes, 4096);         // control message + state
    EXPECT_GE(e.stopcopy_bytes, 4096);        // control message + residue
    EXPECT_EQ(e.bytes, e.precopy_bytes + e.stopcopy_bytes);
  }
}

TEST(PrecopyConvergence, RoundCapBoundsWriteHeavyStreams) {
  // With the convergence floor effectively off (1 byte) and a slow link —
  // so each round's transfer spans enough execution for running apps to
  // pause into the stream — rounds repeat, but never past max_rounds.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  cluster::ClusterOptions options = precopy_options(3, 0.0);
  options.migration.min_dirty_bytes = 1;
  options.link_params.bandwidth_bytes_per_s = 2e8;
  options.faults.seed = 7;
  options.faults.hazards.slot_seu_per_s = 5.0;
  options.faults.horizon = sim::seconds(30.0);
  auto r = metrics::run_cluster(suite, seq, options);
  ASSERT_FALSE(r.switches.empty());
  EXPECT_EQ(r.completed, r.submitted);
  for (const cluster::SwitchEvent& e : r.switches) {
    EXPECT_GE(e.precopy_rounds, 1);
    EXPECT_LE(e.precopy_rounds, options.migration.max_rounds);
    EXPECT_EQ(e.bytes, e.precopy_bytes + e.stopcopy_bytes);
  }
}

TEST(PrecopyConvergence, RoundsShipOnlyDirtWrittenBetweenPauses) {
  // The round payload property pre-copy rests on, driven directly at the
  // BoardRuntime: an app's first pause-visible appearance in a stream
  // ships its full migratable footprint; after it runs again (a
  // write-heavy burst) the next round ships only the regions it dirtied —
  // strictly less than the footprint — and a round with no execution in
  // between ships nothing.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  rt.enable_dirty_tracking(16 * 1024);
  // Several apps: the first fills the Big slot as a bundle (bundled apps
  // never migrate), the rest stay on the per-task decomposition — the
  // write-heavy subject is one of those.
  for (int i = 0; i < 4; ++i) rt.submit(suite[0], 0, 12, 0);

  // The subject: the first started app still on one-unit-per-task.
  auto subject = [&rt]() -> const runtime::AppRun* {
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec != nullptr && !a.done() && a.started &&
          a.units.size() == static_cast<std::size_t>(a.spec->task_count())) {
        return &a;
      }
    }
    return nullptr;
  };
  auto total_items = [&](const runtime::AppRun& a) {
    int n = 0;
    for (const runtime::UnitRun& u : a.units) n += u.items_done;
    return n;
  };
  // Steps until the subject sits at an item boundary (nothing mid-flight
  // or mid-PR) with at least `min_items` committed, then preempts every
  // running unit so the whole app is pause-visible.
  auto run_then_pause = [&](int min_items) {
    auto pausable = [&] {
      const runtime::AppRun* a = subject();
      if (a == nullptr || total_items(*a) < min_items) return false;
      for (const runtime::UnitRun& u : a->units) {
        if (u.state == runtime::UnitState::kReconfiguring ||
            u.item_in_flight) {
          return false;
        }
      }
      return true;
    };
    while (sim.step() && !pausable()) {
    }
    const runtime::AppRun* a = subject();
    ASSERT_NE(a, nullptr);
    ASSERT_GE(total_items(*a), min_items);
    for (std::size_t i = 0; i < a->units.size(); ++i) {
      if (a->units[i].state == runtime::UnitState::kRunning) {
        rt.preempt_unit(a->id, static_cast<int>(i));
      }
    }
  };

  run_then_pause(4);
  rt.begin_migration_stream();
  const std::int64_t full = rt.take_migration_stream_bytes();
  ASSERT_GT(full, 0);
  // Pause-visible apps are a subset of the full migratable estimate
  // (running per-task apps join the stream only when they pause).
  EXPECT_LE(full, rt.migratable_state_bytes());
  // No execution since the stream started: the next round is empty.
  EXPECT_EQ(rt.take_migration_stream_bytes(), 0);

  const int before = total_items(*subject());
  run_then_pause(before + 2);  // the write-heavy burst between rounds
  const std::int64_t delta = rt.take_migration_stream_bytes();
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, full);
}

// --------------------------------------------------------- PrecopyDowntime

TEST(PrecopyDowntime, StopAndCopyStrictlyBelowWholeStateSwitch) {
  // The headline claim: for switches that actually move state, pre-copy
  // pays transfer time while the origins keep executing and stops the
  // world only for the final residue — strictly less downtime than the
  // whole-state stop-and-copy of the same workload.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();

  cluster::ClusterOptions whole;  // defaults: whole-state migration
  auto w = metrics::run_cluster(suite, seq, whole);
  auto p = metrics::run_cluster(suite, seq, precopy_options());

  sim::SimDuration whole_max = 0, pre_max = 0;
  int whole_moves = 0, pre_moves = 0;
  for (const cluster::SwitchEvent& e : w.switches) {
    EXPECT_EQ(e.precopy_rounds, 0);  // whole-state streams nothing
    EXPECT_EQ(e.stopcopy_bytes, e.bytes);
    if (e.apps_migrated > 0) {
      ++whole_moves;
      whole_max = std::max(whole_max, e.downtime);
    }
  }
  for (const cluster::SwitchEvent& e : p.switches) {
    if (e.apps_migrated > 0) {
      ++pre_moves;
      pre_max = std::max(pre_max, e.downtime);
    }
  }
  ASSERT_GT(whole_moves, 0);
  ASSERT_GT(pre_moves, 0);
  EXPECT_GT(whole_max, 0);
  EXPECT_LT(pre_max, whole_max);
  // Both modes finish the workload completely.
  EXPECT_EQ(w.completed, w.submitted);
  EXPECT_EQ(p.completed, p.submitted);
}

// --------------------------------------------------------- PrecopyRecovery

TEST(PrecopyRecovery, SurvivesCrashesFlapsAndSeusWithDeltaCheckpoints) {
  // The full PR 7 configuration — delta checkpointing and pre-copy
  // migration — through the scripted double crash plus background SEU and
  // link-flap hazards: nothing is lost and snapshots still restore apps.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  cluster::ClusterOptions options = precopy_options();
  options.checkpoint.enabled = true;
  options.checkpoint.delta = true;
  options.recovery.enable_recovery = true;
  options.faults.seed = 404;
  options.faults.hazards.slot_seu_per_s = 0.3;
  options.faults.hazards.link_flap_per_s = 0.1;
  options.faults.horizon = sim::seconds(30.0);
  options.faults.timeline.push_back(
      {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
  options.faults.timeline.push_back(
      {sim::seconds(10.0), faults::FaultKind::kBoardCrash, 1, -1});
  auto r = metrics::run_cluster(suite, seq, options);
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_EQ(r.recovery.apps_lost, 0);
  EXPECT_EQ(r.recovery.boards_crashed, 2);
  EXPECT_GT(r.checkpoint.deltas, 0);
}

// ------------------------------------------------------ PrecopyDeterminism

TEST(PrecopyDeterminism, SerialShardedAndInstrumentedBitIdentical) {
  // Pre-copy plus delta checkpointing under crash + flap + SEU hazards:
  // the serial kernel stays the bit-exact oracle of the sharded kernel at
  // every worker count, and telemetry never perturbs results.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  cluster::ClusterOptions options = precopy_options();
  options.checkpoint.enabled = true;
  options.checkpoint.delta = true;
  options.recovery.enable_recovery = true;
  options.faults.seed = 404;
  options.faults.hazards.board_crash_per_s = 0.02;
  options.faults.hazards.slot_seu_per_s = 0.3;
  options.faults.hazards.link_flap_per_s = 0.1;
  options.faults.horizon = sim::seconds(30.0);

  auto serial = metrics::run_cluster(suite, seq, options);
  ASSERT_GT(serial.response_ms.size(), 0u);

  obs::Telemetry telemetry;
  auto instrumented = metrics::run_cluster(suite, seq, options,
                                           sim::seconds(36000.0), &telemetry);
  ASSERT_EQ(instrumented.response_ms.size(), serial.response_ms.size());
  for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], serial.response_ms[i]) << i;
  }

  auto expect_same = [&](const metrics::ClusterRunResult& cell,
                         const std::string& what) {
    ASSERT_EQ(cell.response_ms.size(), serial.response_ms.size()) << what;
    for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
      EXPECT_EQ(cell.response_ms[i], serial.response_ms[i])
          << what << ", app " << i;
    }
    ASSERT_EQ(cell.switches.size(), serial.switches.size()) << what;
    for (std::size_t i = 0; i < serial.switches.size(); ++i) {
      EXPECT_EQ(cell.switches[i].precopy_rounds,
                serial.switches[i].precopy_rounds)
          << what << ", switch " << i;
      EXPECT_EQ(cell.switches[i].precopy_bytes,
                serial.switches[i].precopy_bytes)
          << what << ", switch " << i;
      EXPECT_EQ(cell.switches[i].stopcopy_bytes,
                serial.switches[i].stopcopy_bytes)
          << what << ", switch " << i;
      EXPECT_EQ(cell.switches[i].downtime, serial.switches[i].downtime)
          << what << ", switch " << i;
    }
    EXPECT_EQ(cell.checkpoint.delta_bytes, serial.checkpoint.delta_bytes)
        << what;
    EXPECT_EQ(cell.recovery.mttr_total, serial.recovery.mttr_total) << what;
  };
  expect_same(instrumented, "instrumented");

  for (int workers : {1, 2, 4, 8}) {
    cluster::ClusterOptions sharded = options;
    sharded.kernel_workers = workers;
    auto cell = metrics::run_cluster(suite, seq, sharded);
    expect_same(cell, std::to_string(workers) + " workers");
    EXPECT_EQ(cell.events, serial.events) << workers;
  }
}

// --------------------------------------------------------- PrecopyDisabled

TEST(PrecopyDisabled, InactivePolicyIsByteIdenticalToDefaults) {
  // precopy = false (even with every other knob tweaked) must not perturb
  // a run in any way — the whole-state switch path is untouched.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  cluster::ClusterOptions plain;
  auto a = metrics::run_cluster(suite, seq, plain);
  cluster::ClusterOptions tweaked;
  tweaked.migration.precopy = false;
  tweaked.migration.max_rounds = 9;
  tweaked.migration.convergence = 0.5;
  tweaked.migration.min_dirty_bytes = 1;
  auto b = metrics::run_cluster(suite, seq, tweaked);
  ASSERT_EQ(b.response_ms.size(), a.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_EQ(b.response_ms[i], a.response_ms[i]) << i;
  }
  ASSERT_EQ(b.switches.size(), a.switches.size());
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(b.switches[i].bytes, a.switches[i].bytes) << i;
    EXPECT_EQ(b.switches[i].overhead, a.switches[i].overhead) << i;
  }
  EXPECT_EQ(b.events, a.events);
}

TEST(PrecopyDisabled, NoMigrationInstrumentsRegisteredWhenInactive) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence(2025, 20);
  obs::Telemetry telemetry;
  (void)metrics::run_cluster(suite, seq, {}, sim::seconds(36000.0),
                             &telemetry);
  for (const auto& row : telemetry.registry().counters()) {
    EXPECT_EQ(row.name.rfind("vs_migration_", 0), std::string::npos)
        << row.name;
  }
  for (const auto& row : telemetry.registry().histograms()) {
    EXPECT_EQ(row.name.rfind("vs_migration_", 0), std::string::npos)
        << row.name;
  }
}

// -------------------------------------------------------- PrecopyTelemetry

TEST(PrecopyTelemetry, RoundAndDowntimeInstrumentsMatchSwitchEvents) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = switching_sequence();
  obs::Telemetry telemetry;
  auto r = metrics::run_cluster(suite, seq, precopy_options(),
                                sim::seconds(36000.0), &telemetry);
  ASSERT_FALSE(r.switches.empty());
  double rounds = 0, precopy_bytes = 0;
  for (const auto& row : telemetry.registry().counters()) {
    if (row.name == "vs_migration_rounds_total") rounds += row.cell.value();
    if (row.name == "vs_migration_precopy_bytes_total") {
      precopy_bytes += row.cell.value();
    }
  }
  double expected_rounds = 0, expected_bytes = 0;
  for (const cluster::SwitchEvent& e : r.switches) {
    expected_rounds += e.precopy_rounds;
    expected_bytes += static_cast<double>(e.precopy_bytes);
  }
  EXPECT_EQ(rounds, expected_rounds);
  EXPECT_EQ(precopy_bytes, expected_bytes);
  const obs::Histogram* downtime =
      telemetry.registry().find_histogram("vs_migration_downtime_ms", {});
  ASSERT_NE(downtime, nullptr);
  EXPECT_EQ(downtime->count(), r.switches.size());
}

}  // namespace
}  // namespace vs
