// Integration tests across the whole stack: the experiment harness, the
// workload generator, end-to-end runs of all six systems, determinism, and
// conservation invariants.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "workload/generator.h"

namespace vs::metrics {
namespace {

struct Env {
  fpga::BoardParams params;
  std::vector<apps::AppSpec> suite;
  Env() : suite(apps::make_suite(params)) {}

  workload::Sequence sequence(workload::Congestion c, int n,
                              std::uint64_t seed) {
    workload::WorkloadConfig config;
    config.congestion = c;
    config.apps_per_sequence = n;
    util::Rng rng(seed);
    return workload::generate_sequence(config, rng);
  }
};

TEST(Workload, DeterministicFromSeed) {
  Env env;
  auto a = env.sequence(workload::Congestion::kStandard, 20, 42);
  auto b = env.sequence(workload::Congestion::kStandard, 20, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec_index, b[i].spec_index);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].batch, b[i].batch);
  }
}

TEST(Workload, BatchBoundsAndMonotoneArrivals) {
  Env env;
  for (auto c : {workload::Congestion::kLoose, workload::Congestion::kStandard,
                 workload::Congestion::kStress,
                 workload::Congestion::kRealtime}) {
    auto seq = env.sequence(c, 50, 7);
    sim::SimTime prev = -1;
    for (const auto& a : seq) {
      EXPECT_GE(a.batch, 5);
      EXPECT_LE(a.batch, 30);
      EXPECT_GE(a.spec_index, 0);
      EXPECT_LT(a.spec_index, 5);
      EXPECT_GT(a.arrival, prev);
      prev = a.arrival;
    }
  }
}

TEST(Workload, IntervalRegimes) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(workload::draw_interval(workload::Congestion::kLoose, rng),
              sim::ms(5000.0));
    auto std_iv = workload::draw_interval(workload::Congestion::kStandard, rng);
    EXPECT_GE(std_iv, sim::ms(1500.0));
    EXPECT_LE(std_iv, sim::ms(2000.0));
    auto stress = workload::draw_interval(workload::Congestion::kStress, rng);
    EXPECT_GE(stress, sim::ms(150.0));
    EXPECT_LE(stress, sim::ms(200.0));
    EXPECT_EQ(workload::draw_interval(workload::Congestion::kRealtime, rng),
              sim::ms(50.0));
  }
}

TEST(Workload, GenerateSequencesAreIndependent) {
  workload::WorkloadConfig config;
  auto seqs = workload::generate_sequences(config, 10, 99);
  ASSERT_EQ(seqs.size(), 10u);
  // First arrivals all zero, but batches should not all coincide.
  int same_as_first = 0;
  for (const auto& s : seqs) same_as_first += (s[0].batch == seqs[0][0].batch);
  EXPECT_LT(same_as_first, 10);
}

TEST(Experiment, SystemNamesAndFabrics) {
  EXPECT_STREQ(system_name(SystemKind::kBaseline), "Baseline");
  EXPECT_STREQ(system_name(SystemKind::kVersaBigLittle), "VersaSlot-BL");
  EXPECT_EQ(fabric_for(SystemKind::kVersaBigLittle).kind,
            fpga::FabricKind::kBigLittle);
  EXPECT_EQ(fabric_for(SystemKind::kNimblock).kind,
            fpga::FabricKind::kOnlyLittle);
}

TEST(Experiment, MakePolicyCoversAllKinds) {
  for (int k = 0; k < kSystemCount; ++k) {
    auto p = make_policy(static_cast<SystemKind>(k));
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), system_name(static_cast<SystemKind>(k)));
  }
}

TEST(Experiment, DeterministicRuns) {
  Env env;
  auto seq = env.sequence(workload::Congestion::kStress, 12, 5);
  RunResult a = run_single_board(SystemKind::kVersaBigLittle, env.suite, seq);
  RunResult b = run_single_board(SystemKind::kVersaBigLittle, env.suite, seq);
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.response_ms[i], b.response_ms[i]);
  }
  EXPECT_EQ(a.counters.pr_requests, b.counters.pr_requests);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Experiment, AggregatePoolsSequences) {
  Env env;
  std::vector<workload::Sequence> seqs{
      env.sequence(workload::Congestion::kStandard, 5, 1),
      env.sequence(workload::Congestion::kStandard, 5, 2)};
  AggregateResult agg =
      aggregate(SystemKind::kVersaBigLittle, env.suite, seqs);
  EXPECT_EQ(agg.all_responses_ms.size(), 10u);
  EXPECT_GT(agg.mean_response_ms, 0.0);
  EXPECT_GE(agg.p99_ms, agg.p95_ms);
}

TEST(Experiment, BigLittleBeatsBaselineUnderStandardLoad) {
  Env env;
  auto seq = env.sequence(workload::Congestion::kStandard, 15, 11);
  RunResult base = run_single_board(SystemKind::kBaseline, env.suite, seq);
  RunResult bl =
      run_single_board(SystemKind::kVersaBigLittle, env.suite, seq);
  ASSERT_EQ(base.completed, 15);
  ASSERT_EQ(bl.completed, 15);
  // The headline result, loosely: spatio-temporal sharing with Big.Little
  // slots crushes exclusive temporal multiplexing.
  EXPECT_LT(bl.response.mean * 4, base.response.mean);
}

TEST(Experiment, DualCoreBeatsSingleCoreVersaSlot) {
  Env env;
  auto seq = env.sequence(workload::Congestion::kStress, 15, 13);
  RunOptions dual;
  RunOptions single;
  single.vs_options.dual_core = false;
  RunResult d =
      run_single_board(SystemKind::kVersaOnlyLittle, env.suite, seq, dual);
  RunResult s =
      run_single_board(SystemKind::kVersaOnlyLittle, env.suite, seq, single);
  EXPECT_LT(d.response.mean, s.response.mean);
}

// ---------------------------------------------------------------- sweeps

struct SweepParam {
  SystemKind kind;
  workload::Congestion congestion;
  std::uint64_t seed;
};

class SystemSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SystemSweep, CompletesAllAppsWithSaneMetrics) {
  const SweepParam p = GetParam();
  Env env;
  auto seq = env.sequence(p.congestion, 10, p.seed);
  RunResult r = run_single_board(p.kind, env.suite, seq);

  // Completion: every submitted app finishes.
  EXPECT_EQ(r.completed, r.submitted);

  // Response times positive and consistent with the summary.
  for (double ms : r.response_ms) EXPECT_GT(ms, 0.0);
  EXPECT_GE(r.response.max, r.response.p99);
  EXPECT_GE(r.response.p99, r.response.p95);
  EXPECT_GE(r.response.p95, r.response.p50);
  EXPECT_GE(r.response.p50, r.response.min);

  // Conservation: every batch item of every task executed exactly once.
  // (units may be bundles, so compare item-executions against units.)
  std::int64_t expected_items = 0;
  for (const auto& a : seq) {
    int tasks =
        env.suite[static_cast<std::size_t>(a.spec_index)].task_count();
    int units = (p.kind == SystemKind::kVersaBigLittle)
                    ? 0  // depends on binding; just require a lower bound
                    : tasks;
    expected_items += static_cast<std::int64_t>(units) * a.batch;
  }
  if (p.kind == SystemKind::kVersaBigLittle) {
    EXPECT_GT(r.counters.items_executed, 0);
  } else {
    EXPECT_EQ(r.counters.items_executed, expected_items);
  }

  // PR accounting: every placement required a PR; blocked PRs cannot
  // exceed requests.
  EXPECT_GE(r.counters.pr_requests,
            static_cast<std::int64_t>(r.response_ms.size()));
  EXPECT_LE(r.counters.pr_blocked, r.counters.pr_requests);

  // Utilisation sanity.
  EXPECT_LE(r.utilization.lut_used, r.utilization.lut_capacity + 1e-6);
  EXPECT_LE(r.utilization.lut_capacity, r.utilization.lut_fabric + 1e-6);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string n = system_name(info.param.kind);
  for (char& c : n) {
    if (c == '-' || c == '.') c = '_';
  }
  std::string c = workload::congestion_name(info.param.congestion);
  std::erase(c, '-');
  return n + "_" + c + std::to_string(info.param.seed);
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> out;
  for (int k = 0; k < kSystemCount; ++k) {
    for (auto c : {workload::Congestion::kStandard,
                   workload::Congestion::kStress}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        out.push_back({static_cast<SystemKind>(k), c, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemSweep,
                         ::testing::ValuesIn(make_sweep()), sweep_name);

}  // namespace
}  // namespace vs::metrics
