// Cluster-wide causal observability tests: the trace hub's merged Chrome
// trace with flow events, the structured run journal and its round-trip
// parser, TraceRecorder capacity bounds, response-time phase accounting
// (phases sum exactly to response time, bit-for-bit across kernels and
// fault scenarios), and the pinned guarantee that none of it perturbs an
// uninstrumented run.
#include <array>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "faults/scenario.h"
#include "metrics/experiment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_hub.h"
#include "sim/trace.h"
#include "util/cli.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs::obs {
namespace {

// ------------------------------------------------------- recorder capacity

TEST(TraceRecorderCapacity, RingModeKeepsNewestAndCountsLosses) {
  sim::TraceRecorder rec;
  rec.enable();
  rec.set_capacity(3, sim::TraceCapacityMode::kRing);
  for (int i = 1; i <= 5; ++i) {
    rec.add(i * 100, i * 100 + 10, "lane", "s" + std::to_string(i),
            sim::SpanKind::kMarker);
  }
  EXPECT_EQ(rec.spans().size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  auto ordered = rec.ordered_spans();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].label, "s3");
  EXPECT_EQ(ordered[1].label, "s4");
  EXPECT_EQ(ordered[2].label, "s5");
  // Oldest-first: the unrolled ring is in append order.
  EXPECT_LT(ordered[0].start, ordered[2].start);
}

TEST(TraceRecorderCapacity, DropModeKeepsOldest) {
  sim::TraceRecorder rec;
  rec.enable();
  rec.set_capacity(2, sim::TraceCapacityMode::kDrop);
  for (int i = 1; i <= 5; ++i) {
    rec.add(i * 100, i * 100 + 10, "lane", "s" + std::to_string(i),
            sim::SpanKind::kMarker);
  }
  EXPECT_EQ(rec.dropped(), 3u);
  auto ordered = rec.ordered_spans();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].label, "s1");
  EXPECT_EQ(ordered[1].label, "s2");
}

TEST(TraceRecorderCapacity, ZeroCapacityRestoresUnboundedGrowth) {
  sim::TraceRecorder rec;
  rec.enable();
  rec.set_capacity(1, sim::TraceCapacityMode::kRing);
  rec.set_capacity(0);
  EXPECT_EQ(rec.capacity_mode(), sim::TraceCapacityMode::kUnbounded);
  for (int i = 0; i < 10; ++i) {
    rec.add(i, i + 1, "lane", "s", sim::SpanKind::kMarker);
  }
  EXPECT_EQ(rec.spans().size(), 10u);
  EXPECT_EQ(rec.dropped(), 0u);
}

// --------------------------------------------- Prometheus label escaping

TEST(PrometheusEscaping, HostileLabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry
      .counter("vs_hostile_total",
               {{"board", "a\\b"}, {"spec", "q\"uote\nline"}})
      .add(3);
  std::ostringstream out;
  write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("board=\"a\\\\b\""), std::string::npos) << text;
  EXPECT_NE(text.find("spec=\"q\\\"uote\\nline\""), std::string::npos)
      << text;
  // The exposition stays one sample per line: no raw newline leaked into
  // the label block.
  EXPECT_EQ(text.find("uote\nline"), std::string::npos) << text;
}

// ------------------------------------------------------------ hub golden

TEST(TraceHub, GoldenChromeTraceWithFlowEvents) {
  ClusterTraceHub hub;
  hub.enable_trace();

  sim::TraceRecorder rec;
  rec.enable();
  rec.add(1000, 3000, "slot L1", "A PR", sim::SpanKind::kReconfig);
  rec.add(2000, 6000, "core", "pass", sim::SpanKind::kCoreOp);
  hub.attach_spans("b0", &rec);

  TraceChannel& b0 = hub.channel("b0");
  TraceChannel& cl = hub.channel("cluster");
  std::uint64_t id = b0.new_flow_id();
  EXPECT_EQ(id, (std::uint64_t{1} << 32) | 1u);
  b0.flow(id, FlowPhase::kStart, 2000, "b0", "migration", "go");
  cl.flow(id, FlowPhase::kStep, 4000, "cluster", "recovery", "hop");
  b0.flow(id, FlowPhase::kEnd, 5000, "b0", "slot L1", "land");

  std::ostringstream out;
  hub.write_chrome_trace(out);
  const std::string expected =
      "[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"b0\"}},\n"
      "{\"name\":\"vs_dropped_spans\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"dropped\":0}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"slot L1\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"core\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"migration\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"cluster\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
      "\"args\":{\"name\":\"recovery\"}},\n"
      "{\"name\":\"A PR\",\"cat\":\"reconfig\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":1,\"dur\":2},\n"
      "{\"name\":\"pass\",\"cat\":\"core\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":2,\"ts\":2,\"dur\":4},\n"
      "{\"name\":\"go\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":4294967297,"
      "\"pid\":1,\"tid\":3,\"ts\":2},\n"
      "{\"name\":\"hop\",\"cat\":\"flow\",\"ph\":\"t\",\"id\":4294967297,"
      "\"pid\":2,\"tid\":1,\"ts\":4},\n"
      "{\"name\":\"land\",\"cat\":\"flow\",\"ph\":\"f\",\"id\":4294967297,"
      "\"pid\":1,\"tid\":1,\"ts\":5,\"bp\":\"e\"}\n"
      "]\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(TraceHub, EmptyHubEmitsAnEmptyJsonArray) {
  ClusterTraceHub hub;
  std::ostringstream out;
  hub.write_chrome_trace(out);
  EXPECT_EQ(out.str(), "[\n]\n");
}

TEST(TraceHub, SealedSpansSurviveRecorderDestruction) {
  ClusterTraceHub hub;
  hub.enable_trace();
  {
    sim::TraceRecorder rec;
    rec.enable();
    rec.set_capacity(1, sim::TraceCapacityMode::kRing);
    rec.add(100, 200, "lane", "old", sim::SpanKind::kMarker);
    rec.add(300, 400, "lane", "new", sim::SpanKind::kMarker);
    hub.attach_spans("b0", &rec);
    hub.seal();
  }  // recorder destroyed; the hub must not dereference it
  std::ostringstream out;
  hub.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"new\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"old\""), std::string::npos);
  EXPECT_NE(out.str().find("\"dropped\":1"), std::string::npos);
}

TEST(TraceHub, FlowIdsAreNamespacedPerChannel) {
  ClusterTraceHub hub;
  TraceChannel& a = hub.channel("a");
  TraceChannel& b = hub.channel("b");
  std::uint64_t a1 = a.new_flow_id();
  std::uint64_t a2 = a.new_flow_id();
  std::uint64_t b1 = b.new_flow_id();
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, b1);
  EXPECT_NE(a2, b1);
  // Re-requesting a channel by name returns the same channel.
  EXPECT_EQ(&hub.channel("a"), &a);
}

// ------------------------------------------------------------ run journal

TEST(RunJournal, RoundTripsThroughJsonl) {
  ClusterTraceHub hub;
  hub.enable_journal();
  TraceChannel& ch = hub.channel("b0");
  ch.journal(1500000, JournalEvent::kAdmit, "b0", 3, "Digit", 0, "batch 17");
  ch.journal(2000000, JournalEvent::kCrash, "b0", -1, {}, 42,
             "2 displaced\nwith \"quotes\" and \\slashes");
  ch.journal(2500000, JournalEvent::kComplete, "b0", 3, "Digit");

  std::ostringstream out;
  hub.write_journal(out);
  std::istringstream in(out.str());
  auto records = parse_journal(in);
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].time, 1500000);
  EXPECT_EQ(records[0].event, JournalEvent::kAdmit);
  EXPECT_EQ(records[0].board, "b0");
  EXPECT_EQ(records[0].app, 3);
  EXPECT_EQ(records[0].spec, "Digit");
  EXPECT_EQ(records[0].flow, 0u);
  EXPECT_EQ(records[0].detail, "batch 17");

  EXPECT_EQ(records[1].event, JournalEvent::kCrash);
  EXPECT_EQ(records[1].app, -1);
  EXPECT_EQ(records[1].flow, 42u);
  EXPECT_EQ(records[1].detail,
            "2 displaced\nwith \"quotes\" and \\slashes");

  EXPECT_EQ(records[2].event, JournalEvent::kComplete);
  EXPECT_EQ(records[2].detail, "");
}

TEST(RunJournal, EventNamesRoundTrip) {
  for (JournalEvent e :
       {JournalEvent::kAdmit, JournalEvent::kBind, JournalEvent::kPreempt,
        JournalEvent::kCheckpoint, JournalEvent::kComplete,
        JournalEvent::kMigrate, JournalEvent::kCrash, JournalEvent::kRestore,
        JournalEvent::kShed, JournalEvent::kReadmit}) {
    JournalEvent parsed;
    ASSERT_TRUE(journal_event_from_string(to_string(e), parsed))
        << to_string(e);
    EXPECT_EQ(parsed, e);
  }
  JournalEvent unused;
  EXPECT_FALSE(journal_event_from_string("not-an-event", unused));
}

TEST(RunJournal, MergeIsStableAcrossEqualTimestamps) {
  ClusterTraceHub hub;
  hub.enable_journal();
  TraceChannel& first = hub.channel("first");
  TraceChannel& second = hub.channel("second");
  second.journal(100, JournalEvent::kAdmit, "second");
  first.journal(100, JournalEvent::kAdmit, "first");
  first.journal(50, JournalEvent::kAdmit, "first");
  auto merged = hub.merged_journal();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].time, 50);
  // Equal timestamps keep channel-creation order: "first" was created
  // first, so its t=100 record precedes "second"'s.
  EXPECT_EQ(merged[1].board, "first");
  EXPECT_EQ(merged[2].board, "second");
}

// -------------------------------------------------------------- resolvers

TEST(Resolvers, TraceAndJournalOutPreferFlagThenEnv) {
  const char* argv[] = {"prog", "--trace-out", "t.json", "--journal-out",
                        "j.jsonl"};
  util::CliArgs args(5, argv);
  ::setenv("VS_TRACE", "env-t.json", 1);
  ::setenv("VS_JOURNAL", "env-j.jsonl", 1);
  EXPECT_EQ(resolve_trace_out(&args), "t.json");
  EXPECT_EQ(resolve_journal_out(&args), "j.jsonl");
  util::CliArgs no_flag(1, argv);
  EXPECT_EQ(resolve_trace_out(&no_flag), "env-t.json");
  EXPECT_EQ(resolve_journal_out(&no_flag), "env-j.jsonl");
  ::unsetenv("VS_TRACE");
  ::unsetenv("VS_JOURNAL");
  EXPECT_EQ(resolve_trace_out(&no_flag), "");
  EXPECT_EQ(resolve_journal_out(&no_flag), "");
  EXPECT_EQ(resolve_trace_out(nullptr), "");
  EXPECT_EQ(resolve_journal_out(nullptr), "");
}

// ----------------------------------------------------- phase accounting

workload::Sequence stress_sequence(std::uint64_t seed, int apps) {
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = apps;
  util::Rng rng(seed);
  return workload::generate_sequence(config, rng);
}

faults::FaultScenario faulty_scenario() {
  faults::FaultScenario s;
  s.seed = 77;
  s.hazards.board_crash_per_s = 0.05;
  s.hazards.link_flap_per_s = 0.05;
  s.hazards.slot_seu_per_s = 0.1;
  s.horizon = sim::seconds(60.0);
  s.timeline.push_back(
      {sim::seconds(1.0), faults::FaultKind::kBoardCrash, 0, -1});
  return s;
}

void expect_phases_sum_to_response(
    const std::vector<runtime::CompletedApp>& apps, const char* label) {
  ASSERT_GT(apps.size(), 0u) << label;
  for (const runtime::CompletedApp& c : apps) {
    sim::SimDuration total = 0;
    for (sim::SimDuration d : c.phase_ns) {
      EXPECT_GE(d, 0) << label << " app " << c.app_id;
      total += d;
    }
    // Integer-exact: the invariant holds to the nanosecond, not within a
    // floating-point tolerance.
    EXPECT_EQ(total, c.completed - c.arrival) << label << " app " << c.app_id;
  }
}

TEST(PhaseAccounting, PhasesSumExactlyToResponseAcrossScenariosAndKernels) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (std::uint64_t seed : {2025u, 77u}) {
    workload::Sequence seq = stress_sequence(seed, 25);
    for (int scenario = 0; scenario < 3; ++scenario) {
      for (int workers : {0, 4}) {
        cluster::ClusterOptions options;
        options.phase_accounting = true;
        options.kernel_workers = workers;
        if (scenario >= 1) options.faults = faulty_scenario();
        if (scenario == 2) {
          options.checkpoint.enabled = true;
          options.checkpoint.delta = true;
        }
        metrics::ClusterRunResult r =
            metrics::run_cluster(suite, seq, options);
        std::string label = "seed " + std::to_string(seed) + " scenario " +
                            std::to_string(scenario) + " workers " +
                            std::to_string(workers);
        expect_phases_sum_to_response(r.apps, label.c_str());
      }
    }
  }
}

TEST(PhaseAccounting, PhasesSumExactlyToResponseOnFaultedSingleBoard) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = stress_sequence(2025, 15);
  metrics::RunOptions opts;
  opts.phase_accounting = true;
  opts.faults = faulty_scenario();
  metrics::RunResult r = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, opts);
  expect_phases_sum_to_response(r.apps, "single-board faulted");
  // The fault path was actually exercised.
  EXPECT_GT(r.recovery.boards_crashed, 0);
  // Recovery transit shows up in the account of at least one app.
  bool recovery_charged = false;
  for (const runtime::CompletedApp& c : r.apps) {
    if (c.phase_ns[static_cast<std::size_t>(runtime::AppPhase::kRecovery)] >
        0) {
      recovery_charged = true;
    }
  }
  EXPECT_TRUE(recovery_charged);
}

TEST(PhaseAccounting, ObservabilityDoesNotPerturbAFaultedClusterRun) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = stress_sequence(2025, 25);

  cluster::ClusterOptions plain_options;
  plain_options.faults = faulty_scenario();
  metrics::ClusterRunResult plain =
      metrics::run_cluster(suite, seq, plain_options);
  ASSERT_GT(plain.recovery.boards_crashed, 0);

  ClusterTraceHub hub;
  hub.enable_trace();
  hub.enable_journal();
  cluster::ClusterOptions instrumented_options = plain_options;
  instrumented_options.hub = &hub;
  instrumented_options.phase_accounting = true;
  metrics::ClusterRunResult instrumented =
      metrics::run_cluster(suite, seq, instrumented_options);

  ASSERT_EQ(instrumented.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], plain.response_ms[i]) << i;
  }
  EXPECT_EQ(instrumented.recovery.boards_crashed,
            plain.recovery.boards_crashed);
  EXPECT_EQ(instrumented.recovery.apps_evacuated,
            plain.recovery.apps_evacuated);
  EXPECT_EQ(instrumented.recovery.mttr_total, plain.recovery.mttr_total);
  EXPECT_EQ(instrumented.events, plain.events);
}

TEST(PhaseAccounting, SerialAndShardedKernelsEmitIdenticalTraceAndJournal) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = stress_sequence(2025, 25);

  auto run = [&](int workers) {
    ClusterTraceHub hub;
    hub.enable_trace();
    hub.enable_journal();
    cluster::ClusterOptions options;
    options.faults = faulty_scenario();
    options.checkpoint.enabled = true;
    options.hub = &hub;
    options.phase_accounting = true;
    options.kernel_workers = workers;
    (void)metrics::run_cluster(suite, seq, options);
    std::ostringstream trace, journal;
    hub.write_chrome_trace(trace);
    hub.write_journal(journal);
    return std::make_pair(trace.str(), journal.str());
  };

  auto [serial_trace, serial_journal] = run(0);
  auto [sharded_trace, sharded_journal] = run(4);
  EXPECT_EQ(serial_trace, sharded_trace);
  EXPECT_EQ(serial_journal, sharded_journal);
  EXPECT_GT(serial_journal.size(), 0u);
}

TEST(PhaseAccounting, FaultedClusterTraceCarriesCausalChains) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = stress_sequence(2025, 25);

  ClusterTraceHub hub;
  hub.enable_trace();
  hub.enable_journal();
  cluster::ClusterOptions options;
  options.faults = faulty_scenario();
  options.hub = &hub;
  options.phase_accounting = true;
  metrics::ClusterRunResult r = metrics::run_cluster(suite, seq, options);
  ASSERT_GT(r.recovery.boards_crashed, 0);

  std::ostringstream trace_out;
  hub.write_chrome_trace(trace_out);
  const std::string trace = trace_out.str();
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);

  // A crash flow starts on the origin board and its readmission terminus
  // lands on a board process; both hops share the flow id.
  auto flows = hub.merged_flows();
  bool crash_chain_closed = false;
  for (const FlowPoint& s : flows) {
    if (s.phase != FlowPhase::kStart || s.name.rfind("crash", 0) != 0) {
      continue;
    }
    for (const FlowPoint& f : flows) {
      if (f.id == s.id && f.phase == FlowPhase::kEnd) {
        crash_chain_closed = true;
      }
    }
  }
  EXPECT_TRUE(crash_chain_closed);

  std::ostringstream journal_out;
  hub.write_journal(journal_out);
  std::istringstream journal_in(journal_out.str());
  auto records = parse_journal(journal_in);
  int crashes = 0, restores = 0, completes = 0, admits = 0;
  for (const JournalRecord& rec : records) {
    if (rec.event == JournalEvent::kCrash) ++crashes;
    if (rec.event == JournalEvent::kRestore) ++restores;
    if (rec.event == JournalEvent::kComplete) ++completes;
    if (rec.event == JournalEvent::kAdmit) ++admits;
  }
  EXPECT_GT(crashes, 0);
  EXPECT_GT(restores, 0);
  EXPECT_GT(completes, 0);
  EXPECT_GT(admits, 0);
  // Journal timestamps arrive merged in nondecreasing order.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time) << i;
  }
}

TEST(PhaseAccounting, HistogramsRegisterOnlyWhenEnabledAndReconcile) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq = stress_sequence(2025, 20);

  // Without phase accounting the telemetry export carries no phase rows —
  // the byte-identity guarantee for --metrics-out alone.
  {
    Telemetry telemetry;
    (void)metrics::run_cluster(suite, seq, {}, sim::seconds(36000.0),
                               &telemetry);
    EXPECT_EQ(prometheus_text(telemetry.registry()).find("vs_app_phase_ms"),
              std::string::npos);
  }

  Telemetry telemetry;
  cluster::ClusterOptions options;
  options.phase_accounting = true;
  metrics::ClusterRunResult r = metrics::run_cluster(
      suite, seq, options, sim::seconds(36000.0), &telemetry);
  ASSERT_EQ(r.completed, r.submitted);

  // Per phase: every completion observes every phase exactly once, so each
  // phase's pooled count equals the number of completed apps, and the
  // pooled phase mass equals the pooled response mass.
  std::array<std::uint64_t, runtime::kAppPhaseCount> counts{};
  double phase_sum = 0;
  double response_sum = 0;
  for (const auto& row : telemetry.registry().histograms()) {
    if (row.name == "vs_app_phase_ms") {
      phase_sum += row.cell.sum();
      for (const auto& [k, v] : row.labels) {
        if (k != "phase") continue;
        for (std::size_t p = 0; p < runtime::kAppPhaseCount; ++p) {
          if (v == runtime::to_string(static_cast<runtime::AppPhase>(p))) {
            counts[p] += row.cell.count();
          }
        }
      }
    }
    if (row.name == "vs_app_response_ms") response_sum += row.cell.sum();
  }
  for (std::size_t p = 0; p < runtime::kAppPhaseCount; ++p) {
    EXPECT_EQ(counts[p], static_cast<std::uint64_t>(r.completed))
        << runtime::to_string(static_cast<runtime::AppPhase>(p));
  }
  EXPECT_NEAR(phase_sum, response_sum, 1e-6 * std::max(1.0, response_sum));

  // The run report renders the reconciled per-phase table.
  std::string report =
      run_report_json(telemetry.registry(), telemetry.info(), nullptr);
  EXPECT_NE(report.find("\"phases\": ["), std::string::npos);
  for (std::size_t p = 0; p < runtime::kAppPhaseCount; ++p) {
    EXPECT_NE(report.find(std::string("{\"phase\": \"") +
                          runtime::to_string(static_cast<runtime::AppPhase>(
                              p)) +
                          "\""),
              std::string::npos)
        << runtime::to_string(static_cast<runtime::AppPhase>(p));
  }
}

}  // namespace
}  // namespace vs::obs
