// Tests for the BoardRuntime execution engine: admission, PR flow, slot
// lifecycle, item-wise pipeline dependencies, single- vs dual-core PR
// blocking, preemption, full-fabric reconfiguration, utilisation
// accounting, and migration extraction.
#include <gtest/gtest.h>

#include "fpga/board.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::runtime {
namespace {

using test::GreedyPolicy;
using test::ScriptedPolicy;
using test::make_uniform_app;

struct Fixture {
  sim::Simulator sim;
  fpga::Board board;
  Fixture(fpga::FabricConfig fabric = fpga::FabricConfig::only_little())
      : board(sim, "b0", fabric) {}
};

TEST(BoardRuntime, SubmitCreatesLittleUnitsByDefault) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 4, sim::ms(1));
  int id = rt.submit(app, 0, 7, 0);
  EXPECT_EQ(id, 0);
  const AppRun& run = rt.app(id);
  EXPECT_EQ(run.units.size(), 4u);
  EXPECT_EQ(run.batch, 7);
  EXPECT_FALSE(run.started);
  EXPECT_FALSE(run.done());
  EXPECT_EQ(run.units_unfinished(), 4);
  EXPECT_EQ(run.units_placed(), 0);
}

TEST(BoardRuntime, SetUnitsRebundles) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(1));
  int id = rt.submit(app, 0, 5, 0);
  auto bundles = apps::make_big_units(app, 5, f.board.params());
  rt.set_units(id, bundles);
  EXPECT_EQ(rt.app(id).units.size(), 2u);
  EXPECT_EQ(rt.app(id).units[0].spec.slot_kind, fpga::SlotKind::kBig);
}

TEST(BoardRuntime, RequestPrDrivesSlotLifecycle) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(2));
  int id = rt.submit(app, 0, 1, 0);
  rt.request_pr(id, 0, 0);
  EXPECT_EQ(f.board.slot(0).state(), fpga::SlotState::kReconfiguring);
  EXPECT_EQ(rt.app(id).units[0].state, UnitState::kReconfiguring);
  EXPECT_TRUE(rt.app(id).started);
  EXPECT_EQ(rt.counters().pr_requests, 1);
  f.sim.run();
  // The single unit ran its single item and completed the app.
  EXPECT_TRUE(rt.app(id).done());
  EXPECT_EQ(f.board.slot(0).state(), fpga::SlotState::kIdle);
  EXPECT_EQ(rt.counters().items_executed, 1);
  EXPECT_EQ(rt.counters().apps_completed, 1);
}

TEST(BoardRuntime, PipelineRespectsItemDependencies) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(10));
  int id = rt.submit(app, 0, 3, 0);
  f.sim.run();
  const AppRun& run = rt.app(id);
  EXPECT_TRUE(run.done());
  EXPECT_EQ(run.units[0].items_done, 3);
  EXPECT_EQ(run.units[1].items_done, 3);
  // Downstream cannot finish before upstream produced its items: the app
  // completes no earlier than PR + 4 pipeline steps of 10 ms.
  sim::SimDuration pr =
      f.board.params().pcap_load_time(f.board.params().little_bitstream_bytes);
  EXPECT_GE(run.completed, pr + sim::ms(40));
}

TEST(BoardRuntime, ItemReadySemantics) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  int id = rt.submit(app, 0, 2, 0);
  const AppRun& run = rt.app(id);
  EXPECT_TRUE(rt.item_ready(run, 0));   // first unit always ready
  EXPECT_FALSE(rt.item_ready(run, 1));  // upstream produced nothing yet
}

TEST(BoardRuntime, DualCoreKeepsSchedulerFree) {
  // With a dual-core policy the PR occupies core 1; the scheduler core must
  // stay available during the load.
  Fixture f;
  ScriptedPolicy policy(nullptr, /*dual=*/true);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  f.sim.run(sim::ms(1));  // let the submit pass execute
  // Pre-stage the bitstream so the PCAP load starts immediately.
  f.board.sdcard().prewarm(unit_bitstream_key(0, rt.app(id).units[0].spec, 0));
  rt.request_pr(id, 0, 0);
  bool checked = false;
  f.sim.schedule(sim::ms(20), [&] {
    EXPECT_TRUE(f.board.pr_core().busy());
    EXPECT_FALSE(f.board.scheduler_core().busy());
    checked = true;
  });
  f.sim.run();
  EXPECT_TRUE(checked);
}

TEST(BoardRuntime, SingleCorePrSuspendsScheduler) {
  Fixture f;
  ScriptedPolicy policy(nullptr, /*dual=*/false);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  f.sim.run(sim::ms(1));
  f.board.sdcard().prewarm(unit_bitstream_key(0, rt.app(id).units[0].spec, 0));
  rt.request_pr(id, 0, 0);
  bool checked = false;
  f.sim.schedule(sim::ms(20), [&] {
    EXPECT_TRUE(f.board.scheduler_core().busy());
    EXPECT_EQ(f.board.scheduler_core().current_label().rfind("pcap:", 0), 0u);
    checked = true;
  });
  f.sim.run();
  EXPECT_TRUE(checked);
}

TEST(BoardRuntime, BlockedAccountingCountsPcapQueueing) {
  Fixture f;
  ScriptedPolicy policy(nullptr, /*dual=*/true);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  f.sim.run(sim::ms(1));
  for (int unit = 0; unit < 3; ++unit) {
    f.board.sdcard().prewarm(
        unit_bitstream_key(0, rt.app(id).units[static_cast<std::size_t>(unit)].spec,
                           unit));
  }
  rt.request_pr(id, 0, 0);
  rt.request_pr(id, 1, 1);
  rt.request_pr(id, 2, 2);
  EXPECT_EQ(rt.counters().pr_blocked, 2);
  EXPECT_EQ(rt.window_blocked(), 2);
  rt.reset_window();
  EXPECT_EQ(rt.window_blocked(), 0);
  EXPECT_EQ(rt.counters().pr_blocked, 2);  // cumulative survives reset
  f.sim.run();
  EXPECT_TRUE(rt.app(id).done());
}

TEST(BoardRuntime, PreemptionPreservesProgress) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(10));
  int id = rt.submit(app, 0, 5, 0);
  // Run until a few items are done, then preempt at an item boundary.
  while (rt.app(id).units[0].items_done < 2 && f.sim.step()) {
  }
  AppRun& run = rt.app(id);
  ASSERT_GE(run.units[0].items_done, 2);
  // Wait until not mid-item.
  while (run.units[0].item_in_flight && f.sim.step()) {
  }
  if (run.units[0].state == UnitState::kRunning) {
    int done_before = run.units[0].items_done;
    rt.preempt_unit(id, 0);
    EXPECT_EQ(run.units[0].state, UnitState::kPending);
    EXPECT_EQ(run.units[0].items_done, done_before);
    EXPECT_EQ(rt.counters().preemptions, 1);
  }
  f.sim.run();
  EXPECT_TRUE(rt.app(id).done());  // greedy policy re-places it
  EXPECT_EQ(rt.app(id).units[0].items_done, 5);
}

TEST(BoardRuntime, FullReconfigRunsWholeAppWithoutSlots) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(5));
  int id = rt.submit(app, 0, 4, 0);
  rt.request_full_reconfig(id);
  f.sim.run();
  const AppRun& run = rt.app(id);
  EXPECT_TRUE(run.done());
  EXPECT_EQ(rt.counters().pr_requests, 1);  // one monolithic load
  // All slots stayed untouched.
  for (const fpga::Slot& s : f.board.slots()) {
    EXPECT_EQ(s.state(), fpga::SlotState::kIdle);
  }
  // Completion not before full load + restart + pipeline.
  const fpga::BoardParams& p = f.board.params();
  EXPECT_GT(run.completed, p.pcap_load_time(p.full_bitstream_bytes) +
                               p.full_reconfig_restart);
}

TEST(BoardRuntime, ExtractUnstartedRemovesOnlyUnstarted) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  int started_id = rt.submit(app, 0, 3, 0);
  int waiting_id = rt.submit(app, 0, 5, sim::ms(1));
  rt.request_pr(started_id, 0, 0);
  rt.request_pr(started_id, 1, 1);
  auto migrated = rt.extract_unstarted();
  ASSERT_EQ(migrated.size(), 1u);
  EXPECT_EQ(migrated[0].batch, 5);
  EXPECT_EQ(migrated[0].spec_index, 0);
  EXPECT_GT(migrated[0].state_bytes, 4096);
  EXPECT_EQ(rt.app(waiting_id).spec, nullptr);  // tombstoned
  EXPECT_EQ(rt.active_apps(), 1);
  f.sim.run();
  EXPECT_TRUE(rt.app(started_id).done());
  EXPECT_TRUE(rt.drained());
}

TEST(BoardRuntime, StopAdmissionFlag) {
  Fixture f;
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  EXPECT_TRUE(rt.admission_open());
  rt.stop_admission();
  EXPECT_FALSE(rt.admission_open());
}

TEST(BoardRuntime, CompletedAppsRecordResponseTimes) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(5));
  // Arrival time 100 ms before admission: queueing time counts.
  f.sim.schedule(sim::ms(100), [&] { rt.submit(app, 0, 2, 0); });
  f.sim.run();
  ASSERT_EQ(rt.completed().size(), 1u);
  const CompletedApp& c = rt.completed()[0];
  EXPECT_EQ(c.arrival, 0);
  EXPECT_GT(c.response_ms(), 100.0);
  EXPECT_EQ(c.name, "a");
}

TEST(BoardRuntime, OnAppCompleteHookFires) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  int fired = 0;
  rt.set_on_app_complete([&](const CompletedApp&) { ++fired; });
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(1));
  rt.submit(app, 0, 1, 0);
  rt.submit(app, 0, 1, 0);
  f.sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(BoardRuntime, UtilizationIntegralsArePlausible) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(10));
  rt.submit(app, 0, 10, 0);
  f.sim.run();
  const UtilizationIntegral& u = rt.utilization();
  EXPECT_GT(u.lut_used, 0.0);
  EXPECT_GT(u.lut_capacity, 0.0);
  EXPECT_GE(u.lut_capacity, u.lut_used);  // usage never exceeds capacity
  EXPECT_GE(u.lut_fabric, u.lut_capacity);
  double occ = u.lut_of_occupied();
  EXPECT_GT(occ, 0.0);
  EXPECT_LE(occ, 1.0);
}

TEST(BoardRuntime, ParallelBundleFillChargedOnFirstItemOnly) {
  Fixture f(fpga::FabricConfig::big_little());
  ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(10));
  int id = rt.submit(app, 0, 4, 0);
  auto units = apps::make_big_units(app, 4, f.board.params());
  ASSERT_EQ(units.size(), 1u);
  ASSERT_EQ(units[0].mode, apps::BundleMode::kParallel);
  rt.set_units(id, units);
  rt.request_pr(id, 0, 0);  // slot 0 is Big
  f.sim.run();
  const AppRun& run = rt.app(id);
  EXPECT_TRUE(run.done());
  // Execution time = fill (2*10) + 4 items * 10 = 60 ms plus the PR path
  // (SD fetch + PCAP load) and small DMA/core overheads; it must exceed
  // 60 ms but stay well under the serial-execution 120 ms alternative.
  const fpga::BoardParams& p = f.board.params();
  sim::SimDuration pr_path = p.sd_read_time(units[0].bitstream_bytes) +
                             p.pcap_load_time(units[0].bitstream_bytes);
  EXPECT_GT(run.completed, sim::ms(60));
  EXPECT_LT(run.completed, sim::ms(120) + pr_path);
}

TEST(BoardRuntime, LaunchBlockedCounterSingleCore) {
  // Single-core: a kick issued while the core is suspended by a PR counts
  // as a blocked launch (the Fig 2 task-execution-blocking event).
  Fixture f;
  ScriptedPolicy policy(nullptr, /*dual=*/false);
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  f.sim.run(sim::ms(1));
  f.board.sdcard().prewarm(unit_bitstream_key(0, rt.app(id).units[0].spec, 0));
  rt.request_pr(id, 0, 0);
  std::int64_t before = rt.counters().launch_blocked;
  f.sim.schedule(sim::ms(5), [&] { rt.kick(); });
  f.sim.run(sim::ms(10));
  EXPECT_GT(rt.counters().launch_blocked, before);
}

TEST(BoardRuntime, SdCacheMakesSecondPrFaster) {
  Fixture f;
  GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(1));
  rt.submit(app, 0, 1, 0);
  f.sim.run();
  sim::SimTime first_done = rt.completed()[0].completed;
  rt.submit(app, 0, 1, f.sim.now());
  sim::SimTime second_start = f.sim.now();
  f.sim.run();
  sim::SimTime second_done = rt.completed()[1].completed - second_start;
  EXPECT_LT(second_done, first_done);  // bitstream already in DDR
  EXPECT_EQ(f.board.sdcard().misses(), 1);
}

}  // namespace
}  // namespace vs::runtime
