// Unit tests for the application layer: synthesis model, the benchmark
// suite, 3-in-1 bundling, and the optimal-slot-count estimator.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "apps/synthesis.h"

namespace vs::apps {
namespace {

fpga::BoardParams params_;

// --------------------------------------------------------------- Synthesis

TEST(Synthesis, QuantizesUpward) {
  SynthesisModel m;
  fpga::ResourceVector raw{2'001, 4'001, 5, 9};
  fpga::ResourceVector s = m.synthesize(raw);
  EXPECT_EQ(s.luts, 3'000);
  EXPECT_EQ(s.ffs, 8'000);
  EXPECT_EQ(s.brams, 8);
  EXPECT_EQ(s.dsps, 16);
}

TEST(Synthesis, QuantizationIsIdempotentOnGrid) {
  SynthesisModel m;
  fpga::ResourceVector on_grid{3'000, 8'000, 8, 16};
  EXPECT_EQ(m.synthesize(on_grid), on_grid);
}

TEST(Synthesis, ImplementationShrinksLogicNotMemory) {
  SynthesisModel m;
  fpga::ResourceVector s{10'000, 10'000, 10, 10};
  fpga::ResourceVector impl = m.implement(s);
  EXPECT_LT(impl.luts, s.luts);
  EXPECT_LT(impl.ffs, s.ffs);
  EXPECT_EQ(impl.brams, s.brams);  // memories do not shrink
  EXPECT_EQ(impl.dsps, s.dsps);
}

TEST(Synthesis, BundleSynthIsSumOfParts) {
  SynthesisModel m;
  std::vector<fpga::ResourceVector> parts{{100, 100, 1, 1},
                                          {200, 200, 2, 2},
                                          {300, 300, 3, 3}};
  EXPECT_EQ(m.bundle_synth(parts), (fpga::ResourceVector{600, 600, 6, 6}));
}

TEST(Synthesis, BundleImplSharesLogic) {
  SynthesisModel m;
  std::vector<fpga::ResourceVector> parts{{10'000, 10'000, 4, 8},
                                          {10'000, 10'000, 4, 8},
                                          {10'000, 10'000, 4, 8}};
  fpga::ResourceVector bundle = m.bundle_impl(parts);
  fpga::ResourceVector one = m.implement(parts[0]);
  EXPECT_LT(bundle.luts, 3 * one.luts);  // sharing saves LUTs
  EXPECT_LT(bundle.ffs, 3 * one.ffs);
  EXPECT_EQ(bundle.brams, 3 * one.brams);
}

TEST(Synthesis, PaperAnchorIcBundle) {
  // Fig 7 (right): IC tasks 1-3 bundle at ~0.98 of a Big slot in synthesis
  // and ~0.57 at implementation; individual tasks implement at ~0.41 of a
  // Little slot.
  SynthesisModel m;
  AppSpec ic = make_app(Benchmark::kIC, params_, m);
  std::vector<fpga::ResourceVector> parts{ic.tasks[0].synth_usage,
                                          ic.tasks[1].synth_usage,
                                          ic.tasks[2].synth_usage};
  double synth_frac = static_cast<double>(m.bundle_synth(parts).luts) /
                      static_cast<double>(params_.big_slot.luts);
  double impl_frac = static_cast<double>(m.bundle_impl(parts).luts) /
                     static_cast<double>(params_.big_slot.luts);
  EXPECT_NEAR(synth_frac, 0.98, 0.03);
  EXPECT_NEAR(impl_frac, 0.57, 0.04);
  double task_impl = static_cast<double>(ic.tasks[0].impl_usage.luts) /
                     static_cast<double>(params_.little_slot.luts);
  EXPECT_NEAR(task_impl, 0.41, 0.03);
}

// -------------------------------------------------------------- Benchmarks

TEST(Benchmarks, SuiteHasPaperTaskCounts) {
  auto suite = make_suite(params_);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "3DR");
  EXPECT_EQ(suite[0].task_count(), 3);
  EXPECT_EQ(suite[1].name, "LeNet");
  EXPECT_EQ(suite[1].task_count(), 6);
  EXPECT_EQ(suite[2].name, "IC");
  EXPECT_EQ(suite[2].task_count(), 6);
  EXPECT_EQ(suite[3].name, "AN");
  EXPECT_EQ(suite[3].task_count(), 6);
  EXPECT_EQ(suite[4].name, "OF");
  EXPECT_EQ(suite[4].task_count(), 9);
}

TEST(Benchmarks, EveryTaskFitsLittleSlotAtSynthesis) {
  for (const AppSpec& app : make_suite(params_)) {
    for (const TaskSpec& t : app.tasks) {
      EXPECT_TRUE(params_.little_slot.fits(t.synth_usage))
          << app.name << "." << t.name;
      EXPECT_TRUE(params_.little_slot.fits(t.impl_usage));
    }
  }
}

TEST(Benchmarks, LatenciesAndPayloadsPositive) {
  for (const AppSpec& app : make_suite(params_)) {
    for (const TaskSpec& t : app.tasks) {
      EXPECT_GT(t.item_latency, 0);
      EXPECT_GT(t.item_bytes_in, 0);
      EXPECT_GT(t.bitstream_bytes, 0);
    }
    EXPECT_GT(app.item_latency_sum(), app.max_item_latency());
  }
}

TEST(Benchmarks, TaskIndicesSequential) {
  for (const AppSpec& app : make_suite(params_)) {
    for (int i = 0; i < app.task_count(); ++i) {
      EXPECT_EQ(app.tasks[static_cast<std::size_t>(i)].index, i);
    }
  }
}

TEST(Benchmarks, NamesMatchEnum) {
  EXPECT_STREQ(benchmark_name(Benchmark::k3DR), "3DR");
  EXPECT_STREQ(benchmark_name(Benchmark::kOF), "OF");
}

// ---------------------------------------------------------------- Bundling

TEST(Bundling, ChooseModeParallelForLargeBatch) {
  // Balanced stages: parallel makespan Tmax(B+2) < serial 3*Tmax*B for B>1.
  std::vector<sim::SimDuration> lat{sim::ms(10), sim::ms(10), sim::ms(10)};
  EXPECT_EQ(choose_mode(lat, 10), BundleMode::kParallel);
}

TEST(Bundling, ChooseModeSerialForSkewedSmallBatch) {
  // One dominant stage, batch 1: parallel pays 3*Tmax fill for one item,
  // serial pays T1+T2+T3 < 3*Tmax.
  std::vector<sim::SimDuration> lat{sim::ms(30), sim::ms(1), sim::ms(1)};
  EXPECT_EQ(choose_mode(lat, 1), BundleMode::kSerial);
}

TEST(Bundling, ChooseModeExactBoundary) {
  // Tmax*(B+2) == sum*B  =>  parallel preferred on ties.
  // Tmax=3, sum=5 (3+1+1): parallel 3(B+2), serial 5B; equal at B=6? 3*8=24
  // vs 30 -> parallel. Construct exact tie: Tmax=2,(2,1,1) sum=4: 2(B+2) vs
  // 4B equal at B=2.
  std::vector<sim::SimDuration> lat{2, 1, 1};
  EXPECT_EQ(choose_mode(lat, 2), BundleMode::kParallel);  // tie -> parallel
  EXPECT_EQ(choose_mode(lat, 1), BundleMode::kSerial);    // 6 > 4
}

TEST(Bundling, SingleTaskIsSingleMode) {
  std::vector<sim::SimDuration> lat{sim::ms(5)};
  EXPECT_EQ(choose_mode(lat, 10), BundleMode::kSingle);
}

TEST(Bundling, LittleUnitsOnePerTask) {
  AppSpec of = make_app(Benchmark::kOF, params_);
  auto units = make_little_units(of);
  ASSERT_EQ(units.size(), 9u);
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].first_task, static_cast<int>(i));
    EXPECT_EQ(units[i].last_task, static_cast<int>(i));
    EXPECT_EQ(units[i].slot_kind, fpga::SlotKind::kLittle);
    EXPECT_EQ(units[i].mode, BundleMode::kSingle);
    EXPECT_EQ(units[i].item_latency,
              of.tasks[i].item_latency);
    EXPECT_EQ(units[i].fill_latency, 0);
  }
}

TEST(Bundling, BigUnitsGroupByThree) {
  AppSpec of = make_app(Benchmark::kOF, params_);
  auto units = make_big_units(of, /*batch=*/10, params_);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].first_task, 0);
  EXPECT_EQ(units[0].last_task, 2);
  EXPECT_EQ(units[2].first_task, 6);
  EXPECT_EQ(units[2].last_task, 8);
  for (const UnitSpec& u : units) {
    EXPECT_EQ(u.slot_kind, fpga::SlotKind::kBig);
    EXPECT_EQ(u.task_count(), 3);
    EXPECT_EQ(u.bitstream_bytes, params_.big_bitstream_bytes);
  }
}

TEST(Bundling, BigUnitsHandleRemainder) {
  AppSpec a3 = make_app(Benchmark::k3DR, params_);
  auto pairs = make_big_units(a3, 10, params_, {}, /*bundle_size=*/2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].task_count(), 2);
  EXPECT_EQ(pairs[1].task_count(), 1);
  EXPECT_EQ(pairs[1].mode, BundleMode::kSingle);
}

TEST(Bundling, ParallelBundleLatencyModel) {
  AppSpec a3 = make_app(Benchmark::k3DR, params_);
  auto units = make_big_units(a3, /*batch=*/20, params_);
  ASSERT_EQ(units.size(), 1u);
  const UnitSpec& u = units[0];
  EXPECT_EQ(u.mode, BundleMode::kParallel);
  EXPECT_EQ(u.item_latency, a3.max_item_latency());
  EXPECT_EQ(u.fill_latency, 2 * a3.max_item_latency());
  // Total makespan = fill + B*period = Tmax*(B+2) — the paper's formula.
  sim::SimDuration makespan = u.fill_latency + 20 * u.item_latency;
  EXPECT_EQ(makespan, a3.max_item_latency() * 22);
}

TEST(Bundling, SerialBundleLatencyModel) {
  // Force serial by batch=1 with skewed stages: build a synthetic app.
  AppSpec app;
  app.name = "skew";
  for (int i = 0; i < 3; ++i) {
    TaskSpec t;
    t.index = i;
    t.name = "t" + std::to_string(i);
    t.synth_usage = {1000, 1000, 1, 1};
    t.impl_usage = {600, 600, 1, 1};
    t.item_latency = i == 0 ? sim::ms(30) : sim::ms(1);
    t.item_bytes_in = 1000;
    t.item_bytes_out = 500;
    t.bitstream_bytes = params_.little_bitstream_bytes;
    app.tasks.push_back(t);
  }
  auto units = make_big_units(app, /*batch=*/1, params_);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].mode, BundleMode::kSerial);
  EXPECT_EQ(units[0].item_latency, sim::ms(32));
  EXPECT_EQ(units[0].fill_latency, 0);
}

TEST(Bundling, CanBundleSuite) {
  // The whole paper suite is bundleable into Big slots (that is the point
  // of the calibrated synthesis model).
  for (const AppSpec& app : make_suite(params_)) {
    EXPECT_TRUE(can_bundle(app, params_)) << app.name;
  }
}

TEST(Bundling, CannotBundleOversizedTasks) {
  AppSpec app;
  app.name = "huge";
  for (int i = 0; i < 3; ++i) {
    TaskSpec t;
    t.index = i;
    t.synth_usage = params_.little_slot;  // each task fills a Little slot
    t.impl_usage = params_.little_slot;   // no implementation shrink
    t.item_latency = sim::ms(1);
    app.tasks.push_back(t);
  }
  // 3 full Little slots exceed one Big slot (2x Little) at implementation.
  EXPECT_FALSE(can_bundle(app, params_));
}

TEST(Bundling, CannotBundleSingleTask) {
  AppSpec app;
  app.name = "one";
  TaskSpec t;
  t.index = 0;
  t.synth_usage = {100, 100, 1, 1};
  t.impl_usage = {60, 60, 1, 1};
  t.item_latency = sim::ms(1);
  app.tasks.push_back(t);
  EXPECT_FALSE(can_bundle(app, params_));
}

TEST(Bundling, OptimalBigSlotsIsBundleCount) {
  auto suite = make_suite(params_);
  EXPECT_EQ(optimal_big_slots(suite[0]), 1);  // 3 tasks
  EXPECT_EQ(optimal_big_slots(suite[1]), 2);  // 6 tasks
  EXPECT_EQ(optimal_big_slots(suite[4]), 3);  // 9 tasks
  EXPECT_EQ(optimal_big_slots(suite[4], 4), 3);  // ceil(9/4)
}

TEST(Bundling, OptimalLittleSlotsWithinBounds) {
  for (const AppSpec& app : make_suite(params_)) {
    for (int batch : {5, 17, 30}) {
      int k = optimal_little_slots(app, batch, params_, 8);
      EXPECT_GE(k, 1) << app.name;
      EXPECT_LE(k, std::min(app.task_count(), 8)) << app.name;
    }
  }
}

TEST(Bundling, OptimalLittleSlotsRespectsMaxSlots) {
  AppSpec of = make_app(Benchmark::kOF, params_);
  EXPECT_LE(optimal_little_slots(of, 20, params_, 2), 2);
  EXPECT_EQ(optimal_little_slots(of, 20, params_, 1), 1);
}

TEST(Bundling, EstimateMakespanDecreasesWithSlots) {
  AppSpec lenet = make_app(Benchmark::kLeNet, params_);
  sim::SimDuration k1 = estimate_little_makespan(lenet, 20, 1, params_);
  sim::SimDuration k6 = estimate_little_makespan(lenet, 20, 6, params_);
  EXPECT_GT(k1, k6);
}

TEST(Bundling, EstimateMakespanGrowsWithBatch) {
  AppSpec lenet = make_app(Benchmark::kLeNet, params_);
  EXPECT_LT(estimate_little_makespan(lenet, 5, 3, params_),
            estimate_little_makespan(lenet, 30, 3, params_));
}

TEST(Bundling, ModeToString) {
  EXPECT_STREQ(to_string(BundleMode::kSerial), "serial");
  EXPECT_STREQ(to_string(BundleMode::kParallel), "parallel");
  EXPECT_STREQ(to_string(BundleMode::kSingle), "single");
}

}  // namespace
}  // namespace vs::apps
