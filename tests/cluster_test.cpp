// Tests for the cluster layer: Aurora link, live migration, cross-board
// switching, pre-warming, and end-to-end cluster runs.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "cluster/aurora.h"
#include "cluster/cluster.h"
#include "metrics/experiment.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace vs::cluster {
namespace {

TEST(Aurora, TransferTiming) {
  sim::Simulator sim;
  AuroraLink link(sim);
  sim::SimTime done = -1;
  link.transfer(1'250'000, [&] { done = sim.now(); });  // 1 ms at 10 Gb/s
  sim.run();
  EXPECT_EQ(done, link.params().transfer_time(1'250'000));
  EXPECT_NEAR(sim::to_ms(done), 1.02, 0.05);
  EXPECT_EQ(link.transfers(), 1);
  EXPECT_EQ(link.bytes_moved(), 1'250'000);
}

TEST(Aurora, SerializesTransfers) {
  sim::Simulator sim;
  AuroraLink link(sim);
  std::vector<int> order;
  link.transfer(1'250'000, [&] { order.push_back(1); });
  link.transfer(1'250'000, [&] { order.push_back(2); });
  EXPECT_TRUE(link.busy());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

struct ClusterFixture {
  sim::Simulator sim;
  fpga::BoardParams params;
  std::vector<apps::AppSpec> suite;
  ClusterFixture() : suite(apps::make_suite(params)) {}

  workload::Sequence stress_sequence(int n, std::uint64_t seed) {
    workload::WorkloadConfig config;
    config.congestion = workload::Congestion::kStress;
    config.apps_per_sequence = n;
    util::Rng rng(seed);
    return workload::generate_sequence(config, rng);
  }
};

TEST(Cluster, AllAppsCompleteWithSwitching) {
  ClusterFixture f;
  ClusterOptions options;
  Cluster cluster(f.sim, f.suite, options);
  cluster.submit_sequence(f.stress_sequence(40, 3));
  f.sim.run();
  EXPECT_TRUE(cluster.all_done());
  EXPECT_EQ(cluster.completed().size(), 40u);
}

TEST(Cluster, SwitchTriggersUnderSustainedCongestion) {
  ClusterFixture f;
  ClusterOptions options;
  Cluster cluster(f.sim, f.suite, options);
  cluster.submit_sequence(f.stress_sequence(60, 5));
  f.sim.run();
  ASSERT_FALSE(cluster.switches().empty());
  const SwitchEvent& e = cluster.switches().front();
  EXPECT_EQ(e.to, core::SwitchLoop::Config::kBigLittle);
  EXPECT_GE(e.dswitch, options.t1);
  EXPECT_GT(e.apps_migrated, 0);
  EXPECT_GT(e.bytes, 4096);
  EXPECT_GT(e.overhead, 0);
  // Migration overhead stays in the low-millisecond band the paper reports.
  EXPECT_LT(sim::to_ms(e.overhead), 50.0);
}

TEST(Cluster, NoSwitchingWhenDisabled) {
  ClusterFixture f;
  ClusterOptions options;
  options.enable_switching = false;
  Cluster cluster(f.sim, f.suite, options);
  cluster.submit_sequence(f.stress_sequence(40, 5));
  f.sim.run();
  EXPECT_TRUE(cluster.switches().empty());
  EXPECT_TRUE(cluster.all_done());
  EXPECT_EQ(cluster.active_config(), core::SwitchLoop::Config::kOnlyLittle);
}

TEST(Cluster, DSwitchTraceIsSampledEveryPeriod) {
  ClusterFixture f;
  ClusterOptions options;
  options.enable_switching = false;
  options.dswitch_period = 4;
  Cluster cluster(f.sim, f.suite, options);
  cluster.submit_sequence(f.stress_sequence(40, 5));
  f.sim.run();
  // 40 arrivals + 40 completions = 80 updates -> 20 samples.
  EXPECT_EQ(cluster.dswitch().trace().size(), 20u);
  for (const core::DSwitchSample& s : cluster.dswitch().trace()) {
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0);
  }
}

TEST(Cluster, NoSwitchUnderLooseLoad) {
  ClusterFixture f;
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kLoose;
  config.apps_per_sequence = 15;
  util::Rng rng(9);
  ClusterOptions options;
  Cluster cluster(f.sim, f.suite, options);
  cluster.submit_sequence(workload::generate_sequence(config, rng));
  f.sim.run();
  EXPECT_TRUE(cluster.switches().empty());
  EXPECT_TRUE(cluster.all_done());
}

TEST(Cluster, MigratedAppsKeepOriginalArrival) {
  ClusterFixture f;
  ClusterOptions options;
  Cluster cluster(f.sim, f.suite, options);
  workload::Sequence seq = f.stress_sequence(60, 5);
  cluster.submit_sequence(seq);
  f.sim.run();
  ASSERT_FALSE(cluster.switches().empty());
  // Every submitted app completed exactly once with response time measured
  // from the original arrival (i.e. strictly positive and finite).
  EXPECT_EQ(cluster.completed().size(), seq.size());
  for (const runtime::CompletedApp& c : cluster.completed()) {
    EXPECT_GT(c.completed, c.arrival);
  }
}

TEST(Cluster, SwitchingImprovesCongestedResponse) {
  ClusterFixture f;
  workload::Sequence seq = f.stress_sequence(60, 5);

  metrics::ClusterRunResult with_sw =
      metrics::run_cluster(f.suite, seq, ClusterOptions{});
  ClusterOptions off;
  off.enable_switching = false;
  metrics::ClusterRunResult without_sw =
      metrics::run_cluster(f.suite, seq, off);

  ASSERT_EQ(with_sw.completed, 60);
  ASSERT_EQ(without_sw.completed, 60);
  EXPECT_LT(with_sw.response.mean, without_sw.response.mean);
}

TEST(Cluster, PrewarmPopulatesSpareSdCache) {
  // Run with prewarm enabled and check that post-switch PRs on the
  // Big.Little board hit the warmed cache (few SD misses).
  ClusterFixture f;
  ClusterOptions warm;
  metrics::ClusterRunResult with_warm =
      metrics::run_cluster(f.suite, f.stress_sequence(60, 5), warm);
  ClusterOptions cold = warm;
  cold.enable_prewarm = false;
  metrics::ClusterRunResult without_warm =
      metrics::run_cluster(f.suite, f.stress_sequence(60, 5), cold);
  ASSERT_FALSE(with_warm.switches.empty());
  ASSERT_FALSE(without_warm.switches.empty());
  // Pre-warming must never hurt.
  EXPECT_LE(with_warm.response.mean, without_warm.response.mean * 1.001);
}

TEST(Cluster, DeterministicAcrossRuns) {
  ClusterFixture f;
  workload::Sequence seq = f.stress_sequence(40, 5);
  metrics::ClusterRunResult a =
      metrics::run_cluster(f.suite, seq, ClusterOptions{});
  metrics::ClusterRunResult b =
      metrics::run_cluster(f.suite, seq, ClusterOptions{});
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size());
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.response_ms[i], b.response_ms[i]);
  }
  EXPECT_EQ(a.switches.size(), b.switches.size());
}

}  // namespace
}  // namespace vs::cluster
