// Tests for dynamic batch processing (§III-A): streamed batches whose
// items become available over time, gating the first pipeline stage.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::runtime {
namespace {

using test::GreedyPolicy;
using test::make_uniform_app;

TEST(Streaming, ItemsAvailableFollowsSourceRate) {
  AppRun app;
  app.arrival = sim::ms(100);
  app.batch = 10;
  app.item_interval = sim::ms(50);
  EXPECT_EQ(app.items_available(0), 0);            // before arrival
  EXPECT_EQ(app.items_available(sim::ms(100)), 1);  // first item at arrival
  EXPECT_EQ(app.items_available(sim::ms(149)), 1);
  EXPECT_EQ(app.items_available(sim::ms(150)), 2);
  EXPECT_EQ(app.items_available(sim::ms(500)), 9);
  EXPECT_EQ(app.items_available(sim::seconds(10)), 10);  // capped at batch
}

TEST(Streaming, StagedBatchIsFullyAvailable) {
  AppRun app;
  app.batch = 7;
  app.item_interval = 0;
  EXPECT_EQ(app.items_available(0), 7);
}

TEST(Streaming, ExecutionPacedBySource) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  GreedyPolicy policy;
  BoardRuntime rt(board, policy);
  // Fast kernel (1 ms/item) fed by a slow source (100 ms/item): the run is
  // source-bound, so completion ≈ arrival + (batch-1)*interval + pipeline.
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  int id = rt.submit(app, 0, /*batch=*/5, /*arrival=*/0,
                     /*item_interval=*/sim::ms(100));
  sim.run();
  ASSERT_TRUE(rt.app(id).done());
  EXPECT_GE(rt.app(id).completed, sim::ms(400));  // 5th item at t=400ms
  EXPECT_LT(rt.app(id).completed, sim::ms(700));
  EXPECT_TRUE(audit(rt).ok());
}

TEST(Streaming, FastSourceDoesNotSlowExecution) {
  auto completion = [](sim::SimDuration interval) {
    sim::Simulator sim;
    fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
    GreedyPolicy policy;
    BoardRuntime rt(board, policy);
    apps::AppSpec app = make_uniform_app("a", 2, sim::ms(20));
    int id = rt.submit(app, 0, 10, 0, interval);
    sim.run();
    return rt.app(id).completed;
  };
  // Source faster than the kernel: negligible effect vs staged.
  sim::SimTime staged = completion(0);
  sim::SimTime fast_stream = completion(sim::ms(1));
  EXPECT_LT(fast_stream, staged + sim::ms(30));
}

TEST(Streaming, DownstreamStagesUnaffectedBySourceGating) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  GreedyPolicy policy;
  BoardRuntime rt(board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(2));
  int id = rt.submit(app, 0, 4, 0, sim::ms(30));
  sim.run();
  const AppRun& run = rt.app(id);
  ASSERT_TRUE(run.done());
  for (const UnitRun& u : run.units) EXPECT_EQ(u.items_done, 4);
  EXPECT_EQ(rt.counters().items_executed, 12);
}

TEST(Streaming, WorksThroughExperimentHarness) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq;
  for (int i = 0; i < 4; ++i) {
    apps::AppArrival a;
    a.spec_index = i % 5;
    a.batch = 8;
    a.arrival = sim::ms(200.0 * i);
    a.item_interval = sim::ms(40.0);  // 25 items/s live feed
    seq.push_back(a);
  }
  auto r = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                     suite, seq);
  EXPECT_EQ(r.completed, 4);
}

TEST(Streaming, StreamedBatchSurvivesMigrationExtraction) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  BoardRuntime rt(board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  rt.submit(app, 0, 6, 0, sim::ms(10));
  auto migrated = rt.extract_unstarted();
  ASSERT_EQ(migrated.size(), 1u);
  // Descriptor is staged-size based (items stream on the target too).
  EXPECT_GT(migrated[0].state_bytes, 4096);
}

}  // namespace
}  // namespace vs::runtime
