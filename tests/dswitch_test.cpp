// Tests for the D_switch metric (Eq. 1) and the Schmitt-trigger switch loop.
#include <gtest/gtest.h>

#include "core/dswitch.h"

namespace vs::core {
namespace {

TEST(DSwitchValue, MatchesEquationOne) {
  // D = (blocked/PR) * (apps/batch)
  EXPECT_DOUBLE_EQ(dswitch_value(5, 10, 4, 40), 0.5 * 0.1);
  EXPECT_DOUBLE_EQ(dswitch_value(10, 10, 10, 10), 1.0);  // worst case
}

TEST(DSwitchValue, ZeroWhenNoPrsOrNoApps) {
  EXPECT_EQ(dswitch_value(3, 0, 4, 40), 0.0);
  EXPECT_EQ(dswitch_value(3, 10, 0, 0), 0.0);
  EXPECT_EQ(dswitch_value(3, 10, 4, 0), 0.0);
}

TEST(DSwitchValue, ClampedToUnitInterval) {
  EXPECT_LE(dswitch_value(100, 10, 50, 10), 1.0);
  EXPECT_GE(dswitch_value(0, 10, 4, 40), 0.0);
}

TEST(DSwitchValue, MonotoneInBlocked) {
  EXPECT_LT(dswitch_value(1, 10, 4, 40), dswitch_value(5, 10, 4, 40));
}

TEST(DSwitchValue, WorstCaseWhenBatchEqualsApps) {
  // "If each application is allocated only one slot with batch size to be
  // one, N_batch = N_apps ... corresponds to the maximum value."
  double batch_one = dswitch_value(8, 10, 20, 20);
  double batch_many = dswitch_value(8, 10, 20, 400);
  EXPECT_GT(batch_one, batch_many);
}

TEST(DSwitchMonitor, FiresEveryNUpdates) {
  DSwitchMonitor m(4);
  int fires = 0;
  for (int i = 0; i < 12; ++i) fires += m.on_queue_update();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(m.period(), 4);
}

TEST(DSwitchMonitor, RecordsTrace) {
  DSwitchMonitor m(2);
  EXPECT_EQ(m.last(), 0.0);
  m.record({100, 0.25, 1, 4, 2, 20});
  m.record({200, 0.5, 2, 4, 4, 20});
  ASSERT_EQ(m.trace().size(), 2u);
  EXPECT_EQ(m.trace()[0].time, 100);
  EXPECT_DOUBLE_EQ(m.last(), 0.5);
}

TEST(SwitchLoop, TriggersUpAtT1) {
  SwitchLoop loop(0.5, 0.2);
  EXPECT_EQ(loop.config(), SwitchLoop::Config::kOnlyLittle);
  EXPECT_EQ(loop.feed(0.1), SwitchLoop::Action::kNone);
  EXPECT_EQ(loop.feed(0.3), SwitchLoop::Action::kPrewarmBigLittle);
  EXPECT_EQ(loop.feed(0.5), SwitchLoop::Action::kSwitchToBigLittle);
  EXPECT_EQ(loop.config(), SwitchLoop::Config::kBigLittle);
}

TEST(SwitchLoop, TriggersDownAtT2) {
  SwitchLoop loop(0.5, 0.2, SwitchLoop::Config::kBigLittle);
  EXPECT_EQ(loop.feed(0.6), SwitchLoop::Action::kNone);
  EXPECT_EQ(loop.feed(0.3), SwitchLoop::Action::kPrewarmOnlyLittle);
  EXPECT_EQ(loop.feed(0.2), SwitchLoop::Action::kSwitchToOnlyLittle);
  EXPECT_EQ(loop.config(), SwitchLoop::Config::kOnlyLittle);
}

TEST(SwitchLoop, HysteresisPreventsThrashing) {
  // Oscillating inside the buffer zone must never switch.
  SwitchLoop loop(0.5, 0.2);
  for (int i = 0; i < 20; ++i) {
    auto a = loop.feed(i % 2 ? 0.45 : 0.25);
    EXPECT_NE(a, SwitchLoop::Action::kSwitchToBigLittle);
    EXPECT_NE(a, SwitchLoop::Action::kSwitchToOnlyLittle);
  }
  EXPECT_EQ(loop.config(), SwitchLoop::Config::kOnlyLittle);
}

TEST(SwitchLoop, FullCycle) {
  SwitchLoop loop(0.5, 0.2);
  EXPECT_EQ(loop.feed(0.7), SwitchLoop::Action::kSwitchToBigLittle);
  EXPECT_EQ(loop.feed(0.7), SwitchLoop::Action::kNone);  // already there
  EXPECT_EQ(loop.feed(0.1), SwitchLoop::Action::kSwitchToOnlyLittle);
  EXPECT_EQ(loop.feed(0.1), SwitchLoop::Action::kNone);
}

TEST(SwitchLoop, ThresholdAccessors) {
  SwitchLoop loop(0.4, 0.1);
  EXPECT_DOUBLE_EQ(loop.t1(), 0.4);
  EXPECT_DOUBLE_EQ(loop.t2(), 0.1);
}

}  // namespace
}  // namespace vs::core
