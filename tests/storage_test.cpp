// Tests for placement-specific bitstream storage: relocation, the async
// SD queue, and cache-aware slot selection in the runtime.
#include <gtest/gtest.h>

#include "fpga/board.h"
#include "fpga/storage.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs {
namespace {

TEST(Relocation, SecondSlotVariantRelocatesInsteadOfRereading) {
  sim::Simulator sim;
  fpga::BoardParams params;
  fpga::SdCard sd(sim, params);
  const fpga::BitstreamKey content = 0xAA00;
  sim::SimDuration first = sd.fetch_time(/*key=*/1, content, 12'000'000);
  EXPECT_EQ(first, params.sd_read_time(12'000'000));
  sim::SimDuration second = sd.fetch_time(/*key=*/2, content, 12'000'000);
  EXPECT_EQ(second, params.reloc_time(12'000'000));
  EXPECT_LT(second, first);
  EXPECT_EQ(sd.misses(), 1);
  EXPECT_EQ(sd.relocations(), 1);
  // Exact repeat: free.
  EXPECT_EQ(sd.fetch_time(/*key=*/2, content, 12'000'000), 0);
}

TEST(Relocation, DifferentContentAlwaysReadsSd) {
  sim::Simulator sim;
  fpga::BoardParams params;
  fpga::SdCard sd(sim, params);
  (void)sd.fetch_time(1, 0xA, 1'000'000);
  sim::SimDuration t = sd.fetch_time(2, 0xB, 1'000'000);
  EXPECT_EQ(t, params.sd_read_time(1'000'000));
  EXPECT_EQ(sd.misses(), 2);
  EXPECT_EQ(sd.relocations(), 0);
}

TEST(SdAsyncQueue, SerializesReads) {
  sim::Simulator sim;
  fpga::BoardParams params;
  fpga::SdCard sd(sim, params);
  std::vector<std::pair<int, sim::SimTime>> done;
  sd.fetch(1, 8'000'000, [&] { done.emplace_back(1, sim.now()); });
  sd.fetch(2, 8'000'000, [&] { done.emplace_back(2, sim.now()); });
  EXPECT_TRUE(sd.busy());
  EXPECT_EQ(sd.backlog(), 1u);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  sim::SimDuration read = params.sd_read_time(8'000'000);
  EXPECT_EQ(done[0].second, read);
  EXPECT_EQ(done[1].second, 2 * read);
}

TEST(SdAsyncQueue, CachedFetchIsImmediate) {
  sim::Simulator sim;
  fpga::BoardParams params;
  fpga::SdCard sd(sim, params);
  sd.prewarm(7);
  bool done = false;
  sd.fetch(7, 8'000'000, [&] { done = true; });
  EXPECT_TRUE(done);  // synchronous hit
}

TEST(SdAsyncQueue, OnBlockedFiresForQueuedReads) {
  sim::Simulator sim;
  fpga::BoardParams params;
  fpga::SdCard sd(sim, params);
  int blocked = 0;
  sd.fetch(1, 1'000'000, [] {}, [&] { ++blocked; });
  sd.fetch(2, 1'000'000, [] {}, [&] { ++blocked; });
  sim.run();
  EXPECT_EQ(blocked, 1);
}

TEST(ChooseSlot, PrefersCachedPlacement) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  // Warm the bitstream for slot 5 only.
  board.sdcard().prewarm(
      runtime::unit_bitstream_key(0, rt.app(id).units[0].spec, 5));
  std::vector<int> candidates{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(rt.choose_slot(id, 0, candidates), 5);
}

TEST(ChooseSlot, FallsBackToFirstCandidate) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 1, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  std::vector<int> candidates{3, 6};
  EXPECT_EQ(rt.choose_slot(id, 0, candidates), 3);
}

TEST(ChooseSlot, SecondInstanceReusesWarmSlot) {
  // Run one app to completion, then submit the same spec again: its PRs
  // should land on the already-warm slots (no new SD misses).
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 3, sim::ms(2));
  rt.submit(app, 0, 2, 0);
  sim.run();
  std::int64_t misses_after_first = board.sdcard().misses();
  rt.submit(app, 0, 2, sim.now());
  sim.run();
  EXPECT_EQ(board.sdcard().misses(), misses_after_first);
}

TEST(Relocation, RuntimeUsesRelocationAcrossSlots) {
  // Force the same unit content into two different slots: the second PR
  // must relocate rather than re-read.
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 1, sim::ms(1));
  int a0 = rt.submit(app, 0, 1, 0);
  int a1 = rt.submit(app, 0, 1, 0);
  rt.request_pr(a0, 0, 2);
  rt.request_pr(a1, 0, 6);  // same content, different slot
  sim.run();
  EXPECT_EQ(board.sdcard().misses(), 1);
  EXPECT_EQ(board.sdcard().relocations(), 1);
}

}  // namespace
}  // namespace vs
