// Regression tests pinning the reproduced paper shape: system orderings
// per congestion condition and the headline anchor ratios, with tolerant
// bounds so honest calibration drift fails loudly but noise does not.
// These are the repository's contract with EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "workload/generator.h"

namespace vs::metrics {
namespace {

struct PooledResult {
  double mean[kSystemCount];
};

/// Pools 3 sequences of 20 apps (smaller than the bench's 10 for test
/// speed, same seed family).
PooledResult pooled(workload::Congestion congestion) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = congestion;
  config.apps_per_sequence = 20;
  auto sequences = workload::generate_sequences(config, 3, 2025);
  PooledResult out{};
  for (int k = 0; k < kSystemCount; ++k) {
    auto agg = aggregate(static_cast<SystemKind>(k), suite, sequences);
    out.mean[k] = agg.mean_response_ms;
  }
  return out;
}

constexpr int kBase = 0, kNim = 3, kOl = 4, kBl = 5;

TEST(PaperShape, StandardOrderingAndAnchors) {
  PooledResult r = pooled(workload::Congestion::kStandard);
  // Full ordering: Baseline worst; BL best.
  for (int k = 1; k < kSystemCount; ++k) {
    EXPECT_LT(r.mean[k], r.mean[kBase]) << system_name(SystemKind(k));
  }
  EXPECT_LT(r.mean[kNim], r.mean[1]);   // Nimblock beats FCFS
  EXPECT_LT(r.mean[kNim], r.mean[2]);   // ... and RR
  EXPECT_LT(r.mean[kOl], r.mean[kNim]); // OL beats Nimblock
  EXPECT_LT(r.mean[kBl], r.mean[kOl]);  // BL beats OL
  // Headline anchor: ~13.66x over baseline; accept the 8-18x band.
  double reduction = r.mean[kBase] / r.mean[kBl];
  EXPECT_GT(reduction, 8.0);
  EXPECT_LT(reduction, 18.0);
  // BL vs Nimblock at standard: in the 1.2-2.5x band.
  double vs_nimblock = r.mean[kNim] / r.mean[kBl];
  EXPECT_GT(vs_nimblock, 1.2);
  EXPECT_LT(vs_nimblock, 2.5);
}

TEST(PaperShape, StressOrdering) {
  PooledResult r = pooled(workload::Congestion::kStress);
  EXPECT_LT(r.mean[kNim], r.mean[2]);    // Nimblock beats RR
  EXPECT_LT(r.mean[kOl], r.mean[kNim]);  // OL beats Nimblock
  EXPECT_LT(r.mean[kBl], r.mean[kOl]);   // BL beats OL
  double reduction = r.mean[kBase] / r.mean[kBl];
  EXPECT_GT(reduction, 2.0);  // saturation compresses the ratio
}

TEST(PaperShape, RealtimeOrdering) {
  PooledResult r = pooled(workload::Congestion::kRealtime);
  EXPECT_LT(r.mean[kOl], r.mean[kNim]);
  EXPECT_LT(r.mean[kBl], r.mean[kOl]);
}

TEST(PaperShape, LooseConditionStillFavoursBigLittle) {
  PooledResult r = pooled(workload::Congestion::kLoose);
  EXPECT_LT(r.mean[kBl], r.mean[kOl]);
  EXPECT_LT(r.mean[kBl], r.mean[kBase]);
}

TEST(PaperShape, UtilizationAnchors) {
  // Fig 7: +35% LUT / +29% FF average improvement (we calibrate to ~38/29);
  // accept ±8 points.
  fpga::BoardParams params;
  apps::SynthesisModel model;
  auto suite = apps::make_suite(params, model);
  double lut_sum = 0, ff_sum = 0;
  for (const apps::AppSpec& app : suite) {
    double lut_l = 0, ff_l = 0;
    for (const apps::TaskSpec& t : app.tasks) {
      lut_l += static_cast<double>(t.impl_usage.luts) /
               static_cast<double>(params.little_slot.luts);
      ff_l += static_cast<double>(t.impl_usage.ffs) /
              static_cast<double>(params.little_slot.ffs);
    }
    lut_l /= app.task_count();
    ff_l /= app.task_count();
    auto bundles = apps::make_big_units(app, 17, params, model);
    double lut_b = 0, ff_b = 0;
    int weight = 0;
    for (const apps::UnitSpec& u : bundles) {
      lut_b += u.task_count() * static_cast<double>(u.impl_usage.luts) /
               static_cast<double>(params.big_slot.luts);
      ff_b += u.task_count() * static_cast<double>(u.impl_usage.ffs) /
              static_cast<double>(params.big_slot.ffs);
      weight += u.task_count();
    }
    lut_sum += (lut_b / weight / lut_l - 1) * 100;
    ff_sum += (ff_b / weight / ff_l - 1) * 100;
  }
  EXPECT_NEAR(lut_sum / 5, 35.0, 8.0);
  EXPECT_NEAR(ff_sum / 5, 29.0, 8.0);
}

TEST(PaperShape, SwitchingOverheadInMillisecondBand) {
  // Fig 8: average switching overhead ~1.13 ms. This saturated test
  // workload migrates a deep backlog with intermediate buffers, so accept
  // [0.1, 50] ms per switch — still solidly "milliseconds, not seconds".
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 50;
  util::Rng rng(2025);
  auto seq = workload::generate_sequence(config, rng);
  auto r = run_cluster(suite, seq, cluster::ClusterOptions{});
  ASSERT_FALSE(r.switches.empty());
  for (const auto& e : r.switches) {
    if (e.apps_migrated == 0) continue;  // end-of-run empty switch-back
    double ms = sim::to_ms(e.overhead);
    EXPECT_GT(ms, 0.1);
    EXPECT_LT(ms, 50.0);
  }
}

}  // namespace
}  // namespace vs::metrics
