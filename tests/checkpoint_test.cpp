// Tests for the periodic DDR checkpointing subsystem: snapshot semantics on
// the BoardRuntime (restored progress never exceeds true progress, re-run
// window bounded by one interval), checkpoint-restored evacuation through
// the cluster recovery path, byte-identity of checkpoint-free runs, serial
// vs parallel vs instrumented determinism, and a frozen seed golden for a
// checkpointed-recovery cluster run.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "metrics/sweep.h"
#include "obs/telemetry.h"
#include "runtime/board_runtime.h"
#include "runtime/checkpoint.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "test_helpers.h"
#include "workload/generator.h"

namespace vs {
namespace {

// Expands an app's live per-unit progress to the per-task vector the
// checkpoint and migration paths use (each task covered by a unit carries
// the unit's completed item count).
std::vector<int> expand_progress(const runtime::AppRun& app) {
  std::vector<int> out;
  for (const runtime::UnitRun& u : app.units) {
    for (int t = 0; t < u.spec.task_count(); ++t) out.push_back(u.items_done);
  }
  return out;
}

// Cluster options with the two scripted crashes the checkpoint bench uses:
// the initially active Only.Little board at 2 s and the Big.Little
// failover board at 10 s (the crash that catches bundles mid-batch).
cluster::ClusterOptions checkpointed_options(bool enable_checkpoint) {
  cluster::ClusterOptions options;
  options.faults.seed = 404;
  options.faults.timeline.push_back(
      {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
  options.faults.timeline.push_back(
      {sim::seconds(10.0), faults::FaultKind::kBoardCrash, 1, -1});
  options.recovery.enable_recovery = true;
  options.checkpoint.enabled = enable_checkpoint;
  return options;
}

workload::Sequence stress_sequence(std::uint64_t seed, int n_apps = 20) {
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = n_apps;
  util::Rng rng(seed);
  return workload::generate_sequence(config, rng);
}

// ------------------------------------------------------ CheckpointProperty

TEST(CheckpointProperty, RestoredProgressBoundedByTruthAndInterval) {
  // Randomised seeds x intervals x crash times on a Big.Little board under
  // the VersaSlot policy (so Big-slot bundles form). At the crash, every
  // checkpoint-restored descriptor must carry progress element-wise <= the
  // app's true progress, monotone non-increasing along the pipeline, and a
  // snapshot no older than one interval; every live-evacuable descriptor
  // must carry exactly the true progress.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  int total_checkpointed = 0;
  int total_evacuable = 0;
  const double crash_s[] = {1.3, 2.0, 2.9};
  int cell = 0;
  for (std::uint64_t seed : {11, 23, 47}) {
    for (double interval_ms : {5.0, 17.0, 40.0}) {
      auto seq = stress_sequence(seed, 12);
      sim::Simulator sim;
      fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
      auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
      runtime::BoardRuntime rt(board, *policy);
      runtime::CheckpointPolicy ckpt;
      ckpt.enabled = true;
      ckpt.interval = sim::ms(interval_ms);
      rt.enable_checkpoints(ckpt);
      for (const auto& a : seq) {
        sim.schedule_at(a.arrival, [&rt, &suite, a] {
          if (rt.crashed()) return;
          rt.submit(suite[static_cast<std::size_t>(a.spec_index)],
                    a.spec_index, a.batch, a.arrival);
        });
      }
      const sim::SimTime crash_at = sim::seconds(crash_s[cell++ % 3]);
      while (sim.step() && sim.now() < crash_at) {
      }
      const int active_before = rt.active_apps();
      ASSERT_GT(active_before, 0) << "seed " << seed;

      // True progress at the instant of the crash, keyed by identity.
      // (Keys can collide when two apps of one spec share an arrival;
      // ambiguous keys are skipped rather than guessed.)
      std::map<std::pair<int, sim::SimTime>, std::vector<std::vector<int>>>
          truth;
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done()) continue;
        truth[{a.spec_index, a.arrival}].push_back(expand_progress(a));
      }
      auto lookup =
          [&](const runtime::BoardRuntime::MigratedApp& m)
          -> const std::vector<int>* {
        auto it = truth.find({m.spec_index, m.arrival});
        if (it == truth.end() || it->second.size() != 1) return nullptr;
        return &it->second.front();
      };

      auto report = rt.crash();
      const sim::SimTime now = sim.now();
      EXPECT_EQ(static_cast<int>(report.evacuable.size() +
                                 report.checkpointed.size() +
                                 report.killed.size()),
                active_before);
      total_checkpointed += static_cast<int>(report.checkpointed.size());
      total_evacuable += static_cast<int>(report.evacuable.size());
      for (const auto& m : report.checkpointed) {
        EXPECT_TRUE(m.from_checkpoint);
        if (const std::vector<int>* live = lookup(m)) {
          ASSERT_EQ(m.progress.size(), live->size());
          for (std::size_t i = 0; i < m.progress.size(); ++i) {
            // Restored progress never exceeds true progress at the crash.
            EXPECT_LE(m.progress[i], (*live)[i])
                << "seed " << seed << " interval " << interval_ms
                << " task " << i;
          }
        }
        for (std::size_t i = 0; i + 1 < m.progress.size(); ++i) {
          EXPECT_GE(m.progress[i], m.progress[i + 1]);  // pipeline order
        }
        // Re-run window: the snapshot is at most one interval old.
        ASSERT_GE(m.ckpt_time, 0);
        EXPECT_LE(now - m.ckpt_time, ckpt.interval)
            << "seed " << seed << " interval " << interval_ms;
        EXPECT_GT(m.state_bytes, 0);
      }
      for (const auto& m : report.evacuable) {
        EXPECT_FALSE(m.from_checkpoint);
        if (m.progress.empty()) continue;  // unstarted: rides along empty
        if (const std::vector<int>* live = lookup(m)) {
          EXPECT_EQ(m.progress, *live);  // live state, not a snapshot
        }
      }
      EXPECT_GT(rt.counters().ckpt_snapshots, 0);
      EXPECT_GT(rt.counters().ckpt_bytes, 0);
    }
  }
  // The grid must actually exercise both partitions.
  EXPECT_GT(total_checkpointed, 0);
  EXPECT_GT(total_evacuable, 0);
}

TEST(CheckpointProperty, RestoredAppsResumeAndComplete) {
  // Crash one board mid-run, replay every descriptor onto a fresh board via
  // the same packing the cluster uses; everything must complete.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(7, 10);
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  runtime::CheckpointPolicy ckpt;
  ckpt.enabled = true;
  rt.enable_checkpoints(ckpt);
  int submitted = 0;
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      if (rt.crashed()) return;
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
    ++submitted;
  }
  const sim::SimTime crash_at = sim::seconds(2.0);
  while (sim.step() && sim.now() < crash_at) {
  }
  const int done_before = static_cast<int>(rt.completed().size());
  auto report = rt.crash();
  sim.run();  // drain stale events of the dead epoch

  fpga::Board board2(sim, "b1", fpga::FabricConfig::big_little(), params);
  auto policy2 = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt2(board2, *policy2);
  auto replay = [&](const runtime::BoardRuntime::MigratedApp& m) {
    const auto& spec = suite[static_cast<std::size_t>(m.spec_index)];
    if (m.progress.empty()) {
      rt2.submit(spec, m.spec_index, m.batch, m.arrival, m.item_interval);
    } else {
      rt2.submit_with_progress(spec, m.spec_index, m.batch, m.arrival,
                               m.progress, m.item_interval);
    }
  };
  for (const auto& m : report.evacuable) replay(m);
  for (const auto& m : report.checkpointed) replay(m);
  for (const auto& m : report.killed) replay(m);
  sim.run();
  auto audit_report = runtime::audit(rt2);
  EXPECT_TRUE(audit_report.ok()) << audit_report.to_string();
  EXPECT_EQ(done_before + static_cast<int>(rt2.completed().size()),
            submitted);
}

TEST(CheckpointProperty, DisabledPolicyNeverSnapshotsOrPartitions) {
  // Without an active policy the crash report degenerates to the two-way
  // partition and no checkpoint work is ever scheduled.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(3, 8);
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      if (rt.crashed()) return;
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  while (sim.step() && sim.now() < sim::ms(60.0)) {
  }
  auto report = rt.crash();
  EXPECT_TRUE(report.checkpointed.empty());
  EXPECT_EQ(rt.counters().ckpt_snapshots, 0);
  EXPECT_EQ(rt.counters().ckpt_bytes, 0);
}

// ---------------------------------------------------- CheckpointRecovery

TEST(CheckpointRecovery, BundledAppsRestoreAndEveryAppCompletes) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  auto result =
      metrics::run_cluster(suite, seq, checkpointed_options(true));
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.apps_lost, 0);
  EXPECT_EQ(result.recovery.boards_crashed, 2);
  // The Big.Little crash catches bundled work that only a snapshot saves.
  EXPECT_GT(result.recovery.apps_checkpoint_restored, 0);
}

TEST(CheckpointRecovery, KillRestartForfeitsSnapshotsToo) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  cluster::ClusterOptions options = checkpointed_options(true);
  options.recovery.kill_restart = true;
  auto result = metrics::run_cluster(suite, seq, options);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.recovery.apps_checkpoint_restored, 0);
  EXPECT_EQ(result.recovery.apps_evacuated, 0);
  EXPECT_GT(result.recovery.apps_restarted, 0);
}

// ---------------------------------------------------- CheckpointDisabled

TEST(CheckpointDisabled, DisabledPolicyIsByteIdenticalToPlainOptions) {
  // checkpoint.enabled = false (even with a non-default interval) must not
  // perturb a faulty cluster run in any way.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  auto plain = metrics::run_cluster(suite, seq, checkpointed_options(false));
  cluster::ClusterOptions options = checkpointed_options(false);
  options.checkpoint.interval = sim::ms(1.0);  // inert while disabled
  auto tweaked = metrics::run_cluster(suite, seq, options);
  ASSERT_EQ(tweaked.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(tweaked.response_ms[i], plain.response_ms[i]) << i;
  }
  EXPECT_EQ(tweaked.recovery.apps_evacuated, plain.recovery.apps_evacuated);
  EXPECT_EQ(tweaked.recovery.apps_checkpoint_restored, 0);
  EXPECT_EQ(plain.recovery.apps_checkpoint_restored, 0);
  EXPECT_EQ(tweaked.recovery.mttr_total, plain.recovery.mttr_total);
}

TEST(CheckpointDisabled, NoCheckpointInstrumentsRegistered) {
  // Telemetry exports of a checkpoint-free run must not even mention the
  // checkpoint instruments (byte-identity of existing exports).
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41, 10);
  obs::Telemetry telemetry;
  (void)metrics::run_cluster(suite, seq, checkpointed_options(false),
                             sim::seconds(36000.0), &telemetry);
  for (const auto& row : telemetry.registry().counters()) {
    EXPECT_EQ(row.name.rfind("vs_ckpt_", 0), std::string::npos) << row.name;
    EXPECT_NE(row.name, "vs_recovery_checkpoint_restored_apps_total");
  }
  for (const auto& row : telemetry.registry().histograms()) {
    EXPECT_EQ(row.name.rfind("vs_ckpt_", 0), std::string::npos) << row.name;
  }
}

// --------------------------------------------------- CheckpointTelemetry

TEST(CheckpointTelemetry, SnapshotAndRestoreInstrumentsExport) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  obs::Telemetry telemetry;
  auto result = metrics::run_cluster(suite, seq, checkpointed_options(true),
                                     sim::seconds(36000.0), &telemetry);
  double snapshots = 0, bytes = 0, restored = 0;
  for (const auto& row : telemetry.registry().counters()) {
    if (row.name == "vs_ckpt_snapshots_total") snapshots += row.cell.value();
    if (row.name == "vs_ckpt_bytes_total") bytes += row.cell.value();
    if (row.name == "vs_recovery_checkpoint_restored_apps_total") {
      restored += row.cell.value();
    }
  }
  EXPECT_GT(snapshots, 0.0);
  EXPECT_GT(bytes, 0.0);
  EXPECT_EQ(restored,
            static_cast<double>(result.recovery.apps_checkpoint_restored));
  const obs::Histogram* window =
      telemetry.registry().find_histogram("vs_ckpt_rerun_window_ms", {});
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->count(),
            static_cast<std::uint64_t>(
                result.recovery.apps_checkpoint_restored));
  // Every observed re-run window respects the snapshot interval bound.
  EXPECT_LE(window->max(),
            sim::to_ms(checkpointed_options(true).checkpoint.interval));
}

// ------------------------------------------------- CheckpointDeterminism

TEST(CheckpointDeterminism, SerialParallelAndInstrumentedBitIdentical) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  cluster::ClusterOptions options = checkpointed_options(true);
  options.faults.hazards.slot_seu_per_s = 0.3;
  options.faults.horizon = sim::seconds(30.0);

  auto serial = metrics::run_cluster(suite, seq, options);
  ASSERT_GT(serial.response_ms.size(), 0u);

  // Telemetry on/off must not perturb a checkpointed run.
  obs::Telemetry telemetry;
  auto instrumented = metrics::run_cluster(suite, seq, options,
                                           sim::seconds(36000.0), &telemetry);
  ASSERT_EQ(instrumented.response_ms.size(), serial.response_ms.size());
  for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], serial.response_ms[i]) << i;
  }
  EXPECT_EQ(instrumented.recovery.apps_checkpoint_restored,
            serial.recovery.apps_checkpoint_restored);
  EXPECT_EQ(instrumented.recovery.mttr_total, serial.recovery.mttr_total);

  // Sweep-worker count must not either: 1, 2 and 8 workers all agree.
  for (int workers : {1, 2, 8}) {
    metrics::SweepRunner runner(static_cast<std::size_t>(workers));
    auto cells = runner.map<metrics::ClusterRunResult>(
        static_cast<std::size_t>(workers) + 1, [&](std::size_t) {
          return metrics::run_cluster(suite, seq, options);
        });
    for (const auto& cell : cells) {
      ASSERT_EQ(cell.response_ms.size(), serial.response_ms.size());
      for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
        EXPECT_EQ(cell.response_ms[i], serial.response_ms[i])
            << workers << " workers, app " << i;
      }
      EXPECT_EQ(cell.recovery.apps_checkpoint_restored,
                serial.recovery.apps_checkpoint_restored);
      EXPECT_EQ(cell.recovery.mttr_total, serial.recovery.mttr_total);
    }
  }
}

// ----------------------------------------------------------- DirtyMapUnit

TEST(DirtyMapUnit, GeometryMarkingAndTailAccounting) {
  runtime::DirtyMap map;
  EXPECT_FALSE(map.enabled());
  EXPECT_EQ(map.take(runtime::DirtyMap::kCheckpoint).bytes, 0);

  // 10 KiB image, 4 KiB regions: three regions, the last only 2 KiB.
  map.reset(10 * 1024, 4 * 1024);
  ASSERT_TRUE(map.enabled());
  EXPECT_EQ(map.regions(), 3);

  // A one-byte write dirties exactly its region.
  map.mark(5000, 1);
  auto d = map.peek(runtime::DirtyMap::kCheckpoint);
  EXPECT_EQ(d.regions, 1);
  EXPECT_EQ(d.bytes, 4 * 1024);

  // A write spanning a region boundary dirties both sides.
  map.mark(4 * 1024 - 10, 20);
  d = map.peek(runtime::DirtyMap::kCheckpoint);
  EXPECT_EQ(d.regions, 2);

  // The tail region is accounted at its true 2 KiB, not the granularity.
  map.mark_all();
  d = map.peek(runtime::DirtyMap::kCheckpoint);
  EXPECT_EQ(d.regions, 3);
  EXPECT_EQ(d.bytes, 10 * 1024);
}

TEST(DirtyMapUnit, PlanesDrainIndependently) {
  runtime::DirtyMap map;
  map.reset(64 * 1024, 8 * 1024);
  map.mark(0, 1);

  // Draining the checkpoint plane must not shorten the migration plane.
  auto ckpt = map.take(runtime::DirtyMap::kCheckpoint);
  EXPECT_EQ(ckpt.regions, 1);
  EXPECT_EQ(map.peek(runtime::DirtyMap::kCheckpoint).regions, 0);
  EXPECT_EQ(map.peek(runtime::DirtyMap::kMigration).regions, 1);

  // New writes re-dirty both planes; the migration drain sees old + new.
  map.mark(60 * 1024, 1);
  auto mig = map.take(runtime::DirtyMap::kMigration);
  EXPECT_EQ(mig.regions, 2);
  EXPECT_EQ(map.peek(runtime::DirtyMap::kMigration).regions, 0);
  // ... while the checkpoint plane saw only the new write.
  EXPECT_EQ(map.peek(runtime::DirtyMap::kCheckpoint).regions, 1);
}

TEST(DirtyMapUnit, ClampsOutOfRangeMarks) {
  runtime::DirtyMap map;
  map.reset(16 * 1024, 4 * 1024);
  map.mark(-100, 50);            // entirely before the image
  map.mark(20 * 1024, 4096);     // entirely past the image
  map.mark(1000, 0);             // empty
  EXPECT_EQ(map.peek(runtime::DirtyMap::kCheckpoint).regions, 0);
  map.mark(15 * 1024, 1 << 20);  // straddles the end: clamped to the tail
  EXPECT_EQ(map.peek(runtime::DirtyMap::kCheckpoint).regions, 1);
}

// -------------------------------------------------------- CheckpointDelta

cluster::ClusterOptions delta_options(std::int64_t granularity = 64 * 1024) {
  cluster::ClusterOptions options = checkpointed_options(true);
  options.checkpoint.delta = true;
  options.checkpoint.granularity = granularity;
  return options;
}

TEST(CheckpointDelta, StrictlyFewerBytesThanWholeStateAtEqualIntervals) {
  // The tentpole claim: at the same cadence, copying only dirtied regions
  // moves strictly fewer bytes than re-copying whole images, while the
  // recovery outcome (restored apps, completions) is unchanged.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  auto whole = metrics::run_cluster(suite, seq, checkpointed_options(true));
  auto delta = metrics::run_cluster(suite, seq, delta_options());

  ASSERT_GT(whole.checkpoint.total_bytes(), 0);
  ASSERT_GT(delta.checkpoint.total_bytes(), 0);
  EXPECT_LT(delta.checkpoint.total_bytes(), whole.checkpoint.total_bytes());
  // Whole-state mode never writes deltas; delta mode demonstrably does.
  EXPECT_EQ(whole.checkpoint.deltas, 0);
  EXPECT_EQ(whole.checkpoint.delta_bytes, 0);
  EXPECT_GT(delta.checkpoint.deltas, 0);
  EXPECT_GT(delta.checkpoint.dirty_regions, 0);
  EXPECT_GT(delta.checkpoint.bases, 0);  // first snapshots + compactions
  // Both modes keep every app alive through both scripted crashes.
  EXPECT_EQ(delta.completed, delta.submitted);
  EXPECT_GT(delta.recovery.apps_checkpoint_restored, 0);
}

TEST(CheckpointDelta, ChainCompactsEveryCompactEvery) {
  // With a chain cap of k, between two consecutive bases of one app at
  // most k deltas accumulate; globally, deltas <= k * (bases + apps) and
  // compactions count the bases that closed a chain.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  cluster::ClusterOptions options = delta_options();
  options.checkpoint.compact_every = 3;
  auto r = metrics::run_cluster(suite, seq, options);
  ASSERT_GT(r.checkpoint.deltas, 0);
  EXPECT_GT(r.checkpoint.compactions, 0);
  EXPECT_LE(r.checkpoint.compactions, r.checkpoint.bases);
  EXPECT_LE(r.checkpoint.deltas,
            static_cast<std::int64_t>(options.checkpoint.compact_every) *
                (r.checkpoint.bases + r.submitted));
}

TEST(CheckpointDelta, RestoredProgressStaysBoundedUnderDeltaMode) {
  // The crash-restore property holds unchanged in delta mode: restored
  // progress never exceeds the truth and the snapshot is at most one
  // interval old (the delta chain refreshes ckpt_time like a base does).
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(23, 12);
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  runtime::CheckpointPolicy ckpt;
  ckpt.enabled = true;
  ckpt.interval = sim::ms(10.0);
  ckpt.delta = true;
  ckpt.granularity = 16 * 1024;
  rt.enable_checkpoints(ckpt);
  ASSERT_TRUE(rt.dirty_tracking());
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      if (rt.crashed()) return;
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  while (sim.step() && sim.now() < sim::seconds(2.0)) {
  }
  std::map<std::pair<int, sim::SimTime>, std::vector<std::vector<int>>> truth;
  for (const runtime::AppRun& a : rt.apps()) {
    if (a.spec == nullptr || a.done()) continue;
    truth[{a.spec_index, a.arrival}].push_back(expand_progress(a));
  }
  auto report = rt.crash();
  const sim::SimTime now = sim.now();
  EXPECT_GT(rt.checkpoint_stats().deltas, 0);
  for (const auto& m : report.checkpointed) {
    ASSERT_GE(m.ckpt_time, 0);
    EXPECT_LE(now - m.ckpt_time, ckpt.interval);
    EXPECT_GT(m.state_bytes, 0);
    auto it = truth.find({m.spec_index, m.arrival});
    if (it == truth.end() || it->second.size() != 1) continue;
    const std::vector<int>& live = it->second.front();
    ASSERT_EQ(m.progress.size(), live.size());
    for (std::size_t i = 0; i < m.progress.size(); ++i) {
      EXPECT_LE(m.progress[i], live[i]) << "task " << i;
    }
  }
}

TEST(CheckpointDelta, SkipAccountingSplitsCleanFromEmpty) {
  // The split skip counters: "clean" skips refresh an existing snapshot,
  // "empty" skips mean nothing was ever committed. A stress run exercises
  // both, and snapshots partition exactly into bases + deltas.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  obs::Telemetry telemetry;
  auto r = metrics::run_cluster(suite, seq, delta_options(),
                                sim::seconds(36000.0), &telemetry);
  EXPECT_GT(r.checkpoint.skipped_clean, 0);
  EXPECT_GT(r.checkpoint.skipped_empty, 0);
  // Snapshots partition exactly into bases + deltas, and the legacy
  // aggregate byte counter matches the per-kind accounting.
  double snapshots = 0, bytes = 0;
  for (const auto& row : telemetry.registry().counters()) {
    if (row.name == "vs_ckpt_snapshots_total") snapshots += row.cell.value();
    if (row.name == "vs_ckpt_bytes_total") bytes += row.cell.value();
  }
  EXPECT_EQ(snapshots,
            static_cast<double>(r.checkpoint.bases + r.checkpoint.deltas));
  EXPECT_EQ(bytes, static_cast<double>(r.checkpoint.total_bytes()));
}

TEST(CheckpointDelta, DeltaInstrumentsExportOnlyInDeltaMode) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41, 10);

  // Whole-state mode: no delta instruments, but the split skip counter
  // labelled by reason is present.
  obs::Telemetry whole;
  (void)metrics::run_cluster(suite, seq, checkpointed_options(true),
                             sim::seconds(36000.0), &whole);
  bool saw_skip_reason = false;
  for (const auto& row : whole.registry().counters()) {
    EXPECT_NE(row.name, "vs_ckpt_dirty_bytes_total");
    EXPECT_NE(row.name, "vs_ckpt_dirty_regions_total");
    EXPECT_NE(row.name, "vs_ckpt_deltas_total");
    EXPECT_NE(row.name, "vs_ckpt_compactions_total");
    if (row.name == "vs_ckpt_skipped_total") {
      for (const auto& [k, v] : row.labels) {
        saw_skip_reason |= (k == "reason" && (v == "clean" || v == "empty"));
      }
    }
  }
  EXPECT_TRUE(saw_skip_reason);

  // Delta mode: the dirty-delta instruments appear and agree with the
  // aggregated CheckpointStats.
  obs::Telemetry delta;
  auto r = metrics::run_cluster(suite, seq, delta_options(),
                                sim::seconds(36000.0), &delta);
  double dirty_bytes = 0, dirty_regions = 0, deltas = 0, compactions = 0;
  double skipped_clean = 0, skipped_empty = 0;
  for (const auto& row : delta.registry().counters()) {
    if (row.name == "vs_ckpt_dirty_bytes_total") {
      dirty_bytes += row.cell.value();
    }
    if (row.name == "vs_ckpt_dirty_regions_total") {
      dirty_regions += row.cell.value();
    }
    if (row.name == "vs_ckpt_deltas_total") deltas += row.cell.value();
    if (row.name == "vs_ckpt_compactions_total") {
      compactions += row.cell.value();
    }
    if (row.name == "vs_ckpt_skipped_total") {
      for (const auto& [k, v] : row.labels) {
        if (k != "reason") continue;
        if (v == "clean") skipped_clean += row.cell.value();
        if (v == "empty") skipped_empty += row.cell.value();
      }
    }
  }
  EXPECT_GT(dirty_regions, 0.0);
  EXPECT_EQ(deltas, static_cast<double>(r.checkpoint.deltas));
  EXPECT_EQ(compactions, static_cast<double>(r.checkpoint.compactions));
  EXPECT_EQ(skipped_clean, static_cast<double>(r.checkpoint.skipped_clean));
  EXPECT_EQ(skipped_empty, static_cast<double>(r.checkpoint.skipped_empty));
  // Delta bytes = headers + dirty bytes shipped.
  EXPECT_EQ(static_cast<double>(r.checkpoint.delta_bytes),
            dirty_bytes + static_cast<double>(r.checkpoint.deltas) *
                              runtime::kCkptDeltaHeaderBytes);
}

TEST(CheckpointDelta, SerialShardedAndInstrumentedBitIdentical) {
  // Delta mode must hold the same determinism bar as whole-state: the
  // serial kernel is the sharded kernel's bit-exact oracle at every worker
  // count, with or without telemetry.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto seq = stress_sequence(41);
  cluster::ClusterOptions options = delta_options();
  options.faults.hazards.slot_seu_per_s = 0.3;
  options.faults.hazards.link_flap_per_s = 0.1;
  options.faults.horizon = sim::seconds(30.0);

  auto serial = metrics::run_cluster(suite, seq, options);
  ASSERT_GT(serial.response_ms.size(), 0u);
  ASSERT_GT(serial.checkpoint.deltas, 0);

  obs::Telemetry telemetry;
  auto instrumented = metrics::run_cluster(suite, seq, options,
                                           sim::seconds(36000.0), &telemetry);
  ASSERT_EQ(instrumented.response_ms.size(), serial.response_ms.size());
  for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], serial.response_ms[i]) << i;
  }
  EXPECT_EQ(instrumented.checkpoint.delta_bytes,
            serial.checkpoint.delta_bytes);

  for (int workers : {1, 2, 4, 8}) {
    cluster::ClusterOptions sharded = options;
    sharded.kernel_workers = workers;
    auto cell = metrics::run_cluster(suite, seq, sharded);
    ASSERT_EQ(cell.response_ms.size(), serial.response_ms.size()) << workers;
    for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
      EXPECT_EQ(cell.response_ms[i], serial.response_ms[i])
          << workers << " workers, app " << i;
    }
    EXPECT_EQ(cell.checkpoint.delta_bytes, serial.checkpoint.delta_bytes)
        << workers;
    EXPECT_EQ(cell.checkpoint.dirty_regions, serial.checkpoint.dirty_regions)
        << workers;
    EXPECT_EQ(cell.recovery.mttr_total, serial.recovery.mttr_total)
        << workers;
    EXPECT_EQ(cell.events, serial.events) << workers;
  }
}

// ----------------------------------------------------- CheckpointGoldens

TEST(CheckpointGoldens, Seed2025CheckpointedRecoveryClusterRun) {
  // Frozen golden for the checkpointed-recovery configuration under the
  // standard seed-2025 stress sequence: any change to checkpoint timing,
  // snapshot accounting or the recovery path shows up here first.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  auto seq = workload::generate_sequences(config, 1, 2025)[0];
  auto result = metrics::run_cluster(suite, seq, checkpointed_options(true));
  ASSERT_EQ(result.completed, result.submitted);
  ASSERT_GT(result.response_ms.size(), 0u);
  EXPECT_DOUBLE_EQ(result.response.mean, 12772.485029500001);
  EXPECT_DOUBLE_EQ(result.response_ms.front(), 2405.7318300000002);
  EXPECT_DOUBLE_EQ(result.response_ms.back(), 17174.148399999998);
  EXPECT_EQ(result.recovery.apps_checkpoint_restored, 2);
  // Integer-nanosecond MTTR sum: exact.
  EXPECT_EQ(result.recovery.mttr_total, 72452479);
}

}  // namespace
}  // namespace vs
