// Tests for the comparison scheduling policies: exclusive baseline, naive
// FCFS, round-robin, and Nimblock (priority + preemption + adaptive
// allocation, single-core).
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "baselines/baseline_exclusive.h"
#include "baselines/fcfs.h"
#include "baselines/nimblock.h"
#include "baselines/policy_common.h"
#include "baselines/round_robin.h"
#include "fpga/board.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::baselines {
namespace {

using runtime::BoardRuntime;
using test::make_uniform_app;

struct Fixture {
  sim::Simulator sim;
  fpga::Board board;
  Fixture() : board(sim, "b0", fpga::FabricConfig::only_little()) {}
};

// ------------------------------------------------------- BaselineExclusive

TEST(BaselineExclusive, RunsAppsOneAtATime) {
  Fixture f;
  BaselineExclusivePolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(5));
  rt.submit(app, 0, 2, 0);
  rt.submit(app, 0, 2, 0);
  // While the first app is live, the second must not have started.
  bool overlap = false;
  bool observed = false;
  for (int i = 0; i < 200000 && f.sim.step(); ++i) {
    const auto& apps = rt.apps();
    if (apps.size() == 2) {
      bool first_live = apps[0].started && !apps[0].done();
      if (first_live && apps[1].started) overlap = true;
      if (first_live) observed = true;
    }
  }
  EXPECT_TRUE(observed);
  EXPECT_FALSE(overlap);
  EXPECT_EQ(rt.completed().size(), 2u);
  EXPECT_EQ(rt.counters().pr_requests, 2);  // one full reconfig each
}

TEST(BaselineExclusive, FullReconfigDominatesResponse) {
  Fixture f;
  BaselineExclusivePolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(1));
  rt.submit(app, 0, 1, 0);
  f.sim.run();
  const fpga::BoardParams& p = f.board.params();
  ASSERT_EQ(rt.completed().size(), 1u);
  EXPECT_GT(rt.completed()[0].response_ms(),
            sim::to_ms(p.pcap_load_time(p.full_bitstream_bytes) +
                       p.full_reconfig_restart));
}

// -------------------------------------------------------------------- FCFS

TEST(Fcfs, OneSlotPerApp) {
  Fixture f;
  FcfsPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 4, sim::ms(2));
  int id = rt.submit(app, 0, 3, 0);
  // At no point may the app hold more than one slot.
  int max_placed = 0;
  while (f.sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  EXPECT_EQ(max_placed, 1);
  EXPECT_TRUE(rt.app(id).done());
  EXPECT_EQ(rt.counters().pr_requests, 4);  // each task swapped in once
}

TEST(Fcfs, ServesArrivalOrder) {
  Fixture f;
  FcfsPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(50));
  // 10 apps, 8 slots: the last two wait; earlier arrivals start first.
  for (int i = 0; i < 10; ++i) rt.submit(app, 0, 2, 0);
  f.sim.run(sim::ms(50));
  int started = 0;
  for (const auto& a : rt.apps()) started += a.started;
  EXPECT_EQ(started, 8);
  EXPECT_FALSE(rt.app(8).started);
  EXPECT_FALSE(rt.app(9).started);
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 10u);
}

TEST(Fcfs, AllAppsComplete) {
  Fixture f;
  FcfsPolicy policy;
  BoardRuntime rt(f.board, policy);
  auto suite = apps::make_suite(f.board.params());
  for (int i = 0; i < 5; ++i) {
    rt.submit(suite[static_cast<std::size_t>(i)], i, 3, 0);
  }
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 5u);
}

// -------------------------------------------------------------- RoundRobin

TEST(RoundRobin, RotatesGrants) {
  Fixture f;
  RoundRobinPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 2, sim::ms(2));
  for (int i = 0; i < 12; ++i) rt.submit(app, 0, 2, 0);
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 12u);
}

TEST(RoundRobin, OneSlotPerApp) {
  Fixture f;
  RoundRobinPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(2));
  int id = rt.submit(app, 0, 2, 0);
  int max_placed = 0;
  while (f.sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  EXPECT_EQ(max_placed, 1);
}

// ---------------------------------------------------------------- Nimblock

TEST(Nimblock, SingleCoreFlag) {
  NimblockPolicy policy;
  EXPECT_FALSE(policy.dual_core());
  EXPECT_STREQ(policy.name(), "Nimblock");
}

TEST(Nimblock, UsesMultipleSlotsPerApp) {
  Fixture f;
  NimblockPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(5));
  int id = rt.submit(app, 0, 10, 0);
  int max_placed = 0;
  while (f.sim.step()) {
    max_placed = std::max(max_placed, rt.app(id).units_placed());
  }
  EXPECT_GT(max_placed, 1);  // pipelined execution
  EXPECT_TRUE(rt.app(id).done());
}

TEST(Nimblock, PreemptsForStarvingApp) {
  Fixture f;
  NimblockOptions opts;
  opts.starvation_threshold = sim::ms(50.0);
  opts.preempt_cooldown = sim::ms(10.0);
  NimblockPolicy policy(opts);
  BoardRuntime rt(f.board, policy);
  // One long app that would monopolise all 8 slots...
  apps::AppSpec big = make_uniform_app("big", 8, sim::ms(200));
  rt.submit(big, 0, 30, 0);
  // ... and a short app arriving later.
  apps::AppSpec small = make_uniform_app("small", 1, sim::ms(1));
  f.sim.schedule(sim::ms(500), [&] { rt.submit(small, 1, 1, sim::ms(500)); });
  f.sim.run(sim::seconds(30.0));
  EXPECT_GT(rt.counters().preemptions, 0);
  // The small app finished long before the big one's natural end.
  bool small_done = false;
  for (const auto& c : rt.completed()) {
    if (c.name == "small") small_done = true;
  }
  EXPECT_TRUE(small_done);
}

TEST(Nimblock, AdaptiveAllocationShrinksUnderLoad) {
  Fixture f;
  NimblockPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(10));
  // 8 contenders over 8 slots: fair share is 1 slot per app.
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(rt.submit(app, 0, 5, 0));
  f.sim.run(sim::ms(500));
  int max_placed = 0;
  for (int id : ids) max_placed = std::max(max_placed, rt.app(id).units_placed());
  EXPECT_LE(max_placed, 2);
  f.sim.run();
  EXPECT_EQ(rt.completed().size(), 8u);
}

TEST(Nimblock, ShortJobFirstOrdering) {
  Fixture f;
  NimblockPolicy policy;
  BoardRuntime rt(f.board, policy);
  // Saturate the board, then submit one long and one short waiting app:
  // the short one should start (and finish) first.
  apps::AppSpec filler = make_uniform_app("filler", 8, sim::ms(100));
  rt.submit(filler, 0, 10, 0);
  apps::AppSpec longer = make_uniform_app("long", 6, sim::ms(80));
  apps::AppSpec shorter = make_uniform_app("short", 2, sim::ms(2));
  f.sim.schedule(sim::ms(10), [&] {
    rt.submit(longer, 1, 20, sim::ms(10));
    rt.submit(shorter, 2, 2, sim::ms(10));
  });
  f.sim.run();
  ASSERT_EQ(rt.completed().size(), 3u);
  sim::SimTime short_done = 0, long_done = 0;
  for (const auto& c : rt.completed()) {
    if (c.name == "short") short_done = c.completed;
    if (c.name == "long") long_done = c.completed;
  }
  EXPECT_LT(short_done, long_done);
}

// ------------------------------------------------------------ policy_common

TEST(PolicyCommon, NextPendingUnitInPipelineOrder) {
  Fixture f;
  test::ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 3, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  EXPECT_EQ(next_pending_unit(rt.app(id)), 0);
  rt.request_pr(id, 0, 0);
  EXPECT_EQ(next_pending_unit(rt.app(id)), 1);
  EXPECT_TRUE(has_pending_units(rt.app(id)));
}

TEST(PolicyCommon, LiveAppsSkipsDoneAndExtracted) {
  Fixture f;
  test::GreedyPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 1, sim::ms(1));
  rt.submit(app, 0, 1, 0);
  f.sim.run();
  EXPECT_TRUE(live_apps(rt).empty());
}

TEST(PolicyCommon, GrantRespectsCaps) {
  Fixture f;
  test::ScriptedPolicy policy;
  BoardRuntime rt(f.board, policy);
  apps::AppSpec app = make_uniform_app("a", 6, sim::ms(1));
  int id = rt.submit(app, 0, 1, 0);
  std::unordered_map<int, int> caps{{id, 2}};
  grant_little_slots(rt, {id}, caps);
  EXPECT_EQ(rt.app(id).units_placed(), 2);
}

}  // namespace
}  // namespace vs::baselines
