// Shared helpers for tests: compact synthetic application builders, a
// trivial manually-driven policy for exercising the BoardRuntime directly,
// and the app conservation-law assertion shared by every fault/recovery
// suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "apps/task.h"
#include "fpga/params.h"
#include "runtime/board_runtime.h"
#include "runtime/policy.h"

namespace vs::test {

/// The app conservation law for a drained fault run: every submitted app
/// ends in exactly one bucket — completed, lost with its board (recovery
/// off), shed by graceful degradation, or refused at the door by the
/// admission throttle. Works for metrics::RunResult and ClusterRunResult
/// (anything with completed / submitted / recovery).
template <typename Result>
void expect_app_conservation(const Result& r) {
  EXPECT_EQ(r.completed + r.recovery.apps_lost + r.recovery.apps_shed +
                r.recovery.arrivals_shed,
            r.submitted)
      << "conservation violated: completed=" << r.completed
      << " lost=" << r.recovery.apps_lost
      << " shed=" << r.recovery.apps_shed
      << " arrivals_shed=" << r.recovery.arrivals_shed
      << " submitted=" << r.submitted;
}

/// Builds an n-task app where every task has the given per-item latency and
/// a small resource footprint (always fits any slot).
inline apps::AppSpec make_uniform_app(const std::string& name, int n_tasks,
                                      sim::SimDuration item_latency,
                                      const fpga::BoardParams& params = {}) {
  apps::AppSpec app;
  app.name = name;
  for (int i = 0; i < n_tasks; ++i) {
    apps::TaskSpec t;
    t.index = i;
    t.name = "t" + std::to_string(i);
    t.synth_usage = {10'000, 20'000, 16, 32};
    t.impl_usage = {6'000, 12'000, 16, 32};
    t.item_latency = item_latency;
    t.item_bytes_in = 100'000;
    t.item_bytes_out = 50'000;
    t.bitstream_bytes = params.little_bitstream_bytes;
    app.tasks.push_back(t);
  }
  return app;
}

/// A policy whose pass behaviour is provided by the test as a callback.
/// Useful for driving the runtime into precise states.
class ScriptedPolicy final : public runtime::SchedulerPolicy {
 public:
  using PassFn = std::function<void(runtime::BoardRuntime&)>;

  explicit ScriptedPolicy(PassFn on_pass = nullptr, bool dual = false)
      : on_pass_(std::move(on_pass)), dual_(dual) {}

  [[nodiscard]] const char* name() const override { return "scripted"; }
  [[nodiscard]] bool dual_core() const override { return dual_; }
  void on_app_submitted(runtime::BoardRuntime&, int) override {}
  void on_pass(runtime::BoardRuntime& rt) override {
    if (on_pass_) on_pass_(rt);
  }
  void set_pass(PassFn fn) { on_pass_ = std::move(fn); }

 private:
  PassFn on_pass_;
  bool dual_;
};

/// Policy that greedily places every pending unit into any idle slot of the
/// right kind (no allocation limits) — the simplest complete scheduler.
class GreedyPolicy final : public runtime::SchedulerPolicy {
 public:
  explicit GreedyPolicy(bool dual = true) : dual_(dual) {}
  [[nodiscard]] const char* name() const override { return "greedy"; }
  [[nodiscard]] bool dual_core() const override { return dual_; }
  void on_app_submitted(runtime::BoardRuntime&, int) override {}
  void on_pass(runtime::BoardRuntime& rt) override {
    for (const runtime::AppRun& a : rt.apps()) {
      if (a.spec == nullptr || a.done()) continue;
      for (const runtime::UnitRun& u : a.units) {
        if (u.state != runtime::UnitState::kPending) continue;
        auto idle = rt.idle_slots(u.spec.slot_kind);
        if (idle.empty()) return;
        int unit_index = static_cast<int>(&u - a.units.data());
        rt.request_pr(a.id, unit_index, idle.front());
      }
    }
  }

 private:
  bool dual_;
};

}  // namespace vs::test
