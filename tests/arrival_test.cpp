// Tests for the open-loop arrival processes behind the serving plane:
// zero-rate edge cases, schedule properties (ascending, horizon-bounded),
// stream determinism (same seed, same schedule — the property the
// cross-kernel bit-identity of the serving plane rests on), and frozen
// seed-2025 goldens per process kind so a quiet change to the generation
// algorithm cannot slip through as "still deterministic, just different".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/arrival.h"
#include "serve/tenant.h"
#include "sim/time.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs {
namespace {

workload::ArrivalProcess poisson(double rate) {
  workload::ArrivalProcess p;
  p.kind = workload::ArrivalKind::kPoisson;
  p.rate_per_s = rate;
  return p;
}

workload::ArrivalProcess mmpp(double quiet, double burst, double on_s,
                              double off_s) {
  workload::ArrivalProcess p;
  p.kind = workload::ArrivalKind::kMmpp;
  p.rate_per_s = quiet;
  p.burst_rate_per_s = burst;
  p.burst_on_s = on_s;
  p.burst_off_s = off_s;
  return p;
}

workload::ArrivalProcess diurnal(double rate, double depth, double period_s) {
  workload::ArrivalProcess p;
  p.kind = workload::ArrivalKind::kDiurnal;
  p.rate_per_s = rate;
  p.diurnal_depth = depth;
  p.diurnal_period_s = period_s;
  return p;
}

std::vector<sim::SimTime> gen(const workload::ArrivalProcess& p,
                              double horizon_s, std::uint64_t seed = 2025) {
  util::Rng rng(seed);
  return p.generate(sim::seconds(horizon_s), rng);
}

// ------------------------------------------------------------- edge cases

TEST(ArrivalProcess, ZeroRateEmitsNothing) {
  EXPECT_TRUE(gen(poisson(0.0), 30.0).empty());
  EXPECT_TRUE(gen(poisson(-1.0), 30.0).empty());
  EXPECT_TRUE(gen(diurnal(0.0, 0.5, 10.0), 30.0).empty());
  // MMPP is silent only when both states are silent.
  EXPECT_TRUE(gen(mmpp(0.0, 0.0, 1.0, 4.0), 30.0).empty());
  EXPECT_TRUE(gen(mmpp(-2.0, 0.0, 1.0, 4.0), 30.0).empty());
}

TEST(ArrivalProcess, MmppQuietStateSilentBurstsStillEmit) {
  // Base rate 0: every arrival must come from a burst window, so the
  // schedule is non-empty but much sparser than an always-on process.
  auto bursts_only = gen(mmpp(0.0, 8.0, 1.0, 4.0), 30.0);
  auto always_on = gen(mmpp(8.0, 8.0, 1.0, 4.0), 30.0);
  EXPECT_FALSE(bursts_only.empty());
  EXPECT_LT(bursts_only.size(), always_on.size());
}

TEST(ArrivalProcess, ZeroHorizonEmitsNothing) {
  EXPECT_TRUE(gen(poisson(5.0), 0.0).empty());
  EXPECT_TRUE(gen(mmpp(5.0, 10.0, 1.0, 4.0), 0.0).empty());
  EXPECT_TRUE(gen(diurnal(5.0, 0.5, 10.0), 0.0).empty());
}

// ------------------------------------------------ schedule properties

void expect_well_formed(const std::vector<sim::SimTime>& times,
                        double horizon_s) {
  const sim::SimTime horizon = sim::seconds(horizon_s);
  sim::SimTime prev = 0;
  for (sim::SimTime t : times) {
    EXPECT_GE(t, prev);
    EXPECT_LT(t, horizon);
    prev = t;
  }
}

TEST(ArrivalProcess, SchedulesAscendingAndHorizonBounded) {
  expect_well_formed(gen(poisson(3.0), 30.0), 30.0);
  expect_well_formed(gen(mmpp(0.5, 8.0, 1.0, 4.0), 30.0), 30.0);
  expect_well_formed(gen(diurnal(3.0, 0.9, 7.0), 30.0), 30.0);
}

TEST(ArrivalProcess, SameSeedSameSchedule) {
  // The serving plane's cross-kernel bit-identity rests on this: a trace
  // is a pure function of (process, seed), whatever else consumed entropy.
  const workload::ArrivalProcess procs[] = {
      poisson(2.0), mmpp(0.5, 8.0, 1.0, 4.0), diurnal(2.0, 0.5, 10.0)};
  for (const auto& p : procs) {
    auto a = gen(p, 30.0, 7);
    auto b = gen(p, 30.0, 7);
    EXPECT_EQ(a, b);
    auto c = gen(p, 30.0, 8);
    EXPECT_NE(a, c);
  }
}

TEST(ArrivalProcess, RatesScaleCounts) {
  // Sanity on magnitudes: a rate-r Poisson over horizon H lands near r*H.
  EXPECT_NEAR(static_cast<double>(gen(poisson(4.0), 50.0).size()), 200.0,
              60.0);
  // Diurnal thinning preserves the average rate (depth cancels over whole
  // periods).
  EXPECT_NEAR(static_cast<double>(gen(diurnal(4.0, 0.8, 10.0), 50.0).size()),
              200.0, 60.0);
}

// ---------------------------------------------------- frozen seed goldens
//
// Frozen against util::Rng(2025) (the repo's master seed). These pin the
// exact generation algorithm — interval draws, state-switch handling at
// burst-window boundaries, thinning order — not just self-consistency.
// If one fails after an intentional generator change, regenerate the
// constants and say so in the commit.

struct Golden {
  std::size_t count;
  std::int64_t first_ns;
  std::int64_t last_ns;
};

void expect_golden(const std::vector<sim::SimTime>& times, const Golden& g) {
  ASSERT_EQ(times.size(), g.count);
  EXPECT_EQ(static_cast<std::int64_t>(times.front()), g.first_ns);
  EXPECT_EQ(static_cast<std::int64_t>(times.back()), g.last_ns);
}

TEST(ArrivalProcess, GoldenPoissonSeed2025) {
  expect_golden(gen(poisson(2.0), 30.0), Golden{65, 333384366, 29769597703});
}

TEST(ArrivalProcess, GoldenMmppSeed2025) {
  expect_golden(gen(mmpp(0.5, 8.0, 1.0, 4.0), 30.0), Golden{33, 409355435, 29257080410});
}

TEST(ArrivalProcess, GoldenDiurnalSeed2025) {
  expect_golden(gen(diurnal(2.0, 0.5, 10.0), 30.0), Golden{63, 222256244, 29881481298});
}

// The merged tenant trace is frozen too: it additionally pins the
// `stream("arrivals/<name>")` fork labels, the per-tenant spec/batch
// draws, and the ascending merge with tie-break by tenant order.
TEST(ArrivalProcess, GoldenServeTraceSeed2025) {
  serve::ServeConfig config;
  config.seed = 2025;
  config.horizon = sim::seconds(10.0);
  config.classes = {{"c", sim::ms(2000.0), 0}};
  serve::Tenant a;
  a.name = "alpha";
  a.arrivals = poisson(1.5);
  serve::Tenant b;
  b.name = "beta";
  b.arrivals = mmpp(0.2, 4.0, 1.0, 3.0);
  config.tenants = {a, b};

  auto trace = serve::generate_trace(config, /*suite_size=*/5);
  sim::SimTime prev = 0;
  for (const serve::ServeArrival& s : trace) {
    EXPECT_GE(s.app.arrival, prev);
    EXPECT_TRUE(s.tenant == 0 || s.tenant == 1);
    EXPECT_EQ(s.app.tenant, s.tenant);
    EXPECT_GE(s.app.spec_index, 0);
    EXPECT_LT(s.app.spec_index, 5);
    prev = s.app.arrival;
  }
  ASSERT_EQ(trace.size(), 35u);
  EXPECT_EQ(trace.front().tenant, 0);
  EXPECT_EQ(static_cast<std::int64_t>(trace.front().app.arrival), 76637127);
  EXPECT_EQ(static_cast<std::int64_t>(trace.back().app.arrival), 9684064637);
}

}  // namespace
}  // namespace vs
