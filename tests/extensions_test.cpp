// Tests for the extension subsystems: quality metrics, workload patterns
// and persistence, progress-carrying live migration, and the N-board
// cluster generalisation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "metrics/quality.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "test_helpers.h"
#include "workload/patterns.h"

namespace vs {
namespace {

// ----------------------------------------------------------------- quality

TEST(Quality, AloneEstimatePositiveAndGrowsWithBatch) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  for (const auto& app : suite) {
    auto small = metrics::alone_estimate(app, 5, params);
    auto large = metrics::alone_estimate(app, 30, params);
    EXPECT_GT(small, 0);
    EXPECT_GT(large, small);
  }
}

TEST(Quality, ReportFromRealRun) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 12;
  util::Rng rng(5);
  auto seq = workload::generate_sequence(config, rng);
  auto run = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                       suite, seq);
  metrics::QualityReport q = metrics::quality(run, suite, seq, params);
  EXPECT_GT(q.mean_slowdown, 0.0);
  EXPECT_GE(q.p95_slowdown, q.mean_slowdown * 0.5);
  EXPECT_GE(q.max_slowdown, q.p95_slowdown);
  EXPECT_GT(q.jain_fairness, 0.0);
  EXPECT_LE(q.jain_fairness, 1.0);
  EXPECT_GT(q.makespan_s, 0.0);
  EXPECT_GT(q.throughput_apps_per_s, 0.0);
}

TEST(Quality, EmptyRunYieldsZeroReport) {
  metrics::RunResult run;
  metrics::QualityReport q = metrics::quality(run, {}, {}, {});
  EXPECT_EQ(q.mean_slowdown, 0.0);
  EXPECT_EQ(q.jain_fairness, 0.0);
}

TEST(Quality, FairSchedulerScoresHigherThanStarving) {
  // Uniform slowdowns -> Jain index near 1; Jain of a run where one app is
  // starved is lower. Compare VersaSlot (redistribution + preemption)
  // against naive FCFS under stress.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 15;
  util::Rng rng(11);
  auto seq = workload::generate_sequence(config, rng);
  auto vs_run = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq);
  auto q = metrics::quality(vs_run, suite, seq, params);
  EXPECT_GT(q.jain_fairness, 0.3);
}

// ---------------------------------------------------------------- patterns

TEST(Patterns, PhasedSequenceCountsAndOrder) {
  util::Rng rng(3);
  auto seq = workload::phased_sequence({{10, workload::Congestion::kStress},
                                        {5, workload::Congestion::kLoose}},
                                       rng);
  ASSERT_EQ(seq.size(), 15u);
  sim::SimTime prev = -1;
  for (const auto& a : seq) {
    EXPECT_GT(a.arrival, prev);
    prev = a.arrival;
  }
  // Loose phase spreads arrivals at 5 s; stress at <= 200 ms.
  EXPECT_LE(seq[9].arrival, sim::ms(2000));
  EXPECT_GE(seq[14].arrival - seq[10].arrival, sim::seconds(4.0) * 4);
}

TEST(Patterns, Fig8WorkloadShape) {
  auto seq = workload::fig8_long_workload(42);
  ASSERT_EQ(seq.size(), 80u);
  // Burst phase: first 30 arrivals within ~6 s; relief phase much slower.
  EXPECT_LT(seq[29].arrival, sim::seconds(7.0));
  EXPECT_GT(seq[79].arrival, sim::seconds(60.0));
}

TEST(Patterns, PoissonMeanInterval) {
  util::Rng rng(7);
  auto seq = workload::poisson_sequence(2000, sim::ms(100.0), rng);
  ASSERT_EQ(seq.size(), 2000u);
  double mean_interval =
      sim::to_ms(seq.back().arrival) / static_cast<double>(seq.size() - 1);
  EXPECT_NEAR(mean_interval, 100.0, 10.0);
}

TEST(Patterns, SaveLoadRoundTrip) {
  util::Rng rng(9);
  workload::WorkloadConfig config;
  auto seq = workload::generate_sequence(config, rng);
  std::string path = testing::TempDir() + "/vs_workload.csv";
  workload::save_sequence(seq, path);
  auto loaded = workload::load_sequence(path);
  ASSERT_EQ(loaded.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(loaded[i].spec_index, seq[i].spec_index);
    EXPECT_EQ(loaded[i].arrival, seq[i].arrival);
    EXPECT_EQ(loaded[i].batch, seq[i].batch);
  }
  std::remove(path.c_str());
}

TEST(Patterns, LoadRejectsMalformedRows) {
  std::string path = testing::TempDir() + "/vs_bad_workload.csv";
  {
    std::ofstream out(path);
    out << "spec_index,arrival_ns,batch\n1,notanumber,5\n";
  }
  EXPECT_THROW(workload::load_sequence(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Patterns, LoadRejectsMissingFile) {
  EXPECT_THROW(workload::load_sequence("/nonexistent_dir_xyz/w.csv"),
               std::runtime_error);
}

// --------------------------------------------------- migration with progress

TEST(Migration, SubmitWithProgressResumesExactly) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::GreedyPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 3, sim::ms(5));
  int id = rt.submit_with_progress(app, 0, 10, 0, {10, 6, 2});
  EXPECT_TRUE(rt.app(id).started);
  EXPECT_EQ(rt.app(id).units[0].state, runtime::UnitState::kFinished);
  EXPECT_EQ(rt.app(id).units[1].items_done, 6);
  sim.run();
  EXPECT_TRUE(rt.app(id).done());
  // Only the remaining items executed: (10-6) + (10-2) = 12.
  EXPECT_EQ(rt.counters().items_executed, 12);
  EXPECT_TRUE(runtime::audit(rt).ok());
}

TEST(Migration, SubmitWithFullProgressCompletesImmediately) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 2, sim::ms(5));
  int id = rt.submit_with_progress(app, 0, 4, 0, {4, 4});
  EXPECT_TRUE(rt.app(id).done());
  EXPECT_EQ(rt.completed().size(), 1u);
}

TEST(Migration, ExtractMigratableCarriesProgressAndBuffers) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 3, sim::ms(5));
  int id = rt.submit_with_progress(app, 0, 10, 0, {8, 3, 0});
  (void)id;
  auto migrated = rt.extract_migratable();
  ASSERT_EQ(migrated.size(), 1u);
  EXPECT_EQ(migrated[0].progress, (std::vector<int>{8, 3, 0}));
  // Intermediate buffers: (10-8)*in0 + (8-3)*in1 + (3-0)*in2 over the base
  // descriptor size.
  std::int64_t base = 4096 + 10 * 16384;
  std::int64_t buffers = (10 - 8) * 100'000 + (8 - 3) * 100'000 +
                         (3 - 0) * 100'000;
  EXPECT_EQ(migrated[0].state_bytes, base + buffers);
}

TEST(Migration, ExtractMigratableSkipsAppsHoldingSlots) {
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::only_little());
  test::ScriptedPolicy policy;
  runtime::BoardRuntime rt(board, policy);
  auto app = test::make_uniform_app("a", 2, sim::ms(5));
  int id = rt.submit(app, 0, 3, 0);
  rt.request_pr(id, 0, 0);
  auto migrated = rt.extract_migratable();
  EXPECT_TRUE(migrated.empty());  // unit 0 holds slot 0
  sim.run();
  EXPECT_EQ(rt.completed().size(), 0u);  // unit 1 was never placed
  EXPECT_EQ(rt.app(id).units[0].items_done, 3);
}

// ------------------------------------------------------------ N-board pool

TEST(ClusterScale, TwoBoardsPerConfigComplete) {
  sim::Simulator sim;
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  cluster::ClusterOptions options;
  options.boards_per_config = 2;
  cluster::Cluster c(sim, suite, options);
  EXPECT_EQ(c.active_board_count(), 2);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 40;
  util::Rng rng(5);
  c.submit_sequence(workload::generate_sequence(config, rng));
  sim.run();
  EXPECT_TRUE(c.all_done());
}

TEST(ClusterScale, MoreBoardsReduceResponse) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 40;
  util::Rng rng(5);
  auto seq = workload::generate_sequence(config, rng);

  auto mean_with_boards = [&](int boards) {
    sim::Simulator sim;
    cluster::ClusterOptions options;
    options.boards_per_config = boards;
    options.enable_switching = false;
    cluster::Cluster c(sim, suite, options);
    c.submit_sequence(seq);
    sim.run();
    double sum = 0;
    for (const auto& done : c.completed()) sum += done.response_ms();
    return sum / static_cast<double>(c.completed().size());
  };
  double one = mean_with_boards(1);
  double two = mean_with_boards(2);
  EXPECT_LT(two, one * 0.8);  // parallelism must pay off under saturation
}

TEST(ClusterScale, DispatcherBalancesLoad) {
  sim::Simulator sim;
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  cluster::ClusterOptions options;
  options.boards_per_config = 2;
  options.enable_switching = false;
  cluster::Cluster c(sim, suite, options);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kRealtime;
  config.apps_per_sequence = 20;
  util::Rng rng(7);
  c.submit_sequence(workload::generate_sequence(config, rng));
  sim.run(sim::seconds(1.5));
  // Shortly after the burst both boards must hold work.
  EXPECT_GT(c.active_runtime().active_apps(), 0);
  sim.run();
  EXPECT_TRUE(c.all_done());
}

}  // namespace
}  // namespace vs
