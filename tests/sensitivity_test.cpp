// Calibration-sensitivity tests: the reproduced *shape* (who wins) must
// not hinge on the exact calibration point. Each sweep perturbs one block
// of BoardParams by a substantial factor and re-checks the core orderings
// under a congested workload.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "workload/generator.h"

namespace vs::metrics {
namespace {

struct Means {
  double baseline, nimblock, ol, bl;
};

Means run_with(const fpga::BoardParams& params, workload::Congestion c) {
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = c;
  config.apps_per_sequence = 20;
  auto sequences = workload::generate_sequences(config, 3, 2025);
  RunOptions options;
  options.board_params = params;
  auto mean = [&](SystemKind kind) {
    return aggregate(kind, suite, sequences, options).mean_response_ms;
  };
  return {mean(SystemKind::kBaseline), mean(SystemKind::kNimblock),
          mean(SystemKind::kVersaOnlyLittle),
          mean(SystemKind::kVersaBigLittle)};
}

void expect_core_ordering(const Means& m, const std::string& label) {
  // The two claims that must survive any reasonable calibration:
  // Big.Little beats Nimblock and crushes the exclusive baseline.
  EXPECT_LT(m.bl, m.nimblock) << label;
  EXPECT_LT(m.bl * 2, m.baseline) << label;
  EXPECT_LT(m.ol, m.nimblock * 1.05) << label;  // OL at least ties Nimblock
}

TEST(Sensitivity, PcapBandwidthHalved) {
  fpga::BoardParams p;
  p.pcap_bandwidth_bytes_per_s /= 2;  // 64 MB/s
  expect_core_ordering(run_with(p, workload::Congestion::kStandard),
                       "pcap/2 standard");
}

TEST(Sensitivity, PcapBandwidthDoubled) {
  fpga::BoardParams p;
  p.pcap_bandwidth_bytes_per_s *= 2;  // 256 MB/s
  expect_core_ordering(run_with(p, workload::Congestion::kStandard),
                       "pcap*2 standard");
}

TEST(Sensitivity, BitstreamsThirtyPercentLarger) {
  fpga::BoardParams p;
  p.little_bitstream_bytes = p.little_bitstream_bytes * 13 / 10;
  p.big_bitstream_bytes = p.big_bitstream_bytes * 13 / 10;
  expect_core_ordering(run_with(p, workload::Congestion::kStress),
                       "bitstreams*1.3 stress");
}

TEST(Sensitivity, SdCardSlower) {
  fpga::BoardParams p;
  p.sd_bandwidth_bytes_per_s = 40e6;  // older card
  expect_core_ordering(run_with(p, workload::Congestion::kStandard),
                       "sd/2 standard");
}

TEST(Sensitivity, CheapFullReconfigStillLoses) {
  // Even with a generously fast exclusive baseline (half-size monolithic
  // bitstream, half the restart), sharing wins under congestion.
  fpga::BoardParams p;
  p.full_bitstream_bytes /= 2;
  p.full_reconfig_restart /= 2;
  Means m = run_with(p, workload::Congestion::kStandard);
  EXPECT_LT(m.bl * 2, m.baseline);
}

TEST(Sensitivity, FasterSchedulerCores) {
  fpga::BoardParams p;
  p.sched_pass_cost /= 4;
  p.launch_op_cost /= 4;
  expect_core_ordering(run_with(p, workload::Congestion::kStress),
                       "fast cores stress");
}

TEST(Sensitivity, NoRelocationSupport) {
  // Disable bitstream relocation (relocation as slow as an SD read):
  // orderings must hold even on tooling without relocation.
  fpga::BoardParams p;
  p.reloc_bandwidth_bytes_per_s = p.sd_bandwidth_bytes_per_s;
  p.reloc_overhead = p.sd_seek_overhead;
  expect_core_ordering(run_with(p, workload::Congestion::kStandard),
                       "no-reloc standard");
}

TEST(Sensitivity, BiggerFabricMoreSlots) {
  // A larger part hosting 3 Big + 6 Little behaves consistently.
  fpga::BoardParams p;
  auto suite = apps::make_suite(p);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  auto sequences = workload::generate_sequences(config, 3, 2025);
  RunOptions bl;
  bl.fabric = fpga::FabricConfig::custom(3, 6);
  RunOptions ol;
  ol.fabric = fpga::FabricConfig::custom(0, 12);
  double bl_mean =
      aggregate(SystemKind::kVersaBigLittle, suite, sequences, bl)
          .mean_response_ms;
  double ol_mean =
      aggregate(SystemKind::kVersaOnlyLittle, suite, sequences, ol)
          .mean_response_ms;
  EXPECT_LT(bl_mean, ol_mean * 1.1);  // Big.Little at worst ties
}

}  // namespace
}  // namespace vs::metrics
