// Differential determinism harness for the sharded event kernel.
//
// The serial Simulator is the reference oracle; sim::ShardedSimulator must
// reproduce it bit-for-bit at every worker count. The suite has three
// layers:
//
//  1. kernel-level tests against hand-built event graphs (canonical order,
//     windows/barriers, mailbox merging, lookahead-violation detection);
//  2. the cluster differential: full metrics::run_cluster under serial vs
//     sharded kernels at 1/2/4/8 workers, across seeds x {fault-free,
//     crash+flap+SEU, checkpointing} x telemetry on/off, asserting
//     bitwise-equal results, metric exports and fig-style CSV rows;
//  3. frozen seed-2025 goldens pinning the canonical order itself, so a
//     future kernel change that shifts event ordering fails loudly here
//     rather than silently re-baselining both sides of the differential.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "cluster/cluster.h"
#include "metrics/experiment.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs {
namespace {

// ------------------------------------------------------------ kernel level

TEST(ShardedKernel, RejectsDegenerateOptions) {
  sim::ShardedOptions bad_shards;
  bad_shards.shards = 0;
  EXPECT_THROW(sim::ShardedSimulator{bad_shards}, std::invalid_argument);
  sim::ShardedOptions bad_lookahead;
  bad_lookahead.lookahead = 0;
  EXPECT_THROW(sim::ShardedSimulator{bad_lookahead}, std::invalid_argument);
}

TEST(ShardedKernel, ShardsCarryTheirTagAndKernelBackPointer) {
  sim::ShardedOptions options;
  options.shards = 3;
  sim::ShardedSimulator kernel(options);
  EXPECT_EQ(kernel.global().default_tag(), 0u);
  EXPECT_EQ(kernel.shard(0).default_tag(), 1u);
  EXPECT_EQ(kernel.shard(2).default_tag(), 3u);
  EXPECT_FALSE(kernel.any_work_pending());
  kernel.shard(1).schedule(sim::ms(1.0), [] {});
  // work_pending() on ANY member sim sees the shard's queue via the kernel.
  EXPECT_TRUE(kernel.global().work_pending());
  EXPECT_TRUE(kernel.shard(0).work_pending());
}

/// Runs the same three-source event graph on a serial simulator (with
/// TagScope stamping) and on a sharded kernel, recording (source, step)
/// execution order; the orders must match exactly.
std::vector<std::string> record_reference_order() {
  sim::Simulator sim;
  std::vector<std::string> order;
  auto emit = [&](const char* who, int step) {
    order.push_back(std::string(who) + ":" + std::to_string(step));
  };
  // Tag 1 and 2 chains interleave at equal times; tag 0 interacts at 10ms.
  {
    sim::TagScope scope(sim, 1);
    for (int i = 0; i < 4; ++i) {
      sim.schedule(sim::ms(1.0) * (i + 1), [&emit, i] { emit("a", i); });
    }
  }
  {
    sim::TagScope scope(sim, 2);
    for (int i = 0; i < 4; ++i) {
      // Same timestamps as tag 1: canonical order must break the tie by tag.
      sim.schedule(sim::ms(1.0) * (i + 1), [&emit, i] { emit("b", i); });
    }
  }
  sim.schedule(sim::ms(10.0), [&emit] { emit("g", 0); });
  sim.run();
  return order;
}

std::vector<std::string> project(const std::vector<std::string>& order,
                                 char who) {
  std::vector<std::string> out;
  for (const std::string& s : order) {
    if (s[0] == who) out.push_back(s);
  }
  return out;
}

// Inside a parallel window events on different shards are causally
// independent, so their cross-shard interleaving is unobservable; the
// guarantee is that each shard's own execution order equals the serial
// run's per-tag projection. Each shard records into its own vector
// (thread-confined), so this is also race-free at every worker count.
TEST(ShardedKernel, PerTagExecutionOrderMatchesSerialProjection) {
  std::vector<std::string> reference = record_reference_order();
  for (int workers : {1, 2, 4, 8}) {
    sim::ShardedOptions options;
    options.shards = 2;
    options.workers = workers;
    options.lookahead = sim::ms(100.0);
    sim::ShardedSimulator kernel(options);
    std::vector<std::string> order_a;
    std::vector<std::string> order_b;
    std::vector<std::string> order_g;
    for (int i = 0; i < 4; ++i) {
      kernel.shard(0).schedule(sim::ms(1.0) * (i + 1), [&order_a, i] {
        order_a.push_back("a:" + std::to_string(i));
      });
      kernel.shard(1).schedule(sim::ms(1.0) * (i + 1), [&order_b, i] {
        order_b.push_back("b:" + std::to_string(i));
      });
    }
    kernel.global().schedule(sim::ms(10.0), [&order_g] {
      order_g.push_back("g:0");
    });
    kernel.run();
    EXPECT_EQ(order_a, project(reference, 'a')) << "workers=" << workers;
    EXPECT_EQ(order_b, project(reference, 'b')) << "workers=" << workers;
    EXPECT_EQ(order_g, project(reference, 'g')) << "workers=" << workers;
  }
}

// At a barrier every queue head at time T executes on the calling thread in
// canonical (time, tag, seq) order — the cross-shard interleaving IS
// observable there and must match the serial oracle exactly. Sync events
// force every timestamp to be a barrier.
TEST(ShardedKernel, BarrierPhaseRunsCanonicalOrderAcrossShards) {
  auto record = [](auto&& schedule_on) {
    std::vector<std::string> order;
    auto emit = [&order](const char* who, int step) {
      order.push_back(std::string(who) + ":" + std::to_string(step));
    };
    schedule_on(emit);
    return order;
  };
  std::vector<std::string> reference = record([](auto& emit) {
    sim::Simulator sim;
    for (int i = 0; i < 4; ++i) {
      sim::TagScope scope_b(sim, 2);  // scheduled b first: seq must not
      sim.schedule(sim::ms(1.0) * (i + 1), [&emit, i] { emit("b", i); });
      sim::TagScope scope_a(sim, 1);  // matter across tags, only within
      sim.schedule(sim::ms(1.0) * (i + 1), [&emit, i] { emit("a", i); });
    }
    sim.run();
  });
  std::vector<std::string> expected;
  for (int i = 0; i < 4; ++i) {
    expected.push_back("a:" + std::to_string(i));
    expected.push_back("b:" + std::to_string(i));
  }
  EXPECT_EQ(reference, expected);  // tag 1 before tag 2 at equal times

  for (int workers : {1, 4}) {
    std::vector<std::string> sharded = record([workers](auto& emit) {
      sim::ShardedOptions options;
      options.shards = 2;
      options.workers = workers;
      options.lookahead = sim::ms(100.0);
      sim::ShardedSimulator kernel(options);
      for (int i = 0; i < 4; ++i) {
        kernel.shard(1).schedule_sync(sim::ms(1.0) * (i + 1),
                                      [&emit, i] { emit("b", i); });
        kernel.shard(0).schedule_sync(sim::ms(1.0) * (i + 1),
                                      [&emit, i] { emit("a", i); });
      }
      kernel.run();
    });
    EXPECT_EQ(sharded, reference) << "workers=" << workers;
  }
}

TEST(ShardedKernel, ParallelWindowsAndBarriersBothOccur)
{
  sim::ShardedOptions options;
  options.shards = 2;
  options.workers = 2;
  options.lookahead = sim::ms(5.0);
  sim::ShardedSimulator kernel(options);
  int shard_events = 0;
  for (int i = 0; i < 10; ++i) {
    kernel.shard(0).schedule(sim::us(100.0) * (i + 1),
                             [&shard_events] { ++shard_events; });
    kernel.shard(1).schedule(sim::us(150.0) * (i + 1),
                             [&shard_events] { ++shard_events; });
  }
  bool coordinator_ran = false;
  kernel.global().schedule(sim::ms(1.0),
                           [&coordinator_ran] { coordinator_ran = true; });
  std::uint64_t n = kernel.run();
  EXPECT_EQ(n, 21u);
  EXPECT_EQ(shard_events, 20);
  EXPECT_TRUE(coordinator_ran);
  EXPECT_GT(kernel.parallel_windows(), 0u);
  EXPECT_GT(kernel.barriers(), 0u);
  EXPECT_EQ(kernel.events_executed(), 21u);
  EXPECT_FALSE(kernel.any_work_pending());
}

TEST(ShardedKernel, BoundedRunAdvancesAllClocksToTheBound) {
  sim::ShardedOptions options;
  options.shards = 2;
  sim::ShardedSimulator kernel(options);
  kernel.shard(0).schedule(sim::ms(1.0), [] {});
  kernel.shard(1).schedule(sim::ms(30.0), [] {});  // past the bound
  kernel.run(sim::ms(20.0));
  EXPECT_EQ(kernel.now(), sim::ms(20.0));
  EXPECT_EQ(kernel.global().now(), sim::ms(20.0));
  EXPECT_EQ(kernel.shard(0).now(), sim::ms(20.0));
  EXPECT_EQ(kernel.shard(1).now(), sim::ms(20.0));
  EXPECT_TRUE(kernel.any_work_pending());  // the 30ms event is still due
  kernel.run();
  EXPECT_FALSE(kernel.any_work_pending());
}

TEST(ShardedKernel, SyncEventsDeferToBarriers) {
  // A shard-local chain dense enough to fill windows, plus sync events:
  // sync events must never execute inside a window (they see only barrier
  // timestamps, where every clock agrees).
  sim::ShardedOptions options;
  options.shards = 2;
  options.workers = 2;
  options.lookahead = sim::ms(2.0);
  sim::ShardedSimulator kernel(options);
  std::vector<sim::SimTime> sync_times;
  for (int i = 0; i < 20; ++i) {
    kernel.shard(0).schedule(sim::us(50.0) * (i + 1), [] {});
  }
  sim::Simulator& s1 = kernel.shard(1);
  s1.schedule_sync(sim::ms(3.0), [&] {
    sync_times.push_back(s1.now());
    // At a barrier every clock has been synced to the sync event's time.
    EXPECT_EQ(kernel.global().now(), s1.now());
    EXPECT_EQ(kernel.shard(0).now(), s1.now());
  });
  kernel.run();
  ASSERT_EQ(sync_times.size(), 1u);
  EXPECT_EQ(sync_times[0], sim::ms(3.0));
}

TEST(ShardedKernel, LookaheadViolationThrowsUnderEveryWorkerCount) {
  for (int workers : {1, 2}) {
    sim::ShardedOptions options;
    options.shards = 1;
    options.workers = workers;
    options.lookahead = sim::ms(10.0);
    sim::ShardedSimulator kernel(options);
    sim::Simulator& shard = kernel.shard(0);
    // The window [1ms, 11ms) opens; the event schedules a sync below the
    // horizon — a conservative-window violation (the configured lookahead
    // overstated the true minimum sync delay).
    shard.schedule(sim::ms(1.0), [&shard] {
      shard.schedule_sync(sim::ms(1.0), [] {});
    });
    EXPECT_THROW(kernel.run(), std::logic_error) << "workers=" << workers;
  }
}

TEST(ShardedKernel, MailboxMergesPostsInSenderOrder) {
  auto run = [](int workers) {
    sim::ShardedOptions options;
    options.shards = 3;
    options.workers = workers;
    options.lookahead = sim::ms(1.0);
    sim::ShardedSimulator kernel(options);
    std::vector<int> received;
    // Shards 1 and 2 each post to shard 0 from inside a window, with
    // deliveries landing at the same timestamp; the merge must order them
    // (deliver time, sender tag, send seq) regardless of worker count.
    for (int sender : {1, 2}) {
      sim::Simulator& s = kernel.shard(sender);
      s.schedule(sim::ms(0.5), [&kernel, &s, &received, sender] {
        for (int k = 0; k < 3; ++k) {
          kernel.post(s, 0, sim::ms(2.0), [&received, sender, k] {
            received.push_back(sender * 10 + k);
          });
        }
      });
    }
    kernel.run();
    return received;
  };
  std::vector<int> expected{10, 11, 12, 20, 21, 22};
  for (int workers : {1, 2, 4}) {
    EXPECT_EQ(run(workers), expected) << "workers=" << workers;
  }
}

TEST(ShardedKernel, MailboxPostBelowLookaheadThrowsInsideWindow) {
  sim::ShardedOptions options;
  options.shards = 2;
  options.lookahead = sim::ms(5.0);
  sim::ShardedSimulator kernel(options);
  sim::Simulator& s = kernel.shard(0);
  s.schedule(sim::ms(1.0), [&kernel, &s] {
    kernel.post(s, 1, sim::ms(1.0), [] {});  // below the 5ms lookahead
  });
  EXPECT_THROW(kernel.run(), std::logic_error);
}

TEST(ShardedKernel, CoordinatorPostsDeliverImmediately) {
  sim::ShardedOptions options;
  options.shards = 1;
  sim::ShardedSimulator kernel(options);
  bool delivered = false;
  // From serial (coordinator) context even a zero-delay post is legal.
  kernel.post(kernel.global(), 0, 0, [&delivered] { delivered = true; });
  kernel.run();
  EXPECT_TRUE(delivered);
}

// ------------------------------------------------------ cluster differential

enum class Scenario { kFaultFree, kFaulted, kCheckpointed };

// Frozen seed-2025 golden values (see ShardedGolden below). Captured from
// the serial reference kernel; both kernels must keep reproducing them.
constexpr std::uint64_t kGoldenEvents = 6485;
constexpr sim::SimTime kGoldenFirstCompleted = 4098471994;
constexpr sim::SimTime kGoldenLastCompleted = 12807039199;
constexpr double kGoldenMeanResponse = 6184.2995846799995;

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kFaultFree: return "fault-free";
    case Scenario::kFaulted: return "faulted";
    case Scenario::kCheckpointed: return "checkpointed";
  }
  return "?";
}

cluster::ClusterOptions scenario_options(Scenario scenario,
                                         std::uint64_t seed) {
  cluster::ClusterOptions options;
  if (scenario == Scenario::kFaultFree) return options;
  // Crash + link flap + SEU: a scripted backbone (so every seed exercises
  // all recovery paths) plus low-rate hazards seeded per run.
  options.faults.seed = 404 + seed;
  options.faults.timeline.push_back(
      {sim::seconds(2.0), faults::FaultKind::kBoardCrash, 0, -1});
  options.faults.timeline.push_back(
      {sim::seconds(2.5), faults::FaultKind::kLinkDown, -1, -1});
  options.faults.timeline.push_back(
      {sim::seconds(1.0), faults::FaultKind::kSlotSeu, 1, -1});
  options.faults.hazards.slot_seu_per_s = 0.05;
  options.faults.horizon = sim::seconds(30.0);
  if (scenario == Scenario::kCheckpointed) {
    options.checkpoint.enabled = true;
    options.checkpoint.interval = sim::ms(250.0);
  }
  return options;
}

struct ClusterOutput {
  metrics::ClusterRunResult result;
  std::string prometheus;  ///< final metric exposition (telemetry runs)
  std::string jsonl;       ///< sampler time series (telemetry runs)
  std::string csv;         ///< fig-style rows derived from the result
};

/// Fig-style CSV: the rows the bench/fig tooling derives from a cluster
/// run. Any reordering or value drift between kernels shows up here as a
/// plain string mismatch.
std::string fig_csv(const metrics::ClusterRunResult& r) {
  std::ostringstream out;
  out << "app,spec,arrival_ns,completed_ns,response_ms\n";
  for (const runtime::CompletedApp& c : r.apps) {
    out << c.app_id << ',' << c.name << ',' << c.arrival << ','
        << c.completed << ',' << c.response_ms() << '\n';
  }
  out << "switch,to,time_ns,dswitch,apps,bytes,overhead_ns\n";
  for (const cluster::SwitchEvent& s : r.switches) {
    out << "switch," << static_cast<int>(s.to) << ',' << s.time << ','
        << s.dswitch << ',' << s.apps_migrated << ',' << s.bytes << ','
        << s.overhead << '\n';
  }
  for (const core::DSwitchSample& d : r.dswitch_trace) {
    out << "dswitch," << d.time << ',' << d.value << ',' << d.blocked << ','
        << d.prs << ',' << d.apps << ',' << d.batch << '\n';
  }
  return out.str();
}

ClusterOutput run_cluster_once(std::uint64_t seed, Scenario scenario,
                               bool telemetry, int kernel_workers) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 25;
  util::Rng rng(seed);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options = scenario_options(scenario, seed);
  options.kernel_workers = kernel_workers;

  ClusterOutput out;
  if (telemetry) {
    obs::Telemetry t;
    out.result = metrics::run_cluster(suite, sequence, options,
                                      sim::seconds(36000.0), &t);
    out.prometheus = obs::prometheus_text(t.registry());
    out.jsonl = obs::timeseries_jsonl(t.sampler(), t.registry());
  } else {
    out.result = metrics::run_cluster(suite, sequence, options);
  }
  out.csv = fig_csv(out.result);
  return out;
}

void expect_identical(const ClusterOutput& serial, const ClusterOutput& sharded,
                      const std::string& label) {
  const metrics::ClusterRunResult& a = serial.result;
  const metrics::ClusterRunResult& b = sharded.result;
  EXPECT_EQ(a.submitted, b.submitted) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.events, b.events) << label;
  ASSERT_EQ(a.apps.size(), b.apps.size()) << label;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].app_id, b.apps[i].app_id) << label << " app " << i;
    EXPECT_EQ(a.apps[i].spec_index, b.apps[i].spec_index)
        << label << " app " << i;
    EXPECT_EQ(a.apps[i].name, b.apps[i].name) << label << " app " << i;
    EXPECT_EQ(a.apps[i].arrival, b.apps[i].arrival) << label << " app " << i;
    EXPECT_EQ(a.apps[i].completed, b.apps[i].completed)
        << label << " app " << i;
  }
  ASSERT_EQ(a.response_ms.size(), b.response_ms.size()) << label;
  for (std::size_t i = 0; i < a.response_ms.size(); ++i) {
    EXPECT_EQ(a.response_ms[i], b.response_ms[i]) << label << " resp " << i;
  }
  EXPECT_EQ(a.response.count, b.response.count) << label;
  EXPECT_EQ(a.response.mean, b.response.mean) << label;
  EXPECT_EQ(a.response.p50, b.response.p50) << label;
  EXPECT_EQ(a.response.p95, b.response.p95) << label;
  EXPECT_EQ(a.response.p99, b.response.p99) << label;
  EXPECT_EQ(a.response.min, b.response.min) << label;
  EXPECT_EQ(a.response.max, b.response.max) << label;
  ASSERT_EQ(a.dswitch_trace.size(), b.dswitch_trace.size()) << label;
  for (std::size_t i = 0; i < a.dswitch_trace.size(); ++i) {
    EXPECT_EQ(a.dswitch_trace[i].time, b.dswitch_trace[i].time) << label;
    EXPECT_EQ(a.dswitch_trace[i].value, b.dswitch_trace[i].value) << label;
    EXPECT_EQ(a.dswitch_trace[i].blocked, b.dswitch_trace[i].blocked)
        << label;
    EXPECT_EQ(a.dswitch_trace[i].prs, b.dswitch_trace[i].prs) << label;
    EXPECT_EQ(a.dswitch_trace[i].apps, b.dswitch_trace[i].apps) << label;
    EXPECT_EQ(a.dswitch_trace[i].batch, b.dswitch_trace[i].batch) << label;
  }
  ASSERT_EQ(a.switches.size(), b.switches.size()) << label;
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].time, b.switches[i].time) << label;
    EXPECT_EQ(a.switches[i].to, b.switches[i].to) << label;
    EXPECT_EQ(a.switches[i].dswitch, b.switches[i].dswitch) << label;
    EXPECT_EQ(a.switches[i].apps_migrated, b.switches[i].apps_migrated)
        << label;
    EXPECT_EQ(a.switches[i].bytes, b.switches[i].bytes) << label;
    EXPECT_EQ(a.switches[i].overhead, b.switches[i].overhead) << label;
  }
  EXPECT_EQ(a.recovery.boards_crashed, b.recovery.boards_crashed) << label;
  EXPECT_EQ(a.recovery.boards_rebooted, b.recovery.boards_rebooted) << label;
  EXPECT_EQ(a.recovery.link_flaps, b.recovery.link_flaps) << label;
  EXPECT_EQ(a.recovery.slot_seus, b.recovery.slot_seus) << label;
  EXPECT_EQ(a.recovery.apps_evacuated, b.recovery.apps_evacuated) << label;
  EXPECT_EQ(a.recovery.apps_checkpoint_restored,
            b.recovery.apps_checkpoint_restored)
      << label;
  EXPECT_EQ(a.recovery.apps_restarted, b.recovery.apps_restarted) << label;
  EXPECT_EQ(a.recovery.apps_lost, b.recovery.apps_lost) << label;
  EXPECT_EQ(a.recovery.apps_shed, b.recovery.apps_shed) << label;
  EXPECT_EQ(a.recovery.readmissions, b.recovery.readmissions) << label;
  EXPECT_EQ(a.recovery.mttr_total, b.recovery.mttr_total) << label;
  EXPECT_EQ(a.recovery.mttr_count, b.recovery.mttr_count) << label;
  EXPECT_EQ(a.availability, b.availability) << label;
  EXPECT_EQ(serial.csv, sharded.csv) << label;
  EXPECT_EQ(serial.prometheus, sharded.prometheus) << label;
  EXPECT_EQ(serial.jsonl, sharded.jsonl) << label;
}

struct DifferentialCase {
  std::uint64_t seed;
  Scenario scenario;
  bool telemetry;
};

std::string case_label(const DifferentialCase& c) {
  std::ostringstream out;
  out << "seed=" << c.seed << " scenario=" << scenario_name(c.scenario)
      << " telemetry=" << (c.telemetry ? "on" : "off");
  return out.str();
}

class ShardedDifferential : public ::testing::TestWithParam<DifferentialCase> {
};

TEST_P(ShardedDifferential, BitIdenticalToSerialAtEveryWorkerCount) {
  const DifferentialCase& c = GetParam();
  ClusterOutput serial = run_cluster_once(c.seed, c.scenario, c.telemetry, 0);
  EXPECT_GT(serial.result.completed, 0) << case_label(c);
  EXPECT_GT(serial.result.events, 0u) << case_label(c);
  for (int workers : {1, 2, 4, 8}) {
    ClusterOutput sharded =
        run_cluster_once(c.seed, c.scenario, c.telemetry, workers);
    expect_identical(serial, sharded,
                     case_label(c) + " workers=" + std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ShardedDifferential,
    ::testing::Values(
        DifferentialCase{1, Scenario::kFaultFree, false},
        DifferentialCase{2, Scenario::kFaultFree, false},
        DifferentialCase{3, Scenario::kFaultFree, true},
        DifferentialCase{1, Scenario::kFaulted, false},
        DifferentialCase{2, Scenario::kFaulted, true},
        DifferentialCase{3, Scenario::kFaulted, false},
        DifferentialCase{1, Scenario::kCheckpointed, true},
        DifferentialCase{2, Scenario::kCheckpointed, false},
        DifferentialCase{3, Scenario::kCheckpointed, false}));

TEST(ShardedDifferentialScale, FourBoardsPerConfigMatchSerial) {
  // Wider cluster: 8 boards -> 8 shards, switching on, telemetry on.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 40;
  util::Rng rng(7);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  auto run = [&](int kernel_workers) {
    cluster::ClusterOptions options;
    options.boards_per_config = 4;
    options.kernel_workers = kernel_workers;
    obs::Telemetry t;
    auto result = metrics::run_cluster(suite, sequence, options,
                                       sim::seconds(36000.0), &t);
    return std::make_pair(result, obs::prometheus_text(t.registry()));
  };
  auto [serial, serial_prom] = run(0);
  auto [sharded, sharded_prom] = run(4);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.events, sharded.events);
  ASSERT_EQ(serial.response_ms.size(), sharded.response_ms.size());
  for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
    EXPECT_EQ(serial.response_ms[i], sharded.response_ms[i]) << i;
  }
  EXPECT_EQ(serial_prom, sharded_prom);
}

// Single-board runs take the kernel through RunOptions::kernel_workers:
// the board is the lone shard, arrivals and the fault plane drive it from
// the coordinator. Every RunResult field must survive the kernel swap.
TEST(ShardedDifferentialSingleBoard, RunSingleBoardMatchesSerial) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 20;
  util::Rng rng(11);
  workload::Sequence sequence = workload::generate_sequence(config, rng);

  for (metrics::SystemKind kind :
       {metrics::SystemKind::kVersaBigLittle, metrics::SystemKind::kNimblock}) {
    metrics::RunOptions options;
    options.faults.seed = 99;
    options.faults.timeline.push_back(
        {sim::seconds(1.5), faults::FaultKind::kBoardCrash, 0, -1});
    options.faults.hazards.slot_seu_per_s = 0.05;
    options.faults.horizon = sim::seconds(20.0);
    options.checkpoint.enabled = true;
    options.checkpoint.interval = sim::ms(100.0);

    options.kernel_workers = 0;
    metrics::RunResult serial =
        metrics::run_single_board(kind, suite, sequence, options);
    EXPECT_GT(serial.completed, 0);
    for (int workers : {1, 4}) {
      options.kernel_workers = workers;
      metrics::RunResult sharded =
          metrics::run_single_board(kind, suite, sequence, options);
      std::string label = std::string(serial.system) +
                          " workers=" + std::to_string(workers);
      EXPECT_EQ(serial.completed, sharded.completed) << label;
      EXPECT_EQ(serial.makespan, sharded.makespan) << label;
      ASSERT_EQ(serial.response_ms.size(), sharded.response_ms.size())
          << label;
      for (std::size_t i = 0; i < serial.response_ms.size(); ++i) {
        EXPECT_EQ(serial.response_ms[i], sharded.response_ms[i])
            << label << " resp " << i;
      }
      for (std::size_t i = 0; i < serial.apps.size(); ++i) {
        EXPECT_EQ(serial.apps[i].app_id, sharded.apps[i].app_id) << label;
        EXPECT_EQ(serial.apps[i].completed, sharded.apps[i].completed)
            << label;
      }
      EXPECT_EQ(serial.counters.pr_requests, sharded.counters.pr_requests)
          << label;
      EXPECT_EQ(serial.counters.items_executed,
                sharded.counters.items_executed)
          << label;
      EXPECT_EQ(serial.counters.preemptions, sharded.counters.preemptions)
          << label;
      EXPECT_EQ(serial.counters.passes, sharded.counters.passes) << label;
      EXPECT_EQ(serial.counters.ckpt_snapshots,
                sharded.counters.ckpt_snapshots)
          << label;
      EXPECT_EQ(serial.counters.ckpt_bytes, sharded.counters.ckpt_bytes)
          << label;
      EXPECT_EQ(serial.utilization.lut_used, sharded.utilization.lut_used)
          << label;
      EXPECT_EQ(serial.recovery.boards_crashed,
                sharded.recovery.boards_crashed)
          << label;
      EXPECT_EQ(serial.recovery.apps_checkpoint_restored,
                sharded.recovery.apps_checkpoint_restored)
          << label;
      EXPECT_EQ(serial.recovery.readmissions, sharded.recovery.readmissions)
          << label;
      EXPECT_EQ(serial.availability, sharded.availability) << label;
    }
  }
}

// ------------------------------------------------------- frozen goldens

// Seed-2025 golden pins for the canonical order (captured from the serial
// kernel when the (time, tag, seq) order was introduced). These freeze the
// *reference* side of the differential: if a kernel change reorders events,
// this fails even though serial and sharded would still agree with each
// other.
TEST(ShardedGolden, Seed2025FaultFreeRunIsFrozen) {
  ClusterOutput out = run_cluster_once(2025, Scenario::kFaultFree, false, 0);
  std::ostringstream capture;
  capture.precision(17);
  capture << "events=" << out.result.events
          << " first=" << out.result.apps.front().completed
          << " last=" << out.result.apps.back().completed
          << " mean=" << out.result.response.mean;
  SCOPED_TRACE(capture.str());
  EXPECT_EQ(out.result.submitted, 25);
  EXPECT_EQ(out.result.completed, 25);
  // Golden values below are frozen; update them ONLY for an intentional,
  // documented change to the canonical event order.
  EXPECT_EQ(out.result.events, kGoldenEvents);
  EXPECT_EQ(out.result.apps.front().completed, kGoldenFirstCompleted);
  EXPECT_EQ(out.result.apps.back().completed, kGoldenLastCompleted);
  EXPECT_EQ(out.result.response.mean, kGoldenMeanResponse);

  ClusterOutput sharded = run_cluster_once(2025, Scenario::kFaultFree, false, 4);
  EXPECT_EQ(sharded.result.events, kGoldenEvents);
  EXPECT_EQ(sharded.result.apps.back().completed, kGoldenLastCompleted);
  EXPECT_EQ(sharded.result.response.mean, kGoldenMeanResponse);
}

}  // namespace
}  // namespace vs
