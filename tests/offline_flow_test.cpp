// Tests for the offline partitioning flow: feasibility, minimality,
// balance, manifest generation, and end-to-end execution of a partitioned
// application.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "apps/offline_flow.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "runtime/board_runtime.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace vs::apps {
namespace {

KernelOp op(const std::string& name, double lut_frac, double latency_ms,
            const fpga::BoardParams& params) {
  KernelOp o;
  o.name = name;
  o.raw_demand = {
      static_cast<std::int64_t>(lut_frac *
                                static_cast<double>(params.little_slot.luts)),
      static_cast<std::int64_t>(lut_frac *
                                static_cast<double>(params.little_slot.ffs)),
      static_cast<std::int64_t>(lut_frac * 40),
      static_cast<std::int64_t>(lut_frac * 100),
  };
  o.item_latency = sim::ms(latency_ms);
  o.bytes_in = 100'000;
  o.bytes_out = 100'000;
  return o;
}

TEST(OfflineFlow, SingleOpSingleTask) {
  OfflineFlowConfig config;
  KernelGraph g{"one", {op("k0", 0.5, 3.0, config.board)}};
  FlowReport r = partition(g, config);
  EXPECT_EQ(r.task_count(), 1);
  EXPECT_EQ(r.ops_per_task, (std::vector<int>{1}));
  EXPECT_EQ(r.app.tasks[0].item_latency, sim::ms(3.0));
  EXPECT_FALSE(r.bundleable);  // one task has nothing to bundle
}

TEST(OfflineFlow, FusesSmallOps) {
  OfflineFlowConfig config;
  KernelGraph g{"small", {}};
  for (int i = 0; i < 6; ++i) {
    g.ops.push_back(op("k" + std::to_string(i), 0.12, 1.0, config.board));
  }
  FlowReport r = partition(g, config);
  // Six 12%-ops fit in one Little slot (72% raw).
  EXPECT_EQ(r.task_count(), 1);
  EXPECT_EQ(r.ops_per_task, (std::vector<int>{6}));
  // Fusion speedup applies to merged ops.
  EXPECT_LT(r.app.tasks[0].item_latency, sim::ms(6.0));
}

TEST(OfflineFlow, SplitsWhenOverCapacity) {
  OfflineFlowConfig config;
  KernelGraph g{"split", {}};
  for (int i = 0; i < 4; ++i) {
    g.ops.push_back(op("k" + std::to_string(i), 0.4, 2.0, config.board));
  }
  FlowReport r = partition(g, config);
  // 0.4 raw each: two fit (0.8), three do not. Minimum tasks = 2.
  EXPECT_EQ(r.task_count(), 2);
  EXPECT_EQ(r.ops_per_task, (std::vector<int>{2, 2}));
  for (double fill : r.synth_fill) {
    EXPECT_LE(fill, 1.0);
    EXPECT_GT(fill, 0.5);
  }
}

TEST(OfflineFlow, MinimisesBottleneckAmongMinimalPartitions) {
  OfflineFlowConfig config;
  // Latencies 8,1,1,8 with capacity for at most 2 fused ops: partitions
  // {8,1}{1,8} (bottleneck ~7.65) beats {8}{1,1}{8} (3 tasks) and the
  // unbalanced 2-task alternatives.
  KernelGraph g{"balance",
                {op("a", 0.45, 8.0, config.board),
                 op("b", 0.45, 1.0, config.board),
                 op("c", 0.45, 1.0, config.board),
                 op("d", 0.45, 8.0, config.board)}};
  FlowReport r = partition(g, config);
  EXPECT_EQ(r.task_count(), 2);
  EXPECT_EQ(r.ops_per_task, (std::vector<int>{2, 2}));
  sim::SimDuration t0 = r.app.tasks[0].item_latency;
  sim::SimDuration t1 = r.app.tasks[1].item_latency;
  EXPECT_EQ(t0, t1);  // symmetric split
}

TEST(OfflineFlow, ThrowsOnOversizedOp) {
  OfflineFlowConfig config;
  KernelGraph g{"huge", {op("k0", 1.5, 1.0, config.board)}};
  EXPECT_THROW(partition(g, config), std::invalid_argument);
}

TEST(OfflineFlow, ThrowsOnEmptyGraph) {
  OfflineFlowConfig config;
  KernelGraph g{"empty", {}};
  EXPECT_THROW(partition(g, config), std::invalid_argument);
}

TEST(OfflineFlow, RespectsMaxFill) {
  OfflineFlowConfig tight;
  tight.max_fill = 0.5;
  KernelGraph g{"tight",
                {op("a", 0.3, 1.0, tight.board), op("b", 0.3, 1.0, tight.board)}};
  FlowReport r = partition(g, tight);
  EXPECT_EQ(r.task_count(), 2);  // 0.6 raw would fit a slot but not 50%
}

TEST(OfflineFlow, BundleableWhenTasksSmallEnough) {
  OfflineFlowConfig config;
  KernelGraph g{"bundle", {}};
  for (int i = 0; i < 3; ++i) {
    g.ops.push_back(op("k" + std::to_string(i), 0.55, 2.0, config.board));
  }
  FlowReport r = partition(g, config);
  EXPECT_EQ(r.task_count(), 3);
  EXPECT_TRUE(r.bundleable);
}

TEST(OfflineFlow, ManifestCoversAllVariants) {
  OfflineFlowConfig config;
  fpga::BoardParams params;
  AppSpec lenet = make_app(Benchmark::kLeNet, params);
  BitstreamManifest m = make_manifest(lenet, config);
  // 6 Little task bitstreams + 2 bundles x {parallel, serial} = 10 entries.
  ASSERT_EQ(m.entries.size(), 10u);
  int little = 0, parallel = 0, serial = 0;
  std::int64_t bytes = 0;
  for (const BitstreamEntry& e : m.entries) {
    bytes += e.bytes;
    if (e.slot_kind == fpga::SlotKind::kLittle) ++little;
    if (e.mode == BundleMode::kParallel) ++parallel;
    if (e.mode == BundleMode::kSerial) ++serial;
  }
  EXPECT_EQ(little, 6);
  EXPECT_EQ(parallel, 2);
  EXPECT_EQ(serial, 2);
  EXPECT_EQ(m.total_bytes, bytes);
  EXPECT_EQ(m.total_bytes, 6 * params.little_bitstream_bytes +
                               4 * params.big_bitstream_bytes);
}

TEST(OfflineFlow, ManifestWithoutBundlesForUnbundleableApp) {
  OfflineFlowConfig config;
  KernelGraph g{"one", {op("k0", 0.5, 3.0, config.board)}};
  FlowReport r = partition(g, config);
  BitstreamManifest m = make_manifest(r.app, config);
  EXPECT_EQ(m.entries.size(), 1u);
  EXPECT_EQ(m.entries[0].slot_kind, fpga::SlotKind::kLittle);
}

TEST(OfflineFlow, PartitionedAppRunsEndToEnd) {
  OfflineFlowConfig config;
  KernelGraph g{"video", {}};
  const double fracs[] = {0.3, 0.2, 0.45, 0.25, 0.3, 0.5, 0.2, 0.35};
  const double lats[] = {2, 1, 4, 1.5, 2, 5, 1, 3};
  for (int i = 0; i < 8; ++i) {
    g.ops.push_back(op("s" + std::to_string(i), fracs[i], lats[i], config.board));
  }
  FlowReport r = partition(g, config);
  ASSERT_GE(r.task_count(), 2);

  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little());
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  rt.submit(r.app, 0, 6, 0);
  sim.run();
  EXPECT_EQ(rt.completed().size(), 1u);
}

}  // namespace
}  // namespace vs::apps
