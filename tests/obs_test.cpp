// Telemetry subsystem tests: registry semantics, histogram math, exporter
// round-trips, sampler determinism, and the pinned guarantee that enabling
// telemetry does not perturb simulation results.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "metrics/experiment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "workload/generator.h"

namespace vs::obs {
namespace {

// ------------------------------------------------------------------ helpers

std::int64_t sum_counters(const MetricsRegistry& registry,
                          const std::string& name) {
  std::int64_t total = 0;
  for (const auto& row : registry.counters()) {
    if (row.name == name) total += row.cell.value();
  }
  return total;
}

double sum_gauges(const MetricsRegistry& registry, const std::string& name) {
  double total = 0;
  for (const auto& row : registry.gauges()) {
    if (row.name == name) total += row.cell.value();
  }
  return total;
}

/// Minimal parser for the flat JSON objects the JSONL exporter emits:
/// `{"key":value,...}` with numeric values and backslash-escaped keys.
/// Returns key/value pairs in order; fails the test on malformed input.
std::vector<std::pair<std::string, double>> parse_flat_json(
    const std::string& line) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t i = 0;
  auto fail = [&](const char* why) {
    ADD_FAILURE() << why << " at offset " << i << " in: " << line;
  };
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    fail("not an object");
    return out;
  }
  i = 1;
  while (i < line.size() - 1) {
    if (line[i] != '"') {
      fail("expected key quote");
      return out;
    }
    ++i;
    std::string key;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        key += line[i + 1];
        i += 2;
      } else {
        key += line[i++];
      }
    }
    ++i;  // closing quote
    if (i >= line.size() || line[i] != ':') {
      fail("expected colon");
      return out;
    }
    ++i;
    std::size_t end = line.find_first_of(",}", i);
    char* parsed_end = nullptr;
    std::string num = line.substr(i, end - i);
    double v = std::strtod(num.c_str(), &parsed_end);
    if (parsed_end == num.c_str() || *parsed_end != '\0') {
      fail("value is not a number");
      return out;
    }
    out.emplace_back(std::move(key), v);
    i = end;
    if (line[i] == ',') ++i;
  }
  return out;
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, RegistrationIsIdempotentWithStableCells) {
  MetricsRegistry registry;
  Counter& a = registry.counter("vs_ops_total", {{"board", "fpga0"}});
  a.add(3);
  Counter& b = registry.counter("vs_ops_total", {{"board", "fpga0"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);
  // Different labels are a different cell.
  Counter& c = registry.counter("vs_ops_total", {{"board", "fpga1"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.counters().size(), 2u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, FindReturnsNullForUnknownInstrument) {
  MetricsRegistry registry;
  registry.gauge("vs_depth", {{"core", "c0"}}).set(4.0);
  EXPECT_NE(registry.find_gauge("vs_depth", {{"core", "c0"}}), nullptr);
  EXPECT_EQ(registry.find_gauge("vs_depth", {{"core", "c1"}}), nullptr);
  EXPECT_EQ(registry.find_counter("vs_depth", {{"core", "c0"}}), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistry, FullNameFollowsPrometheusConventions) {
  EXPECT_EQ(MetricsRegistry::full_name("vs_x_total", {}), "vs_x_total");
  EXPECT_EQ(MetricsRegistry::full_name(
                "vs_x_total", {{"board", "fpga0"}, {"state", "Free"}}),
            "vs_x_total{board=\"fpga0\",state=\"Free\"}");
}

TEST(MetricsHandles, NullHandlesAreNoOps) {
  CounterHandle c;
  GaugeHandle g;
  HistogramHandle h;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  c.add();        // must not crash
  g.set(1.0);
  g.add(2.0);
  h.observe(3.0);
}

TEST(MetricsHandles, BoundHandlesUpdateTheirCell) {
  MetricsRegistry registry;
  CounterHandle c(&registry.counter("vs_n_total"));
  GaugeHandle g(&registry.gauge("vs_g"));
  HistogramHandle h(&registry.histogram("vs_h_ms", {1.0, 10.0}));
  EXPECT_TRUE(static_cast<bool>(c));
  c.add(5);
  g.set(2.0);
  g.add(0.5);
  h.observe(4.0);
  EXPECT_EQ(registry.find_counter("vs_n_total")->value(), 5);
  EXPECT_DOUBLE_EQ(registry.find_gauge("vs_g")->value(), 2.5);
  EXPECT_EQ(registry.find_histogram("vs_h_ms")->count(), 1u);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketsFollowLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.0);  // == bound -> that bucket (le semantics)
  h.observe(2.5);
  h.observe(9.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5 / 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, QuantileInterpolatesAndClampsToMax) {
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Histogram h({10.0, 20.0});
  for (int i = 0; i < 8; ++i) h.observe(5.0);
  h.observe(15.0);
  h.observe(99.0);  // overflow
  // p50 lands inside the first bucket (0..10].
  double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  // p99/p100 land in the overflow bucket and resolve to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
}

TEST(Histogram, DefaultMsBoundsAreAscending) {
  auto bounds = default_ms_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------- exporters

TEST(PrometheusExport, LinesParseAndHistogramSeriesAreConsistent) {
  MetricsRegistry registry;
  registry.counter("vs_ops_total", {{"board", "fpga0"}}).add(7);
  registry.counter("vs_ops_total", {{"board", "fpga1"}}).add(2);
  registry.gauge("vs_depth").set(3.5);
  Histogram& h = registry.histogram("vs_lat_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  std::string text = prometheus_text(registry);
  // Every non-comment line must be `name{labels} value` with a numeric
  // value; `# TYPE` appears exactly once per metric name.
  std::regex sample_re(
      R"(^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9.+eEinf]+$)");
  int type_ops = 0, bucket_lines = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE", 0) == 0) {
      if (line.find(" vs_ops_total ") != std::string::npos) ++type_ops;
      continue;
    }
    EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
    if (line.rfind("vs_lat_ms_bucket", 0) == 0) ++bucket_lines;
  }
  EXPECT_EQ(type_ops, 1);
  EXPECT_EQ(bucket_lines, 3);  // le="1", le="10", le="+Inf"
  EXPECT_NE(text.find("vs_ops_total{board=\"fpga0\"} 7"), std::string::npos);
  EXPECT_NE(text.find("vs_depth 3.5"), std::string::npos);
  // The +Inf bucket is cumulative == _count.
  EXPECT_NE(text.find("vs_lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("vs_lat_ms_count 3"), std::string::npos);
}

TEST(JsonlExport, SnapshotsRoundTripIncludingNarrowEarlyRows) {
  MetricsRegistry registry;
  Sampler sampler(registry, sim::ms(10));
  Gauge& g = registry.gauge("vs_g", {{"board", "fpga0"}});
  g.set(1.5);
  sampler.sample_now(sim::ms(10));  // narrow: one gauge, no counters
  registry.counter("vs_c_total").add(4);
  g.set(2.5);
  sampler.sample_now(sim::ms(20));  // wide: gauge + counter

  std::string jsonl = timeseries_jsonl(sampler, registry);
  std::istringstream in(jsonl);
  std::string line;
  std::vector<std::vector<std::pair<std::string, double>>> rows;
  while (std::getline(in, line)) rows.push_back(parse_flat_json(line));
  ASSERT_EQ(rows.size(), 2u);

  ASSERT_EQ(rows[0].size(), 2u);  // t_ms + the one gauge
  EXPECT_EQ(rows[0][0].first, "t_ms");
  EXPECT_DOUBLE_EQ(rows[0][0].second, 10.0);
  EXPECT_EQ(rows[0][1].first, "vs_g{board=\"fpga0\"}");
  EXPECT_DOUBLE_EQ(rows[0][1].second, 1.5);

  ASSERT_EQ(rows[1].size(), 3u);  // t_ms + gauge + counter
  EXPECT_DOUBLE_EQ(rows[1][0].second, 20.0);
  EXPECT_DOUBLE_EQ(rows[1][1].second, 2.5);
  EXPECT_EQ(rows[1][2].first, "vs_c_total");
  EXPECT_DOUBLE_EQ(rows[1][2].second, 4.0);
}

TEST(RunReportExport, ContainsConfigEchoAndHistogramPercentiles) {
  MetricsRegistry registry;
  registry.counter("vs_ops_total").add(11);
  registry.histogram("vs_lat_ms", {1.0, 10.0}).observe(5.0);
  RunInfo info;
  info.experiment = "unit";
  info.config = {{"seed", "2025"}, {"note", "a\"b\\c"}};

  std::string json = run_report_json(registry, info, nullptr);
  // Structural sanity: balanced braces/brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"experiment\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": \"2025\""), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("vs_ops_total"), std::string::npos);
  for (const char* key : {"\"count\":", "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Dashboard, RendersEverySection) {
  MetricsRegistry registry;
  registry.counter("vs_ops_total", {{"board", "fpga0"}}).add(42);
  registry.gauge("vs_depth").set(2.0);
  Histogram& h = registry.histogram("vs_lat_ms", default_ms_bounds());
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i));
  std::string dash = format_dashboard(registry, "unit test");
  EXPECT_NE(dash.find("unit test"), std::string::npos);
  EXPECT_NE(dash.find("vs_ops_total{board=\"fpga0\"}"), std::string::npos);
  EXPECT_NE(dash.find("42"), std::string::npos);
  EXPECT_NE(dash.find("vs_depth"), std::string::npos);
  EXPECT_NE(dash.find("vs_lat_ms"), std::string::npos);
}

// ------------------------------------------------------------------ sampler

TEST(Sampler, TicksAtFixedCadenceAndLetsTheSimulatorDrain) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("vs_g");
  Sampler sampler(registry, sim::ms(50));
  sim::Simulator sim;
  sim.schedule(sim::ms(10), [&] { g.set(1.0); });
  sim.schedule(sim::ms(220), [&] { g.set(2.0); });
  sampler.start(sim);
  sim.run();
  EXPECT_TRUE(sim.idle());  // the sampler must not keep the queue alive

  // Ticks at 50/100/150/200 while the 220 ms event is pending, then one
  // final tick at 250 that finds the queue idle and does not re-arm.
  ASSERT_EQ(sampler.snapshots().size(), 5u);
  const auto& snaps = sampler.snapshots();
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].time, sim::ms(50) * static_cast<sim::SimTime>(i + 1));
    ASSERT_EQ(snaps[i].gauge_count, 1u);
    ASSERT_EQ(snaps[i].values.size(), 1u);
  }
  EXPECT_DOUBLE_EQ(snaps[0].values[0], 1.0);   // after the 10 ms event
  EXPECT_DOUBLE_EQ(snaps[4].values[0], 2.0);   // after the 220 ms event
}

// --------------------------------------------- determinism + instrumentation

TEST(TelemetryDeterminism, SingleBoardResultsAreBitIdenticalWithMetricsOn) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 15;
  util::Rng rng(2025);
  auto seq = workload::generate_sequence(config, rng);

  metrics::RunResult plain = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq);

  obs::Telemetry telemetry;
  metrics::RunOptions opts;
  opts.telemetry = &telemetry;
  metrics::RunResult instrumented = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, opts);

  ASSERT_EQ(instrumented.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], plain.response_ms[i]) << i;
  }
  EXPECT_EQ(instrumented.makespan, plain.makespan);
  EXPECT_EQ(instrumented.completed, plain.completed);
  EXPECT_EQ(instrumented.counters.items_executed,
            plain.counters.items_executed);
  // And the sampler actually ran.
  EXPECT_GT(telemetry.sampler().snapshots().size(), 0u);
  // Slot-state gauges partition the board's slots: their sum is a whole
  // number of slots at all times, including at end of run.
  double slots = sum_gauges(telemetry.registry(), "vs_slot_state_count");
  EXPECT_GT(slots, 0.0);
  EXPECT_DOUBLE_EQ(slots, std::floor(slots));
}

TEST(TelemetryDeterminism, ClusterResultsAreBitIdenticalWithMetricsOn) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 30;
  util::Rng rng(2025);
  auto seq = workload::generate_sequence(config, rng);

  metrics::ClusterRunResult plain =
      metrics::run_cluster(suite, seq, cluster::ClusterOptions{});

  obs::Telemetry telemetry;
  metrics::ClusterRunResult instrumented = metrics::run_cluster(
      suite, seq, cluster::ClusterOptions{}, sim::seconds(36000.0),
      &telemetry);

  ASSERT_EQ(instrumented.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], plain.response_ms[i]) << i;
  }
  ASSERT_EQ(instrumented.dswitch_trace.size(), plain.dswitch_trace.size());
  for (std::size_t i = 0; i < plain.dswitch_trace.size(); ++i) {
    EXPECT_EQ(instrumented.dswitch_trace[i].time,
              plain.dswitch_trace[i].time);
    EXPECT_EQ(instrumented.dswitch_trace[i].value,
              plain.dswitch_trace[i].value);
  }
  ASSERT_EQ(instrumented.switches.size(), plain.switches.size());
  for (std::size_t i = 0; i < plain.switches.size(); ++i) {
    EXPECT_EQ(instrumented.switches[i].time, plain.switches[i].time);
    EXPECT_EQ(instrumented.switches[i].overhead, plain.switches[i].overhead);
  }
}

TEST(TelemetryDeterminism, FaultyClusterResultsAreBitIdenticalWithMetricsOn) {
  // Same guarantee under an active fault plane: attaching telemetry to a
  // run with crashes, flaps and SEUs must not perturb a single event.
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 25;
  util::Rng rng(2025);
  auto seq = workload::generate_sequence(config, rng);

  cluster::ClusterOptions options;
  options.faults.seed = 77;
  options.faults.hazards.board_crash_per_s = 0.05;
  options.faults.hazards.link_flap_per_s = 0.05;
  options.faults.hazards.slot_seu_per_s = 0.1;
  options.faults.horizon = sim::seconds(60.0);
  options.faults.timeline.push_back(
      {sim::seconds(1.0), faults::FaultKind::kBoardCrash, 0, -1});

  metrics::ClusterRunResult plain = metrics::run_cluster(suite, seq, options);

  obs::Telemetry telemetry;
  metrics::ClusterRunResult instrumented = metrics::run_cluster(
      suite, seq, options, sim::seconds(36000.0), &telemetry);

  ASSERT_GT(plain.recovery.boards_crashed, 0);
  ASSERT_EQ(instrumented.response_ms.size(), plain.response_ms.size());
  for (std::size_t i = 0; i < plain.response_ms.size(); ++i) {
    EXPECT_EQ(instrumented.response_ms[i], plain.response_ms[i]) << i;
  }
  EXPECT_EQ(instrumented.recovery.boards_crashed,
            plain.recovery.boards_crashed);
  EXPECT_EQ(instrumented.recovery.boards_rebooted,
            plain.recovery.boards_rebooted);
  EXPECT_EQ(instrumented.recovery.link_flaps, plain.recovery.link_flaps);
  EXPECT_EQ(instrumented.recovery.slot_seus, plain.recovery.slot_seus);
  EXPECT_EQ(instrumented.recovery.apps_evacuated,
            plain.recovery.apps_evacuated);
  EXPECT_EQ(instrumented.recovery.apps_restarted,
            plain.recovery.apps_restarted);
  EXPECT_EQ(instrumented.recovery.mttr_total, plain.recovery.mttr_total);
  EXPECT_EQ(instrumented.availability, plain.availability);
  // The fault instruments resolved and counted.
  EXPECT_GT(sum_counters(telemetry.registry(), "vs_faults_injected_total"),
            0);
}

TEST(TelemetryInstrumentation, ClusterRunPopulatesAllInstrumentFamilies) {
  // The fig5 stress cell: every instrument family — PCAP, cores, slots,
  // D_switch policy loop, Aurora link — must end the run non-zero
  // (acceptance criterion for the run report).
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 50;
  util::Rng rng(2025);
  auto seq = workload::generate_sequence(config, rng);

  obs::Telemetry telemetry;
  auto result = metrics::run_cluster(suite, seq, cluster::ClusterOptions{},
                                     sim::seconds(36000.0), &telemetry);
  ASSERT_GT(result.completed, 0);
  ASSERT_FALSE(result.switches.empty());  // guarantees Aurora traffic

  const MetricsRegistry& registry = telemetry.registry();
  EXPECT_GT(sum_counters(registry, "vs_pcap_loads_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_pcap_bytes_loaded_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_core_ops_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_runtime_items_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_dswitch_evaluations_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_dswitch_switches_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_aurora_transfers_total"), 0);
  EXPECT_GT(sum_counters(registry, "vs_aurora_bytes_total"), 0);
  bool slot_gauges = false;
  for (const auto& row : registry.gauges()) {
    if (row.name == "vs_slot_state_count") slot_gauges = true;
  }
  EXPECT_TRUE(slot_gauges);

  // The run report surfaces all of them.
  std::string report =
      run_report_json(registry, telemetry.info(), &telemetry.sampler());
  for (const char* name :
       {"vs_pcap_loads_total", "vs_core_ops_total", "vs_slot_state_count",
        "vs_dswitch_evaluations_total", "vs_aurora_transfers_total"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(Telemetry, WriteOutputsThrowsOnUnopenablePath) {
  Telemetry telemetry;
  EXPECT_THROW(telemetry.write_outputs("/nonexistent-dir/metrics"),
               std::runtime_error);
}

TEST(Telemetry, ResolveMetricsOutPrefersFlagThenEnv) {
  const char* argv[] = {"prog", "--metrics-out", "fromflag"};
  util::CliArgs args(3, argv);
  ::setenv("VS_METRICS", "fromenv", 1);
  EXPECT_EQ(resolve_metrics_out(&args), "fromflag");
  util::CliArgs no_flag(1, argv);
  EXPECT_EQ(resolve_metrics_out(&no_flag), "fromenv");
  ::unsetenv("VS_METRICS");
  EXPECT_EQ(resolve_metrics_out(&no_flag), "");
  EXPECT_EQ(resolve_metrics_out(nullptr), "");
}

}  // namespace
}  // namespace vs::obs
