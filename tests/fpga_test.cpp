// Unit tests for the FPGA board substrate: resource vectors, slots, PCAP
// serialisation and CPU suspension, SD-card caching, OCM, DMA and fabric
// configurations.
#include <gtest/gtest.h>

#include "fpga/board.h"
#include "fpga/fabric.h"
#include "fpga/pcap.h"
#include "fpga/resources.h"
#include "fpga/slot.h"
#include "fpga/storage.h"
#include "sim/simulator.h"

namespace vs::fpga {
namespace {

// ---------------------------------------------------------- ResourceVector

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{100, 200, 10, 20};
  ResourceVector b{50, 100, 5, 10};
  EXPECT_EQ(a + b, (ResourceVector{150, 300, 15, 30}));
  EXPECT_EQ(a - b, (ResourceVector{50, 100, 5, 10}));
  a += b;
  EXPECT_EQ(a.luts, 150);
  a -= b;
  EXPECT_EQ(a.luts, 100);
}

TEST(ResourceVector, Fits) {
  ResourceVector cap{100, 200, 10, 20};
  EXPECT_TRUE(cap.fits({100, 200, 10, 20}));
  EXPECT_TRUE(cap.fits({0, 0, 0, 0}));
  EXPECT_FALSE(cap.fits({101, 0, 0, 0}));
  EXPECT_FALSE(cap.fits({0, 0, 11, 0}));
}

TEST(ResourceVector, Scaled) {
  ResourceVector a{100, 200, 10, 20};
  ResourceVector half = a.scaled(0.5);
  EXPECT_EQ(half, (ResourceVector{50, 100, 5, 10}));
}

TEST(ResourceVector, PressureIsBindingConstraint) {
  ResourceVector cap{100, 100, 100, 100};
  ResourceVector demand{50, 90, 10, 0};
  EXPECT_DOUBLE_EQ(demand.pressure_in(cap), 0.9);
  EXPECT_DOUBLE_EQ(ResourceVector{}.pressure_in(cap), 0.0);
  ResourceVector zero_cap{0, 100, 100, 100};
  EXPECT_GT((ResourceVector{1, 0, 0, 0}).pressure_in(zero_cap), 1e6);
}

TEST(ResourceVector, AnyNegative) {
  EXPECT_FALSE((ResourceVector{0, 0, 0, 0}).any_negative());
  EXPECT_TRUE((ResourceVector{-1, 0, 0, 0}).any_negative());
  ResourceVector a{5, 5, 5, 5};
  ResourceVector b{10, 0, 0, 0};
  EXPECT_TRUE((a - b).any_negative());
}

// ---------------------------------------------------------------- SlotKind

TEST(Slot, LifecycleTransitions) {
  Slot s(0, SlotKind::kLittle, {100, 100, 10, 10});
  EXPECT_EQ(s.state(), SlotState::kIdle);
  s.begin_reconfig(/*app=*/3, /*key=*/0xabc);
  EXPECT_EQ(s.state(), SlotState::kReconfiguring);
  EXPECT_EQ(s.occupant_app(), 3);
  EXPECT_EQ(s.configured(), 0xabcu);
  s.finish_reconfig();
  EXPECT_EQ(s.state(), SlotState::kConfigured);
  s.begin_exec();
  EXPECT_EQ(s.state(), SlotState::kExecuting);
  s.finish_exec();
  EXPECT_EQ(s.state(), SlotState::kConfigured);
  s.release();
  EXPECT_EQ(s.state(), SlotState::kIdle);
  EXPECT_EQ(s.occupant_app(), -1);
  EXPECT_EQ(s.configured(), 0u);
}

TEST(Slot, ReconfigDirectlyFromConfigured) {
  Slot s(1, SlotKind::kBig, {200, 200, 20, 20});
  s.begin_reconfig(1, 1);
  s.finish_reconfig();
  // A new PR may replace configured logic without an explicit release.
  s.begin_reconfig(2, 2);
  EXPECT_EQ(s.occupant_app(), 2);
}

TEST(Slot, Names) {
  Slot little(5, SlotKind::kLittle, {});
  Slot big(0, SlotKind::kBig, {});
  EXPECT_EQ(little.name(), "L5");
  EXPECT_EQ(big.name(), "B0");
  EXPECT_STREQ(to_string(SlotKind::kBig), "Big");
  EXPECT_STREQ(to_string(SlotState::kExecuting), "executing");
}

// -------------------------------------------------------------------- Pcap

TEST(Pcap, SerializesLoads) {
  sim::Simulator sim;
  sim::Core core(sim, "ps0");
  Pcap pcap(sim);
  std::vector<std::pair<int, sim::SimTime>> done;
  pcap.request(sim::ms(10), core, [&] { done.emplace_back(1, sim.now()); });
  pcap.request(sim::ms(10), core, [&] { done.emplace_back(2, sim.now()); });
  EXPECT_TRUE(pcap.busy());
  EXPECT_EQ(pcap.backlog(), 1u);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].second, sim::ms(10));
  EXPECT_EQ(done[1].second, sim::ms(20));
  EXPECT_EQ(pcap.stats().loads_completed, 2);
  EXPECT_EQ(pcap.stats().loads_queued_behind_another, 1);
}

TEST(Pcap, OnBlockedFiresOnlyForQueuedRequests) {
  sim::Simulator sim;
  sim::Core core(sim, "ps0");
  Pcap pcap(sim);
  int blocked = 0;
  pcap.request(sim::ms(5), core, [] {}, "first", [&] { ++blocked; });
  pcap.request(sim::ms(5), core, [] {}, "second", [&] { ++blocked; });
  sim.run();
  EXPECT_EQ(blocked, 1);
}

TEST(Pcap, SuspendsIssuingCore) {
  sim::Simulator sim;
  sim::Core core(sim, "ps0");
  Pcap pcap(sim);
  pcap.request(sim::ms(10), core, [] {}, "load");
  // Work submitted to the core after the PR waits for the load to finish.
  sim::SimTime op_done = -1;
  core.submit(sim::us(1), [&] { op_done = sim.now(); });
  sim.run();
  EXPECT_EQ(op_done, sim::ms(10) + sim::us(1));
}

TEST(Pcap, TracksWaitTime) {
  sim::Simulator sim;
  sim::Core core(sim, "ps0");
  Pcap pcap(sim);
  pcap.request(sim::ms(10), core, [] {});
  pcap.request(sim::ms(10), core, [] {});
  sim.run();
  EXPECT_EQ(pcap.stats().total_wait, sim::ms(10));
  EXPECT_EQ(pcap.stats().total_load, sim::ms(20));
}

TEST(Pcap, DifferentCoresStillSerialized) {
  sim::Simulator sim;
  sim::Core c0(sim, "ps0"), c1(sim, "ps1");
  Pcap pcap(sim);
  sim::SimTime first = -1, second = -1;
  pcap.request(sim::ms(10), c0, [&] { first = sim.now(); });
  pcap.request(sim::ms(10), c1, [&] { second = sim.now(); });
  sim.run();
  EXPECT_EQ(first, sim::ms(10));
  EXPECT_EQ(second, sim::ms(20));  // PCAP is one device
}

// ------------------------------------------------------------------ SdCard

TEST(SdCard, CachesAfterFirstFetch) {
  sim::Simulator sim;
  BoardParams params;
  SdCard sd(sim, params);
  sim::SimDuration first = sd.fetch_time(1, 12'000'000);
  EXPECT_GT(first, 0);
  EXPECT_EQ(sd.fetch_time(1, 12'000'000), 0);
  EXPECT_EQ(sd.misses(), 1);
  EXPECT_TRUE(sd.cached(1));
  EXPECT_FALSE(sd.cached(2));
}

TEST(SdCard, PrewarmAvoidsReadTime) {
  sim::Simulator sim;
  BoardParams params;
  SdCard sd(sim, params);
  sd.prewarm(7);
  EXPECT_EQ(sd.fetch_time(7, 12'000'000), 0);
  EXPECT_EQ(sd.misses(), 0);
}

TEST(SdCard, DropCacheForcesRefetch) {
  sim::Simulator sim;
  BoardParams params;
  SdCard sd(sim, params);
  (void)sd.fetch_time(1, 1000);
  sd.drop_cache();
  EXPECT_GT(sd.fetch_time(1, 1000), 0);
  EXPECT_EQ(sd.misses(), 2);
}

TEST(SdCard, ReadTimeScalesWithBytes) {
  sim::Simulator sim;
  BoardParams params;
  SdCard sd(sim, params);
  sim::SimDuration small = sd.fetch_time(1, 1'000'000);
  sim::SimDuration large = sd.fetch_time(2, 10'000'000);
  EXPECT_GT(large, small);
}

// --------------------------------------------------------------------- Ocm

TEST(Ocm, DeliversAfterLatency) {
  sim::Simulator sim;
  BoardParams params;
  Ocm ocm(sim, params);
  sim::SimTime delivered = -1;
  ocm.post([&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, params.ocm_message_latency);
  EXPECT_EQ(ocm.messages(), 1);
}

// --------------------------------------------------------------------- Dma

TEST(Dma, TransferTimeAndAccounting) {
  sim::Simulator sim;
  BoardParams params;
  Dma dma(sim, params);
  sim::SimTime done = -1;
  dma.transfer(4'000'000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, params.dma_time(4'000'000));
  EXPECT_EQ(dma.transfers(), 1);
  EXPECT_EQ(dma.bytes_moved(), 4'000'000);
}

// ------------------------------------------------------------------ Fabric

TEST(Fabric, BigLittleLayout) {
  FabricConfig config = FabricConfig::big_little();
  EXPECT_EQ(config.big_slots, 2);
  EXPECT_EQ(config.little_slots, 4);
  EXPECT_EQ(config.total_slots(), 6);
  EXPECT_EQ(config.name(), "Big.Little");
}

TEST(Fabric, OnlyLittleLayout) {
  FabricConfig config = FabricConfig::only_little();
  EXPECT_EQ(config.big_slots, 0);
  EXPECT_EQ(config.little_slots, 8);
  EXPECT_EQ(config.name(), "Only.Little");
}

TEST(Fabric, CustomLayout) {
  FabricConfig config = FabricConfig::custom(3, 2);
  EXPECT_EQ(config.total_slots(), 5);
  EXPECT_EQ(config.kind, FabricKind::kCustom);
}

TEST(Fabric, MakeSlotsNumbersAndKinds) {
  BoardParams params;
  auto slots = make_slots(FabricConfig::big_little(), params);
  ASSERT_EQ(slots.size(), 6u);
  EXPECT_EQ(slots[0].kind(), SlotKind::kBig);
  EXPECT_EQ(slots[1].kind(), SlotKind::kBig);
  EXPECT_EQ(slots[2].kind(), SlotKind::kLittle);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].id(), static_cast<int>(i));
  }
  EXPECT_EQ(slots[0].capacity(), params.big_slot);
  EXPECT_EQ(slots[5].capacity(), params.little_slot);
}

TEST(Fabric, CapacityEquivalence) {
  // The paper's two layouts cover the same reconfigurable area:
  // 2 Big (2x Little each) + 4 Little == 8 Little.
  BoardParams params;
  ResourceVector bl =
      reconfigurable_capacity(FabricConfig::big_little(), params);
  ResourceVector ol =
      reconfigurable_capacity(FabricConfig::only_little(), params);
  EXPECT_EQ(bl, ol);
}

// ------------------------------------------------------------------- Board

TEST(Board, ConstructionAndAccessors) {
  sim::Simulator sim;
  Board board(sim, "fpga0", FabricConfig::big_little());
  EXPECT_EQ(board.name(), "fpga0");
  EXPECT_EQ(board.slots().size(), 6u);
  EXPECT_EQ(board.count_slots(SlotKind::kBig), 2);
  EXPECT_EQ(board.count_slots(SlotKind::kLittle), 4);
  EXPECT_EQ(board.scheduler_core().name(), "fpga0.PS0");
  EXPECT_EQ(board.pr_core().name(), "fpga0.PS1");
}

TEST(Board, ReconfigureFabricRebuildsSlots) {
  sim::Simulator sim;
  Board board(sim, "fpga0", FabricConfig::only_little());
  EXPECT_EQ(board.count_slots(SlotKind::kLittle), 8);
  board.reconfigure_fabric(FabricConfig::big_little());
  EXPECT_EQ(board.count_slots(SlotKind::kBig), 2);
  EXPECT_EQ(board.count_slots(SlotKind::kLittle), 4);
}

TEST(Board, PcapLoadTimeMatchesParams) {
  BoardParams params;
  sim::SimDuration t = params.pcap_load_time(params.little_bitstream_bytes);
  // 12 MB at 128 MB/s ≈ 93.75 ms plus 1 ms fixed overhead.
  EXPECT_NEAR(sim::to_ms(t), 94.75, 0.5);
  // Big slots carry twice the bitstream.
  EXPECT_GT(params.pcap_load_time(params.big_bitstream_bytes),
            2 * t - params.pcap_fixed_overhead - sim::ms(1));
}

}  // namespace
}  // namespace vs::fpga
