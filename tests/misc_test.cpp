// Remaining-coverage tests: logging, bitstream-key uniqueness, fabric
// overrides in the harness, forced bundle modes, and trace span ordering.
#include <gtest/gtest.h>

#include <set>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "metrics/experiment.h"
#include "metrics/quality.h"
#include "runtime/board_runtime.h"
#include "util/log.h"
#include "workload/generator.h"

namespace vs {
namespace {

TEST(Log, LevelGatesOutput) {
  util::LogLevel before = util::Log::level();
  util::Log::set_level(util::LogLevel::kError);
  EXPECT_EQ(util::Log::level(), util::LogLevel::kError);
  // Macro below must not evaluate its stream when filtered.
  int evaluated = 0;
  VS_DEBUG << "never " << ++evaluated;
  EXPECT_EQ(evaluated, 0);
  util::Log::set_level(before);
}

TEST(Log, TimeSourceInstallAndClear) {
  util::Log::set_time_source([] { return std::int64_t{123456789}; });
  util::Log::set_time_source(nullptr);  // must not crash later writes
  util::LogLevel before = util::Log::level();
  util::Log::set_level(util::LogLevel::kOff);
  VS_ERROR << "suppressed";
  util::Log::set_level(before);
}

TEST(BitstreamKeys, UniquePerSpecUnitAndSlot) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  std::set<fpga::BitstreamKey> keys;
  int count = 0;
  for (std::size_t s = 0; s < suite.size(); ++s) {
    for (const apps::UnitSpec& u : apps::make_little_units(suite[s])) {
      for (int slot = 0; slot < 8; ++slot) {
        keys.insert(
            runtime::unit_bitstream_key(static_cast<int>(s), u, slot));
        ++count;
      }
    }
    for (const apps::UnitSpec& u :
         apps::make_big_units(suite[s], 17, params)) {
      for (int slot = 0; slot < 2; ++slot) {
        keys.insert(
            runtime::unit_bitstream_key(static_cast<int>(s), u, slot));
        ++count;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(keys.size()), count);  // no collisions
}

TEST(BitstreamKeys, SerialAndParallelVariantsDiffer) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto parallel = apps::make_big_units(suite[1], 17, params, {}, 3,
                                       apps::BundleMode::kParallel);
  auto serial = apps::make_big_units(suite[1], 17, params, {}, 3,
                                     apps::BundleMode::kSerial);
  EXPECT_NE(runtime::unit_bitstream_key(1, parallel[0], 0),
            runtime::unit_bitstream_key(1, serial[0], 0));
}

TEST(ForcedMode, AppliesToMultiTaskBundlesOnly) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  // 3DR (3 tasks) with bundle_size 2 -> one pair + one single.
  auto units = apps::make_big_units(suite[0], 17, params, {}, 2,
                                    apps::BundleMode::kSerial);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].mode, apps::BundleMode::kSerial);
  EXPECT_EQ(units[1].mode, apps::BundleMode::kSingle);  // not forced
}

TEST(ForcedMode, SerialBundleLatencyIsSumOfTasks) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  auto serial = apps::make_big_units(suite[0], 17, params, {}, 3,
                                     apps::BundleMode::kSerial);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial[0].item_latency, suite[0].item_latency_sum());
  EXPECT_EQ(serial[0].fill_latency, 0);
}

TEST(Harness, FabricOverrideIsHonoured) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.apps_per_sequence = 4;
  util::Rng rng(3);
  auto seq = workload::generate_sequence(config, rng);
  metrics::RunOptions options;
  options.fabric = fpga::FabricConfig::custom(3, 2);
  auto r = metrics::run_single_board(metrics::SystemKind::kVersaBigLittle,
                                     suite, seq, options);
  EXPECT_EQ(r.completed, 4);
}

TEST(Harness, ForcedSerialIsSlowerOnBalancedBundles) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.apps_per_sequence = 8;
  config.congestion = workload::Congestion::kStress;
  util::Rng rng(5);
  auto seq = workload::generate_sequence(config, rng);
  metrics::RunOptions serial;
  serial.vs_options.forced_bundle_mode = apps::BundleMode::kSerial;
  metrics::RunOptions autosel;
  auto r_serial = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, serial);
  auto r_auto = metrics::run_single_board(
      metrics::SystemKind::kVersaBigLittle, suite, seq, autosel);
  EXPECT_LT(r_auto.response.mean, r_serial.response.mean);
}

TEST(Trace, SpansAreWithinRunBounds) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.apps_per_sequence = 3;
  util::Rng rng(9);
  auto seq = workload::generate_sequence(config, rng);
  sim::Simulator sim;
  fpga::Board board(sim, "b0", fpga::FabricConfig::big_little(), params);
  auto policy = metrics::make_policy(metrics::SystemKind::kVersaBigLittle);
  runtime::BoardRuntime rt(board, *policy);
  rt.trace().enable();
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  sim.run();
  ASSERT_FALSE(rt.trace().spans().empty());
  for (const sim::Span& s : rt.trace().spans()) {
    EXPECT_GE(s.start, 0);
    EXPECT_LE(s.start, s.end);
    EXPECT_LE(s.end, sim.now());
    EXPECT_FALSE(s.lane.empty());
  }
}

TEST(Quality, AloneEstimateIsLowerBoundIshOnUncontendedRun) {
  // A single app alone on the board should land within ~2x of the
  // analytic alone-estimate (the estimate ignores core/DMA overheads).
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::Sequence seq{{1, 0, 12, 0}};  // one LeNet, batch 12
  auto r = metrics::run_single_board(metrics::SystemKind::kVersaOnlyLittle,
                                     suite, seq);
  double est_ms =
      sim::to_ms(metrics::alone_estimate(suite[1], 12, params));
  ASSERT_EQ(r.completed, 1);
  EXPECT_LT(r.response_ms[0], est_ms * 2.5);
  EXPECT_GT(r.response_ms[0], est_ms * 0.3);
}

}  // namespace
}  // namespace vs
