// Unit tests for the discrete-event simulation kernel: event ordering,
// cancellation, time semantics, and the serially-busy Core model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/core.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace vs::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(100, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  EventId a = q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAllMakesEmpty) {
  EventQueue q;
  EventId a = q.schedule(10, [] {});
  EventId b = q.schedule(20, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, AdvancesTimeToEvent) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(ms(5.0), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, ms(5.0));
  EXPECT_EQ(sim.now(), ms(5.0));
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, RunUntilBoundStopsAndHoldsLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] { ++fired; });
  sim.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Core, RunsOpsSeriallyInFifoOrder) {
  Simulator sim;
  Core core(sim, "c0");
  std::vector<std::pair<int, SimTime>> done;
  core.submit(100, [&] { done.emplace_back(1, sim.now()); });
  core.submit(50, [&] { done.emplace_back(2, sim.now()); });
  core.submit(10, [&] { done.emplace_back(3, sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair<int, SimTime>{1, 100}));
  EXPECT_EQ(done[1], (std::pair<int, SimTime>{2, 150}));
  EXPECT_EQ(done[2], (std::pair<int, SimTime>{3, 160}));
}

TEST(Core, BusyAndBacklogReflectQueue) {
  Simulator sim;
  Core core(sim, "c0");
  core.submit(100, [] {});
  core.submit(100, [] {});
  EXPECT_TRUE(core.busy());
  EXPECT_EQ(core.backlog(), 1u);
  sim.run();
  EXPECT_FALSE(core.busy());
  EXPECT_EQ(core.backlog(), 0u);
}

TEST(Core, AvailableAtAccountsForQueuedWork) {
  Simulator sim;
  Core core(sim, "c0");
  EXPECT_EQ(core.available_at(), 0);
  core.submit(100, [] {});
  core.submit(50, [] {});
  EXPECT_EQ(core.available_at(), 150);
}

TEST(Core, CompletionCallbackCanResubmit) {
  Simulator sim;
  Core core(sim, "c0");
  std::vector<SimTime> ends;
  core.submit(10, [&] {
    ends.push_back(sim.now());
    core.submit(10, [&] { ends.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(ends, (std::vector<SimTime>{10, 20}));
}

TEST(Core, TracksBusyTime) {
  Simulator sim;
  Core core(sim, "c0");
  core.submit(100, [] {});
  core.submit(25, [] {});
  sim.run();
  EXPECT_EQ(core.busy_time(), 125);
}

TEST(Core, LabelVisibleWhileExecuting) {
  Simulator sim;
  Core core(sim, "c0");
  bool checked = false;
  core.submit(
      100, [] {}, "pcap:load");
  sim.schedule(50, [&] {
    EXPECT_EQ(core.current_label(), "pcap:load");
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(core.current_label().empty());
}

}  // namespace
}  // namespace vs::sim
