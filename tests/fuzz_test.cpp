// Fuzz harness: a policy that takes *random legal actions* each pass,
// driving the BoardRuntime through state-space corners no hand-written
// policy reaches, with the invariant auditor as the oracle. Any
// inconsistency (double-held slot, pipeline order violation, counter
// drift) fails the run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "cluster/cluster.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "metrics/experiment.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs {
namespace {

/// Takes random legal actions: places random pending units into random
/// idle slots of the matching kind, randomly preempts idle-configured
/// units, occasionally re-bundles unstarted apps, and sometimes does
/// nothing at all (exercising stall/kick paths).
class ChaosPolicy final : public runtime::SchedulerPolicy {
 public:
  explicit ChaosPolicy(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] const char* name() const override { return "chaos"; }
  [[nodiscard]] bool dual_core() const override { return dual_; }
  void on_app_submitted(runtime::BoardRuntime&, int) override {
    dual_ = rng_.bernoulli(0.5);  // note: only read at construction time
  }

  void on_pass(runtime::BoardRuntime& rt) override {
    if (rng_.bernoulli(0.15)) {
      // Lazy pass: do nothing now, but guarantee a retry so laziness at
      // the final event cannot strand pending work.
      rt.sim().schedule(sim::ms(10.0), [&rt] { rt.kick(); });
      return;
    }

    // Occasionally re-bundle an unstarted app (only when Big slots exist
    // to place the bundles into).
    if (rng_.bernoulli(0.1) &&
        rt.board().count_slots(fpga::SlotKind::kBig) > 0) {
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done() || a.started) continue;
        if (apps::can_bundle(*a.spec, rt.board().params())) {
          rt.set_units(a.id, apps::make_big_units(*a.spec, a.batch,
                                                  rt.board().params()));
        }
        break;
      }
    }

    // Random placements in pipeline-prefix order (placing a unit whose
    // upstream was never placed would deadlock the app, which is a policy
    // bug, not a runtime one — chaos stays within the legal contract).
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::vector<std::pair<int, int>> placeable;  // (app, lowest pending)
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done()) continue;
        for (const runtime::UnitRun& u : a.units) {
          if (u.state == runtime::UnitState::kPending) {
            placeable.emplace_back(a.id,
                                   static_cast<int>(&u - a.units.data()));
            break;  // only the lowest pending unit of each app
          }
        }
      }
      if (placeable.empty()) break;
      auto [app_id, unit] = placeable[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(placeable.size()) -
                                  1))];
      const runtime::UnitRun& u =
          rt.app(app_id).units[static_cast<std::size_t>(unit)];
      auto idle = rt.idle_slots(u.spec.slot_kind);
      if (idle.empty()) continue;
      int slot = idle[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(idle.size()) - 1))];
      if (!rt.board().slot(slot).capacity().fits(u.spec.impl_usage)) continue;
      rt.request_pr(app_id, unit, slot);
    }

    // Random relocation: preempt an idle-configured unit and immediately
    // re-place it into a random idle slot (exercises release/re-PR paths
    // without risking a stall).
    if (rng_.bernoulli(0.2)) {
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done()) continue;
        for (const runtime::UnitRun& u : a.units) {
          if (u.state == runtime::UnitState::kRunning && !u.item_in_flight &&
              u.items_done < a.batch && rng_.bernoulli(0.3)) {
            int unit_index = static_cast<int>(&u - a.units.data());
            rt.preempt_unit(a.id, unit_index);
            auto idle = rt.idle_slots(u.spec.slot_kind);
            ASSERT_FALSE(idle.empty());  // at least the freed slot
            int slot = idle[static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(idle.size()) - 1))];
            rt.request_pr(a.id, unit_index, slot);
            return;
          }
        }
      }
    }
  }

 private:
  util::Rng rng_;
  bool dual_ = true;
};

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, RandomActionsNeverBreakInvariants) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 8;
  util::Rng wl_rng(GetParam() * 31 + 7);
  auto seq = workload::generate_sequence(config, wl_rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0",
                    GetParam() % 2 ? fpga::FabricConfig::big_little()
                                   : fpga::FabricConfig::only_little(),
                    params);
  // Fault injection on top of chaos for a third of the seeds, configured
  // through the scenario's single seed-derivation rule.
  if (GetParam() % 3 == 0) {
    faults::FaultScenario scenario;
    scenario.seed = GetParam();
    scenario.pcap_crc_probability = 0.1;
    board.pcap().set_fault_model(scenario.pcap_crc_probability,
                                 scenario.stream("pcap/0"));
  }
  ChaosPolicy policy(GetParam());
  runtime::BoardRuntime rt(board, policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  int steps = 0;
  while (sim.step()) {
    if (++steps % 997 == 0) {
      auto report = runtime::audit(rt);
      ASSERT_TRUE(report.ok()) << "seed " << GetParam() << " step " << steps
                               << ": " << report.to_string();
    }
  }
  auto report = runtime::audit(rt);
  ASSERT_TRUE(report.ok()) << report.to_string();
  // Chaos places every pending unit eventually (it retries each pass), so
  // everything completes.
  EXPECT_EQ(rt.completed().size(), seq.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------ sharded kernel boundary fuzz

/// Serializes every field of a cluster run that the differential harness
/// guards, at full precision, so two runs compare with one string equality.
std::string serialize_cluster_result(const metrics::ClusterRunResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << r.submitted << '|' << r.completed << '|' << r.events << '|'
      << r.availability << '\n';
  for (const auto& a : r.apps) {
    out << a.app_id << ',' << a.spec_index << ',' << a.name << ','
        << a.arrival << ',' << a.completed << '\n';
  }
  for (double ms : r.response_ms) out << ms << '\n';
  for (const auto& s : r.switches) {
    out << s.time << ',' << static_cast<int>(s.to) << ',' << s.dswitch << ','
        << s.apps_migrated << ',' << s.bytes << ',' << s.overhead << '\n';
  }
  for (const auto& d : r.dswitch_trace) {
    out << d.time << ',' << d.value << ',' << d.blocked << ',' << d.prs << ','
        << d.apps << ',' << d.batch << '\n';
  }
  const cluster::RecoveryStats& v = r.recovery;
  out << v.boards_crashed << ',' << v.boards_rebooted << ',' << v.link_flaps
      << ',' << v.slot_seus << ',' << v.apps_evacuated << ','
      << v.apps_checkpoint_restored << ',' << v.apps_restarted << ','
      << v.apps_lost << ',' << v.apps_shed << ',' << v.readmissions << ','
      << v.mttr_total << ',' << v.mttr_count << '\n';
  return out.str();
}

class ShardedBoundaryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Randomised fault timelines pinned to the sharded kernel's window
// boundaries: every scripted event lands at k * lookahead or one simulated
// nanosecond to either side, the exact timestamps where an event can flip
// between "inside the window" and "at the barrier". Any off-by-one in the
// horizon comparison (< vs <=) diverges from the serial oracle here.
TEST_P(ShardedBoundaryFuzz, WindowEdgeFaultTimelinesMatchSerial) {
  const std::uint64_t seed = GetParam();
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 15;
  util::Rng wl_rng(seed);
  auto sequence = workload::generate_sequence(config, wl_rng);

  cluster::ClusterOptions base;
  const sim::SimDuration lookahead =
      cluster::conservative_lookahead(suite, base.link_params);
  util::Rng rng(seed ^ 0xb0a4d);
  faults::FaultScenario scenario;
  scenario.seed = 100 + seed;
  scenario.horizon = sim::seconds(20.0);
  const faults::FaultKind kinds[] = {
      faults::FaultKind::kBoardCrash, faults::FaultKind::kLinkDown,
      faults::FaultKind::kLinkUp, faults::FaultKind::kSlotSeu};
  int n_events = static_cast<int>(rng.uniform_int(3, 8));
  for (int i = 0; i < n_events; ++i) {
    // k * lookahead, nudged onto the boundary's other side half the time.
    sim::SimTime t = lookahead * rng.uniform_int(1, 200);
    t += rng.uniform_int(-1, 1);  // exactly on, or one tick to either side
    faults::FaultEvent e;
    e.time = t;
    e.kind = kinds[rng.uniform_int(0, 3)];
    e.board = static_cast<int>(rng.uniform_int(0, 1));
    scenario.timeline.push_back(e);
  }
  if (seed % 2 == 0) scenario.hazards.slot_seu_per_s = 0.02;

  cluster::ClusterOptions options;
  options.faults = scenario;
  if (seed % 3 == 0) {
    options.checkpoint.enabled = true;
    options.checkpoint.interval = sim::ms(100.0);
  }

  options.kernel_workers = 0;
  std::string reference = serialize_cluster_result(
      metrics::run_cluster(suite, sequence, options));
  for (int workers : {2, 4}) {
    options.kernel_workers = workers;
    EXPECT_EQ(serialize_cluster_result(
                  metrics::run_cluster(suite, sequence, options)),
              reference)
        << "seed=" << seed << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedBoundaryFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace vs
