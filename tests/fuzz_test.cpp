// Fuzz harness: a policy that takes *random legal actions* each pass,
// driving the BoardRuntime through state-space corners no hand-written
// policy reaches, with the invariant auditor as the oracle. Any
// inconsistency (double-held slot, pipeline order violation, counter
// drift) fails the run.
#include <gtest/gtest.h>

#include "apps/benchmarks.h"
#include "apps/bundling.h"
#include "faults/scenario.h"
#include "fpga/board.h"
#include "runtime/board_runtime.h"
#include "runtime/invariants.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vs {
namespace {

/// Takes random legal actions: places random pending units into random
/// idle slots of the matching kind, randomly preempts idle-configured
/// units, occasionally re-bundles unstarted apps, and sometimes does
/// nothing at all (exercising stall/kick paths).
class ChaosPolicy final : public runtime::SchedulerPolicy {
 public:
  explicit ChaosPolicy(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] const char* name() const override { return "chaos"; }
  [[nodiscard]] bool dual_core() const override { return dual_; }
  void on_app_submitted(runtime::BoardRuntime&, int) override {
    dual_ = rng_.bernoulli(0.5);  // note: only read at construction time
  }

  void on_pass(runtime::BoardRuntime& rt) override {
    if (rng_.bernoulli(0.15)) {
      // Lazy pass: do nothing now, but guarantee a retry so laziness at
      // the final event cannot strand pending work.
      rt.sim().schedule(sim::ms(10.0), [&rt] { rt.kick(); });
      return;
    }

    // Occasionally re-bundle an unstarted app (only when Big slots exist
    // to place the bundles into).
    if (rng_.bernoulli(0.1) &&
        rt.board().count_slots(fpga::SlotKind::kBig) > 0) {
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done() || a.started) continue;
        if (apps::can_bundle(*a.spec, rt.board().params())) {
          rt.set_units(a.id, apps::make_big_units(*a.spec, a.batch,
                                                  rt.board().params()));
        }
        break;
      }
    }

    // Random placements in pipeline-prefix order (placing a unit whose
    // upstream was never placed would deadlock the app, which is a policy
    // bug, not a runtime one — chaos stays within the legal contract).
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::vector<std::pair<int, int>> placeable;  // (app, lowest pending)
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done()) continue;
        for (const runtime::UnitRun& u : a.units) {
          if (u.state == runtime::UnitState::kPending) {
            placeable.emplace_back(a.id,
                                   static_cast<int>(&u - a.units.data()));
            break;  // only the lowest pending unit of each app
          }
        }
      }
      if (placeable.empty()) break;
      auto [app_id, unit] = placeable[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(placeable.size()) -
                                  1))];
      const runtime::UnitRun& u =
          rt.app(app_id).units[static_cast<std::size_t>(unit)];
      auto idle = rt.idle_slots(u.spec.slot_kind);
      if (idle.empty()) continue;
      int slot = idle[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(idle.size()) - 1))];
      if (!rt.board().slot(slot).capacity().fits(u.spec.impl_usage)) continue;
      rt.request_pr(app_id, unit, slot);
    }

    // Random relocation: preempt an idle-configured unit and immediately
    // re-place it into a random idle slot (exercises release/re-PR paths
    // without risking a stall).
    if (rng_.bernoulli(0.2)) {
      for (const runtime::AppRun& a : rt.apps()) {
        if (a.spec == nullptr || a.done()) continue;
        for (const runtime::UnitRun& u : a.units) {
          if (u.state == runtime::UnitState::kRunning && !u.item_in_flight &&
              u.items_done < a.batch && rng_.bernoulli(0.3)) {
            int unit_index = static_cast<int>(&u - a.units.data());
            rt.preempt_unit(a.id, unit_index);
            auto idle = rt.idle_slots(u.spec.slot_kind);
            ASSERT_FALSE(idle.empty());  // at least the freed slot
            int slot = idle[static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(idle.size()) - 1))];
            rt.request_pr(a.id, unit_index, slot);
            return;
          }
        }
      }
    }
  }

 private:
  util::Rng rng_;
  bool dual_ = true;
};

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, RandomActionsNeverBreakInvariants) {
  fpga::BoardParams params;
  auto suite = apps::make_suite(params);
  workload::WorkloadConfig config;
  config.congestion = workload::Congestion::kStress;
  config.apps_per_sequence = 8;
  util::Rng wl_rng(GetParam() * 31 + 7);
  auto seq = workload::generate_sequence(config, wl_rng);

  sim::Simulator sim;
  fpga::Board board(sim, "b0",
                    GetParam() % 2 ? fpga::FabricConfig::big_little()
                                   : fpga::FabricConfig::only_little(),
                    params);
  // Fault injection on top of chaos for a third of the seeds, configured
  // through the scenario's single seed-derivation rule.
  if (GetParam() % 3 == 0) {
    faults::FaultScenario scenario;
    scenario.seed = GetParam();
    scenario.pcap_crc_probability = 0.1;
    board.pcap().set_fault_model(scenario.pcap_crc_probability,
                                 scenario.stream("pcap/0"));
  }
  ChaosPolicy policy(GetParam());
  runtime::BoardRuntime rt(board, policy);
  for (const auto& a : seq) {
    sim.schedule_at(a.arrival, [&rt, &suite, a] {
      rt.submit(suite[static_cast<std::size_t>(a.spec_index)], a.spec_index,
                a.batch, a.arrival);
    });
  }
  int steps = 0;
  while (sim.step()) {
    if (++steps % 997 == 0) {
      auto report = runtime::audit(rt);
      ASSERT_TRUE(report.ok()) << "seed " << GetParam() << " step " << steps
                               << ": " << report.to_string();
    }
  }
  auto report = runtime::audit(rt);
  ASSERT_TRUE(report.ok()) << report.to_string();
  // Chaos places every pending unit eventually (it retries each pass), so
  // everything completes.
  EXPECT_EQ(rt.completed().size(), seq.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace vs
